// Discrete-event simulator of ring collectives on a star-network
// multiprocessor.
//
// Why it exists: the paper's motivation for ring embedding is running
// ring-structured parallel algorithms on the star-graph machine after
// processors fail.  The simulator quantifies that motivation (experiment
// E7): given an embedded ring (ours, a baseline's, or none), how long do
// token circulation and ring all-reduce take, and how much aggregate
// compute participates?  A longer embedded ring means more healthy
// processors contribute work per unit of wall-clock time.
//
// The engine is a classic time-ordered event queue; links have a fixed
// per-hop latency plus a deterministic per-link jitter (hash of the
// endpoints) so event ordering is exercised, and nodes add a processing
// delay per message.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "perm/permutation.hpp"

namespace starring {

struct SimParams {
  /// Per-hop link latency, microseconds.
  double link_latency_us = 1.0;
  /// Deterministic per-link jitter amplitude (fraction of latency).
  double jitter_frac = 0.1;
  /// Per-message processing overhead at the receiving node, microseconds.
  double node_overhead_us = 0.2;
  /// Bytes per message (all-reduce segment size).
  std::uint64_t message_bytes = 4096;
  /// Link bandwidth, bytes per microsecond.
  double bandwidth_bpus = 1024.0;
};

struct SimMetrics {
  double completion_time_us = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes_moved = 0;
  std::size_t participants = 0;
  /// participants / completion time: the "useful parallelism" measure
  /// experiment E7 reports.
  double participants_per_us = 0.0;
};

/// Simulator over a ring of `ring.size()` processors; ring[i] are the
/// star-graph vertex ids, used only to derive deterministic link jitter
/// (the physical hop between ring neighbours is one star-graph link).
class RingNetworkSim {
 public:
  RingNetworkSim(std::vector<VertexId> ring, SimParams params);

  std::size_t size() const { return ring_.size(); }

  /// One token circulating `rounds` full revolutions.
  SimMetrics run_token_ring(int rounds);

  /// Standard ring all-reduce: every node owns one segment; P-1
  /// reduce-scatter steps then P-1 all-gather steps, all nodes sending
  /// to their successor concurrently in each step.
  SimMetrics run_allreduce();

  /// `rounds` of neighbour exchange (each node sends to both ring
  /// neighbours each round) — the halo pattern of 1-D stencils.
  SimMetrics run_neighbor_exchange(int rounds);

 private:
  struct Event {
    double time;
    std::uint32_t node;   // receiving node (ring index)
    std::uint32_t round;  // workload-defined phase counter
    friend bool operator>(const Event& a, const Event& b) {
      return a.time > b.time;
    }
  };

  double hop_time(std::size_t from_idx, std::size_t to_idx) const;
  double transfer_time() const {
    return static_cast<double>(params_.message_bytes) / params_.bandwidth_bpus;
  }

  std::vector<VertexId> ring_;
  SimParams params_;
};

}  // namespace starring
