file(REMOVE_RECURSE
  "CMakeFiles/test_partition_selector.dir/test_partition_selector.cpp.o"
  "CMakeFiles/test_partition_selector.dir/test_partition_selector.cpp.o.d"
  "test_partition_selector"
  "test_partition_selector.pdb"
  "test_partition_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
