// Tests for the routing substrate: the Akers-Krishnamurthy distance
// formula (cross-checked against BFS exhaustively), optimal routes,
// diameter, fault-tolerant routing, and broadcast schedules.
#include <gtest/gtest.h>

#include <queue>

#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "routing/routing.hpp"

namespace starring {
namespace {

std::vector<int> bfs_distances(const StarGraph& g, VertexId src) {
  std::vector<int> dist(g.num_vertices(), -1);
  std::queue<VertexId> q;
  q.push(src);
  dist[src] = 0;
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const VertexId v : g.neighbor_ids(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

TEST(Routing, DistanceFormulaMatchesBfsExhaustively) {
  for (int n = 2; n <= 6; ++n) {
    const StarGraph g(n);
    const Perm id = Perm::identity(n);
    const auto dist = bfs_distances(g, id.rank());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(star_distance(g.vertex(v)), dist[v])
          << "S_" << n << " vertex " << g.vertex(v).to_string();
  }
}

TEST(Routing, PairwiseDistanceSymmetricAndTranslationInvariant) {
  const StarGraph g(5);
  for (VertexId a = 0; a < g.num_vertices(); a += 17) {
    for (VertexId b = 0; b < g.num_vertices(); b += 23) {
      const Perm pa = g.vertex(a);
      const Perm pb = g.vertex(b);
      EXPECT_EQ(star_distance(pa, pb), star_distance(pb, pa));
    }
  }
  // dist(a, b) = dist to identity of the relative arrangement: check by
  // BFS from an arbitrary non-identity source.
  const Perm src = g.vertex(37);
  const auto dist = bfs_distances(g, src.rank());
  for (VertexId v = 0; v < g.num_vertices(); v += 7)
    EXPECT_EQ(star_distance(src, g.vertex(v)), dist[v]);
}

TEST(Routing, DiameterFormulaMatchesBfs) {
  for (int n = 2; n <= 6; ++n) {
    const StarGraph g(n);
    const auto dist = bfs_distances(g, 0);
    int observed = 0;
    for (const int d : dist) observed = std::max(observed, d);
    // Vertex transitivity: eccentricity from one vertex is the diameter.
    EXPECT_EQ(observed, star_diameter(n)) << "S_" << n;
  }
}

TEST(Routing, ShortestRouteIsValidAndOptimal) {
  const StarGraph g(6);
  for (VertexId a = 0; a < g.num_vertices(); a += 101) {
    for (VertexId b = 0; b < g.num_vertices(); b += 73) {
      const Perm pa = g.vertex(a);
      const Perm pb = g.vertex(b);
      const auto route = shortest_route(pa, pb);
      EXPECT_EQ(static_cast<int>(route.size()), star_distance(pa, pb));
      Perm cur = pa;
      for (const Perm& step : route) {
        EXPECT_TRUE(cur.adjacent(step));
        cur = step;
      }
      if (!(pa == pb)) {
        EXPECT_EQ(route.back(), pb);
      }
    }
  }
}

TEST(Routing, RouteToSelfIsEmpty) {
  const Perm p = Perm::of({2, 0, 1, 3});
  EXPECT_TRUE(shortest_route(p, p).empty());
  EXPECT_EQ(star_distance(p, p), 0);
}

TEST(Routing, KnownDistances) {
  // One star move: distance 1.
  const Perm id = Perm::identity(5);
  EXPECT_EQ(star_distance(id.star_move(3)), 1);
  // Transposition not involving slot 0: distance 3.
  EXPECT_EQ(star_distance(Perm::of({0, 2, 1, 3, 4})), 3);
  // A 3-cycle through slot 0: k=3, c=1, slot0 involved: 3+1-2 = 2.
  EXPECT_EQ(star_distance(Perm::of({1, 2, 0, 3, 4})), 2);
  // Two disjoint 2-cycles, one through slot 0: k=4, c=2, -2: 4.
  EXPECT_EQ(star_distance(Perm::of({1, 0, 3, 2, 4})), 4);
}

TEST(Routing, FaultTolerantRouteAvoidsFaults) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 5);
  // Pick healthy endpoints.
  Perm s = g.vertex(0);
  Perm t = g.vertex(g.num_vertices() - 1);
  ASSERT_FALSE(f.vertex_faulty(s));
  ASSERT_FALSE(f.vertex_faulty(t));
  const auto route = fault_tolerant_route(g, f, s, t);
  ASSERT_TRUE(route.has_value());
  std::vector<VertexId> ids{s.rank()};
  for (const Perm& p : *route) {
    EXPECT_FALSE(f.vertex_faulty(p));
    ids.push_back(p.rank());
  }
  EXPECT_EQ(route->back(), t);
  EXPECT_TRUE(verify_healthy_path(g, f, ids).valid);
}

TEST(Routing, FaultTolerantRouteIsShortestWhenNoFaults) {
  const StarGraph g(5);
  for (VertexId b = 1; b < g.num_vertices(); b += 29) {
    const Perm s = g.vertex(0);
    const Perm t = g.vertex(b);
    const auto route = fault_tolerant_route(g, FaultSet{}, s, t);
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(static_cast<int>(route->size()), star_distance(s, t));
  }
}

TEST(Routing, FaultTolerantRouteAvoidsFaultyEdges) {
  const StarGraph g(5);
  const Perm s = Perm::identity(5);
  const Perm t = s.star_move(2);
  FaultSet f;
  f.add_edge(s, t);  // the direct link is down
  const auto route = fault_tolerant_route(g, f, s, t);
  ASSERT_TRUE(route.has_value());
  EXPECT_GT(route->size(), 1u);  // must detour
  EXPECT_EQ(route->back(), t);
}

TEST(Routing, FaultTolerantRouteUnreachable) {
  // Wall off a vertex entirely: n-1 = 3 faulty neighbours in S_4.
  const StarGraph g(4);
  const Perm s = Perm::identity(4);
  FaultSet f;
  for (int d = 1; d < 4; ++d) f.add_vertex(s.star_move(d));
  const Perm t = g.vertex(17);
  ASSERT_FALSE(f.vertex_faulty(t));
  EXPECT_FALSE(fault_tolerant_route(g, f, s, t).has_value());
}

TEST(Routing, BroadcastReachesEveryone) {
  for (int n = 3; n <= 6; ++n) {
    const StarGraph g(n);
    const auto sched = broadcast_schedule(g, Perm::identity(n));
    std::vector<std::uint8_t> informed(g.num_vertices(), 0);
    informed[Perm::identity(n).rank()] = 1;
    std::uint64_t total = 1;
    for (const auto& round : sched.rounds) {
      std::vector<std::uint8_t> sent(g.num_vertices(), 0);
      for (const auto& [u, v] : round) {
        EXPECT_TRUE(informed[u]) << "sender not informed";
        EXPECT_FALSE(informed[v]) << "receiver already informed";
        EXPECT_FALSE(sent[u]) << "single-port violated";
        EXPECT_TRUE(g.adjacent_ids(u, v));
        sent[u] = 1;
        informed[v] = 1;
        ++total;
      }
    }
    EXPECT_EQ(total, g.num_vertices()) << "S_" << n;
  }
}

TEST(Routing, BroadcastRoundCountNearOptimal) {
  // Single-port lower bound: ceil(log2(n!)) rounds.
  for (int n = 4; n <= 6; ++n) {
    const StarGraph g(n);
    const auto sched = broadcast_schedule(g, Perm::identity(n));
    int lower = 0;
    while ((1ULL << lower) < g.num_vertices()) ++lower;
    EXPECT_GE(static_cast<int>(sched.num_rounds()), lower);
    // The greedy schedule stays within a small factor of the bound.
    EXPECT_LE(static_cast<int>(sched.num_rounds()), 3 * lower);
  }
}

}  // namespace
}  // namespace starring
