#include "perm/permutation.hpp"

namespace starring {

VertexId Perm::rank() const {
  // Lehmer code: for each position count smaller symbols to its right.
  // O(n^2); n <= 16 so this is at most 256 steps and branch-predictable.
  VertexId r = 0;
  for (int i = 0; i < n_; ++i) {
    const int si = get(i);
    int smaller = 0;
    for (int j = i + 1; j < n_; ++j)
      if (get(j) < si) ++smaller;
    r += static_cast<VertexId>(smaller) * factorial(n_ - 1 - i);
  }
  return r;
}

Perm Perm::unrank(VertexId r, int n) {
  assert(n >= 1 && n <= kMaxN);
  assert(r < factorial(n));
  // Decode the Lehmer code digit by digit, consuming unused symbols.
  std::uint16_t unused = static_cast<std::uint16_t>((1u << n) - 1);
  std::uint64_t bits = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t f = factorial(n - 1 - i);
    int digit = static_cast<int>(r / f);
    r %= f;
    // Take the (digit)-th set bit of `unused`.
    int s = 0;
    for (int b = 0; b < n; ++b) {
      if (unused & (1u << b)) {
        if (s == digit) {
          unused = static_cast<std::uint16_t>(unused & ~(1u << b));
          bits |= static_cast<std::uint64_t>(b) << (4 * i);
          break;
        }
        ++s;
      }
    }
  }
  return Perm(bits, n);
}

std::string Perm::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(2 * n_));
  for (int i = 0; i < n_; ++i) {
    const int sym = get(i) + 1;  // 1-based for human eyes, as in the paper
    if (n_ > 9 && i > 0) out.push_back('.');
    if (sym >= 10) out.push_back(static_cast<char>('0' + sym / 10));
    out.push_back(static_cast<char>('0' + sym % 10));
  }
  return out;
}

Perm inverse_of(const Perm& p) {
  const int n = p.size();
  std::uint64_t bits = 0;
  for (int i = 0; i < n; ++i)
    bits |= static_cast<std::uint64_t>(i) << (4 * p.get(i));
  return Perm::from_packed(bits, n);
}

Perm relabel(const Perm& g, const Perm& p) {
  assert(g.size() == p.size());
  const int n = p.size();
  std::uint64_t bits = 0;
  for (int i = 0; i < n; ++i)
    bits |= static_cast<std::uint64_t>(g.get(p.get(i))) << (4 * i);
  return Perm::from_packed(bits, n);
}

std::vector<Perm> neighbors(const Perm& p) {
  std::vector<Perm> out;
  out.reserve(static_cast<std::size_t>(p.size() - 1));
  for (int i = 1; i < p.size(); ++i) out.push_back(p.star_move(i));
  return out;
}

}  // namespace starring
