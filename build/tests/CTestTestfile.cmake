# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_perm[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_substar[1]_include.cmake")
include("/root/repo/build/tests/test_paper_lemmas[1]_include.cmake")
include("/root/repo/build/tests/test_star_graph[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_disjoint_paths[1]_include.cmake")
include("/root/repo/build/tests/test_decomposition[1]_include.cmake")
include("/root/repo/build/tests/test_hypercube[1]_include.cmake")
include("/root/repo/build/tests/test_pancake[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_partition_selector[1]_include.cmake")
include("/root/repo/build/tests/test_super_ring[1]_include.cmake")
include("/root/repo/build/tests/test_block_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_embedder[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_mixed_faults[1]_include.cmake")
include("/root/repo/build/tests/test_longest_path[1]_include.cmake")
include("/root/repo/build/tests/test_pancyclic[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_self_healing[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_exhaustive[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
