#include "extensions/pancyclic.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "core/chaining.hpp"
#include "extensions/longest_path.hpp"
#include "core/ring_embedder.hpp"
#include "core/super_ring.hpp"
#include "graph/graph.hpp"

namespace starring {

namespace {

/// Lift a ring of the abstract S_r into S_n: the abstract permutation
/// occupies positions 0..r-1 and the tail r..n-1 stays the identity,
/// which lands every vertex inside one embedded S_r of S_n.
std::vector<VertexId> lift(const std::vector<Perm>& ring, int n) {
  std::vector<VertexId> out;
  out.reserve(ring.size());
  std::vector<int> syms(static_cast<std::size_t>(n));
  for (const Perm& p : ring) {
    for (int i = 0; i < p.size(); ++i)
      syms[static_cast<std::size_t>(i)] = p.get(i);
    for (int i = p.size(); i < n; ++i) syms[static_cast<std::size_t>(i)] = i;
    out.push_back(Perm::of(syms).rank());
  }
  return out;
}

/// Ring growth by hexagon surgery.  Two moves, both instances of
/// swapping arcs of one 6-cycle (the star graph's girth is 6, so no
/// shorter surgery exists):
///
///  * +2 (arc swap): a 2-edge arc u - m - v (dims i then j) lies on a
///    unique hexagon alternating i and j; when the complementary arc's
///    three vertices are off-ring, swap the arcs (m leaves the ring,
///    three vertices join: net +2).
///  * +4 (edge bridge): an edge (u, v) of dim j lies on one hexagon for
///    every other dim d; when the complementary 5-edge arc's four
///    vertices are off-ring, replace the edge by that arc (net +4).
///    Unlike the arc swap, the bridge can pick d outside the dims the
///    ring currently uses — this is what lets a ring saturated inside
///    an embedded substar escape into fresh territory (a +2 swap can
///    never introduce a new dimension, so it alone stays confined).
///
/// Returns false when the target cannot be reached (e.g. remaining
/// gap 2 with no +2 available).
bool grow_to(std::vector<Perm>& ring, std::uint64_t target) {
  std::unordered_set<std::uint64_t> on_ring;
  on_ring.reserve(2 * target);
  for (const Perm& p : ring) on_ring.insert(p.bits());
  const int r = ring.front().size();

  auto try_plus2 = [&](std::size_t& cursor) -> bool {
    const std::size_t len = ring.size();
    for (std::size_t step = 0; step < len; ++step) {
      const std::size_t i = (cursor + step) % len;
      const Perm& u = ring[i];
      const Perm& m = ring[(i + 1) % len];
      const Perm& v = ring[(i + 2) % len];
      const int di = m.position_of(u.get(0));
      const int dj = v.position_of(m.get(0));
      const Perm h5 = u.star_move(dj);
      const Perm h4 = h5.star_move(di);
      const Perm h3 = v.star_move(di);
      if (on_ring.contains(h5.bits()) || on_ring.contains(h4.bits()) ||
          on_ring.contains(h3.bits()))
        continue;
      on_ring.erase(m.bits());
      on_ring.insert(h5.bits());
      on_ring.insert(h4.bits());
      on_ring.insert(h3.bits());
      const std::size_t mi = (i + 1) % len;
      ring[mi] = h5;  // overwrite m
      ring.insert(ring.begin() + static_cast<std::ptrdiff_t>(mi) + 1,
                  {h4, h3});
      cursor = i;
      return true;
    }
    return false;
  };

  auto try_plus4 = [&](std::size_t& cursor) -> bool {
    const std::size_t len = ring.size();
    for (std::size_t step = 0; step < len; ++step) {
      const std::size_t i = (cursor + step) % len;
      const Perm& u = ring[i];
      const Perm& v = ring[(i + 1) % len];
      const int dj = v.position_of(u.get(0));
      for (int d = 1; d < r; ++d) {
        if (d == dj) continue;
        const Perm h2 = v.star_move(d);
        const Perm h3 = h2.star_move(dj);
        const Perm h4 = h3.star_move(d);
        const Perm h5 = u.star_move(d);
        if (on_ring.contains(h2.bits()) || on_ring.contains(h3.bits()) ||
            on_ring.contains(h4.bits()) || on_ring.contains(h5.bits()))
          continue;
        on_ring.insert(h2.bits());
        on_ring.insert(h3.bits());
        on_ring.insert(h4.bits());
        on_ring.insert(h5.bits());
        ring.insert(ring.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    {h5, h4, h3, h2});
        cursor = i;
        return true;
      }
    }
    return false;
  };

  std::size_t cursor = 0;
  while (ring.size() < target) {
    const std::uint64_t gap = target - ring.size();
    if (try_plus2(cursor)) continue;
    if (gap >= 4 && try_plus4(cursor)) continue;
    return false;
  }
  return true;
}

/// Upper band: length close to r!.  Run the Theorem 1 machinery with
/// (r! - length)/2 virtual faults, each shortening the ring by exactly
/// 2.  The virtual faults are same-parity vertices dealt round-robin
/// over the canonical S_4 blocks so no block carries more damage than
/// ceil(k/m) — with k <= 5m that keeps every per-block target at >= 14
/// vertices, which the exhaustive in-block search can almost always
/// thread (entry/exit choice plus chaining backtracking absorb the
/// rest).
std::optional<std::vector<VertexId>> upper_band(int r, std::uint64_t length,
                                                std::uint64_t seed) {
  const StarGraph g(r);
  const std::uint64_t k = (factorial(r) - length) / 2;
  const std::uint64_t m = factorial(r) / 24;
  FaultSet fake;
  if (k > 0) {
    // Canonical blocks: patterns free on positions {0,1,2,3}; the
    // members with even global parity are the virtual-fault pool of
    // each block (12 per block).
    const std::uint64_t per = k / m;
    std::uint64_t extra = k % m;
    if (per + (extra ? 1 : 0) > 12) return std::nullopt;
    std::uint64_t block_index = 0;
    for (VertexId id = 0; id < g.num_vertices(); ++id) {
      const Perm p = g.vertex(id);
      bool canonical = true;
      for (int i = 0; i + 1 < 4; ++i)
        if (p.get(i) > p.get(i + 1)) canonical = false;
      if (!canonical) continue;
      SubstarPattern pat = SubstarPattern::whole(r);
      for (int i = 4; i < r; ++i) pat = pat.child(i, p.get(i));
      std::uint64_t want = per + (block_index < extra ? 1 : 0);
      ++block_index;
      // Deal same-parity members, offset by the seed for variety.
      for (std::uint64_t j = 0; j < 24 && want > 0; ++j) {
        const Perm member = pat.member((j + seed * 5) % 24);
        if (member.parity() != 0) continue;
        fake.add_vertex(member);
        --want;
      }
    }
    if (fake.num_vertex_faults() != k) return std::nullopt;
  }
  EmbedOptions opts;
  if (k == 0) {
    auto res = embed_hamiltonian_cycle(g, opts);
    if (!res || res->ring.size() != length) return std::nullopt;
    return std::move(res->ring);
  }
  // Chain over the canonical partition (positions 4..r-1) so the
  // blocks the chaining sees are exactly the blocks the virtual faults
  // were dealt over — the Lemma 2 selector would re-partition and
  // unbalance them.
  std::vector<int> positions;
  for (int i = 4; i < r; ++i) positions.push_back(i);
  for (int rotation = 0; rotation < 4; ++rotation) {
    const auto sr = build_block_ring(r, positions, fake, rotation);
    if (!sr) continue;
    auto res = chain_block_ring(g, *sr, fake, opts);
    if (res && res->ring.size() == length) return std::move(res->ring);
  }
  return std::nullopt;
}

/// Anchor ring: exactly q of the r children of S_r (split at the last
/// position), each traversed by a Hamiltonian path between its cross
/// vertices — a ring of exactly q * (r-1)! vertices.  Children of one
/// parent are pairwise adjacent, so any q-subset chains cyclically; the
/// per-child Hamiltonian paths come from the longest-path machinery
/// (fault-free case: S_{r-1} is Hamiltonian-laceable).  Growth then
/// only ever has to cover less than one child volume.
std::optional<std::vector<Perm>> anchor_ring(int r, int q) {
  assert(q >= 2 && q <= r && r >= 5);
  const int pos = r - 1;
  const SubstarPattern whole = SubstarPattern::whole(r);
  std::vector<SubstarPattern> kids;
  std::vector<MemberExpander> expand;
  for (int s = 0; s < q; ++s) {
    kids.push_back(whole.child(pos, s));
    expand.emplace_back(kids.back());
  }
  const StarGraph child_graph(r - 1);

  // Closure: exit of child q-1 crosses to child 0.
  int closure_tries = 0;
  for (std::uint64_t closure = 0;
       closure < factorial(r - 1) && closure_tries < 24; ++closure) {
    const Perm y_last = expand[static_cast<std::size_t>(q - 1)].member(closure);
    if (y_last.get(0) != 0) continue;  // must cross into child 0
    ++closure_tries;
    Perm entry = y_last.star_move(pos);

    std::vector<Perm> ring;
    ring.reserve(static_cast<std::size_t>(q) * factorial(r - 1));
    bool ok = true;
    for (int i = 0; i < q && ok; ++i) {
      const auto& ex = expand[static_cast<std::size_t>(i)];
      // Abstract endpoints within this child.
      const Perm s_abs = Perm::unrank(ex.local_index(entry), r - 1);
      std::optional<Perm> exit;
      Perm t_abs = s_abs;
      if (i == q - 1) {
        exit = y_last;
        t_abs = Perm::unrank(ex.local_index(y_last), r - 1);
        if (s_abs == t_abs || s_abs.parity() == t_abs.parity()) {
          ok = false;
          break;
        }
      } else {
        // Any member crossing to the next child, opposite parity.
        const int next_sym = i + 1;
        for (std::uint64_t j = 0; j < factorial(r - 1); ++j) {
          const Perm cand = ex.member(j);
          if (cand.get(0) != next_sym) continue;
          if (cand == entry) continue;
          if (cand.parity() == entry.parity()) continue;
          exit = cand;
          t_abs = Perm::unrank(j, r - 1);
          break;
        }
        if (!exit) {
          ok = false;
          break;
        }
      }
      const auto path =
          embed_longest_path(child_graph, FaultSet{}, s_abs, t_abs);
      if (!path || path->embed.ring.size() != factorial(r - 1)) {
        ok = false;
        break;
      }
      for (const VertexId id : path->embed.ring)
        ring.push_back(ex.member(id));
      entry = exit->star_move(pos);
    }
    if (ok) return ring;
  }
  return std::nullopt;
}

}  // namespace

/// A ring of exactly `length` vertices in the abstract S_r (as Perms
/// of size r), or nullopt.  Recursive banding:
///  * length <= 24: exhaustive inside one S_4 block;
///  * length close to r! (upper band): Theorem-1 machinery with virtual
///    faults;
///  * otherwise: a recursively built base ring of length
///    min((r-1)!, length-4) — small enough to leave a growth gap of at
///    least one +4 bridge — grown by hexagon surgery.
std::optional<std::vector<Perm>> ring_in_abstract(int r,
                                                  std::uint64_t length) {
  if (length % 2 != 0 || length < 6 || length > factorial(r))
    return std::nullopt;

  if (length <= 24) {
    const SubstarPattern block = SubstarPattern::whole(4);
    const auto cyc = cycle_with_exact_vertices(
        block.block_graph(), 0, static_cast<int>(length));
    if (!cyc) return std::nullopt;
    std::vector<Perm> ring;
    ring.reserve(cyc->size());
    for (const int local : *cyc)
      ring.push_back(block.member(static_cast<std::uint64_t>(local)));
    if (r == 4) return ring;
    // Lift into S_r with the identity tail.
    std::vector<Perm> lifted;
    lifted.reserve(ring.size());
    std::vector<int> syms(static_cast<std::size_t>(r));
    for (const Perm& p : ring) {
      for (int i = 0; i < 4; ++i) syms[static_cast<std::size_t>(i)] = p.get(i);
      for (int i = 4; i < r; ++i) syms[static_cast<std::size_t>(i)] = i;
      lifted.push_back(Perm::of(syms));
    }
    return lifted;
  }

  // Upper band: virtual faults reach down to ~(5/6) r! robustly.
  if (3 * length >= 2 * factorial(r)) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      if (auto ids = upper_band(r, length, seed)) {
        std::vector<Perm> ring;
        ring.reserve(ids->size());
        for (const VertexId id : *ids) ring.push_back(Perm::unrank(id, r));
        return ring;
      }
    }
  }

  // Growth band: an anchor strictly below the target so at least one
  // +4 bridge fits (a ring saturating an embedded substar cannot take
  // +2 steps, and a gap of exactly 2 from such an anchor is a dead
  // end).  For targets above 2 * (r-1)! the anchor is a ring over
  // floor((length-4)/(r-1)!) full sibling children, so growth never
  // has to cover more than one child volume.
  // Candidate bases, tried in order until one grows to the target:
  //  1. an anchor over floor((length-4)/(r-1)!) full sibling children
  //     (growth covers < 1 child volume),
  //  2. the single-child spectrum (Hamiltonian ring of S_{r-1}, or the
  //     child's own recursive ring when the target is smaller),
  //  3. a shorter recursive base at ~3/4 of the target.
  const auto q_anchor = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(r),
                              (length - 4) / factorial(r - 1)));
  auto lift_into_r = [&](const std::vector<Perm>& base) {
    std::vector<Perm> lifted;
    lifted.reserve(length);
    std::vector<int> syms(static_cast<std::size_t>(r));
    for (const Perm& p : base) {
      for (int i = 0; i < r - 1; ++i)
        syms[static_cast<std::size_t>(i)] = p.get(i);
      syms[static_cast<std::size_t>(r - 1)] = r - 1;
      lifted.push_back(Perm::of(syms));
    }
    return lifted;
  };
  auto child_base = [&](std::uint64_t base_len)
      -> std::optional<std::vector<Perm>> {
    if (base_len == factorial(r - 1)) {
      const StarGraph bg(r - 1);
      const auto ham = embed_hamiltonian_cycle(bg);
      if (!ham) return std::nullopt;
      std::vector<Perm> ring;
      ring.reserve(ham->ring.size());
      for (const VertexId id : ham->ring)
        ring.push_back(Perm::unrank(id, r - 1));
      return lift_into_r(ring);
    }
    const auto base = ring_in_abstract(r - 1, base_len);
    if (!base) return std::nullopt;
    return lift_into_r(*base);
  };

  std::vector<std::optional<std::vector<Perm>>> bases;
  if (q_anchor >= 2) bases.push_back(anchor_ring(r, q_anchor));
  // A one-smaller anchor leaves a whole fresh child next to the growth
  // frontier — the cure for targets just above a q-child anchor, where
  // the saturated anchor offers few absorbable hexagons.
  if (q_anchor >= 3) bases.push_back(anchor_ring(r, q_anchor - 1));
  bases.push_back(
      child_base(std::min<std::uint64_t>(factorial(r - 1), length - 4)));
  bases.push_back(child_base(std::min<std::uint64_t>(
      factorial(r - 1), ((length * 3) / 4) & ~1ULL)));
  for (auto& base : bases) {
    if (!base) continue;
    std::vector<Perm> ring = std::move(*base);
    ring.reserve(length);
    if (grow_to(ring, length)) return ring;
  }

  // Last resort: virtual faults below the usual band.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    if (auto ids = upper_band(r, length, seed)) {
      std::vector<Perm> out;
      out.reserve(ids->size());
      for (const VertexId id : *ids) out.push_back(Perm::unrank(id, r));
      return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<VertexId>> embed_even_ring(const StarGraph& g,
                                                     std::uint64_t length) {
  const int n = g.n();
  if (length % 2 != 0 || length < 6 || length > g.num_vertices())
    return std::nullopt;

  if (n == 3) {
    if (length != 6) return std::nullopt;
    std::vector<Perm> cyc;
    Perm cur = Perm::identity(3);
    for (int s = 0; s < 6; ++s) {
      cyc.push_back(cur);
      cur = cur.star_move(s % 2 == 0 ? 1 : 2);
    }
    return lift(cyc, n);
  }

  int r = 4;
  while (factorial(r) < length) ++r;
  assert(r <= n);
  const auto ring = ring_in_abstract(r, length);
  if (!ring) return std::nullopt;
  return lift(*ring, n);
}

}  // namespace starring
