# Empty compiler generated dependencies file for bench_lemma4.
# This may be replaced when dependencies are built.
