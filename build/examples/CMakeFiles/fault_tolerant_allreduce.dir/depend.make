# Empty dependencies file for fault_tolerant_allreduce.
# This may be replaced when dependencies are built.
