file(REMOVE_RECURSE
  "libstarring_baselines.a"
)
