# Empty dependencies file for test_partition_selector.
# This may be replaced when dependencies are built.
