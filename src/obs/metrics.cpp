#include "obs/metrics.hpp"

#if !defined(STARRING_OBS_DISABLED)

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace starring::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("STARRING_METRICS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

struct Registry {
  std::mutex mu;
  // std::map: stable iteration order for snapshot(); unique_ptr keeps
  // Counter addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
};

Registry& registry() {
  // Leaked singleton: counters referenced from function-local statics
  // in other TUs must outlive every destructor.
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    out.emplace_back(name, c->value());
  return out;
}

Snapshot snapshot_delta(const Snapshot& before) {
  const Snapshot now = snapshot();
  Snapshot out;
  std::size_t j = 0;
  for (const auto& [name, value] : now) {
    std::int64_t prev = 0;
    while (j < before.size() && before[j].first < name) ++j;
    if (j < before.size() && before[j].first == name) prev = before[j].second;
    if (value != prev) out.emplace_back(name, value - prev);
  }
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters)
    c->value_.store(0, std::memory_order_relaxed);
}

}  // namespace starring::obs

#endif  // !STARRING_OBS_DISABLED
