// Plain-text serialization of embeddings.
//
// A ring embedding is an artefact worth keeping: the runtime system
// computes it once per fault event and distributes it to every node.
// The format is line-oriented and versioned:
//
//   starring-embedding v1
//   n <dim>
//   kind <ring|path>
//   vertex_faults <count>
//   <one permutation per line, 1-based digits, e.g. 2134567>
//   edge_faults <count>
//   <two permutations per line>
//   sequence <length>
//   <vertex ids (Lehmer ranks), whitespace-separated, any wrapping>
//
// read_embedding() validates structure and value ranges; semantic
// validation (is it really a healthy ring?) stays with core/verify.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"

namespace starring {

struct EmbeddingFile {
  int n = 0;
  bool is_ring = true;  // false: open path
  FaultSet faults;
  std::vector<VertexId> sequence;
};

/// Serialize to a stream.  Returns false on stream failure.
bool write_embedding(std::ostream& os, const EmbeddingFile& e);

/// Parse; returns nullopt (with a short reason in *error if non-null)
/// on malformed input.
std::optional<EmbeddingFile> read_embedding(std::istream& is,
                                            std::string* error = nullptr);

// --- Service line protocol -------------------------------------------
//
// The embedding service (src/service) speaks a versioned line protocol
// over stdio or TCP, one record per request/response, reusing the
// EmbeddingFile conventions (1-based permutation literals, whitespace-
// separated vertex ids).  Records are terminated by an `end` line so a
// stream of them is self-framing:
//
//   starring-request v1          starring-response v1
//   id <u64>                     id <u64>
//   n <dim>                      status <ok|error|rejected|
//   vertex_faults <count>                timeout|throttled>
//   <one permutation per line>   [reason <one line>]        (non-ok)
//   edge_faults <count>          [cache <hit|miss>]         (ok)
//   <two permutations per line>  [verified <0|1>]           (ok)
//   verify <0|1>                 [ring <length>]            (ok)
//   [tenant <name>]              [<vertex ids ...>]         (ok)
//   [deadline_ms <ms>]           end
//   end
//
// The deadline_ms and tenant lines are optional, accepted in either
// order (readers written against the original v1 grammar never emitted
// them).  A positive deadline_ms gives the request a completion budget
// measured from admission; a request still queued or in flight past
// its budget is answered `status timeout`.  The tenant line names the
// accounting principal for per-tenant quotas, fair scheduling, and
// svc.tenant.* metrics (one token, at most 64 chars); requests without
// one are bucketed into the `default` tenant — omitting the line never
// bypasses quotas.  `status throttled` reports a tenant whose token
// bucket is exhausted; like `rejected` it carries no ring and the
// request may be retried after a backoff.
//
// Four out-of-band commands ride the same request stream as bare
// lines, answered inline (ahead of any still-pending embedding
// responses):
//
//   STATS          live metrics snapshot, answered with a self-framing
//                  stats record carrying Prometheus text exposition:
//                      starring-stats v1
//                      lines <count>
//                      <count body lines, verbatim promtext>
//                      end
//   PING           liveness probe, answered with the single line `PONG`
//   FAIL <config>  arm/disarm fault-injection sites (util/failpoint.hpp
//                  grammar; `FAIL clear` disarms all), answered with
//                  `FAIL ok` or `FAIL bad <reason>` on one line
//   HEALTH         shard identity + cache probe (the starring-proxy
//                  health poller), answered with a self-framing
//                  starring-health v1 record (see HealthInfo below)
//
// One more record type rides the request stream: `starring-seed v1`,
// the proxy's read-through replication push.  It carries a canonical
// class key and its canonical ring so a replica shard can warm its
// cache without recomputing (EmbedService::seed_cache):
//
//   starring-seed v1
//   n <dim>
//   key <canonical class key, one token>
//   ring <length>
//   <vertex ids ...>
//   end
//
// answered with the single line `SEED ok` or `SEED bad <reason>`.

/// What a parsed request asks for: an embedding, one of the bare
/// command lines (`STATS`, `PING`, `FAIL <config>`, `HEALTH`), or a
/// replication seed record.
enum class RequestKind { kEmbed, kStats, kPing, kFail, kHealth, kSeed };

struct ServiceRequest {
  RequestKind kind = RequestKind::kEmbed;
  /// Caller-chosen correlation id, echoed on the response.
  std::uint64_t id = 0;
  int n = 0;
  FaultSet faults;
  /// Ask the service to run the independent verifier on the response
  /// ring before sending it (hits are additionally verified when the
  /// daemon runs with --verify-on-hit).
  bool verify = false;
  /// Completion budget in milliseconds, measured from admission; 0
  /// means no deadline.  A request past its budget is shed from the
  /// queue (or its in-flight embedding cooperatively cancelled) and
  /// answered `status timeout`.
  std::int64_t deadline_ms = 0;
  /// Accounting principal for quotas, fair scheduling, and per-tenant
  /// metrics.  Empty on the wire means "the default tenant" — the
  /// service buckets such requests into `default` rather than letting
  /// them bypass quotas.
  std::string tenant;
  /// Payload of a `FAIL <config>` command (kind == kFail only).
  std::string fail_config;
  /// Canonical class key of a seed record (kind == kSeed only; n above
  /// is the seed's dimension and seed_ring its canonical ring).
  std::string seed_key;
  std::vector<VertexId> seed_ring;
};

/// Longest canonical-class key accepted in a seed record.  Canonical
/// keys are short (one char per dimension plus hex fault bits); the cap
/// just stops a garbage frame from growing an unbounded token.
inline constexpr std::size_t kMaxSeedKeyLen = 256;

/// Longest tenant name accepted on the wire; longer tokens are a
/// framing error (tenant names become metric names — unbounded ones
/// would let a client grow the registry without limit).
inline constexpr std::size_t kMaxTenantLen = 64;

enum class ServiceStatus { kOk, kError, kRejected, kTimeout, kThrottled };

struct ServiceResponse {
  std::uint64_t id = 0;
  ServiceStatus status = ServiceStatus::kError;
  /// Whether the canonical embedding came out of the result cache.
  bool cache_hit = false;
  /// Whether the service verified the ring before responding.
  bool verified = false;
  /// The healthy ring in the caller's frame (ok responses only).
  std::vector<VertexId> ring;
  /// Failure reason (non-ok responses only; single line).
  std::string reason;
};

bool write_request(std::ostream& os, const ServiceRequest& r);
bool write_response(std::ostream& os, const ServiceResponse& r);

/// Parse one record.  Clean end-of-stream before the header yields
/// nullopt with *error set to "" — that is how a daemon distinguishes
/// an orderly shutdown from a framing error (non-empty *error).
std::optional<ServiceRequest> read_request(std::istream& is,
                                           std::string* error = nullptr);
std::optional<ServiceResponse> read_response(std::istream& is,
                                             std::string* error = nullptr);

/// Frame `body` (any text, normally Prometheus exposition) as a
/// starring-stats v1 record.  A missing trailing newline is supplied.
bool write_stats(std::ostream& os, const std::string& body);

/// Parse one stats record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<std::string> read_stats(std::istream& is,
                                      std::string* error = nullptr);

// --- cluster health probe --------------------------------------------
//
// A shard answers the bare `HEALTH` line with:
//
//   starring-health v1
//   shard <id>
//   epoch <u64>
//   cache_entries <u64>
//   cache_hits <u64>
//   cache_misses <u64>
//   end
//
// shard/epoch let the proxy detect a process serving under the wrong
// identity or an out-of-date shard map; the cache numbers feed
// cluster-level hit-rate accounting without a full STATS scrape.
// starring-proxy answers HEALTH as well, reporting shard -1 (it is a
// router, not a shard) and its shard map's epoch.

struct HealthInfo {
  int shard_id = -1;
  std::uint64_t epoch = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

bool write_health(std::ostream& os, const HealthInfo& h);

/// Parse one health record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<HealthInfo> read_health(std::istream& is,
                                      std::string* error = nullptr);

}  // namespace starring
