file(REMOVE_RECURSE
  "CMakeFiles/starring_routing.dir/routing.cpp.o"
  "CMakeFiles/starring_routing.dir/routing.cpp.o.d"
  "libstarring_routing.a"
  "libstarring_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
