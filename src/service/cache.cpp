#include "service/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace starring {

CanonicalRingCache::CanonicalRingCache(std::size_t capacity)
    : per_shard_(std::max<std::size_t>(1, capacity / kShards)) {}

CanonicalRingCache::RingPtr CanonicalRingCache::lookup(
    const std::string& key) {
  // A fired lookup site forces a miss: the service recomputes (and
  // re-verifies) what the cache would have served.
  if (FAILPOINT("svc.cache_lookup")) return nullptr;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->second;
}

void CanonicalRingCache::insert(const std::string& key, RingPtr ring) {
  // A fired insert site silently loses the entry — the miss path must
  // still answer the request and the next lookup must recompute.
  if (FAILPOINT("svc.cache_insert")) return;
  static obs::Counter& evictions = obs::counter("svc.cache_evictions");
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(ring);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(ring));
  s.index.emplace(key, s.lru.begin());
  if (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions.add();
  }
}

std::size_t CanonicalRingCache::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    total += s.lru.size();
  }
  return total;
}

}  // namespace starring
