# Empty dependencies file for test_super_ring.
# This may be replaced when dependencies are built.
