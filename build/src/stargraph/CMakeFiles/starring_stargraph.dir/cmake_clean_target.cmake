file(REMOVE_RECURSE
  "libstarring_stargraph.a"
)
