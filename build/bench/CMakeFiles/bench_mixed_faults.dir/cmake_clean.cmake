file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_faults.dir/bench_mixed_faults.cpp.o"
  "CMakeFiles/bench_mixed_faults.dir/bench_mixed_faults.cpp.o.d"
  "bench_mixed_faults"
  "bench_mixed_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
