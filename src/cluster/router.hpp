// Failure-aware candidate ordering on top of the ShardMap.
//
// The proxy asks the router, not the map, where to send a request: the
// router starts from the map's nearest-first candidate list and
// reorders it by per-shard circuit-breaker state.  A shard that has
// failed `open_threshold` consecutive times has its breaker opened for
// a cooldown that grows with the failure streak
// (util/backoff.hpp::retry_backoff_ms); while open it sinks to the
// back of every candidate list instead of being removed — the list is
// never empty, so every request still reaches *some* terminal status
// even with the whole cluster limping.  When the cooldown elapses the
// next request through is the half-open probe: its success closes the
// breaker, its failure re-opens with a longer cooldown.
//
// The map is held RCU-style: an immutable snapshot behind a
// shared_ptr, swapped atomically by the membership layer on each epoch
// bump.  Requests read a consistent snapshot (map() hands out the
// shared_ptr); in-flight retries re-fetch candidates per attempt, so a
// swap mid-request re-routes the remaining attempts against the new
// owner set.
//
// Breaker state is exported as gauges through the Prometheus path:
//   cluster.shard.<id>.breaker_state   0 closed / 1 open / 2 half-open
//   cluster.shard.<id>.breaker_streak  consecutive failures
//
// Time is an explicit parameter (steady_clock::time_point) so unit
// tests drive the breaker state machine without sleeping.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "cluster/shard_map.hpp"

namespace starring::cluster {

struct BreakerOptions {
  /// Consecutive failures that open a shard's breaker.
  int open_threshold = 3;
  /// Backoff schedule for the open cooldown: round k after opening
  /// waits retry_backoff_ms(k, base_ms, cap_ms).
  int base_ms = 100;
  int cap_ms = 5000;
};

/// Breaker positions for the state gauge.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

class ShardRouter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ShardRouter(std::shared_ptr<const ShardMap> map,
                       BreakerOptions opts = {});
  /// Convenience for static single-map callers (tests, tools).
  explicit ShardRouter(ShardMap map, BreakerOptions opts = {});

  /// Current placement snapshot.  Callers hold the returned pointer
  /// for the duration of one request so every placement decision in it
  /// is made against one consistent map, even across a live swap.
  std::shared_ptr<const ShardMap> map() const;

  /// Install a new map snapshot (membership epoch bump).  Breakers of
  /// shards absent from the new map are dropped — a departed shard's
  /// failure streak must not haunt its id if it rejoins later.
  void swap_map(std::shared_ptr<const ShardMap> next);

  /// Every shard, nearest-first for `key`, with open-breaker shards
  /// moved to the back (stable within each group).  Never empty while
  /// the map has shards.
  std::vector<int> candidates(std::string_view key, Clock::time_point now);

  /// Is the shard currently worth trying (breaker closed, or open with
  /// an elapsed cooldown — the half-open probe)?
  bool allow(int shard_id, Clock::time_point now);

  void record_failure(int shard_id, Clock::time_point now);
  void record_success(int shard_id);

  int consecutive_failures(int shard_id);
  /// Gauge view of one shard's breaker (also what the gauges export).
  BreakerState breaker_state(int shard_id, Clock::time_point now);

 private:
  struct Breaker {
    int failures = 0;
    /// Set while open: earliest time a half-open probe may go out.
    Clock::time_point retry_at{};
    bool open = false;
  };

  bool allow_locked(const Breaker& b, Clock::time_point now) const;
  /// Refresh the shard's breaker gauges.  nullptr = closed/no entry.
  void publish_locked(int shard_id, const Breaker* b,
                      Clock::time_point now) const;

  std::shared_ptr<const ShardMap> map_;  // guarded by mu_, read via map()
  BreakerOptions opts_;
  mutable std::mutex mu_;
  std::map<int, Breaker> breakers_;
};

}  // namespace starring::cluster
