file(REMOVE_RECURSE
  "CMakeFiles/test_pancake.dir/test_pancake.cpp.o"
  "CMakeFiles/test_pancake.dir/test_pancake.cpp.o.d"
  "test_pancake"
  "test_pancake.pdb"
  "test_pancake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pancake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
