// Tests for the data-parallel helpers and thread-count invariance of
// the parallel phases (embedding and verification results must be
// bit-identical for any worker count).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "util/parallel.hpp"

namespace starring {
namespace {

TEST(Parallel, ForCoversRangeOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(5, 95, threads, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 100; ++i)
      EXPECT_EQ(hits[i].load(), (i >= 5 && i < 95) ? 1 : 0) << i;
  }
}

TEST(Parallel, ForEmptyRange) {
  int count = 0;
  parallel_for(7, 7, 4, [&](std::size_t) { ++count; });
  parallel_for(9, 3, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Parallel, ForMoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ReduceSum) {
  for (const unsigned threads : {1u, 2u, 7u}) {
    const auto sum = parallel_reduce(
        std::size_t{1}, std::size_t{101}, threads, std::uint64_t{0},
        [](std::size_t i) { return static_cast<std::uint64_t>(i); },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, 5050u);
  }
}

TEST(Parallel, ReduceMinFindsFirstOffender) {
  std::vector<int> data(1000, 1);
  data[437] = 0;
  data[611] = 0;
  const auto first = parallel_reduce(
      std::size_t{0}, data.size(), 8, data.size(),
      [&](std::size_t i) { return data[i] == 0 ? i : data.size(); },
      [](std::size_t a, std::size_t b) { return std::min(a, b); });
  EXPECT_EQ(first, 437u);
}

TEST(Parallel, DefaultThreadsPositive) { EXPECT_GE(default_threads(), 1u); }

// Regression: a throw from a worker used to hit the thread boundary and
// std::terminate the process.  It must surface at the call site.
TEST(Parallel, ForPropagatesWorkerException) {
  try {
    parallel_for(0, 1000, 8, [](std::size_t i) {
      if (i == 137) throw std::runtime_error("boom at 137");
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
}

TEST(Parallel, ForPropagatesInlineException) {
  // threads == 1 takes the no-thread path; it must behave the same.
  EXPECT_THROW(
      parallel_for(0, 10, 1,
                   [](std::size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(Parallel, ForDeliversExactlyOneExceptionWhenManyThrow) {
  // Every index throws; the call site must see a single exception (the
  // first captured), not an abort or a second in-flight throw.
  int caught = 0;
  try {
    parallel_for(0, 64, 8, [](std::size_t i) {
      throw std::runtime_error("worker " + std::to_string(i));
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(Parallel, ForStopsSchedulingAfterException) {
  // Workers poll the failure flag: after one throws, the others stop at
  // an iteration boundary, so nowhere near all 1<<20 indices run.
  std::atomic<std::size_t> executed{0};
  const std::size_t total = std::size_t{1} << 20;
  EXPECT_THROW(parallel_for(0, total, 4,
                            [&](std::size_t) {
                              executed.fetch_add(1,
                                                 std::memory_order_relaxed);
                              throw std::runtime_error("early");
                            }),
               std::runtime_error);
  EXPECT_LE(executed.load(), 8u);  // one per worker before the flag trips
}

TEST(Parallel, ReducePropagatesWorkerException) {
  try {
    (void)parallel_reduce(
        std::size_t{0}, std::size_t{500}, 4, 0,
        [](std::size_t i) -> int {
          if (i == 250) throw std::logic_error("map failed");
          return static_cast<int>(i);
        },
        [](int a, int b) { return a + b; });
    FAIL() << "exception was swallowed";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "map failed");
  }
}

TEST(Parallel, ReduceUnaffectedAfterThrowingCall) {
  // The helpers hold no global state: a failed call must not poison the
  // next one.
  EXPECT_THROW(parallel_for(0, 100, 4,
                            [](std::size_t) {
                              throw std::runtime_error("first call");
                            }),
               std::runtime_error);
  const auto sum = parallel_reduce(
      std::size_t{1}, std::size_t{11}, 4, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 55u);
}

TEST(Parallel, EmbeddingInvariantUnderThreadCount) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 21);
  EmbedOptions opts1;
  opts1.num_threads = 1;
  EmbedOptions optsN;
  optsN.num_threads = 0;  // all cores
  const auto a = embed_longest_ring(g, f, opts1);
  const auto b = embed_longest_ring(g, f, optsN);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->ring, b->ring);
}

TEST(Parallel, RingIdenticalAcrossThreadCountsAtMaxFaults) {
  // The full guarantee-regime sweep: at the paper's maximum fault count
  // the embedded ring must be bit-identical for one, two, and all
  // hardware threads (exit enumeration order and emission offsets are
  // schedule-independent by construction).
  for (int n = 5; n <= 7; ++n) {
    const StarGraph g(n);
    const FaultSet f =
        random_vertex_faults(g, n - 3, static_cast<std::uint64_t>(7 * n + 1));
    std::vector<VertexId> reference;
    for (const unsigned threads : {1u, 2u, default_threads()}) {
      EmbedOptions opts;
      opts.num_threads = threads;
      const auto res = embed_longest_ring(g, f, opts);
      ASSERT_TRUE(res.has_value()) << "n=" << n << " threads=" << threads;
      if (reference.empty()) {
        reference = res->ring;
      } else {
        EXPECT_EQ(res->ring, reference)
            << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(Parallel, VerifierInvariantUnderThreadCount) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 2, 4);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  for (const unsigned threads : {1u, 2u, 4u, 16u}) {
    const auto rep = verify_healthy_ring(g, f, res->ring, threads);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, res->ring.size());
  }
  // And an invalid ring stays invalid at any thread count.
  auto broken = res->ring;
  std::swap(broken[1], broken[100]);
  for (const unsigned threads : {1u, 3u, 8u}) {
    EXPECT_FALSE(verify_healthy_ring(g, f, broken, threads).valid);
  }
}

TEST(Parallel, VerifierFindsFaultAtAnyThreadCount) {
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  FaultSet f;
  f.add_vertex(g.vertex(res->ring[60]));
  for (const unsigned threads : {1u, 4u}) {
    const auto rep = verify_healthy_ring(g, f, res->ring, threads);
    EXPECT_FALSE(rep.valid);
    EXPECT_NE(rep.error.find("faulty vertex"), std::string::npos);
  }
}

}  // namespace
}  // namespace starring
