// End-to-end integration tests: the full pipeline on larger instances,
// exhaustive optimality cross-checks against brute force on small S_n,
// and cross-module consistency.
#include <gtest/gtest.h>

#include "baselines/tseng.hpp"
#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "graph/graph.hpp"
#include "sim/ring_sim.hpp"

namespace starring {
namespace {

TEST(Integration, S8MaxFaultsEndToEnd) {
  const StarGraph g(8);
  const FaultSet f = random_vertex_faults(g, 5, 2024);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  const auto rep = verify_healthy_ring(g, f, res->ring);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_EQ(rep.length, factorial(8) - 10);
}

TEST(Integration, S9SpotCheck) {
  const StarGraph g(9);
  const FaultSet f = random_vertex_faults(g, 6, 7);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  const auto rep = verify_healthy_ring(g, f, res->ring);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_EQ(rep.length, factorial(9) - 12);
}

TEST(Integration, ExhaustiveOptimalityS4) {
  // Brute-force cross-check of worst-case optimality on S_4: for every
  // single fault the longest cycle really is 4! - 2 = 22, i.e. the
  // construction is not leaving length on the table.
  const StarGraph sg(4);
  const SubstarPattern whole = sg.whole_pattern();
  const SmallGraph block = whole.block_graph();
  for (int fault = 0; fault < 24; ++fault) {
    const auto best = longest_cycle(block, 1u << fault);
    EXPECT_EQ(best.length, 22) << "fault " << fault;
    FaultSet f;
    f.add_vertex(whole.member(static_cast<std::uint64_t>(fault)));
    const auto ours = embed_longest_ring(sg, f);
    ASSERT_TRUE(ours.has_value());
    EXPECT_EQ(static_cast<int>(ours->ring.size()), best.length);
  }
}

TEST(Integration, ExhaustiveTwoFaultS4Optima) {
  // |Fv| = 2 > n-3 = 1: outside the guarantee regime.  Exhaustive brute
  // force (all 276 pairs) shows the optimum equals the bipartite
  // ceiling everywhere: 20 for same-parity pairs, 22 for opposite —
  // i.e. on S_4 even two faults never drop the optimum below
  // n! - 2*max(even,odd) (a fact the sampled probe in bench_optimality
  // also reports).
  const StarGraph sg(4);
  const SubstarPattern whole = sg.whole_pattern();
  const SmallGraph block = whole.block_graph();
  for (int a = 0; a < 24; ++a) {
    const int pa = whole.member(static_cast<std::uint64_t>(a)).parity();
    for (int b = a + 1; b < 24; ++b) {
      const int pb = whole.member(static_cast<std::uint64_t>(b)).parity();
      const auto best = longest_cycle(block, (1u << a) | (1u << b));
      EXPECT_EQ(best.length, pa == pb ? 20 : 22) << a << "," << b;
    }
  }
}

TEST(Integration, SamePartiteCeilingMatchedOnS5) {
  // Same-parity faults: brute-force-free optimality argument — the
  // bipartite ceiling equals our achieved length, so we are optimal.
  const StarGraph g(5);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const FaultSet f = same_partite_vertex_faults(g, 2, 0, seed);
    const auto res = embed_longest_ring(g, f);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->ring.size(), bipartite_upper_bound(g, f));
  }
}

TEST(Integration, EmbeddedRingDrivesSimulator) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 99);
  const auto ours = embed_longest_ring(g, f);
  const auto base = tseng_vertex_fault_ring(g, f);
  ASSERT_TRUE(ours && base);
  RingNetworkSim sim_ours(ours->ring, SimParams{});
  RingNetworkSim sim_base(base->ring, SimParams{});
  const auto mo = sim_ours.run_neighbor_exchange(8);
  const auto mb = sim_base.run_neighbor_exchange(8);
  // More healthy processors participate on our longer ring.
  EXPECT_GT(mo.participants, mb.participants);
}

TEST(Integration, ManySeedsNeverProduceInvalidRing) {
  // Fuzz-style sweep: across seeds and fault shapes nothing invalid
  // ever escapes (the verifier is the oracle).
  const StarGraph g(7);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    FaultSet f;
    switch (seed % 4) {
      case 0: f = random_vertex_faults(g, 4, seed); break;
      case 1: f = same_partite_vertex_faults(g, 4, 1, seed); break;
      case 2: f = clustered_neighbor_faults(g, 4, seed); break;
      default: f = substar_clustered_faults(g, 4, seed); break;
    }
    const auto res = embed_longest_ring(g, f);
    ASSERT_TRUE(res.has_value()) << seed;
    const auto rep = verify_healthy_ring(g, f, res->ring);
    ASSERT_TRUE(rep.valid) << "seed " << seed << ": " << rep.error;
    ASSERT_EQ(rep.length, factorial(7) - 8) << seed;
  }
}

TEST(Integration, MaterializedGraphAgreesWithEmbeddedRing) {
  // The ring is a subgraph of the materialized S_n (cross-checks Perm
  // adjacency against the explicit adjacency lists).
  const StarGraph sg(5);
  const Graph g = sg.materialize();
  const FaultSet f = random_vertex_faults(sg, 2, 4);
  const auto res = embed_longest_ring(sg, f);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(is_valid_cycle(g, res->ring));
}

}  // namespace
}  // namespace starring
