// Experiment E3 — worst-case optimality.
//
// Two halves:
//  (a) exhaustive: on S_4 (every fault) and S_5 (sampled fault pairs),
//      brute-force the longest fault-free cycle and confirm the
//      construction matches it — the bound n!-2|Fv| is tight, not just
//      achieved;
//  (b) analytic ceiling: for same-partite fault sets on larger n, the
//      bipartite bound n!-2|Fv| upper-bounds any ring, and our
//      construction meets it, so no algorithm can do better.
#include <cstdio>
#include <cstdlib>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "graph/graph.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

namespace {

bool exhaustive_s4() {
  std::printf("E3a: exhaustive S_4, single faults (24 instances)\n");
  const StarGraph sg(4);
  const SubstarPattern whole = sg.whole_pattern();
  const SmallGraph block = whole.block_graph();
  bool ok = true;
  int matches = 0;
  for (int fault = 0; fault < 24; ++fault) {
    const auto brute = longest_cycle(block, 1u << fault);
    FaultSet f;
    f.add_vertex(whole.member(static_cast<std::uint64_t>(fault)));
    const auto ours = embed_longest_ring(sg, f, bench_embed_options());
    const bool match =
        ours && static_cast<int>(ours->ring.size()) == brute.length &&
        brute.length == 22;
    if (match) ++matches;
    ok &= match;
  }
  std::printf("  brute-force optimum 22 = 4!-2 matched: %d/24\n", matches);
  return ok;
}

bool exhaustive_s5_pairs(int samples) {
  std::printf("E3b: exhaustive S_5, same-parity fault pairs (%d sampled)\n",
              samples);
  const StarGraph sg(5);
  const Graph g = sg.materialize();
  bool ok = true;
  int matched = 0;
  int tried = 0;
  for (int s = 0; s < samples; ++s) {
    const FaultSet f =
        same_partite_vertex_faults(sg, 2, 0, static_cast<std::uint64_t>(s));
    const auto ours = embed_longest_ring(sg, f, bench_embed_options());
    if (!ours || !verify_healthy_ring(sg, f, ours->ring).valid) {
      ok = false;
      continue;
    }
    ++tried;
    // Brute force on 120 vertices: too big for the bitmask engine, but
    // the bipartite ceiling is exact for same-parity faults: any ring
    // alternates parities, and 2 even vertices are gone, so <= 116.
    const std::uint64_t ceiling = bipartite_upper_bound(sg, f);
    if (ours->ring.size() == ceiling && ceiling == 116) ++matched;
  }
  std::printf("  ceiling 116 = 5!-4 met: %d/%d\n", matched, tried);
  return ok && matched == tried;
}

bool ceiling_large(int max_n, int trials) {
  std::printf("E3c: same-parity adversary meets the bipartite ceiling\n");
  std::printf("  %3s %4s %10s %10s %8s\n", "n", "|Fv|", "achieved",
              "ceiling", "status");
  bool ok = true;
  for (int n = 6; n <= max_n; ++n) {
    const StarGraph g(n);
    const int nf = n - 3;
    std::uint64_t achieved = 0;
    std::uint64_t ceiling = 0;
    bool all = true;
    for (int t = 0; t < trials; ++t) {
      const FaultSet f =
          same_partite_vertex_faults(g, nf, 0, static_cast<std::uint64_t>(t));
      const auto res = embed_longest_ring(g, f, bench_embed_options());
      if (!res || !verify_healthy_ring(g, f, res->ring).valid) {
        all = false;
        continue;
      }
      achieved = res->ring.size();
      ceiling = bipartite_upper_bound(g, f);
      all &= achieved == ceiling;
    }
    std::printf("  %3d %4d %10llu %10llu %8s\n", n, nf,
                static_cast<unsigned long long>(achieved),
                static_cast<unsigned long long>(ceiling),
                all ? "optimal" : "MISS");
    ok &= all;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("optimality");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;
  bool ok = exhaustive_s4();
  ok &= exhaustive_s5_pairs(10);
  ok &= ceiling_large(max_n, trials);
  std::printf("\n%s\n", ok ? "RESULT: construction is worst-case optimal on "
                             "every tested instance"
                           : "RESULT: optimality check FAILED somewhere");
  return ok ? 0 : 1;
}
