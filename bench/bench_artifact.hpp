// Shared main() for the google-benchmark based benches: identical to
// BENCHMARK_MAIN() plus a BenchRecorder, so the binary also emits a
// BENCH_<name>.json artifact (schema in obs/bench_io.hpp).  The
// recorder enables the obs metrics layer, so pipeline counters (oracle
// cache hits, backtracks, phase times) land in the artifact.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_options.hpp"
#include "obs/bench_io.hpp"

#define STARRING_BENCH_JSON_MAIN(name)                                  \
  int main(int argc, char** argv) {                                     \
    starring::obs::BenchRecorder starring_bench_recorder(name);         \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
