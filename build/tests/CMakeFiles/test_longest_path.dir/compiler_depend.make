# Empty compiler generated dependencies file for test_longest_path.
# This may be replaced when dependencies are built.
