# Empty dependencies file for bench_longest_path.
# This may be replaced when dependencies are built.
