# Empty dependencies file for bench_star_vs_cube.
# This may be replaced when dependencies are built.
