// Equivalence sweep for the batched SIMD permutation kernels
// (perm/simd.hpp): every tier's table must be bit-identical to the
// scalar Perm reference on every input.  Exhaustive over all n! packed
// permutations for n <= 8, randomized up to n = 16 (where ranks no
// longer fit an exhaustive pass), for all five primitives and every
// dispatch tier — requesting an unsupported tier returns the scalar
// table, so the loop over tiers is portable and the vector tiers are
// exercised exactly on the hardware that has them.  The CI build
// matrix additionally runs this binary with STARRING_SIMD=off and in a
// -DSTARRING_SIMD=OFF build, which pins the dispatcher to scalar.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "perm/permutation.hpp"
#include "perm/simd.hpp"

namespace starring {
namespace {

const std::vector<simd::Tier> kAllTiers = {
    simd::Tier::kScalar, simd::Tier::kAVX2, simd::Tier::kNEON};

/// All n! packed permutations of {0..n-1}, in rank order.
std::vector<std::uint64_t> all_packed(int n) {
  const std::uint64_t total = factorial(n);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(total));
  for (std::uint64_t r = 0; r < total; ++r)
    out[static_cast<std::size_t>(r)] = Perm::unrank(r, n).bits();
  return out;
}

/// `count` random valid packed permutations of {0..n-1}.
std::vector<std::uint64_t> random_packed(int n, std::size_t count,
                                         std::mt19937_64* rng) {
  std::vector<std::uint64_t> out(count);
  for (std::uint64_t& p : out)
    p = Perm::unrank((*rng)() % factorial(n), n).bits();
  return out;
}

/// Check all five primitives of `k` against the Perm reference on one
/// batch of packed inputs.  `g` is the relabeling used for the relabel
/// kernel.
void check_batch(const simd::Kernels& k, const char* tier,
                 const std::vector<std::uint64_t>& packed, int n,
                 const Perm& g) {
  const std::size_t count = packed.size();
  std::vector<VertexId> ranks(count);
  k.rank(packed.data(), count, n, ranks.data());
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_EQ(ranks[i], Perm::from_packed(packed[i], n).rank())
        << tier << " rank, n=" << n << " i=" << i;

  std::vector<std::uint64_t> unranked(count);
  k.unrank(ranks.data(), count, n, unranked.data());
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_EQ(unranked[i], packed[i])
        << tier << " unrank, n=" << n << " i=" << i;

  std::vector<std::uint8_t> par(count);
  k.parity(packed.data(), count, n, par.data());
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_EQ(static_cast<int>(par[i]),
              Perm::from_packed(packed[i], n).parity())
        << tier << " parity, n=" << n << " i=" << i;

  std::vector<std::uint64_t> relab(count);
  k.relabel(g.bits(), packed.data(), count, n, relab.data());
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_EQ(relab[i], relabel(g, Perm::from_packed(packed[i], n)).bits())
        << tier << " relabel, n=" << n << " i=" << i;

  std::vector<std::uint64_t> inv(count);
  k.inverse(packed.data(), count, n, inv.data());
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_EQ(inv[i], inverse_of(Perm::from_packed(packed[i], n)).bits())
        << tier << " inverse, n=" << n << " i=" << i;
}

TEST(Simd, ExhaustiveSmallN) {
  std::mt19937_64 rng(7);
  for (int n = 2; n <= 8; ++n) {
    const auto packed = all_packed(n);
    const Perm g = Perm::unrank(rng() % factorial(n), n);
    for (const simd::Tier t : kAllTiers) {
      check_batch(simd::kernels(t), simd::tier_name(t), packed, n, g);
      // A second relabeling per tier: the kernel bakes g into its
      // lookup state, so one g would not catch g-dependent bugs.
      check_batch(simd::kernels(t), simd::tier_name(t), packed, n,
                  Perm::unrank(rng() % factorial(n), n));
    }
  }
}

TEST(Simd, RandomizedLargeN) {
  std::mt19937_64 rng(1234);
  for (int n = 9; n <= kMaxN; ++n) {
    const auto packed = random_packed(n, 2000, &rng);
    const Perm g = Perm::unrank(rng() % factorial(n), n);
    for (const simd::Tier t : kAllTiers)
      check_batch(simd::kernels(t), simd::tier_name(t), packed, n, g);
  }
}

TEST(Simd, OddCountsAndTails) {
  // Vector kernels process lanes in groups; counts around the group
  // width exercise every tail-handling branch.
  std::mt19937_64 rng(99);
  const int n = 10;
  const Perm g = Perm::unrank(rng() % factorial(n), n);
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{7},
                                  std::size_t{8}, std::size_t{9},
                                  std::size_t{31}, std::size_t{33}}) {
    const auto packed = random_packed(n, count, &rng);
    for (const simd::Tier t : kAllTiers)
      check_batch(simd::kernels(t), simd::tier_name(t), packed, n, g);
  }
}

TEST(Simd, DispatchRespectsEnvOverride) {
  // The dispatcher resolves once per process, honoring STARRING_SIMD.
  // When the harness (CI's SIMD-off leg) sets it to off/scalar, the
  // active tier must be scalar; a -DSTARRING_SIMD=OFF build is pinned
  // there unconditionally.
  const char* env = std::getenv("STARRING_SIMD");
  const std::string v = env == nullptr ? "" : env;
  if (v == "off" || v == "scalar") {
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
#ifdef STARRING_SIMD_DISABLED
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
#endif
  // Whatever was resolved, the active table must be one of the named
  // tiers and behave like the scalar reference (spot check).
  std::mt19937_64 rng(5);
  const auto packed = random_packed(9, 256, &rng);
  check_batch(simd::active(), simd::tier_name(simd::active_tier()), packed,
              9, Perm::unrank(rng() % factorial(9), 9));
}

TEST(Simd, UnsupportedTierFallsBackToScalar) {
  // kernels(t) for a tier the CPU lacks returns the scalar table; the
  // function pointer identity makes that checkable directly.
  const simd::Kernels& scalar = simd::kernels(simd::Tier::kScalar);
#if !defined(__x86_64__) && !defined(_M_X64)
  EXPECT_EQ(simd::kernels(simd::Tier::kAVX2).rank, scalar.rank);
#endif
#if !defined(__aarch64__)
  EXPECT_EQ(simd::kernels(simd::Tier::kNEON).rank, scalar.rank);
#endif
  EXPECT_NE(scalar.rank, nullptr);
}

}  // namespace
}  // namespace starring
