#include "sim/self_healing.hpp"

#include <chrono>

#include "core/verify.hpp"
#include "obs/metrics.hpp"

namespace starring {

HealingTrace run_self_healing(const StarGraph& g,
                              const std::vector<Perm>& fault_sequence,
                              const SimParams& params,
                              const EmbedStrategy& strategy) {
  using clock = std::chrono::steady_clock;
  obs::ScopedPhase phase("self_healing");
  HealingTrace trace;
  FaultSet faults;
  for (int step = 0; step <= static_cast<int>(fault_sequence.size()); ++step) {
    if (step > 0)
      faults.add_vertex(fault_sequence[static_cast<std::size_t>(step - 1)]);

    const auto t0 = clock::now();
    const auto res = strategy(g, faults);
    const auto t1 = clock::now();

    HealingEvent ev;
    ev.faults_so_far = step;
    ev.reembed_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    obs::counter("healing.reembeds").add();
    if (!res || !verify_healthy_ring(g, faults, res->ring).valid) {
      obs::counter("healing.incomplete_traces").add();
      trace.completed = false;
      trace.events.push_back(ev);
      return trace;
    }
    ev.ring_length = res->ring.size();
    ev.stranded = g.num_vertices() - faults.num_vertex_faults() -
                  res->ring.size();
    RingNetworkSim sim(res->ring, params);
    ev.allreduce_us = sim.run_allreduce().completion_time_us;
    trace.events.push_back(ev);
  }
  return trace;
}

}  // namespace starring
