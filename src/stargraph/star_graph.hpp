// The n-dimensional star graph S_n (Akers, Harel & Krishnamurthy 1986).
//
// Vertices are the n! permutations of {1..n} (0-based internally); u ~ v
// iff v arises from u by swapping position 0 with some position i >= 1.
// S_n is (n-1)-regular, vertex- and edge-transitive, and bipartite with
// the even and odd permutations as the two (equal-size) partite sets.
//
// This class is a thin façade: the symbolic structure lives in Perm and
// SubstarPattern; here we provide id-based access, explicit
// materialization (for verification and exhaustive experiments), and a
// few whole-graph facts used across the library.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "perm/permutation.hpp"
#include "stargraph/substar.hpp"

namespace starring {

class StarGraph {
 public:
  explicit StarGraph(int n);

  int n() const { return n_; }

  /// |V| = n!.
  std::uint64_t num_vertices() const { return factorial(n_); }

  /// |E| = n! * (n-1) / 2.
  std::uint64_t num_edges() const {
    return num_vertices() * static_cast<std::uint64_t>(n_ - 1) / 2;
  }

  /// Degree of every vertex.
  int degree() const { return n_ - 1; }

  Perm vertex(VertexId id) const { return Perm::unrank(id, n_); }
  VertexId id_of(const Perm& p) const { return p.rank(); }

  /// Neighbour ids of `id`, in dimension order (n-1 of them).
  std::vector<VertexId> neighbor_ids(VertexId id) const;

  bool adjacent_ids(VertexId a, VertexId b) const {
    return vertex(a).adjacent(vertex(b));
  }

  /// Explicit adjacency-list materialization.  Memory ~ n! * (n-1)
  /// ids; intended for n <= 9 (verification) and n <= 7 (exhaustive
  /// experiments).
  Graph materialize() const;

  /// The whole-graph pattern <* * ... *>_n.
  SubstarPattern whole_pattern() const { return SubstarPattern::whole(n_); }

 private:
  int n_;
};

/// Checks that `ring` (vertex ids) is a valid simple cycle of S_n without
/// materializing the graph: pairwise-distinct ids, consecutive adjacency
/// via the packed permutation test.  The workhorse of the independent
/// embedding verifier (see core/verify.hpp for the fault-aware version).
bool is_star_ring(const StarGraph& g, const std::vector<VertexId>& ring);

}  // namespace starring
