// Open-loop load-generation building blocks for starring-load.
//
// Closed-loop drivers (starring-cli drive) measure a system that is
// never overloaded by construction: a slow response throttles the
// client.  The QoS work needs the opposite — an *open-loop* generator
// whose arrival process does not care whether the daemon keeps up, so
// queueing delay, throttling, and fairness become visible.  This
// library holds the deterministic pieces (all pure over explicit
// seeds, so a run is reproducible and unit-testable without sockets):
//
//   ZipfSampler    skewed popularity over a tenant's fault classes —
//                  class 0 is the hottest, tail classes are cold.
//   ArrivalClock   arrival schedule: Poisson (exponential
//                  inter-arrival at `rate`) or bursty on/off (Poisson
//                  at `rate` inside on-windows of on_ms, silent for
//                  off_ms between them; overshoot carries across the
//                  gap, so the long-run rate is rate * on/(on+off)).
//   TenantSpec     one tenant's workload, parsed from the CLI grammar
//                  name[:key=value]... (see parse_tenant_spec).
//   synth_request  deterministic request synthesis: the same (seed,
//                  class) always yields the same faults, so popular
//                  classes become canonical-cache hits while a `scan`
//                  pattern (fresh class per request) never repeats.
//   parse_scalar   read one scalar sample out of Prometheus text
//                  exposition (counters; histograms have their own
//                  parser in obs/prometheus.hpp).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.hpp"

namespace starring::loadgen {

/// Zipf(s) over classes {0..k-1}: P(i) proportional to 1/(i+1)^s.
/// Inverse-CDF sampling so one uniform draw picks a class in O(log k).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t classes, double exponent);

  /// Map u in [0,1) to a class index (monotone: small u, hot class).
  std::size_t sample(double u01) const;
  std::size_t classes() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1
};

enum class Arrival { kPoisson, kBursty };
enum class Pattern { kZipf, kScan };

/// One tenant's workload description.  Spec grammar (one CLI token):
///
///   name[:key=value]...
///
///   rate=R            mean arrival rate, requests/second (> 0)
///   arrival=poisson|burst
///   on_ms=N off_ms=N  bursty on/off window lengths
///   zipf=S            popularity exponent over the classes
///   classes=K         distinct fault classes (the cacheable universe)
///   pattern=zipf|scan zipf: skewed repeats (cache-friendly);
///                     scan: every request a fresh class (one-pass
///                     scan, the cache-adversarial workload)
///   nmin=N nmax=N     dimension range
///   deadline_ms=N     per-request completion budget (0 = none)
///   verify=0|1        set the request verify flag
///
/// e.g.  hot:rate=200:zipf=1.2:classes=64
///       cold:rate=20:arrival=burst:on_ms=50:off_ms=450:pattern=scan
struct TenantSpec {
  std::string name;
  double rate = 50.0;
  Arrival arrival = Arrival::kPoisson;
  double on_ms = 100.0;
  double off_ms = 400.0;
  double zipf = 1.1;
  std::size_t classes = 32;
  Pattern pattern = Pattern::kZipf;
  int nmin = 5;
  int nmax = 7;
  std::int64_t deadline_ms = 0;
  bool verify = false;
};

/// Parse the grammar above; nullopt (reason in *error) on a malformed
/// spec — unknown key, bad value, name too long for the wire, ...
std::optional<TenantSpec> parse_tenant_spec(const std::string& text,
                                            std::string* error = nullptr);

/// Deterministic arrival schedule for one tenant.  next() returns the
/// absolute offset (from the run start) of the next arrival; offsets
/// are strictly increasing.  Open loop: the schedule never depends on
/// response times.
class ArrivalClock {
 public:
  ArrivalClock(const TenantSpec& spec, std::uint64_t seed);

  std::chrono::nanoseconds next();

 private:
  std::mt19937_64 rng_;
  double rate_;      // arrivals/second inside an active window
  bool bursty_;
  double on_s_ = 0;  // window lengths, seconds (bursty only)
  double off_s_ = 0;
  double t_ = 0;           // seconds since run start
  double window_end_ = 0;  // end of the current on-window
};

/// The request for (tenant spec, class, wire id).  Pure: one class is
/// one (n, fault set) pair for the life of the run, chosen inside the
/// paper's guarantee regime (vertex faults <= n - 3).
ServiceRequest synth_request(const TenantSpec& spec, std::uint64_t seed,
                             std::size_t cls, std::uint64_t id);

/// Value of scalar sample `metric` (exact name, no labels) in a
/// Prometheus text-exposition document; nullopt when absent.
std::optional<double> parse_scalar(std::string_view prom_text,
                                   std::string_view metric);

}  // namespace starring::loadgen
