#include "graph/graph.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

namespace starring {

void Graph::add_edge(std::uint64_t u, std::uint64_t v) {
  assert(u < adj_.size() && v < adj_.size() && u != v);
  auto& au = adj_[u];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return;
  au.insert(it, v);
  auto& av = adj_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++num_edges_;
}

bool Graph::has_edge(std::uint64_t u, std::uint64_t v) const {
  assert(u < adj_.size() && v < adj_.size());
  const auto& au = adj_[u];
  return std::binary_search(au.begin(), au.end(), v);
}

namespace {
bool all_distinct(std::span<const std::uint64_t> seq, std::size_t universe) {
  std::vector<std::uint8_t> seen(universe, 0);
  for (auto v : seq) {
    if (v >= universe || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}
}  // namespace

bool is_valid_cycle(const Graph& g, std::span<const std::uint64_t> cycle) {
  if (cycle.size() < 3) return false;
  if (!all_distinct(cycle, g.num_vertices())) return false;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto u = cycle[i];
    const auto v = cycle[(i + 1) % cycle.size()];
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

bool is_valid_path(const Graph& g, std::span<const std::uint64_t> path) {
  if (path.empty()) return false;
  if (!all_distinct(path, g.num_vertices())) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!g.has_edge(path[i], path[i + 1])) return false;
  return true;
}

BipartiteResult check_bipartite(const Graph& g) {
  BipartiteResult res;
  res.color.assign(g.num_vertices(), 2);  // 2 = uncoloured
  for (std::uint64_t s = 0; s < g.num_vertices(); ++s) {
    if (res.color[s] != 2) continue;
    res.color[s] = 0;
    std::queue<std::uint64_t> q;
    q.push(s);
    while (!q.empty()) {
      const auto u = q.front();
      q.pop();
      for (auto v : g.neighbors(u)) {
        if (res.color[v] == 2) {
          res.color[v] = static_cast<std::uint8_t>(1 - res.color[u]);
          q.push(v);
        } else if (res.color[v] == res.color[u]) {
          res.is_bipartite = false;
          return res;
        }
      }
    }
  }
  res.is_bipartite = true;
  return res;
}

std::size_t reachable_count(const Graph& g, std::uint64_t start,
                            std::span<const std::uint8_t> blocked) {
  assert(start < g.num_vertices() && !blocked[start]);
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  std::vector<std::uint64_t> stack{start};
  seen[start] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    ++count;
    for (auto v : g.neighbors(u)) {
      if (!seen[v] && !blocked[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return count;
}

// ---------------------------------------------------------------------
// Exhaustive small-graph search.
// ---------------------------------------------------------------------

namespace {

/// Shared DFS machinery for longest-path-style searches over <= 64
/// vertices.  `visited` is the bitmask of vertices on the current path.
struct PathSearch {
  const SmallGraph& g;
  int to;
  std::uint64_t allowed;          // vertices that may ever be used
  int target = -1;                // stop early when a path of this many
                                  // vertices is found; -1 = find maximum
  std::vector<int> current;
  std::vector<int> best;

  explicit PathSearch(const SmallGraph& g_, int to_, std::uint64_t allowed_)
      : g(g_), to(to_), allowed(allowed_) {}

  /// Upper bound on how many more vertices any extension can add:
  /// vertices still reachable from `u` through unvisited allowed
  /// vertices.  Also prunes branches from which `to` is unreachable.
  int reach_bound(int u, std::uint64_t visited, bool* to_reachable) const {
    std::uint64_t frontier = 1ULL << u;
    std::uint64_t seen = frontier;
    const std::uint64_t open = allowed & ~visited;
    while (frontier) {
      std::uint64_t next = 0;
      std::uint64_t f = frontier;
      while (f) {
        const int v = std::countr_zero(f);
        f &= f - 1;
        next |= g.neighbor_mask(v) & open & ~seen;
      }
      seen |= next;
      frontier = next;
    }
    *to_reachable = (seen >> to) & 1ULL;
    return std::popcount(seen);  // includes u itself
  }

  /// Returns true when the search can stop (early-exit target met).
  bool dfs(int u, std::uint64_t visited) {
    current.push_back(u);
    if (u == to) {
      if (current.size() > best.size()) best = current;
      if (target >= 0 && static_cast<int>(best.size()) >= target) {
        current.pop_back();
        return true;
      }
      current.pop_back();
      return false;
    }
    bool to_ok = false;
    const int bound = reach_bound(u, visited & ~(1ULL << u), &to_ok);
    // -1: u is counted in both current and bound.
    const int potential = static_cast<int>(current.size()) + bound - 1;
    const int goal = target >= 0 ? target : static_cast<int>(best.size()) + 1;
    if (!to_ok || potential < goal) {
      current.pop_back();
      return false;
    }
    std::uint64_t cand = g.neighbor_mask(u) & allowed & ~visited;
    while (cand) {
      const int v = std::countr_zero(cand);
      cand &= cand - 1;
      if (dfs(v, visited | (1ULL << v))) {
        current.pop_back();
        return true;
      }
    }
    current.pop_back();
    return false;
  }
};

}  // namespace

std::optional<std::vector<int>> longest_path(const SmallGraph& g, int from,
                                             int to, std::uint64_t forbidden) {
  assert(from >= 0 && from < g.size() && to >= 0 && to < g.size());
  const std::uint64_t allowed =
      (g.size() == 64 ? ~0ULL : ((1ULL << g.size()) - 1)) & ~forbidden;
  if (!((allowed >> from) & 1) || !((allowed >> to) & 1)) return std::nullopt;
  if (from == to) return std::vector<int>{from};
  PathSearch s(g, to, allowed);
  s.dfs(from, 1ULL << from);
  if (s.best.empty()) return std::nullopt;
  return s.best;
}

std::optional<std::vector<int>> path_with_exact_vertices(
    const SmallGraph& g, int from, int to, std::uint64_t forbidden,
    int target_vertices) {
  assert(from >= 0 && from < g.size() && to >= 0 && to < g.size());
  const std::uint64_t allowed =
      (g.size() == 64 ? ~0ULL : ((1ULL << g.size()) - 1)) & ~forbidden;
  if (!((allowed >> from) & 1) || !((allowed >> to) & 1)) return std::nullopt;
  if (from == to) {
    if (target_vertices != 1) return std::nullopt;
    return std::vector<int>{from};
  }
  PathSearch s(g, to, allowed);
  s.target = target_vertices;
  s.dfs(from, 1ULL << from);
  if (static_cast<int>(s.best.size()) == target_vertices) return s.best;
  return std::nullopt;
}

LongestCycleResult longest_cycle(const SmallGraph& g, std::uint64_t forbidden) {
  LongestCycleResult res;
  const std::uint64_t allowed =
      (g.size() == 64 ? ~0ULL : ((1ULL << g.size()) - 1)) & ~forbidden;
  // A longest cycle through the lowest remaining vertex v is a longest
  // v-w path plus edge (w, v) for some neighbour w; enumerate anchor
  // vertices in increasing order and forbid smaller anchors to avoid
  // re-finding the same cycle.
  std::uint64_t banned = forbidden;
  std::uint64_t rest = allowed;
  while (rest) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    std::uint64_t nbrs = g.neighbor_mask(v) & allowed & ~banned;
    while (nbrs) {
      const int w = std::countr_zero(nbrs);
      nbrs &= nbrs - 1;
      if (w <= v) continue;
      auto p = longest_path(g, v, w, banned & ~(1ULL << v));
      if (p && static_cast<int>(p->size()) >= 3 &&
          static_cast<int>(p->size()) > res.length) {
        res.length = static_cast<int>(p->size());
        res.cycle = std::move(*p);
      }
    }
    banned |= 1ULL << v;
  }
  return res;
}

std::optional<std::vector<int>> hamiltonian_cycle(const SmallGraph& g,
                                                  std::uint64_t forbidden) {
  const std::uint64_t allowed =
      (g.size() == 64 ? ~0ULL : ((1ULL << g.size()) - 1)) & ~forbidden;
  const int want = std::popcount(allowed);
  if (want < 3) return std::nullopt;
  const int v = std::countr_zero(allowed);
  std::uint64_t nbrs = g.neighbor_mask(v) & allowed;
  while (nbrs) {
    const int w = std::countr_zero(nbrs);
    nbrs &= nbrs - 1;
    auto p = path_with_exact_vertices(g, v, w, forbidden, want);
    if (p) return p;
  }
  return std::nullopt;
}

std::optional<std::vector<int>> cycle_with_exact_vertices(
    const SmallGraph& g, std::uint64_t forbidden, int target_vertices) {
  if (target_vertices < 3) return std::nullopt;
  const std::uint64_t allowed =
      (g.size() == 64 ? ~0ULL : ((1ULL << g.size()) - 1)) & ~forbidden;
  // A target-length cycle through anchor v is a target-length v-w path
  // plus the edge (w, v); anchors are tried in increasing order, each
  // banning the smaller ones so work is not repeated.
  std::uint64_t banned = forbidden;
  std::uint64_t rest = allowed;
  while (rest) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    std::uint64_t nbrs = g.neighbor_mask(v) & allowed & ~banned;
    while (nbrs) {
      const int w = std::countr_zero(nbrs);
      nbrs &= nbrs - 1;
      if (w <= v) continue;
      auto p = path_with_exact_vertices(g, v, w, banned & ~(1ULL << v),
                                        target_vertices);
      if (p) return p;
    }
    banned |= 1ULL << v;
  }
  return std::nullopt;
}

}  // namespace starring
