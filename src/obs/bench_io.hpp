// BENCH_*.json artifact support.
//
// Every bench binary records one machine-readable artifact so the
// performance trajectory of the repo is a set of files a script can
// diff, not a pile of stdout tables.  Schema (all keys always present):
//
//   {
//     "bench":    "<name>",              // e.g. "theorem1"
//     "n":        <int>,                 // largest star-graph dimension run
//     "faults":   <int>,                 // largest fault count run
//     "wall_ms":  <double>,             // whole-process bench wall time
//     "counters": { "<name>": <number>, ... },  // obs counter values
//     "git_rev":  "<short-rev|unknown>"
//   }
//
// Extra keys may appear in future versions; readers must ignore them.
// The file is written to $STARRING_BENCH_DIR (default: the working
// directory) as BENCH_<name>.json.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starring::obs {

/// Short git revision baked in at configure time ("unknown" outside a
/// git checkout).
std::string git_rev();

struct BenchArtifact {
  std::string bench;
  std::int64_t n = 0;
  std::int64_t faults = 0;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::string git_rev;
};

/// Serialize to the schema above.
std::string bench_artifact_json(const BenchArtifact& a);

/// Check that `json` parses and satisfies the schema (key presence and
/// types).  The test suite runs this over freshly written artifacts.
bool validate_bench_artifact_json(std::string_view json,
                                  std::string* error = nullptr);

/// Write dir/BENCH_<bench>.json; returns false on I/O failure.
bool write_bench_artifact(const BenchArtifact& a, const std::string& dir,
                          std::string* path_out = nullptr);

/// RAII artifact recorder for bench mains.  Construction enables the
/// metrics layer; destruction merges the obs counter snapshot, the
/// whole-process wall time, and the recorded n / fault extents into a
/// BenchArtifact and writes it.  The pipeline publishes
/// "embed.max_n" / "embed.max_faults" gauges itself, so benches that
/// drive the embedder need no explicit note_* calls.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string bench);
  ~BenchRecorder();
  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  /// Record the largest dimension / fault count this bench exercises
  /// (kept as a running max).
  void note_n(std::int64_t n);
  void note_faults(std::int64_t faults);

  /// Attach an extra scalar to the artifact's counters map.
  void add_counter(const std::string& name, double value);

  /// Where the artifact will land.
  const std::string& path() const { return path_; }

 private:
  std::string bench_;
  std::string dir_;
  std::string path_;
  std::int64_t n_ = 0;
  std::int64_t faults_ = 0;
  std::vector<std::pair<std::string, double>> extra_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace starring::obs
