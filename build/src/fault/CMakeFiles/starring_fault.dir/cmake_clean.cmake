file(REMOVE_RECURSE
  "CMakeFiles/starring_fault.dir/generators.cpp.o"
  "CMakeFiles/starring_fault.dir/generators.cpp.o.d"
  "libstarring_fault.a"
  "libstarring_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
