# Empty dependencies file for bench_pancyclic.
# This may be replaced when dependencies are built.
