#include "cluster/router.hpp"

#include <algorithm>

#include "util/backoff.hpp"

namespace starring::cluster {

ShardRouter::ShardRouter(ShardMap map, BreakerOptions opts)
    : map_(std::move(map)), opts_(opts) {}

bool ShardRouter::allow_locked(const Breaker& b,
                               Clock::time_point now) const {
  return !b.open || now >= b.retry_at;
}

std::vector<int> ShardRouter::candidates(std::string_view key,
                                         Clock::time_point now) {
  std::vector<int> order = map_.all_candidates(key);
  const std::lock_guard<std::mutex> lock(mu_);
  // Stable partition: preference order inside each group is still the
  // map's nearest-first order, open-breaker shards are last-resort
  // rather than absent.
  std::stable_partition(order.begin(), order.end(), [&](int id) {
    const auto it = breakers_.find(id);
    return it == breakers_.end() || allow_locked(it->second, now);
  });
  return order;
}

bool ShardRouter::allow(int shard_id, Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  return it == breakers_.end() || allow_locked(it->second, now);
}

void ShardRouter::record_failure(int shard_id, Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[shard_id];
  ++b.failures;
  if (b.failures >= opts_.open_threshold) {
    // Cooldown grows with the streak past the threshold: a shard that
    // keeps failing its half-open probes is probed less and less often
    // (up to cap_ms).
    const int round = b.failures - opts_.open_threshold + 1;
    b.open = true;
    b.retry_at = now + std::chrono::milliseconds(retry_backoff_ms(
                           round, opts_.base_ms, opts_.cap_ms));
  }
}

void ShardRouter::record_success(int shard_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  if (it != breakers_.end()) breakers_.erase(it);
}

int ShardRouter::consecutive_failures(int shard_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  return it == breakers_.end() ? 0 : it->second.failures;
}

}  // namespace starring::cluster
