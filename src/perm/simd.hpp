// Batched SIMD kernels over packed permutations.
//
// Every Perm fits one uint64_t (4 bits per slot, n <= 16), so the
// permutation primitives the hot paths lean on — Lehmer rank/unrank,
// parity, relabeling, inversion — are really nibble-parallel integer
// kernels.  This module batches them: one call processes a whole array
// of packed permutations, with AVX2 (x86-64) and NEON (aarch64)
// implementations selected by runtime CPU dispatch and a scalar
// fallback that is bit-identical on every input (the exhaustive
// equivalence sweep in tests/test_simd.cpp holds all tiers to that).
//
// Callers hand in raw packed bits (Perm::bits()) and wrap results back
// with Perm::from_packed when they need the typed view; the kernels
// themselves never materialize a Perm, so the per-lane debug
// re-validation from_packed performs is replaced by one validation
// pass per batch (assert_valid_batch), keeping debug/ASan builds
// usable on million-element batches.
//
// Dispatch: resolved once per process.  The STARRING_SIMD environment
// variable overrides it — "off"/"scalar" forces the scalar tier,
// "avx2"/"neon" requests a tier (granted only when the CPU supports
// it), anything else / unset picks the best supported tier.  Building
// with -DSTARRING_SIMD=OFF compiles the vector tiers out entirely and
// pins the dispatcher to scalar.
#pragma once

#include <cstddef>
#include <cstdint>

#include "perm/permutation.hpp"

namespace starring::simd {

enum class Tier { kScalar = 0, kAVX2 = 1, kNEON = 2 };

/// Human-readable tier name ("scalar", "avx2", "neon").
const char* tier_name(Tier t);

/// The tier the dispatcher resolved for this process (CPU features +
/// STARRING_SIMD override, computed once on first use).
Tier active_tier();

/// Batched kernel entry points for one tier.  All operate on arrays of
/// `count` packed permutations of {0..n-1}; `out` may not alias the
/// input.  Results are bit-identical across tiers.
struct Kernels {
  /// out[i] = Perm::from_packed(packed[i], n).rank()
  void (*rank)(const std::uint64_t* packed, std::size_t count, int n,
               VertexId* out);
  /// out[i] = Perm::unrank(ranks[i], n).bits()
  void (*unrank)(const VertexId* ranks, std::size_t count, int n,
                 std::uint64_t* out);
  /// out[i] = Perm::from_packed(packed[i], n).parity()
  void (*parity)(const std::uint64_t* packed, std::size_t count, int n,
                 std::uint8_t* out);
  /// out[i] = relabel(g, p_i).bits(): nibble j of out[i] is
  /// g[packed[i] nibble j].  `g_bits` is the packed relabeling.
  void (*relabel)(std::uint64_t g_bits, const std::uint64_t* packed,
                  std::size_t count, int n, std::uint64_t* out);
  /// out[i] = inverse_of(p_i).bits(): nibble (packed[i] nibble j) of
  /// out[i] is j.
  void (*inverse)(const std::uint64_t* packed, std::size_t count, int n,
                  std::uint64_t* out);
};

/// Kernel table of a specific tier (tests compare tiers directly).
/// Requesting an unsupported tier returns the scalar table.
const Kernels& kernels(Tier t);

/// Kernel table of the active tier.
const Kernels& active();

#ifndef NDEBUG
/// One debug validation pass over a whole batch of packed
/// permutations: every lane must encode a permutation of {0..n-1} with
/// zero high slots.  Called once per batch by the convenience wrappers
/// below — the batched replacement for Perm::from_packed's per-lane
/// re-validation.
void assert_valid_batch(const std::uint64_t* packed, std::size_t count,
                        int n);
#endif

// Convenience wrappers: dispatch to the active tier, with the
// once-per-batch input validation in debug builds.

inline void batch_rank(const std::uint64_t* packed, std::size_t count, int n,
                       VertexId* out) {
#ifndef NDEBUG
  assert_valid_batch(packed, count, n);
#endif
  active().rank(packed, count, n, out);
}

inline void batch_unrank(const VertexId* ranks, std::size_t count, int n,
                         std::uint64_t* out) {
  active().unrank(ranks, count, n, out);
}

inline void batch_parity(const std::uint64_t* packed, std::size_t count,
                         int n, std::uint8_t* out) {
#ifndef NDEBUG
  assert_valid_batch(packed, count, n);
#endif
  active().parity(packed, count, n, out);
}

inline void batch_relabel(std::uint64_t g_bits, const std::uint64_t* packed,
                          std::size_t count, int n, std::uint64_t* out) {
#ifndef NDEBUG
  assert_valid_batch(&g_bits, 1, n);
  assert_valid_batch(packed, count, n);
#endif
  active().relabel(g_bits, packed, count, n, out);
}

inline void batch_inverse(const std::uint64_t* packed, std::size_t count,
                          int n, std::uint64_t* out) {
#ifndef NDEBUG
  assert_valid_batch(packed, count, n);
#endif
  active().inverse(packed, count, n, out);
}

}  // namespace starring::simd
