// Tests for the longest fault-free path extension: n!-2|Fv| vertices
// between opposite-parity healthy endpoints, one fewer for same-parity.
#include <gtest/gtest.h>

#include <tuple>

#include "core/verify.hpp"
#include "extensions/longest_path.hpp"
#include "fault/generators.hpp"

namespace starring {
namespace {

void expect_longest_path(const StarGraph& g, const FaultSet& f, const Perm& s,
                         const Perm& t, const char* label) {
  const auto res = embed_longest_path(g, f, s, t);
  ASSERT_TRUE(res.has_value()) << label;
  const auto rep = verify_healthy_path(g, f, res->embed.ring);
  ASSERT_TRUE(rep.valid) << label << ": " << rep.error;
  EXPECT_EQ(rep.length, res->promised_vertices) << label;
  EXPECT_EQ(rep.length,
            expected_path_vertices(g.n(), f.num_vertex_faults(), s, t));
  EXPECT_EQ(g.vertex(res->embed.ring.front()), s) << label;
  EXPECT_EQ(g.vertex(res->embed.ring.back()), t) << label;
}

/// A healthy vertex of the requested parity, avoiding `other`.
Perm healthy_vertex(const StarGraph& g, const FaultSet& f, int parity,
                    const Perm* other, std::uint64_t salt) {
  for (VertexId id = salt % 97; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (p.parity() != parity || f.vertex_faulty(p)) continue;
    if (other != nullptr && p == *other) continue;
    return p;
  }
  return Perm::identity(g.n());
}

TEST(LongestPath, FaultFreeHamiltonianPathOppositeParity) {
  for (int n = 4; n <= 6; ++n) {
    const StarGraph g(n);
    const Perm s = Perm::identity(n);
    const Perm t = s.star_move(1);  // adjacent: opposite parity
    expect_longest_path(g, FaultSet{}, s, t, "ham path");
  }
}

TEST(LongestPath, FaultFreeSameParityOneShort) {
  for (int n = 4; n <= 6; ++n) {
    const StarGraph g(n);
    const Perm s = Perm::identity(n);
    const Perm t = s.star_move(1).star_move(2);  // two moves: same parity
    ASSERT_EQ(s.parity(), t.parity());
    expect_longest_path(g, FaultSet{}, s, t, "same parity");
  }
}

class LongestPathParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LongestPathParamTest, RandomFaultsBothParityCases) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const FaultSet f = random_vertex_faults(g, nf, seed);
    const Perm s = healthy_vertex(g, f, 0, nullptr, seed);
    const Perm t_opp = healthy_vertex(g, f, 1, nullptr, seed * 31 + 7);
    expect_longest_path(g, f, s, t_opp, "opposite parity");
    const Perm t_same = healthy_vertex(g, f, 0, &s, seed * 17 + 3);
    expect_longest_path(g, f, s, t_same, "same parity");
  }
}

INSTANTIATE_TEST_SUITE_P(PathSweep, LongestPathParamTest,
                         ::testing::Values(std::make_tuple(5, 1),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(6, 2),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(7, 4)));

TEST(LongestPath, EndpointsMustBeHealthyAndDistinct) {
  const StarGraph g(5);
  FaultSet f;
  const Perm s = Perm::identity(5);
  f.add_vertex(s);
  EXPECT_FALSE(embed_longest_path(g, f, s, s.star_move(1)).has_value());
  EXPECT_FALSE(
      embed_longest_path(g, FaultSet{}, s, s).has_value());
}

TEST(LongestPath, WorksWithMixedFaults) {
  const StarGraph g(6);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const FaultSet f = mixed_faults(g, 1, 2, seed);
    const Perm s = healthy_vertex(g, f, 0, nullptr, seed);
    const Perm t = healthy_vertex(g, f, 1, nullptr, seed + 5);
    const auto res = embed_longest_path(g, f, s, t);
    ASSERT_TRUE(res.has_value()) << seed;
    const auto rep = verify_healthy_path(g, f, res->embed.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, factorial(6) - 2);
  }
}

TEST(LongestPath, AdjacentEndpointsStressS7) {
  // Adjacent endpoints leave the least room to manoeuvre near the ends.
  const StarGraph g(7);
  const FaultSet f = random_vertex_faults(g, 4, 11);
  Perm s = Perm::identity(7);
  while (f.vertex_faulty(s)) s = s.star_move(1).star_move(2);
  Perm t = s.star_move(3);
  ASSERT_FALSE(f.vertex_faulty(t));
  expect_longest_path(g, f, s, t, "adjacent endpoints");
}

TEST(LongestPath, PathBeatsNaiveTwoPhaseRouting) {
  // Sanity: the longest path dwarfs a shortest route (the point of the
  // embedding: visit everything, not just get there).
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 2, 9);
  const Perm s = healthy_vertex(g, f, 0, nullptr, 1);
  const Perm t = healthy_vertex(g, f, 1, nullptr, 2);
  const auto res = embed_longest_path(g, f, s, t);
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(res->embed.ring.size(), 700u);
}

TEST(LongestPath, ExpectedVerticesHelper) {
  const Perm even = Perm::identity(6);
  const Perm odd = even.star_move(1);
  EXPECT_EQ(expected_path_vertices(6, 0, even, odd), 720u);
  EXPECT_EQ(expected_path_vertices(6, 0, even, even.star_move(1).star_move(2)),
            719u);
  EXPECT_EQ(expected_path_vertices(6, 3, even, odd), 714u);
}

}  // namespace
}  // namespace starring
