file(REMOVE_RECURSE
  "CMakeFiles/starring_hypercube.dir/hypercube.cpp.o"
  "CMakeFiles/starring_hypercube.dir/hypercube.cpp.o.d"
  "libstarring_hypercube.a"
  "libstarring_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
