#!/usr/bin/env python3
"""Validate observability exports from starringd / starring-cli.

Two independent checks, selected by flags (both may be given):

  --trace FILE   Chrome trace_event JSON produced by --trace-out.
                 Asserts the document is well-formed, every event is a
                 complete ("X") event with non-negative ts/dur, span ids
                 are unique, parent links resolve within the same trace,
                 and every child interval nests inside its parent (with
                 a small clock tolerance).
  --prom FILE    Prometheus text exposition produced by the STATS
                 command.  Asserts every non-comment line matches the
                 0.0.4 text grammar and every # TYPE has >= 1 sample.

Extra assertions:
  --require-span NAME        (repeatable) span NAME occurs >= 1 time
  --require-histogram NAME   (repeatable) a full histogram family
                             (NAME_bucket le=..., +Inf, _sum, _count)
                             with monotone non-decreasing buckets
  --expect-hit-miss          the trace holds >= 1 svc.request with an
                             svc.embed descendant (miss) and >= 1
                             without (hit)

Exit 0 when every requested check passes; exit 1 with a message per
failure otherwise.  stdlib only.
"""
import argparse
import json
import re
import sys

# One scheduler tick of slack for cross-thread intervals whose endpoints
# were captured on different threads (microseconds).
NEST_TOLERANCE_US = 1e-3


def fail(errors, msg):
    errors.append(msg)


def validate_trace(path, require_spans, expect_hit_miss, errors):
    before = len(errors)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: not readable as JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: missing traceEvents array")
        return

    by_span = {}
    for i, e in enumerate(events):
        where = f"{path}: event {i}"
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in e:
                fail(errors, f"{where}: missing key '{key}'")
                return
        if e["ph"] != "X":
            fail(errors, f"{where}: ph {e['ph']!r}, expected complete 'X'")
        if e["dur"] < 0:
            fail(errors, f"{where}: negative duration {e['dur']}")
        if e["ts"] < 0:
            fail(errors, f"{where}: negative timestamp {e['ts']}")
        args = e["args"]
        for key in ("trace", "span", "parent"):
            if not isinstance(args.get(key), int):
                fail(errors, f"{where}: args.{key} missing or non-integer")
                return
        if args["span"] in by_span:
            fail(errors, f"{where}: duplicate span id {args['span']}")
        by_span[args["span"]] = e

    for e in events:
        parent_id = e["args"]["parent"]
        if parent_id == 0:
            continue
        pe = by_span.get(parent_id)
        if pe is None:
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) links to "
                 f"unknown parent {parent_id}")
            continue
        if pe["args"]["trace"] != e["args"]["trace"]:
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) crosses "
                 f"traces to parent {parent_id} ({pe['name']})")
        if (e["ts"] + NEST_TOLERANCE_US < pe["ts"]
                or e["ts"] + e["dur"]
                > pe["ts"] + pe["dur"] + NEST_TOLERANCE_US):
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) "
                 f"[{e['ts']}, {e['ts'] + e['dur']}] escapes parent "
                 f"{pe['name']} [{pe['ts']}, {pe['ts'] + pe['dur']}]")

    names = [e["name"] for e in events]
    for want in require_spans:
        if want not in names:
            fail(errors, f"{path}: required span '{want}' never recorded")

    if expect_hit_miss:
        # A miss request trace contains an svc.embed span; a hit's does not.
        embed_traces = {e["args"]["trace"] for e in events
                        if e["name"] == "svc.embed"}
        roots = [e for e in events if e["name"] == "svc.request"]
        hits = [e for e in roots if e["args"]["trace"] not in embed_traces]
        misses = [e for e in roots if e["args"]["trace"] in embed_traces]
        if not roots:
            fail(errors, f"{path}: no svc.request root spans")
        if not misses:
            fail(errors, f"{path}: no cache-miss trace (svc.embed) found")
        if not hits:
            fail(errors, f"{path}: no cache-hit trace (embed-free) found")

    if len(errors) == before:
        print(f"trace ok: {path}: {len(events)} events, "
              f"{len(set(e['args']['trace'] for e in events))} traces, "
              f"{len(set(names))} distinct span names")


METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def validate_prom(path, require_histograms, errors):
    before = len(errors)
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(errors, f"{path}: {e}")
        return
    samples = {}  # full sample key (name + labels) -> value
    typed = {}  # family name -> declared type
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                fail(errors, f"{where}: malformed comment line: {line!r}")
            elif parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    fail(errors, f"{where}: bad TYPE {parts[3]!r}")
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail(errors, f"{where}: unparsable sample line: {line!r}")
            continue
        if m.group("labels"):
            body = m.group("labels")[1:-1]
            for pair in filter(None, body.split(",")):
                if not LABEL_RE.match(pair):
                    fail(errors, f"{where}: malformed label {pair!r}")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            fail(errors, f"{where}: non-numeric value: {line!r}")
            continue
        samples[m.group("name") + (m.group("labels") or "")] = value

    for family, kind in typed.items():
        suffixes = ("_bucket", "_sum", "_count") if kind in (
            "histogram", "summary") else ("",)
        if not any(k.startswith(family + s) for k in samples
                   for s in suffixes):
            fail(errors, f"{path}: TYPE {family} declared but no samples")

    for family in require_histograms:
        if typed.get(family) != "histogram":
            fail(errors, f"{path}: {family} not declared as a histogram")
            continue
        buckets = []
        for key, value in samples.items():
            m = re.match(
                re.escape(family) + r'_bucket\{le="([^"]+)"\}$', key)
            if m:
                buckets.append((parse_value(m.group(1)), value))
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            fail(errors, f"{path}: {family} lacks an le=\"+Inf\" bucket")
            continue
        for (lo_le, lo), (hi_le, hi) in zip(buckets, buckets[1:]):
            if lo > hi:
                fail(errors,
                     f"{path}: {family} bucket le={lo_le} count {lo} > "
                     f"le={hi_le} count {hi} (not cumulative)")
        count = samples.get(f"{family}_count")
        if count is None or f"{family}_sum" not in samples:
            fail(errors, f"{path}: {family} missing _sum/_count")
        elif buckets[-1][1] < count:
            fail(errors,
                 f"{path}: {family} +Inf bucket {buckets[-1][1]} < "
                 f"_count {count}")

    if len(errors) == before:
        hist = sum(1 for t in typed.values() if t == "histogram")
        print(f"prom ok: {path}: {len(samples)} samples, "
              f"{len(typed)} typed families ({hist} histograms)")


def main():
    ap = argparse.ArgumentParser(
        description="Validate trace JSON / Prometheus exposition exports.")
    ap.add_argument("--trace", help="Chrome trace_event JSON file")
    ap.add_argument("--prom", help="Prometheus text exposition file")
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME")
    ap.add_argument("--require-histogram", action="append", default=[],
                    metavar="NAME")
    ap.add_argument("--expect-hit-miss", action="store_true")
    args = ap.parse_args()
    if not args.trace and not args.prom:
        ap.error("nothing to do: pass --trace and/or --prom")

    errors = []
    if args.trace:
        validate_trace(args.trace, args.require_span, args.expect_hit_miss,
                       errors)
    if args.prom:
        validate_prom(args.prom, args.require_histogram, errors)
    for msg in errors:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
