file(REMOVE_RECURSE
  "CMakeFiles/starring_pancake.dir/pancake.cpp.o"
  "CMakeFiles/starring_pancake.dir/pancake.cpp.o.d"
  "libstarring_pancake.a"
  "libstarring_pancake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_pancake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
