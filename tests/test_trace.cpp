// Tests for the tracing subsystem (obs/trace.hpp): span identity and
// nesting, cross-thread context propagation through the pool, the
// flight recorder's overwrite semantics, concurrent record/collect
// (the TSan target for the seqlock cells), and both exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace starring {
namespace {

namespace trace = obs::trace;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(true);
    trace::clear();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

#if !defined(STARRING_OBS_DISABLED)

std::map<std::string, trace::SpanRecord> by_name(
    const std::vector<trace::SpanRecord>& records) {
  std::map<std::string, trace::SpanRecord> m;
  for (const auto& r : records) m[r.name] = r;
  return m;
}

TEST_F(TraceTest, NestedScopesChainParentLinks) {
  {
    trace::ScopedSpan outer("outer");
    trace::ScopedSpan mid("mid");
    { trace::ScopedSpan inner("inner"); }
  }
  const auto m = by_name(trace::collect());
  ASSERT_EQ(m.size(), 3u);
  const auto& outer = m.at("outer");
  const auto& mid = m.at("mid");
  const auto& inner = m.at("inner");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(mid.parent_id, outer.span_id);
  EXPECT_EQ(inner.parent_id, mid.span_id);
  EXPECT_EQ(outer.trace_id, mid.trace_id);
  EXPECT_EQ(outer.trace_id, inner.trace_id);
  // Temporal containment: children start no earlier and end no later.
  EXPECT_GE(mid.start_ns, outer.start_ns);
  EXPECT_LE(mid.start_ns + mid.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(inner.start_ns, mid.start_ns);
}

TEST_F(TraceTest, SiblingScopesShareParentNotIds) {
  {
    trace::ScopedSpan root("root");
    { trace::ScopedSpan a("a"); }
    { trace::ScopedSpan b("b"); }
  }
  const auto m = by_name(trace::collect());
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("a").parent_id, m.at("root").span_id);
  EXPECT_EQ(m.at("b").parent_id, m.at("root").span_id);
  EXPECT_NE(m.at("a").span_id, m.at("b").span_id);
}

TEST_F(TraceTest, SeparateRootsGetSeparateTraces) {
  { trace::ScopedSpan a("a"); }
  { trace::ScopedSpan b("b"); }
  const auto m = by_name(trace::collect());
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NE(m.at("a").trace_id, m.at("b").trace_id);
}

TEST_F(TraceTest, DisabledRecordsNothingAndContextStaysInvalid) {
  trace::set_enabled(false);
  {
    trace::ScopedSpan span("ghost");
    EXPECT_FALSE(span.context().valid());
    EXPECT_FALSE(trace::current().valid());
  }
  EXPECT_TRUE(trace::collect().empty());
}

TEST_F(TraceTest, ExplicitParentOverridesThreadCurrent) {
  trace::Context foreign;
  foreign.trace_id = trace::new_trace_id();
  foreign.span_id = trace::new_span_id();
  {
    trace::ScopedSpan ambient("ambient");
    trace::ScopedSpan adopted("adopted", foreign);
    EXPECT_EQ(adopted.context().trace_id, foreign.trace_id);
  }
  const auto m = by_name(trace::collect());
  EXPECT_EQ(m.at("adopted").parent_id, foreign.span_id);
  EXPECT_NE(m.at("adopted").trace_id, m.at("ambient").trace_id);
}

TEST_F(TraceTest, EmitRecordsExplicitIntervals) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  const std::uint64_t trace_id = trace::new_trace_id();
  const std::uint64_t span_id = trace::new_span_id();
  trace::emit("manual", trace_id, span_id, 0, t0, t1);
  // A t1 before t0 must clamp to zero duration, not go negative.
  trace::emit("clamped", trace_id, trace::new_span_id(), span_id, t1, t0);
  const auto m = by_name(trace::collect());
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("manual").dur_ns, 250'000);
  EXPECT_EQ(m.at("clamped").dur_ns, 0);
  EXPECT_EQ(m.at("clamped").parent_id, span_id);
}

TEST_F(TraceTest, LongNamesTruncateWithoutCorruption) {
  { trace::ScopedSpan span("a.very.long.span.name.that.exceeds.the.cap"); }
  const auto records = trace::collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "a.very.long.span.name.th");  // 24 bytes
}

TEST_F(TraceTest, ContextPropagatesAcrossPoolWorkers) {
  constexpr std::size_t kItems = 64;
  std::vector<trace::Context> seen(kItems);
  trace::Context root_ctx;
  {
    trace::ScopedSpan root("fanout_root");
    root_ctx = root.context();
    parallel_for(0, kItems, 4, [&](std::size_t i) {
      trace::ScopedSpan item("item");
      seen[i] = trace::current();
      // Enough per-item work that the caller lane cannot drain every
      // chunk before a worker wakes — the fan-out must cross threads.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].trace_id, root_ctx.trace_id) << "item " << i;
  }
  const auto records = trace::collect();
  std::size_t items = 0;
  std::set<std::uint32_t> tids;
  for (const auto& r : records) {
    if (r.name != "item") continue;
    ++items;
    EXPECT_EQ(r.trace_id, root_ctx.trace_id);
    EXPECT_EQ(r.parent_id, root_ctx.span_id);
    tids.insert(r.tid);
  }
  EXPECT_EQ(items, kItems);
  // The fan-out really crossed threads (caller lane + >= 1 worker).
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(TraceTest, WorkerContextRestoredBetweenRegions) {
  {
    trace::ScopedSpan root("first_region");
    parallel_for(0, 8, 3, [&](std::size_t) {
      trace::ScopedSpan s("first_item");
    });
  }
  // No ambient context now: items of this region must start new traces,
  // not inherit a stale context from the previous region's workers.
  parallel_for(0, 8, 3, [&](std::size_t) {
    trace::ScopedSpan s("second_item");
  });
  for (const auto& r : trace::collect()) {
    if (r.name == "second_item") {
      EXPECT_EQ(r.parent_id, 0u);
    }
  }
}

TEST_F(TraceTest, RingOverwritesOldestKeepsNewest) {
  const std::size_t cap = trace::ring_capacity();
  // A fresh thread gets its own ring; overflow it deterministically.
  std::thread t([&] {
    for (std::size_t i = 0; i < cap + 10; ++i) {
      trace::ScopedSpan span("overflow");
    }
  });
  t.join();
  std::size_t overflow = 0;
  for (const auto& r : trace::collect())
    if (r.name == "overflow") ++overflow;
  EXPECT_LE(overflow, cap);
  EXPECT_GE(overflow, cap - 1);  // a torn cell may drop at most the seam
  const auto stats = trace::stats();
  EXPECT_GE(stats.recorded, cap + 10);
  EXPECT_GE(stats.dropped, 10u);
}

TEST_F(TraceTest, ConcurrentRecordAndCollectStaysWellFormed) {
  // The TSan target: writers push while a reader drains.  Correctness
  // bar: no crash, no torn record surfacing impossible ids.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        trace::ScopedSpan span("w");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const auto records = trace::collect();
    for (const auto& r : records) {
      EXPECT_NE(r.trace_id, 0u);
      EXPECT_GE(r.dur_ns, 0);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST_F(TraceTest, CollectIsSortedByStartTime) {
  for (int i = 0; i < 20; ++i) trace::ScopedSpan("tick");
  const auto records = trace::collect();
  ASSERT_GE(records.size(), 20u);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LE(records[i - 1].start_ns, records[i].start_ns);
}

TEST_F(TraceTest, IdNamespaceSeparatesProcesses) {
  // Shard k mints under namespace k+1: every id carries the namespace
  // in its top 16 bits, so merged dumps from different processes never
  // collide.  clear() must re-seed at the namespace base, not 1.
  trace::set_id_namespace(3);
  trace::clear();
  { trace::ScopedSpan span("a"); }
  { trace::ScopedSpan span("b"); }
  const auto records = trace::collect();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_EQ(r.trace_id >> 48, 3u) << r.name;
    EXPECT_EQ(r.span_id >> 48, 3u) << r.name;
  }
  EXPECT_NE(records[0].trace_id, records[1].trace_id);
  trace::set_id_namespace(0);  // restore the default for later tests
  trace::clear();
}

TEST_F(TraceTest, WireContextAdoptedAsParent) {
  // A request arriving with a `trace` line hands its context to the
  // server-side root span: same trace id, remote span as parent.
  const trace::Context wire{(std::uint64_t{7} << 48) + 5, 99};
  { trace::ScopedSpan root("svc.request", wire); }
  const auto records = trace::collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, wire.trace_id);
  EXPECT_EQ(records[0].parent_id, wire.span_id);
}

TEST_F(TraceTest, EpochIsStableAndNonZero) {
  EXPECT_GT(trace::epoch_ns(), 0u);
  EXPECT_EQ(trace::epoch_ns(), trace::epoch_ns());
}

#endif  // !STARRING_OBS_DISABLED

TEST_F(TraceTest, ChromeTraceExportParsesAndNests) {
  {
    trace::ScopedSpan outer("svc.outer");
    trace::ScopedSpan inner("svc.inner");
  }
  std::ostringstream os;
  ASSERT_TRUE(trace::write_chrome_trace(os));
  std::string error;
  const auto doc = obs::json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
#if !defined(STARRING_OBS_DISABLED)
  ASSERT_EQ(events->array.size(), 2u);
  for (const auto& e : events->array) {
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_EQ(e.find("cat")->string, "svc");
    EXPECT_GE(e.find("dur")->number, 0.0);
    ASSERT_NE(e.find("args"), nullptr);
  }
  // Parent linkage survives export.
  const auto& a = events->array[0];
  const auto& b = events->array[1];
  const auto& outer_ev =
      a.find("name")->string == "svc.outer" ? a : b;
  const auto& inner_ev =
      a.find("name")->string == "svc.outer" ? b : a;
  EXPECT_EQ(inner_ev.find("args")->find("parent")->number,
            outer_ev.find("args")->find("span")->number);
#else
  EXPECT_TRUE(events->array.empty());
#endif
}

TEST_F(TraceTest, ChromeTraceEmptyRecorderIsWellFormed) {
  std::ostringstream os;
  ASSERT_TRUE(trace::write_chrome_trace(os));
  std::string error;
  const auto doc = obs::json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("traceEvents")->array.empty());
}

// --- Prometheus renderer ---------------------------------------------

TEST(PrometheusTest, RendersCountersGaugesAndHistograms) {
  obs::Snapshot snap = {
      {"embed.calls", 42},
      {"embed.max_n", 9},
      {"svc.batch_size_max", 8},
      {"svc.latency.le_100us", 1},
      {"svc.latency.le_1ms", 2},
      {"svc.latency.le_10ms", 3},
      {"svc.latency.le_100ms", 0},
      {"svc.latency.le_1s", 0},
      {"svc.latency.gt_1s", 1},
      {"svc.latency.count", 7},
      {"svc.latency.total_us", 1'500'000},
  };
  const std::string text = obs::render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE starring_embed_calls counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("starring_embed_calls 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE starring_embed_max_n gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE starring_svc_batch_size_max gauge\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE starring_svc_latency_seconds histogram\n"),
      std::string::npos);
  // Cumulative buckets in seconds.
  EXPECT_NE(text.find(
                "starring_svc_latency_seconds_bucket{le=\"0.0001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("starring_svc_latency_seconds_bucket{le=\"0.001\"} 3\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("starring_svc_latency_seconds_bucket{le=\"0.01\"} 6\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("starring_svc_latency_seconds_bucket{le=\"+Inf\"} 7\n"),
      std::string::npos);
  EXPECT_NE(text.find("starring_svc_latency_seconds_sum 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("starring_svc_latency_seconds_count 7\n"),
            std::string::npos);
  // Histogram members are folded, not re-exported as scalars.
  EXPECT_EQ(text.find("starring_svc_latency_le_100us"), std::string::npos);
  EXPECT_EQ(text.find("starring_svc_latency_count "), std::string::npos);
}

TEST(PrometheusTest, RacySnapshotCountBelowBucketSumStaysMonotone) {
  // A snapshot can catch .count before the last bucket increment lands;
  // +Inf and _count must still be >= the cumulative bucket sum.
  obs::Snapshot snap = {
      {"x.le_100us", 5}, {"x.le_1ms", 0},  {"x.le_10ms", 0},
      {"x.le_100ms", 0}, {"x.le_1s", 0},   {"x.gt_1s", 0},
      {"x.count", 3},    {"x.total_us", 1},
  };
  const std::string text = obs::render_prometheus(snap);
  EXPECT_NE(text.find("starring_x_seconds_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("starring_x_seconds_count 5\n"), std::string::npos);
}

TEST(PrometheusTest, ParseHistogramRoundTripsRenderedOutput) {
  obs::Snapshot snap = {
      {"svc.latency.le_100us", 10}, {"svc.latency.le_1ms", 20},
      {"svc.latency.le_10ms", 0},   {"svc.latency.le_100ms", 0},
      {"svc.latency.le_1s", 0},     {"svc.latency.gt_1s", 0},
      {"svc.latency.count", 30},    {"svc.latency.total_us", 9'000},
  };
  const auto h = obs::parse_histogram(obs::render_prometheus(snap),
                                      "starring_svc_latency_seconds");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->count, 30);
  EXPECT_DOUBLE_EQ(h->sum_seconds, 0.009);
  ASSERT_EQ(h->buckets.size(), 6u);
  EXPECT_EQ(h->buckets.front().second, 10);
  EXPECT_EQ(h->buckets.back().second, 30);
  // Quantiles: p25 sits inside the first bucket, p90 inside the second.
  const double p25 = obs::histogram_quantile(*h, 0.25);
  EXPECT_GT(p25, 0.0);
  EXPECT_LE(p25, 0.0001);
  const double p90 = obs::histogram_quantile(*h, 0.90);
  EXPECT_GT(p90, 0.0001);
  EXPECT_LE(p90, 0.001);
  // Everything in +Inf clamps to the largest finite bound.
  obs::HistogramSample tail;
  tail.buckets = {{0.0001, 0}, {0.001, 0},
                  {std::numeric_limits<double>::infinity(), 5}};
  tail.count = 5;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(tail, 0.5), 0.001);
}

TEST(PrometheusTest, ParseHistogramRejectsAbsentFamilies) {
  EXPECT_FALSE(obs::parse_histogram("starring_other 3\n",
                                    "starring_svc_latency_seconds")
                   .has_value());
  EXPECT_FALSE(obs::parse_histogram("", "starring_svc_latency_seconds")
                   .has_value());
}

}  // namespace
}  // namespace starring
