#include "extensions/longest_path.hpp"

#include <algorithm>
#include <cassert>

#include "core/block_oracle.hpp"
#include "core/chaining.hpp"
#include "core/super_ring.hpp"

namespace starring {

std::uint64_t expected_path_vertices(int n, std::size_t num_vertex_faults,
                                     const Perm& s, const Perm& t) {
  const std::uint64_t base =
      factorial(n) - 2 * static_cast<std::uint64_t>(num_vertex_faults);
  return s.parity() == t.parity() ? base - 1 : base;
}

namespace {

/// Single-block case (n = 4): search the 24-vertex block directly.
std::optional<LongestPathResult> path_small(const StarGraph& g,
                                            const FaultSet& faults,
                                            const Perm& s, const Perm& t) {
  const SubstarPattern whole = g.whole_pattern();
  SmallGraph block = whole.block_graph();
  std::uint32_t forbidden = 0;
  for (const Perm& f : faults.vertex_faults())
    forbidden |= 1u << whole.local_index(f);
  for (const EdgeFault& e : faults.edge_faults())
    block.remove_edge(static_cast<int>(whole.local_index(e.u)),
                      static_cast<int>(whole.local_index(e.v)));
  const auto target = static_cast<int>(
      expected_path_vertices(g.n(), faults.num_vertex_faults(), s, t));
  const auto p = path_with_exact_vertices(
      block, static_cast<int>(whole.local_index(s)),
      static_cast<int>(whole.local_index(t)), forbidden, target);
  if (!p) return std::nullopt;
  LongestPathResult out;
  out.promised_vertices = static_cast<std::uint64_t>(target);
  out.embed.ring.reserve(p->size());
  for (const int local : *p)
    out.embed.ring.push_back(
        whole.member(static_cast<std::uint64_t>(local)).rank());
  out.embed.stats.num_blocks = 1;
  return out;
}

}  // namespace

std::optional<LongestPathResult> embed_longest_path(const StarGraph& g,
                                                    const FaultSet& faults,
                                                    const Perm& s,
                                                    const Perm& t,
                                                    const EmbedOptions& opts) {
  const int n = g.n();
  if (n < 4 || s == t) return std::nullopt;
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return std::nullopt;
  if (n == 4) return path_small(g, faults, s, t);

  // Positions where s and t disagree (never position 0 alone: two
  // distinct permutations always differ somewhere in 1..n-1).
  std::vector<int> separating;
  for (int i = 1; i < n; ++i)
    if (s.get(i) != t.get(i)) separating.push_back(i);
  assert(!separating.empty());

  const std::vector<Perm> vfaults = faults.vertex_faults();
  const std::vector<int> edge_dims = edge_fault_dims(n, faults);

  // Pick a separating position that still lets Lemma 2 isolate the
  // vertex faults (property P1); with |Fv| <= n-3 at least one choice
  // works, since isolation needs at most |Fv|-1 <= n-5 of the remaining
  // n-5 greedy slots.
  PartitionSelection sel;
  bool found = false;
  for (const int d : separating) {
    const int forced[] = {d};
    sel = select_positions_for(n, vfaults, n - 4, opts.heuristic, edge_dims,
                               forced);
    // Reorder so the forced separator leads (the level-0 partition must
    // put s and t into different first-level children).
    const auto it = std::find(sel.positions.begin(), sel.positions.end(), d);
    assert(it != sel.positions.end());
    std::rotate(sel.positions.begin(), it, it + 1);
    if (sel.max_faults_per_block <= 1) {
      found = true;
      break;
    }
  }
  if (!found && sel.positions.empty()) return std::nullopt;

  const std::uint64_t promise =
      expected_path_vertices(n, faults.num_vertex_faults(), s, t);
  const bool need_short_block = s.parity() == t.parity();

  for (int restart = 0; restart < std::max(1, opts.max_restarts); ++restart) {
    const auto sp =
        build_block_path(n, sel.positions, faults, s, t, restart);
    if (!sp) continue;
    const auto m = static_cast<int>(sp->ring.size());
    // Candidate blocks to absorb the parity correction: prefer blocks
    // away from the endpoints, healthy first (their 23-vertex paths are
    // abundant); fall back to every block.
    std::vector<int> short_candidates;
    if (need_short_block) {
      for (int k = m - 2; k >= 1 && static_cast<int>(short_candidates.size()) < 6; --k)
        if (faults_in_pattern(sp->ring[static_cast<std::size_t>(k)], faults) == 0)
          short_candidates.push_back(k);
      if (short_candidates.empty()) short_candidates.push_back(m - 1);
    } else {
      short_candidates.push_back(-1);
    }
    for (const int sb : short_candidates) {
      auto res = chain_block_path(g, *sp, faults, opts, s, t, sb);
      if (res && res->ring.size() == promise) {
        res->stats.restarts = restart;
        return LongestPathResult{std::move(*res), promise};
      }
    }
  }
  return std::nullopt;
}

}  // namespace starring
