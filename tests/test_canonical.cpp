// Tests for the relabeling symmetry helpers and the service's
// canonical form: group identities, automorphism property, class
// invariance of the canonical key, and the cache-hit correctness
// argument (a canonical embedding relabeled back is a healthy ring of
// the promised length in the caller's frame).
#include <gtest/gtest.h>

#include <random>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "service/canonical.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

Perm random_perm(int n, std::mt19937_64* rng) {
  return Perm::unrank((*rng)() % factorial(n), n);
}

TEST(Relabel, GroupIdentities) {
  std::mt19937_64 rng(11);
  for (int n = 3; n <= 9; ++n) {
    const Perm id = Perm::identity(n);
    for (int trial = 0; trial < 50; ++trial) {
      const Perm p = random_perm(n, &rng);
      const Perm g = random_perm(n, &rng);
      EXPECT_EQ(relabel(id, p), p);
      EXPECT_EQ(relabel(g, id), g);
      EXPECT_EQ(relabel(inverse_of(p), p), id);
      EXPECT_EQ(inverse_of(inverse_of(p)), p);
      EXPECT_EQ(relabel(inverse_of(g), relabel(g, p)), p);
    }
  }
}

TEST(Relabel, IsStarGraphAutomorphism) {
  std::mt19937_64 rng(23);
  for (int n = 4; n <= 8; ++n) {
    for (int trial = 0; trial < 30; ++trial) {
      const Perm p = random_perm(n, &rng);
      const Perm g = random_perm(n, &rng);
      for (const Perm& q : neighbors(p)) {
        EXPECT_TRUE(relabel(g, p).adjacent(relabel(g, q)));
      }
      // Non-neighbours stay non-neighbours (automorphism, not just
      // homomorphism): check against a random distinct vertex.
      const Perm r = random_perm(n, &rng);
      if (!(r == p)) {
        EXPECT_EQ(p.adjacent(r), relabel(g, p).adjacent(relabel(g, r)));
      }
    }
  }
}

TEST(Relabel, ActsTransitively) {
  // g = q ∘ p⁻¹ maps p to q: the relabeling family can move any vertex
  // anywhere, which is why one canonical instance per class suffices.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 5);
    const Perm p = random_perm(n, &rng);
    const Perm q = random_perm(n, &rng);
    const Perm g = relabel(q, inverse_of(p));
    EXPECT_EQ(relabel(g, p), q);
  }
}

TEST(Canonical, KeyInvariantUnderRelabeling) {
  std::mt19937_64 rng(47);
  for (int n = 5; n <= 7; ++n) {
    const StarGraph g(n);
    for (int trial = 0; trial < 40; ++trial) {
      const int nf = static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                  n - 2));  // 0..n-3
      const FaultSet faults = random_vertex_faults(g, nf, rng());
      const CanonicalForm base = canonicalize(n, faults);
      for (int k = 0; k < 5; ++k) {
        const Perm h = random_perm(n, &rng);
        const CanonicalForm moved = canonicalize(n, faults.relabeled(h));
        EXPECT_EQ(moved.key, base.key)
            << "n=" << n << " trial=" << trial << " relabeling " << k;
      }
    }
  }
}

TEST(Canonical, KeyInvariantWithEdgeFaults) {
  std::mt19937_64 rng(53);
  for (int n = 5; n <= 6; ++n) {
    const StarGraph g(n);
    for (int trial = 0; trial < 20; ++trial) {
      const FaultSet faults = mixed_faults(g, 1, 1, rng());
      const FaultSet edge_only = random_edge_faults(g, 2, rng());
      for (const FaultSet* f : {&faults, &edge_only}) {
        const CanonicalForm base = canonicalize(n, *f);
        const Perm h = random_perm(n, &rng);
        EXPECT_EQ(canonicalize(n, f->relabeled(h)).key, base.key);
      }
    }
  }
}

TEST(Canonical, ToCanonicalReproducesCanonicalFaults) {
  std::mt19937_64 rng(59);
  const int n = 6;
  const StarGraph g(n);
  for (int trial = 0; trial < 30; ++trial) {
    const FaultSet faults = random_vertex_faults(g, 3, rng());
    const CanonicalForm c = canonicalize(n, faults);
    const FaultSet image = faults.relabeled(c.to_canonical);
    for (const Perm& v : c.faults.vertex_faults())
      EXPECT_TRUE(image.vertex_faulty(v));
    EXPECT_EQ(image.num_vertex_faults(), c.faults.num_vertex_faults());
    // Some fault landed on the identity vertex (the pivot).
    EXPECT_TRUE(c.faults.vertex_faulty(Perm::identity(n)));
  }
}

TEST(Canonical, SingleVertexFaultClassIsUnique) {
  // Vertex-transitivity collapses every 1-fault instance of S_n into
  // one class: the cache answers all n! of them with one embedding.
  const int n = 6;
  const StarGraph g(n);
  std::mt19937_64 rng(61);
  FaultSet first;
  first.add_vertex(Perm::unrank(0, n));
  const std::string key = canonicalize(n, first).key;
  for (int trial = 0; trial < 50; ++trial) {
    FaultSet f;
    f.add_vertex(Perm::unrank(rng() % factorial(n), n));
    EXPECT_EQ(canonicalize(n, f).key, key);
  }
}

TEST(Canonical, FaultFreeUsesIdentity) {
  const CanonicalForm c = canonicalize(7, FaultSet{});
  EXPECT_EQ(c.to_canonical, Perm::identity(7));
  EXPECT_TRUE(c.faults.empty());
}

TEST(Canonical, DistinctClassesGetDistinctKeys) {
  // Different fault cardinalities can never collide (the key encodes
  // every fault), and n is part of the key.
  const StarGraph g(6);
  const FaultSet f1 = random_vertex_faults(g, 1, 5);
  const FaultSet f2 = random_vertex_faults(g, 2, 5);
  EXPECT_NE(canonicalize(6, f1).key, canonicalize(6, f2).key);
  EXPECT_NE(canonicalize(6, FaultSet{}).key, canonicalize(5, FaultSet{}).key);
}

TEST(Canonical, CacheHitRingRelabelsBackHealthy) {
  // The service's cache-hit path end to end: embed the canonical
  // instance once, then answer a relabeled request by mapping the ring
  // back; the result must pass the independent verifier with length
  // n! - 2|Fv| in the caller's frame.
  std::mt19937_64 rng(67);
  for (int n = 5; n <= 7; ++n) {
    const StarGraph g(n);
    for (int trial = 0; trial < 5; ++trial) {
      const int nf = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                      n - 3));  // 1..n-3
      const FaultSet faults = random_vertex_faults(g, nf, rng());
      const CanonicalForm canon = canonicalize(n, faults);
      const auto res = embed_longest_ring(g, canon.faults);
      ASSERT_TRUE(res.has_value()) << "n=" << n << " nf=" << nf;
      const std::vector<VertexId> back =
          relabel_ring(res->ring, inverse_of(canon.to_canonical), n);
      const RingReport report = verify_healthy_ring(g, faults, back);
      EXPECT_TRUE(report.valid) << report.error;
      EXPECT_EQ(back.size(), expected_ring_length(n, faults.num_vertex_faults()));
    }
  }
}

TEST(Canonical, RelabelRingMatchesVertexwiseRelabel) {
  const int n = 5;
  const StarGraph g(n);
  std::mt19937_64 rng(71);
  const Perm h = random_perm(n, &rng);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  const auto mapped = relabel_ring(res->ring, h, n);
  ASSERT_EQ(mapped.size(), res->ring.size());
  for (std::size_t i = 0; i < mapped.size(); ++i)
    EXPECT_EQ(mapped[i], relabel(h, Perm::unrank(res->ring[i], n)).rank());
}

}  // namespace
}  // namespace starring
