// Prometheus text-exposition (version 0.0.4) rendering of the counter
// registry, plus a tiny parser for the rendered histograms so the CLI
// can compute quantiles from a STATS reply without a metrics library.
//
// Rendering rules:
//   * Every counter becomes `starring_<name>` with non-alphanumeric
//     characters mangled to '_' (svc.cache.hits ->
//     starring_svc_cache_hits), typed `counter` except for gauge-style
//     maxima (embed.max_n, *.threads, pool.workers), typed `gauge`.
//   * A LatencyHistogram family (<p>.le_100us .. <p>.gt_1s, <p>.count,
//     <p>.total_us — see obs/metrics.hpp) folds into one native
//     Prometheus histogram `starring_<p>_seconds` with cumulative
//     `_bucket{le="..."}` samples in seconds, `_sum`, and `_count`;
//     the member counters are dropped from the scalar section.
//
// Everything here is pure over a Snapshot, so it works in both compile
// modes: under -DSTARRING_OBS=OFF the snapshot is empty and the
// document renders with no samples (still grammatically valid).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace starring::obs {

/// Render `snap` as Prometheus text exposition.  Deterministic: families
/// appear in sorted-name order.
std::string render_prometheus(const Snapshot& snap);

/// render_prometheus(snapshot()) — the live registry.
std::string render_prometheus();

/// One parsed histogram family: cumulative (upper_bound_seconds, count)
/// pairs with the +Inf bucket last, plus _sum/_count.
struct HistogramSample {
  std::vector<std::pair<double, std::int64_t>> buckets;
  std::int64_t count = 0;
  double sum_seconds = 0.0;
};

/// Extract histogram `metric` (the full mangled family name, e.g.
/// "starring_svc_latency_seconds") from a text-exposition document.
/// Returns nullopt when the family is absent or has no +Inf bucket.
std::optional<HistogramSample> parse_histogram(std::string_view prom_text,
                                               std::string_view metric);

/// Prometheus-style histogram_quantile: linear interpolation inside the
/// bucket holding the q-th sample (q in [0,1]).  The +Inf bucket clamps
/// to the largest finite upper bound.  Returns 0 for an empty sample.
double histogram_quantile(const HistogramSample& h, double q);

}  // namespace starring::obs
