// Tests for the capped exponential retry backoff (util/backoff.hpp).
//
// Regression: the previous inline computation was `50LL << (round - 1)`,
// undefined behaviour once round reaches 64 (shift >= bit width) and
// absurd sleep budgets long before that.  The helper must saturate at
// the cap for every round, however large.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/backoff.hpp"

namespace starring {
namespace {

TEST(RetryBackoff, DoublesFromBaseUntilCap) {
  EXPECT_EQ(retry_backoff_ms(1), 50);
  EXPECT_EQ(retry_backoff_ms(2), 100);
  EXPECT_EQ(retry_backoff_ms(3), 200);
  EXPECT_EQ(retry_backoff_ms(4), 400);
  EXPECT_EQ(retry_backoff_ms(5), 800);
  EXPECT_EQ(retry_backoff_ms(6), 1600);
  EXPECT_EQ(retry_backoff_ms(7), 3200);
}

TEST(RetryBackoff, SaturatesAtCap) {
  EXPECT_EQ(retry_backoff_ms(8), 5000);  // 6400 clamps
  EXPECT_EQ(retry_backoff_ms(9), 5000);
  EXPECT_EQ(retry_backoff_ms(20), 5000);
}

TEST(RetryBackoff, LargeRoundsAreDefinedAndCapped) {
  // The rounds that were UB with a shift: 64 and beyond must yield the
  // cap, not garbage or a crash.
  EXPECT_EQ(retry_backoff_ms(63), 5000);
  EXPECT_EQ(retry_backoff_ms(64), 5000);
  EXPECT_EQ(retry_backoff_ms(65), 5000);
  EXPECT_EQ(retry_backoff_ms(1000), 5000);
  EXPECT_EQ(retry_backoff_ms(std::numeric_limits<int>::max()), 5000);
}

TEST(RetryBackoff, MonotoneNonDecreasing) {
  std::int64_t prev = 0;
  for (int round = 1; round <= 128; ++round) {
    const std::int64_t b = retry_backoff_ms(round);
    EXPECT_GE(b, prev) << "round " << round;
    EXPECT_LE(b, 5000) << "round " << round;
    prev = b;
  }
}

TEST(RetryBackoff, DegenerateInputsReturnZero) {
  EXPECT_EQ(retry_backoff_ms(0), 0);
  EXPECT_EQ(retry_backoff_ms(-3), 0);
  EXPECT_EQ(retry_backoff_ms(5, /*base_ms=*/0), 0);
}

TEST(RetryBackoff, CustomBaseAndCap) {
  EXPECT_EQ(retry_backoff_ms(1, 10, 1000), 10);
  EXPECT_EQ(retry_backoff_ms(4, 10, 1000), 80);
  EXPECT_EQ(retry_backoff_ms(12, 10, 1000), 1000);
  // base already above the cap clamps immediately.
  EXPECT_EQ(retry_backoff_ms(1, 9000, 5000), 5000);
}

}  // namespace
}  // namespace starring
