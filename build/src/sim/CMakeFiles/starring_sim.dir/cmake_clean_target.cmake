file(REMOVE_RECURSE
  "libstarring_sim.a"
)
