// Independent embedding verifier.
//
// Every ring the library emits is checked by code that shares nothing
// with the construction: only the packed-permutation adjacency test and
// the fault set.  Tests and benches route all results through here, so
// a bug in the partition/super-ring/chaining machinery cannot silently
// produce a wrong "ring".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {

struct RingReport {
  bool valid = false;
  /// Human-readable reason when !valid.
  std::string error;
  /// Number of vertices on the ring.
  std::uint64_t length = 0;
};

/// Check that `ring` is a simple cycle of S_n that touches no faulty
/// vertex and uses no faulty edge.  `threads` parallelizes the
/// adjacency scan (the verdict is identical for any value).
RingReport verify_healthy_ring(const StarGraph& g, const FaultSet& faults,
                               const std::vector<VertexId>& ring,
                               unsigned threads = 1);

/// Check that `path` is a simple healthy path of S_n.
RingReport verify_healthy_path(const StarGraph& g, const FaultSet& faults,
                               const std::vector<VertexId>& path,
                               unsigned threads = 1);

}  // namespace starring
