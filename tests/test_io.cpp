// Tests for the embedding serialization format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "util/io.hpp"

namespace starring {
namespace {

EmbeddingFile make_sample(int n, int nf, std::uint64_t seed) {
  const StarGraph g(n);
  EmbeddingFile e;
  e.n = n;
  e.faults = random_vertex_faults(g, nf, seed);
  const auto res = embed_longest_ring(g, e.faults);
  EXPECT_TRUE(res.has_value());
  e.sequence = res->ring;
  return e;
}

TEST(Io, RoundTripRing) {
  const EmbeddingFile e = make_sample(6, 3, 5);
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  std::string err;
  const auto back = read_embedding(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->n, e.n);
  EXPECT_TRUE(back->is_ring);
  EXPECT_EQ(back->sequence, e.sequence);
  EXPECT_EQ(back->faults.num_vertex_faults(), e.faults.num_vertex_faults());
  for (const Perm& f : e.faults.vertex_faults())
    EXPECT_TRUE(back->faults.vertex_faulty(f));
  // The deserialized artefact still verifies.
  const StarGraph g(e.n);
  EXPECT_TRUE(verify_healthy_ring(g, back->faults, back->sequence).valid);
}

TEST(Io, RoundTripWithEdgeFaults) {
  const StarGraph g(5);
  EmbeddingFile e;
  e.n = 5;
  e.is_ring = false;
  e.faults = mixed_faults(g, 1, 1, 9);
  e.sequence = {0, 1, 2};
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->is_ring);
  EXPECT_EQ(back->faults.num_edge_faults(), 1u);
  for (const EdgeFault& f : e.faults.edge_faults())
    EXPECT_TRUE(back->faults.edge_faulty(f.u, f.v));
}

TEST(Io, RoundTripOpenPathWithEdgeFaults) {
  // An open path plus the edge fault that broke the ring: the shape the
  // self-healing runtime checkpoints after a link failure.
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  EmbeddingFile e;
  e.n = 5;
  e.is_ring = false;
  e.sequence = res->ring;
  e.sequence.pop_back();  // open the ring: drop one endpoint
  e.faults.add_edge(g.vertex(res->ring[res->ring.size() - 2]),
                    g.vertex(res->ring.back()));
  ASSERT_TRUE(verify_healthy_path(g, e.faults, e.sequence).valid);

  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  std::string err;
  const auto back = read_embedding(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_FALSE(back->is_ring);
  EXPECT_EQ(back->sequence, e.sequence);
  ASSERT_EQ(back->faults.num_edge_faults(), 1u);
  for (const EdgeFault& f : e.faults.edge_faults())
    EXPECT_TRUE(back->faults.edge_faulty(f.u, f.v));
  // The deserialized open path still verifies against its fault set.
  EXPECT_TRUE(verify_healthy_path(g, back->faults, back->sequence).valid);
}

TEST(Io, RoundTripMixedFaultsRing) {
  const StarGraph g(6);
  EmbeddingFile e;
  e.n = 6;
  e.faults = mixed_faults(g, 2, 1, 17);
  const auto res = embed_longest_ring(g, e.faults);
  ASSERT_TRUE(res.has_value());
  e.sequence = res->ring;

  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->faults.num_vertex_faults(), 2u);
  EXPECT_EQ(back->faults.num_edge_faults(), 1u);
  EXPECT_TRUE(verify_healthy_ring(g, back->faults, back->sequence).valid);
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("starring-embedding v9\nn 5\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad header");
}

TEST(Io, RejectsBadDimension) {
  std::stringstream ss("starring-embedding v1\nn 99\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad dimension line");
}

TEST(Io, RejectsBadFaultLiteral) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 1\n1135\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad vertex fault"), std::string::npos);
}

TEST(Io, RejectsNonAdjacentEdgeFault) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 1\n1234 4321\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad edge fault"), std::string::npos);
}

TEST(Io, RejectsTruncatedSequence) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 5\n1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated sequence");
}

TEST(Io, RejectsOutOfRangeId) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 2\n1 24\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(Io, RejectsBadKindLine) {
  std::stringstream ss("starring-embedding v1\nn 5\nkind torus\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad kind line");
}

TEST(Io, RejectsTruncatedVertexFaults) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 2\n2134\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated vertex faults");
}

TEST(Io, RejectsTruncatedEdgeFaults) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 1\n2134\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated edge faults");
}

TEST(Io, RejectsMissingSequenceHeader) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nvertices 3\n1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad sequence line");
}

TEST(Io, RejectsWrongLengthPermLiteral) {
  // A 3-symbol literal in an n=4 file names the offending token.
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 1\n213\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad vertex fault '213'");
}

TEST(Io, RejectsMalformedDotSeparatedLiteral) {
  std::stringstream ss(
      "starring-embedding v1\nn 11\nkind ring\nvertex_faults 1\n"
      "1.2.3.4.5.6.7.8.9.10.x\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad vertex fault"), std::string::npos);
}

TEST(Io, RejectsNonNumericSequenceEntry) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 3\n1 two 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated sequence");
}

// ---------------------------------------------------------------------------
// Service protocol: starring-request v1 / starring-response v1.

TEST(IoService, RoundTripRequest) {
  const StarGraph g(6);
  ServiceRequest r;
  r.id = 42;
  r.n = 6;
  r.faults = mixed_faults(g, 2, 1, 13);
  r.verify = true;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->n, 6);
  EXPECT_TRUE(back->verify);
  EXPECT_EQ(back->faults.num_vertex_faults(), 2u);
  EXPECT_EQ(back->faults.num_edge_faults(), 1u);
  for (const Perm& f : r.faults.vertex_faults())
    EXPECT_TRUE(back->faults.vertex_faulty(f));
  for (const EdgeFault& f : r.faults.edge_faults())
    EXPECT_TRUE(back->faults.edge_faulty(f.u, f.v));
}

TEST(IoService, RoundTripOkResponse) {
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  ServiceResponse r;
  r.id = 7;
  r.status = ServiceStatus::kOk;
  r.cache_hit = true;
  r.verified = true;
  r.ring = res->ring;
  std::stringstream ss;
  ASSERT_TRUE(write_response(ss, r));
  std::string err;
  const auto back = read_response(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 7u);
  EXPECT_EQ(back->status, ServiceStatus::kOk);
  EXPECT_TRUE(back->cache_hit);
  EXPECT_TRUE(back->verified);
  EXPECT_EQ(back->ring, r.ring);
}

TEST(IoService, RoundTripErrorAndRejectedResponses) {
  for (const ServiceStatus status :
       {ServiceStatus::kError, ServiceStatus::kRejected}) {
    ServiceResponse r;
    r.id = 9;
    r.status = status;
    r.reason = "queue full: try again later";
    std::stringstream ss;
    ASSERT_TRUE(write_response(ss, r));
    const auto back = read_response(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, status);
    EXPECT_EQ(back->reason, r.reason) << "reason must survive with spaces";
    EXPECT_TRUE(back->ring.empty());
  }
}

TEST(IoService, StreamOfRecordsThenCleanEof) {
  std::stringstream ss;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ServiceRequest r;
    r.id = i;
    r.n = 4;
    ASSERT_TRUE(write_request(ss, r));
  }
  std::string err = "sentinel";
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto back = read_request(ss, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->id, i);
  }
  // End of stream is not an error: nullopt with *error cleared, the
  // daemon's orderly-shutdown signal.
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_TRUE(err.empty());
}

TEST(IoService, RequestRejectsBadHeader) {
  std::stringstream ss("starring-request v2\nid 1\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad header");
}

TEST(IoService, RequestRejectsBadIdLine) {
  std::stringstream ss("starring-request v1\nident 1\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad id line");
}

TEST(IoService, RequestRejectsBadDimension) {
  std::stringstream ss("starring-request v1\nid 1\nn 99\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad dimension line");
}

TEST(IoService, RequestRejectsBadVerifyFlag) {
  std::stringstream ss(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\nedge_faults 0\n"
      "verify 2\nend\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad verify line");
}

TEST(IoService, RequestRejectsMissingEnd) {
  std::stringstream ss(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\nedge_faults 0\n"
      "verify 0\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "missing end line");
}

TEST(IoService, RequestRejectsBadFaultLiteral) {
  std::stringstream ss(
      "starring-request v1\nid 1\nn 4\nvertex_faults 1\n1135\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_NE(err.find("bad vertex fault"), std::string::npos);
}

TEST(IoService, ResponseRejectsBadStatus) {
  std::stringstream ss("starring-response v1\nid 1\nstatus maybe\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "bad status 'maybe'");
}

TEST(IoService, ResponseRejectsBadCacheToken) {
  std::stringstream ss(
      "starring-response v1\nid 1\nstatus ok\ncache warm\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "bad cache line");
}

TEST(IoService, ResponseRejectsBadVerifiedFlag) {
  std::stringstream ss(
      "starring-response v1\nid 1\nstatus ok\ncache miss\nverified yes\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "bad verified line");
}

TEST(IoService, ResponseRejectsTruncatedRing) {
  std::stringstream ss(
      "starring-response v1\nid 1\nstatus ok\ncache miss\nverified 0\n"
      "ring 4\n1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "truncated sequence");
}

TEST(IoService, ResponseRejectsMissingReason) {
  std::stringstream ss("starring-response v1\nid 1\nstatus error\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "bad reason line");
}

TEST(IoService, StatsRequestRoundTrips) {
  ServiceRequest r;
  r.kind = RequestKind::kStats;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str(), "STATS\n");
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, RequestKind::kStats);
}

TEST(IoService, StatsLineInterleavesWithRequestRecords) {
  // A STATS command between two normal requests must not desync the
  // stream: all three records parse, in order.
  ServiceRequest a;
  a.id = 1;
  a.n = 4;
  ServiceRequest stats;
  stats.kind = RequestKind::kStats;
  ServiceRequest b;
  b.id = 2;
  b.n = 4;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, a));
  ASSERT_TRUE(write_request(ss, stats));
  ASSERT_TRUE(write_request(ss, b));
  const auto r1 = read_request(ss);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->kind, RequestKind::kEmbed);
  EXPECT_EQ(r1->id, 1);
  const auto r2 = read_request(ss);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->kind, RequestKind::kStats);
  const auto r3 = read_request(ss);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->kind, RequestKind::kEmbed);
  EXPECT_EQ(r3->id, 2);
}

TEST(IoService, StatsRecordRoundTripsBody) {
  const std::string body =
      "# HELP starring_svc_requests Counter starring_svc_requests.\n"
      "# TYPE starring_svc_requests counter\n"
      "starring_svc_requests 42\n";
  std::stringstream ss;
  ASSERT_TRUE(write_stats(ss, body));
  std::string err;
  const auto back = read_stats(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, body);
}

TEST(IoService, StatsRecordNormalizesMissingTrailingNewline) {
  std::stringstream ss;
  ASSERT_TRUE(write_stats(ss, "one\ntwo"));
  EXPECT_EQ(ss.str(), "starring-stats v1\nlines 2\none\ntwo\nend\n");
  const auto back = read_stats(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "one\ntwo\n");
}

TEST(IoService, StatsRecordEmptyBody) {
  std::stringstream ss;
  ASSERT_TRUE(write_stats(ss, ""));
  EXPECT_EQ(ss.str(), "starring-stats v1\nlines 0\nend\n");
  const auto back = read_stats(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(IoService, StatsRecordRejectsBadHeader) {
  std::stringstream ss("starring-stats v2\nlines 0\nend\n");
  std::string err;
  EXPECT_FALSE(read_stats(ss, &err).has_value());
  EXPECT_EQ(err, "bad header");
}

TEST(IoService, StatsRecordRejectsTruncatedBody) {
  std::stringstream ss("starring-stats v1\nlines 3\nonly one line\n");
  std::string err;
  EXPECT_FALSE(read_stats(ss, &err).has_value());
  EXPECT_EQ(err, "truncated stats body");
}

TEST(IoService, StatsRecordRejectsMissingEnd) {
  std::stringstream ss("starring-stats v1\nlines 1\na_metric 1\n");
  std::string err;
  EXPECT_FALSE(read_stats(ss, &err).has_value());
  EXPECT_EQ(err, "missing end line");
}

// ---------------------------------------------------------------------------
// Reliability-layer protocol surface: deadlines, the timeout status,
// bare commands (PING / FAIL), and hostile frames.

TEST(IoService, RequestDeadlineRoundTrips) {
  ServiceRequest r;
  r.id = 3;
  r.n = 5;
  r.deadline_ms = 250;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_NE(ss.str().find("deadline_ms 250\n"), std::string::npos);
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->deadline_ms, 250);
}

TEST(IoService, RequestWithoutDeadlineOmitsLine) {
  ServiceRequest r;
  r.id = 3;
  r.n = 5;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str().find("deadline_ms"), std::string::npos)
      << "no budget requested, no line on the wire";
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->deadline_ms, 0);
}

TEST(IoService, RequestRejectsBadDeadline) {
  for (const char* bad : {"deadline_ms -5", "deadline_ms 0",
                          "deadline_ms soon"}) {
    std::stringstream ss(
        std::string("starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
                    "edge_faults 0\nverify 0\n") +
        bad + "\nend\n");
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value()) << bad;
    EXPECT_EQ(err, "bad deadline_ms line") << bad;
  }
}

TEST(IoService, TimeoutResponseRoundTrips) {
  ServiceResponse r;
  r.id = 11;
  r.status = ServiceStatus::kTimeout;
  r.reason = "deadline expired in queue";
  std::stringstream ss;
  ASSERT_TRUE(write_response(ss, r));
  std::string err;
  const auto back = read_response(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->status, ServiceStatus::kTimeout);
  EXPECT_EQ(back->reason, r.reason);
  EXPECT_TRUE(back->ring.empty());
}

TEST(IoService, RequestRejectsOversizedVertexFaultCount) {
  // n=4 admits at most 4! = 24 faulty vertices; a larger count is a
  // framing error refused before the parse loop spins.
  std::stringstream ss(
      "starring-request v1\nid 1\nn 4\nvertex_faults 25\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "vertex_faults count out of range");
}

TEST(IoService, RequestRejectsOversizedEdgeFaultCount) {
  std::stringstream ss(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
      "edge_faults 9999999\n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "edge_faults count out of range");
}

TEST(IoService, ResponseRejectsOversizedRingCount) {
  // The advertised count exceeds kMaxN! — rejected up front, never
  // sized into an allocation.
  std::stringstream ss(
      "starring-response v1\nid 1\nstatus ok\ncache miss\nverified 0\n"
      "ring 99999999999999999\n");
  std::string err;
  EXPECT_FALSE(read_response(ss, &err).has_value());
  EXPECT_EQ(err, "sequence count out of range");
}

TEST(IoService, RequestRejectsGarbageFrame) {
  std::stringstream ss("\x7f\x45LF\x02\x01 not a protocol frame at all");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad header");
}

TEST(IoService, RequestRejectsEmbeddedNulFrame) {
  // A NUL is not whitespace: it glues onto the next token and the frame
  // must be refused cleanly instead of desyncing the parser.
  const char raw[] =
      "starring-request v1\nid 1\n\0n 4\nvertex_faults 0\n"
      "edge_faults 0\nverify 0\nend\n";
  std::stringstream ss(std::string(raw, sizeof(raw) - 1));
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "bad dimension line");
}

TEST(IoService, PingRoundTrips) {
  ServiceRequest r;
  r.kind = RequestKind::kPing;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str(), "PING\n");
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, RequestKind::kPing);
}

TEST(IoService, FailCommandRoundTrips) {
  ServiceRequest r;
  r.kind = RequestKind::kFail;
  r.fail_config = "svc.embed=error@once,svc.batch=off";
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str(), "FAIL svc.embed=error@once,svc.batch=off\n");
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, RequestKind::kFail);
  EXPECT_EQ(back->fail_config, r.fail_config);
}

TEST(IoService, FailCommandTrimsPaddingAndCr) {
  std::stringstream ss("FAIL   svc.cache_lookup=p:0.5 \r\n");
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, RequestKind::kFail);
  EXPECT_EQ(back->fail_config, "svc.cache_lookup=p:0.5");
}

TEST(IoService, FailCommandRejectsEmptyConfig) {
  std::stringstream ss("FAIL \n");
  std::string err;
  EXPECT_FALSE(read_request(ss, &err).has_value());
  EXPECT_EQ(err, "FAIL needs a config");
}

TEST(IoService, CommandsInterleaveWithRequestRecords) {
  ServiceRequest a;
  a.id = 5;
  a.n = 4;
  a.deadline_ms = 10;
  ServiceRequest ping;
  ping.kind = RequestKind::kPing;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, ping));
  ASSERT_TRUE(write_request(ss, a));
  ASSERT_TRUE(write_request(ss, ping));
  const auto r1 = read_request(ss);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->kind, RequestKind::kPing);
  const auto r2 = read_request(ss);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->kind, RequestKind::kEmbed);
  EXPECT_EQ(r2->id, 5u);
  EXPECT_EQ(r2->deadline_ms, 10);
  const auto r3 = read_request(ss);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->kind, RequestKind::kPing);
}

TEST(Io, LargeNDotSeparatedFaults) {
  const StarGraph g(11);
  EmbeddingFile e;
  e.n = 11;
  FaultSet f;
  f.add_vertex(Perm::identity(11));
  e.faults = f;
  e.sequence = {0, 1};
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->faults.vertex_faulty(Perm::identity(11)));
  (void)g;
}

TEST(IoService, RequestTenantRoundTrips) {
  ServiceRequest r;
  r.id = 7;
  r.n = 5;
  r.tenant = "team-a";
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_NE(ss.str().find("tenant team-a\n"), std::string::npos);
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->tenant, "team-a");
}

TEST(IoService, RequestWithoutTenantOmitsLineAndParsesEmpty) {
  // Backward compatibility both ways: an untagged request writes no
  // tenant line (old readers keep working), and parsing such a record
  // yields an empty tenant — which the service buckets into `default`,
  // so omitting the line never bypasses quotas.
  ServiceRequest r;
  r.id = 7;
  r.n = 5;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str().find("tenant"), std::string::npos);
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->tenant.empty());
}

TEST(IoService, TenantAndDeadlineAcceptedInEitherOrder) {
  for (const char* tail :
       {"tenant acme\ndeadline_ms 40\n", "deadline_ms 40\ntenant acme\n"}) {
    std::stringstream ss(
        std::string("starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
                    "edge_faults 0\nverify 0\n") +
        tail + "end\n");
    std::string err;
    const auto back = read_request(ss, &err);
    ASSERT_TRUE(back.has_value()) << tail << ": " << err;
    EXPECT_EQ(back->tenant, "acme");
    EXPECT_EQ(back->deadline_ms, 40);
  }
}

TEST(IoService, RequestRejectsBadTenantLine) {
  const std::string head(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
      "edge_faults 0\nverify 0\n");
  {
    // Empty name.
    std::stringstream ss(head + "tenant\nend\n");
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value());
    EXPECT_EQ(err, "bad tenant line");
  }
  {
    // Longer than the wire allows (tenant names become metric names).
    std::stringstream ss(head + "tenant " +
                         std::string(kMaxTenantLen + 1, 'x') + "\nend\n");
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value());
    EXPECT_EQ(err, "bad tenant line");
  }
  {
    // At the limit: fine.
    std::stringstream ss(head + "tenant " +
                         std::string(kMaxTenantLen, 'x') + "\nend\n");
    std::string err;
    const auto back = read_request(ss, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->tenant.size(), kMaxTenantLen);
  }
}

TEST(IoService, HealthCommandAndRecordRoundTrip) {
  // The bare HEALTH line parses as a request kind...
  std::stringstream cmd;
  ServiceRequest req;
  req.kind = RequestKind::kHealth;
  ASSERT_TRUE(write_request(cmd, req));
  EXPECT_EQ(cmd.str(), "HEALTH\n");
  std::string err;
  const auto back = read_request(cmd, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, RequestKind::kHealth);

  // ...and the starring-health record round-trips, including the
  // proxy's shard id of -1.
  for (const int id : {4, -1}) {
    HealthInfo h;
    h.shard_id = id;
    h.epoch = 9;
    h.cache_entries = 12;
    h.cache_hits = 340;
    h.cache_misses = 17;
    std::stringstream ss;
    ASSERT_TRUE(write_health(ss, h));
    const auto got = read_health(ss, &err);
    ASSERT_TRUE(got.has_value()) << err;
    EXPECT_EQ(got->shard_id, id);
    EXPECT_EQ(got->epoch, 9u);
    EXPECT_EQ(got->cache_entries, 12u);
    EXPECT_EQ(got->cache_hits, 340u);
    EXPECT_EQ(got->cache_misses, 17u);
  }
}

TEST(IoService, HealthRecordRejectsGarbage) {
  for (const char* text :
       {"starring-health v2\nshard 0\nepoch 1\ncache_entries 0\n"
        "cache_hits 0\ncache_misses 0\nend\n",
        "starring-health v1\nshard -2\nepoch 1\ncache_entries 0\n"
        "cache_hits 0\ncache_misses 0\nend\n",
        "starring-health v1\nshard 0\nepoch 1\n"}) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(read_health(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(IoService, SeedRecordRoundTrips) {
  ServiceRequest req;
  req.kind = RequestKind::kSeed;
  req.n = 4;
  req.seed_key = "n=4;fv=0.1.2.3";
  for (VertexId v = 0; v < 22; ++v) req.seed_ring.push_back(v);
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, req));
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, RequestKind::kSeed);
  EXPECT_EQ(back->n, 4);
  EXPECT_EQ(back->seed_key, req.seed_key);
  EXPECT_EQ(back->seed_ring, req.seed_ring);
}

TEST(IoService, SeedRecordRejectsGarbage) {
  const std::string long_key(kMaxSeedKeyLen + 1, 'k');
  const std::string cases[] = {
      "starring-seed v2\nn 4\nkey k\nring 1\n0\nend\n",
      "starring-seed v1\nn 0\nkey k\nring 1\n0\nend\n",
      "starring-seed v1\nn 4\nkey " + long_key + "\nring 1\n0\nend\n",
      "starring-seed v1\nn 4\nkey k\nring 3\n0 1\nend\n",  // truncated
      "starring-seed v1\nn 4\nkey k\nring 1\n0\n",         // no end
  };
  for (const std::string& text : cases) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(IoService, ThrottledResponseRoundTrips) {
  ServiceResponse r;
  r.id = 21;
  r.status = ServiceStatus::kThrottled;
  r.reason = "tenant quota exhausted";
  std::stringstream ss;
  ASSERT_TRUE(write_response(ss, r));
  EXPECT_NE(ss.str().find("status throttled\n"), std::string::npos);
  std::string err;
  const auto back = read_response(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->status, ServiceStatus::kThrottled);
  EXPECT_EQ(back->reason, r.reason);
  EXPECT_TRUE(back->ring.empty());
}

// --- distributed tracing protocol surface ----------------------------
// The optional trace line on requests, the bare TRACE/SLOW commands,
// the extended health record, and the starring-trace v1 span-dump
// codec the proxy's merge path consumes.

TEST(IoService, RequestTraceLineRoundTrips) {
  ServiceRequest r;
  r.id = 7;
  r.n = 5;
  r.trace_id = 0x1000000000001ULL;  // namespace 1, first id
  r.parent_span_id = 42;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_NE(ss.str().find("trace 281474976710657 42\n"), std::string::npos);
  std::string err;
  const auto back = read_request(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->trace_id, r.trace_id);
  EXPECT_EQ(back->parent_span_id, 42u);
}

TEST(IoService, RequestWithoutTraceOmitsLine) {
  // trace_id 0 is the "untraced" sentinel: no line on the wire, and an
  // old reader never sees the word.
  ServiceRequest r;
  r.id = 7;
  r.n = 5;
  std::stringstream ss;
  ASSERT_TRUE(write_request(ss, r));
  EXPECT_EQ(ss.str().find("trace"), std::string::npos);
  const auto back = read_request(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->parent_span_id, 0u);
}

TEST(IoService, TraceAcceptedInAnyOrderWithTenantAndDeadline) {
  const std::string head(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
      "edge_faults 0\nverify 0\n");
  for (const char* tail :
       {"trace 9 3\ntenant acme\ndeadline_ms 40\n",
        "tenant acme\ntrace 9 3\ndeadline_ms 40\n",
        "deadline_ms 40\ntenant acme\ntrace 9 3\n"}) {
    std::stringstream ss(head + tail + "end\n");
    std::string err;
    const auto back = read_request(ss, &err);
    ASSERT_TRUE(back.has_value()) << tail << ": " << err;
    EXPECT_EQ(back->trace_id, 9u);
    EXPECT_EQ(back->parent_span_id, 3u);
    EXPECT_EQ(back->tenant, "acme");
    EXPECT_EQ(back->deadline_ms, 40);
  }
}

TEST(IoService, RequestRejectsBadTraceLine) {
  const std::string head(
      "starring-request v1\nid 1\nn 4\nvertex_faults 0\n"
      "edge_faults 0\nverify 0\n");
  for (const char* bad : {
           "trace\n",                  // no ids at all
           "trace 7\n",                // missing parent span id
           "trace abc 1\n",            // non-numeric trace id
           "trace 7 abc\n",            // non-numeric parent id
           "trace -7 1\n",             // negative: ids are unsigned
           "trace 0 1\n",              // 0 is the untraced sentinel
           "trace 18446744073709551616 1\n",   // 2^64: overflows u64
           "trace 999999999999999999999 1\n",  // oversized digit string
           "trace 7 18446744073709551616\n",   // parent overflows too
       }) {
    std::stringstream ss(head + bad + "end\n");
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value()) << bad;
    EXPECT_EQ(err, "bad trace line") << bad;
  }
  {
    // A repeated optional line is not part of the grammar either.
    std::stringstream ss(head + "trace 7 1\ntrace 7 1\nend\n");
    std::string err;
    EXPECT_FALSE(read_request(ss, &err).has_value());
    EXPECT_EQ(err, "missing end line");
  }
}

TEST(IoService, TraceAndSlowCommandsRoundTrip) {
  for (const auto& [kind, wire] :
       {std::pair{RequestKind::kTrace, "TRACE\n"},
        std::pair{RequestKind::kSlow, "SLOW\n"}}) {
    std::stringstream ss;
    ServiceRequest req;
    req.kind = kind;
    ASSERT_TRUE(write_request(ss, req));
    EXPECT_EQ(ss.str(), wire);
    std::string err;
    const auto back = read_request(ss, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->kind, kind);
  }
}

TEST(IoService, HealthRecordCarriesUptimeAndInflight) {
  HealthInfo h;
  h.shard_id = 2;
  h.epoch = 3;
  h.uptime_ms = 15321;
  h.inflight = 4;
  std::stringstream ss;
  ASSERT_TRUE(write_health(ss, h));
  EXPECT_NE(ss.str().find("uptime_ms 15321\n"), std::string::npos);
  EXPECT_NE(ss.str().find("inflight 4\n"), std::string::npos);
  std::string err;
  const auto back = read_health(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->uptime_ms, 15321u);
  EXPECT_EQ(back->inflight, 4u);
}

TEST(IoService, HealthRecordToleratesMissingOptionalLines) {
  // A pre-tracing shard's record (no uptime_ms/inflight) still parses,
  // with the gauges defaulting to zero.
  std::stringstream ss(
      "starring-health v1\nshard 1\nepoch 2\ncache_entries 5\n"
      "cache_hits 6\ncache_misses 7\nend\n");
  std::string err;
  const auto back = read_health(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->uptime_ms, 0u);
  EXPECT_EQ(back->inflight, 0u);
}

TEST(IoService, TraceDumpRoundTrips) {
  TraceDump d;
  d.process = "shard-1";
  d.epoch_ns = 123456789;
  d.dropped = 3;
  obs::trace::SpanRecord a;
  a.trace_id = 0x2000000000005ULL;
  a.span_id = 11;
  a.parent_id = 0;
  a.start_ns = 1000;
  a.dur_ns = 2500;
  a.tid = 1;
  a.name = "svc.request";
  obs::trace::SpanRecord b;
  b.trace_id = a.trace_id;
  b.span_id = 12;
  b.parent_id = 11;
  b.start_ns = 1100;
  b.dur_ns = 200;
  b.tid = 1;
  b.name = "";  // unnamed spans survive the wire too
  d.spans = {a, b};

  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, d));
  std::string err;
  const auto back = read_trace(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->process, "shard-1");
  EXPECT_EQ(back->epoch_ns, 123456789u);
  EXPECT_EQ(back->dropped, 3u);
  ASSERT_EQ(back->spans.size(), 2u);
  EXPECT_EQ(back->spans[0].trace_id, a.trace_id);
  EXPECT_EQ(back->spans[0].span_id, 11u);
  EXPECT_EQ(back->spans[0].parent_id, 0u);
  EXPECT_EQ(back->spans[0].start_ns, 1000);
  EXPECT_EQ(back->spans[0].dur_ns, 2500);
  EXPECT_EQ(back->spans[0].tid, 1u);
  EXPECT_EQ(back->spans[0].name, "svc.request");
  EXPECT_EQ(back->spans[1].parent_id, 11u);
  EXPECT_TRUE(back->spans[1].name.empty());
}

TEST(IoService, TraceDumpEmptyRoundTrips) {
  TraceDump d;  // tracing disabled: process defaults, no spans
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, d));
  std::string err;
  const auto back = read_trace(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_TRUE(back->process.empty());
  EXPECT_TRUE(back->spans.empty());
}

TEST(IoService, TraceDumpRejectsGarbage) {
  for (const char* text : {
           "starring-trace v2\nprocess p\nepoch_ns 0\ndropped 0\n"
           "spans 0\nend\n",  // wrong version
           "starring-trace v1\nprocess p\nepoch_ns 0\ndropped 0\n"
           "spans 2\n1 2 0 5 5 0 x\nend\n",  // fewer spans than declared
           "starring-trace v1\nprocess p\nepoch_ns 0\ndropped 0\n"
           "spans 1\n1 2 0 5\nend\n",  // truncated span line
           "starring-trace v1\nprocess p\nepoch_ns 0\ndropped 0\n"
           "spans 1\n1 2 0 5 5 0 x\n",  // missing end
           "starring-trace v1\nprocess p\nepoch_ns 0\ndropped 0\n"
           "spans 99999999999999999999\n",  // absurd span count
       }) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(read_trace(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(IoGossip, PingWithPiggybackRoundTrips) {
  GossipMessage m;
  m.kind = GossipMessage::Kind::kPing;
  m.from = {"127.0.0.1:47181", 0, 3, MemberWireState::kAlive};
  m.updates.push_back({"127.0.0.1:47182", 1, 2, MemberWireState::kSuspect});
  m.updates.push_back({"127.0.0.1:47190", -1, 1, MemberWireState::kLeft});
  std::stringstream ss;
  ASSERT_TRUE(write_gossip(ss, m));
  std::string err;
  const auto back = read_gossip(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, GossipMessage::Kind::kPing);
  EXPECT_EQ(back->from.addr, "127.0.0.1:47181");
  EXPECT_EQ(back->from.shard_id, 0);
  EXPECT_EQ(back->from.incarnation, 3u);
  ASSERT_EQ(back->updates.size(), 2u);
  EXPECT_EQ(back->updates[0].state, MemberWireState::kSuspect);
  EXPECT_EQ(back->updates[1].shard_id, -1);
  EXPECT_EQ(back->updates[1].state, MemberWireState::kLeft);
}

TEST(IoGossip, PingReqCarriesItsTarget) {
  GossipMessage m;
  m.kind = GossipMessage::Kind::kPingReq;
  m.from = {"127.0.0.1:47181", 0, 1, MemberWireState::kAlive};
  m.target = "127.0.0.1:47183";
  std::stringstream ss;
  ASSERT_TRUE(write_gossip(ss, m));
  std::string err;
  const auto back = read_gossip(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, GossipMessage::Kind::kPingReq);
  EXPECT_EQ(back->target, "127.0.0.1:47183");
  EXPECT_TRUE(back->updates.empty());
}

TEST(IoGossip, GossipRidesTheRequestStream) {
  // A gossip record is a first-class request: read_request dispatches
  // on the magic token so SWIM shares the data-path listener.
  GossipMessage m;
  m.kind = GossipMessage::Kind::kJoin;
  m.from = {"127.0.0.1:47185", 3, 1, MemberWireState::kAlive};
  std::stringstream ss;
  ASSERT_TRUE(write_gossip(ss, m));
  std::string err;
  const auto req = read_request(ss, &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->kind, RequestKind::kGossip);
  ASSERT_NE(req->gossip, nullptr);
  EXPECT_EQ(req->gossip->kind, GossipMessage::Kind::kJoin);
  EXPECT_EQ(req->gossip->from.addr, "127.0.0.1:47185");
}

TEST(IoGossip, MembersAndLeaveAreBareCommands) {
  {
    std::stringstream ss("MEMBERS\n");
    const auto req = read_request(ss);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->kind, RequestKind::kMembers);
  }
  {
    std::stringstream ss("LEAVE\n");
    const auto req = read_request(ss);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->kind, RequestKind::kLeave);
  }
}

TEST(IoGossip, RejectsGarbage) {
  for (const char* text : {
           "starring-gossip v2\nkind ping\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 0\nend\n",  // wrong version
           "starring-gossip v1\nkind shout\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 0\nend\n",  // unknown kind
           "starring-gossip v1\nkind ping\nfrom 127.0.0.1:1 0 1 zombie\n"
           "updates 0\nend\n",  // unknown state
           "starring-gossip v1\nkind ping\nfrom notanaddr 0 1 alive\n"
           "updates 0\nend\n",  // malformed address
           "starring-gossip v1\nkind ping\nfrom 127.0.0.1:1 -2 1 alive\n"
           "updates 0\nend\n",  // shard id below the observer sentinel
           "starring-gossip v1\nkind ping-req\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 0\nend\n",  // ping-req without a target
           "starring-gossip v1\nkind ping\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 2\nupdate 127.0.0.1:2 1 1 alive\nend\n",  // short count
           "starring-gossip v1\nkind ping\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 99999999\n",  // absurd update count
           "starring-gossip v1\nkind ping\nfrom 127.0.0.1:1 0 1 alive\n"
           "updates 0\n",  // missing end
       }) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(read_gossip(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
  // Clean EOF is distinguishable from malformation: empty error.
  std::stringstream empty;
  std::string err = "sentinel";
  EXPECT_FALSE(read_gossip(empty, &err).has_value());
  EXPECT_TRUE(err.empty());
}

TEST(IoMembership, SnapshotRoundTrips) {
  MembershipRecord r;
  r.epoch = 42;
  r.replication = 3;
  r.vnodes = 64;
  r.members.push_back({"127.0.0.1:47181", 0, 5, MemberWireState::kAlive});
  r.members.push_back({"127.0.0.1:47182", 1, 1, MemberWireState::kSuspect});
  r.members.push_back({"127.0.0.1:47190", -1, 2, MemberWireState::kAlive});
  std::stringstream ss;
  ASSERT_TRUE(write_membership(ss, r));
  std::string err;
  const auto back = read_membership(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->epoch, 42u);
  EXPECT_EQ(back->replication, 3);
  EXPECT_EQ(back->vnodes, 64);
  ASSERT_EQ(back->members.size(), 3u);
  EXPECT_EQ(back->members[1].state, MemberWireState::kSuspect);
  EXPECT_EQ(back->members[2].shard_id, -1);
}

TEST(IoMembership, EmptySnapshotRoundTrips) {
  // A process without a membership agent answers MEMBERS with the
  // defaults: epoch 0, no members.
  MembershipRecord r;
  r.epoch = 0;
  std::stringstream ss;
  ASSERT_TRUE(write_membership(ss, r));
  const auto back = read_membership(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 0u);
  EXPECT_TRUE(back->members.empty());
}

TEST(IoMembership, RejectsGarbage) {
  for (const char* text : {
           "starring-membership v2\nepoch 1\nreplication 2\nvnodes 128\n"
           "members 0\nend\n",  // wrong version
           "starring-membership v1\nepoch x\nreplication 2\nvnodes 128\n"
           "members 0\nend\n",  // non-numeric epoch
           "starring-membership v1\nepoch 1\nreplication 2\nvnodes 128\n"
           "members 1\nend\n",  // fewer members than declared
           "starring-membership v1\nepoch 1\nreplication 2\nvnodes 128\n"
           "members 1\nmember bad 0 1 alive\nend\n",  // bad address
           "starring-membership v1\nepoch 1\nreplication 2\nvnodes 128\n"
           "members 0\n",  // missing end
       }) {
    std::stringstream ss(text);
    std::string err;
    EXPECT_FALSE(read_membership(ss, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

}  // namespace
}  // namespace starring
