// starringd — long-running embedding daemon.
//
// Speaks the versioned starring-request/starring-response line protocol
// (util/io.hpp) over stdio (default) or TCP (--listen PORT, loopback).
// Requests flow through the EmbedService: bounded admission queue,
// same-dimension batching on the persistent thread pool, and the
// symmetry-canonical result cache.
//
// Shutdown/drain semantics:
//   stdio: EOF on stdin stops admission; every queued request is still
//          answered, stdout is flushed, exit 0.
//   TCP:   SIGINT/SIGTERM stops accepting, half-closes live
//          connections (their reads see EOF), drains, exits 0.
// Backpressure: the stdio reader blocks on a full queue, which stops
// consuming the pipe — the OS pipe buffer then backpressures the
// client.  TCP connections instead get `status rejected` responses so
// remote callers can retry elsewhere.
//
// With --bench-artifact NAME the daemon enables the metrics layer and
// writes BENCH_<NAME>.json (svc.* counters, latency histogram, cache
// hit rate) to $STARRING_BENCH_DIR on clean drain.
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "obs/bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "util/io.hpp"

namespace starring {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// SIGUSR1 asks for a flight-recorder dump without stopping the daemon;
// a watcher thread does the actual file I/O (signal-safe handlers
// cannot).
volatile std::sig_atomic_t g_dump = 0;
void on_dump_signal(int) { g_dump = 1; }

// --- minimal fd <-> iostream glue (TCP connections) ------------------

class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) {}

 private:
  int_type underflow() override {
    ssize_t k;
    do {
      k = ::read(fd_, buf_, sizeof buf_);
    } while (k < 0 && errno == EINTR);
    if (k <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + k);
    return traits_type::to_int_type(buf_[0]);
  }

  int fd_;
  char buf_[4096];
};

class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) {}

 private:
  int_type overflow(int_type c) override {
    if (traits_type::eq_int_type(c, traits_type::eof())) return c;
    const char ch = traits_type::to_char_type(c);
    return write_all(&ch, 1) ? c : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize count) override {
    return write_all(s, static_cast<std::size_t>(count))
               ? count
               : std::streamsize{0};
  }
  bool write_all(const char* p, std::size_t count) {
    while (count > 0) {
      const ssize_t k = ::write(fd_, p, count);
      if (k < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += k;
      count -= static_cast<std::size_t>(k);
    }
    return true;
  }

  int fd_;
};

struct DaemonConfig {
  ServiceOptions svc;
  int listen_port = -1;  // -1: stdio mode
  std::string bench_artifact;
  std::string trace_out;  // non-empty: tracing on, dump here
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --queue-depth N      admission queue bound (default 256)\n"
      << "  --batch-max N        max requests per batch (default 16)\n"
      << "  --cache-capacity N   canonical embeddings kept (default 4096)\n"
      << "  --verify-on-hit      re-verify relabeled cache hits\n"
      << "  --threads N          embedding worker threads (0 = cores)\n"
      << "  --listen PORT        serve TCP on 127.0.0.1:PORT (default: "
         "stdio)\n"
      << "  --bench-artifact S   write BENCH_<S>.json on clean drain\n"
      << "  --trace-out FILE     enable tracing; dump Chrome trace JSON\n"
      << "                       on clean drain and on SIGUSR1\n";
  return 2;
}

std::optional<DaemonConfig> parse_args(int argc, char** argv) {
  DaemonConfig cfg;
  cfg.svc.embed.prewarm_oracle = true;  // a daemon amortizes the warmup
  const auto num = [&](int* i) -> long {
    if (*i + 1 >= argc) return -1;
    return std::atol(argv[++*i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long v = 0;
    if (a == "--queue-depth" && (v = num(&i)) > 0) {
      cfg.svc.queue_depth = static_cast<std::size_t>(v);
    } else if (a == "--batch-max" && (v = num(&i)) > 0) {
      cfg.svc.batch_max = static_cast<std::size_t>(v);
    } else if (a == "--cache-capacity" && (v = num(&i)) > 0) {
      cfg.svc.cache_capacity = static_cast<std::size_t>(v);
    } else if (a == "--verify-on-hit") {
      cfg.svc.verify_on_hit = true;
    } else if (a == "--threads" && (v = num(&i)) >= 0) {
      cfg.svc.embed.num_threads = static_cast<unsigned>(v);
    } else if (a == "--listen" && (v = num(&i)) > 0 && v < 65536) {
      cfg.listen_port = static_cast<int>(v);
    } else if (a == "--bench-artifact" && i + 1 < argc) {
      cfg.bench_artifact = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else {
      return std::nullopt;
    }
  }
  return cfg;
}

// --- stdio transport --------------------------------------------------

int serve_stdio(const DaemonConfig& cfg) {
  EmbedService svc(cfg.svc);
  std::mutex out_mu;
  std::thread writer([&] {
    while (auto resp = svc.next_response()) {
      const std::lock_guard<std::mutex> lock(out_mu);
      write_response(std::cout, *resp);
      std::cout.flush();
    }
  });

  int rc = 0;
  std::string err;
  while (g_stop == 0) {
    auto req = read_request(std::cin, &err);
    if (!req) {
      if (!err.empty()) {
        // Framing is token-based; a malformed record poisons the
        // stream.  Report once and drain what was admitted.
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        write_response(std::cout, bad);
        std::cout.flush();
        rc = 1;
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      // Answered inline on the reader thread — a live snapshot must not
      // wait behind queued embeddings.
      const std::lock_guard<std::mutex> lock(out_mu);
      write_stats(std::cout, obs::render_prometheus());
      std::cout.flush();
      continue;
    }
    // wait=true: a full queue stops the reader, and the pipe buffer
    // backpressures the writer on the other side.
    svc.submit(std::move(*req));
  }
  svc.drain();
  writer.join();
  return rc;
}

// --- TCP transport ----------------------------------------------------

struct ConnRegistry {
  std::mutex mu;
  std::vector<int> fds;

  void add(int fd) {
    const std::lock_guard<std::mutex> lock(mu);
    fds.push_back(fd);
  }
  void remove(int fd) {
    const std::lock_guard<std::mutex> lock(mu);
    std::erase(fds, fd);
  }
  void shutdown_all() {
    const std::lock_guard<std::mutex> lock(mu);
    // Half-close: readers see EOF, pending responses still flow out.
    for (const int fd : fds) ::shutdown(fd, SHUT_RD);
  }
};

void serve_connection(int fd, EmbedService& svc, ConnRegistry& reg) {
  FdInBuf in_buf(fd);
  FdOutBuf out_buf(fd);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);
  // Per-connection response routing; responses may complete out of
  // submission order across batches, ids correlate them.
  std::mutex out_mu;
  std::condition_variable done_cv;
  std::mutex done_mu;
  int outstanding = 0;

  std::string err;
  while (true) {
    auto req = read_request(in, &err);
    if (!req) {
      if (!err.empty()) {
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        write_response(out, bad);
        out.flush();
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      const std::lock_guard<std::mutex> lock(out_mu);
      write_stats(out, obs::render_prometheus());
      out.flush();
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(done_mu);
      ++outstanding;
    }
    const std::uint64_t id = req->id;
    const bool admitted = svc.submit(
        *req,
        [&, id](ServiceResponse resp) {
          {
            const std::lock_guard<std::mutex> lock(out_mu);
            write_response(out, resp);
            out.flush();
          }
          {
            // Notify under the lock: the connection thread may destroy
            // the cv the moment it observes outstanding == 0.
            const std::lock_guard<std::mutex> lock(done_mu);
            --outstanding;
            done_cv.notify_all();
          }
        },
        /*wait=*/false);
    if (!admitted) {
      // Remote callers get an explicit bounce instead of a stalled
      // socket, so they can back off or retry elsewhere.
      {
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse rej;
        rej.id = id;
        rej.status = ServiceStatus::kRejected;
        rej.reason = "queue full";
        write_response(out, rej);
        out.flush();
      }
      const std::lock_guard<std::mutex> lock(done_mu);
      --outstanding;
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return outstanding == 0; });
  }
  reg.remove(fd);
  ::close(fd);
}

int serve_tcp(const DaemonConfig& cfg) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "starringd: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg.listen_port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "starringd: bind/listen: " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  std::cerr << "starringd: listening on 127.0.0.1:" << cfg.listen_port
            << "\n";

  EmbedService svc(cfg.svc);
  ConnRegistry reg;
  std::vector<std::thread> conns;
  while (g_stop == 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200 /*ms*/);
    if (r <= 0) continue;  // timeout or EINTR: re-check g_stop
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    reg.add(fd);
    conns.emplace_back(
        [fd, &svc, &reg] { serve_connection(fd, svc, reg); });
  }
  ::close(listen_fd);
  reg.shutdown_all();
  for (std::thread& t : conns) t.join();
  svc.drain();
  return 0;
}

int daemon_main(int argc, char** argv) {
  const auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // A live daemon is meant to be inspected (STATS), so the metrics
  // layer is always on here; batch tools still opt in via BenchRecorder
  // or STARRING_METRICS.
  obs::set_enabled(true);

  std::unique_ptr<obs::BenchRecorder> rec;
  if (!cfg->bench_artifact.empty())
    rec = std::make_unique<obs::BenchRecorder>(cfg->bench_artifact);

  std::thread dump_watcher;
  std::atomic<bool> dump_watcher_stop{false};
  if (!cfg->trace_out.empty()) {
    obs::trace::set_enabled(true);
    std::signal(SIGUSR1, on_dump_signal);
    const std::string path = cfg->trace_out;
    dump_watcher = std::thread([path, &dump_watcher_stop] {
      while (!dump_watcher_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (g_dump != 0) {
          g_dump = 0;
          if (!obs::trace::write_chrome_trace_file(path))
            std::cerr << "starringd: cannot write trace to " << path
                      << "\n";
          else
            std::cerr << "starringd: trace dumped to " << path << "\n";
        }
      }
    });
  }

  const int rc = cfg->listen_port > 0 ? serve_tcp(*cfg) : serve_stdio(*cfg);

  if (!cfg->trace_out.empty()) {
    dump_watcher_stop.store(true, std::memory_order_relaxed);
    dump_watcher.join();
    if (!obs::trace::write_chrome_trace_file(cfg->trace_out)) {
      std::cerr << "starringd: cannot write trace to " << cfg->trace_out
                << "\n";
      return rc == 0 ? 1 : rc;
    }
  }

  if (rec) {
    const double hits =
        static_cast<double>(obs::counter("svc.cache_hits").value());
    const double misses =
        static_cast<double>(obs::counter("svc.cache_misses").value());
    rec->add_counter("svc.cache_hit_rate",
                     hits + misses > 0 ? hits / (hits + misses) : 0.0);
  }
  return rc;
}

}  // namespace
}  // namespace starring

int main(int argc, char** argv) {
  return starring::daemon_main(argc, argv);
}
