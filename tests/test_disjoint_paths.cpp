// Tests for the vertex-disjoint path machinery and the star graph's
// maximal fault tolerance (connectivity = degree = n-1).
#include <gtest/gtest.h>

#include <set>

#include "fault/generators.hpp"
#include "graph/disjoint_paths.hpp"
#include "routing/routing.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

void expect_disjoint_valid(const Graph& g,
                           const std::vector<std::vector<std::uint64_t>>& ps,
                           std::uint64_t s, std::uint64_t t) {
  std::set<std::uint64_t> interior;
  for (const auto& p : ps) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), s);
    EXPECT_EQ(p.back(), t);
    EXPECT_TRUE(is_valid_path(g, p));
    for (std::size_t i = 1; i + 1 < p.size(); ++i)
      EXPECT_TRUE(interior.insert(p[i]).second)
          << "interior vertex " << p[i] << " reused";
  }
}

Graph cycle_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

TEST(DisjointPaths, CycleHasExactlyTwo) {
  const Graph g = cycle_graph(8);
  const auto ps = vertex_disjoint_paths(g, 0, 4, 5);
  EXPECT_EQ(ps.size(), 2u);
  expect_disjoint_valid(g, ps, 0, 4);
}

TEST(DisjointPaths, CompleteGraphSaturates) {
  const Graph g = complete_graph(6);
  const auto ps = vertex_disjoint_paths(g, 1, 4, 5);
  EXPECT_EQ(ps.size(), 5u);  // direct edge + 4 two-hop paths
  expect_disjoint_valid(g, ps, 1, 4);
}

TEST(DisjointPaths, WantLimitsCount) {
  const Graph g = complete_graph(7);
  const auto ps = vertex_disjoint_paths(g, 0, 6, 3);
  EXPECT_EQ(ps.size(), 3u);
  expect_disjoint_valid(g, ps, 0, 6);
}

TEST(DisjointPaths, DisconnectedPairYieldsNone) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(vertex_disjoint_paths(g, 0, 3, 2).empty());
}

TEST(DisjointPaths, LocalConnectivityCutVertex) {
  // Two triangles joined at a cut vertex: connectivity 1 across it.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 5, 4), 1);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 1, 4), 2);
}

TEST(DisjointPaths, StarGraphIsMaximallyFaultTolerant) {
  // kappa(S_n) = n-1: every sampled pair admits n-1 internally
  // disjoint paths.
  for (int n = 4; n <= 5; ++n) {
    const StarGraph sg(n);
    const Graph g = sg.materialize();
    for (VertexId t = 1; t < sg.num_vertices(); t += 13) {
      const auto ps = star_disjoint_paths(sg, g, sg.vertex(0), sg.vertex(t));
      EXPECT_EQ(ps.size(), static_cast<std::size_t>(n - 1))
          << "S_" << n << " pair (0," << t << ")";
      std::set<std::uint64_t> interior;
      for (const auto& p : ps) {
        EXPECT_EQ(p.front(), sg.vertex(0));
        EXPECT_EQ(p.back(), sg.vertex(t));
        for (std::size_t i = 0; i + 1 < p.size(); ++i)
          EXPECT_TRUE(p[i].adjacent(p[i + 1]));
        for (std::size_t i = 1; i + 1 < p.size(); ++i)
          EXPECT_TRUE(interior.insert(p[i].bits()).second);
      }
    }
  }
}

TEST(DisjointPaths, AntipodalPairOnS6) {
  const StarGraph sg(6);
  const Graph g = sg.materialize();
  std::vector<int> rev{5, 4, 3, 2, 1, 0};
  const auto ps =
      star_disjoint_paths(sg, g, Perm::identity(6), Perm::of(rev));
  EXPECT_EQ(ps.size(), 5u);
}

TEST(DisjointPaths, WhyNMinus3FaultsCannotDisconnect) {
  // The structural consequence the paper leans on: with |Fv| <= n-3
  // faults, any two healthy vertices stay connected (kappa = n-1 >
  // n-3), so fault_tolerant_route always succeeds.
  const StarGraph g(6);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FaultSet f = random_vertex_faults(g, 3, seed);
    Perm s = g.vertex(seed % g.num_vertices());
    while (f.vertex_faulty(s)) s = s.star_move(1).star_move(2);
    Perm t = g.vertex((seed * 7919 + 13) % g.num_vertices());
    while (f.vertex_faulty(t) || t == s) t = t.star_move(2).star_move(3);
    EXPECT_TRUE(fault_tolerant_route(g, f, s, t).has_value()) << seed;
  }
}

}  // namespace
}  // namespace starring
