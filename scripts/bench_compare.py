#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts (schema in obs/bench_io.hpp).

Usage: scripts/bench_compare.py BASELINE.json CANDIDATE.json
           [--regression-pct PCT] [--ignore-counters] [--json]
           [--gate METRIC[,METRIC...]]

Prints a table of wall_ms and every counter present in either artifact
(value, delta, percent change), then flags regressions: wall_ms or any
phase.*_ns counter growing by more than PCT percent (default 10) AND
by more than an absolute floor (1 ms), so sub-millisecond phases do
not false-flag on timer granularity.  With --gate only the listed
metrics are eligible for flagging (everything else stays
informational) — use it to hold one stable statistic to a tight
threshold without subjecting every noisy phase total to it.
--gate-min-delta overrides the absolute-change floor for gated
metrics: the default floor (1 ms for wall, 1e6 for counters) is sized
for nanosecond phase totals and makes small-valued gated counters
(ratios, percentages) unflaggable without it.  Exits 0
when clean, 1 on a flagged regression, 2 on a usage or schema error.  With --json the
table is replaced by one machine-readable JSON document on stdout
(metrics, regressions, exit semantics unchanged) for dashboards and
scripted gates.  Non-phase counters
are informational only -- cache hit counts and thread gauges move
legitimately between configurations.  With --normalize-by embed.calls
the comparison is per embedding call, which is what you want when the
two runs used different google-benchmark iteration counts.
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("bench", "n", "faults", "wall_ms", "counters", "git_rev")

# Gauge-style counters record a maximum, not a sum; they are never
# normalized by iteration count.
GAUGES = ("embed.max_n", "embed.max_faults", "embed.threads",
          "chain.threads", "pool.workers")


def load_artifact(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    missing = [k for k in REQUIRED_KEYS if k not in doc]
    if missing:
        sys.exit(f"bench_compare: {path} missing keys: {', '.join(missing)}")
    if not isinstance(doc["counters"], dict):
        sys.exit(f"bench_compare: {path}: counters is not an object")
    return doc


def pct_change(base, cand):
    if base == 0:
        return None
    return 100.0 * (cand - base) / base


def fmt_pct(p):
    return "n/a" if p is None else f"{p:+.1f}%"


def main():
    ap = argparse.ArgumentParser(
        description="diff two BENCH_<name>.json artifacts")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--regression-pct", type=float, default=10.0,
                    help="flag wall_ms / phase.*_ns growth beyond this "
                         "percentage (default: 10)")
    ap.add_argument("--ignore-counters", action="store_true",
                    help="compare wall_ms only")
    ap.add_argument("--json", action="store_true",
                    help="emit one machine-readable JSON document instead "
                         "of the table (same regression logic and exit "
                         "codes)")
    ap.add_argument("--gate", metavar="METRIC[,METRIC...]", default=None,
                    help="comma-separated metric names; when given, only "
                         "these are eligible for regression flagging "
                         "(wall_ms included only if listed)")
    ap.add_argument("--gate-min-delta", type=float, default=None,
                    metavar="DELTA",
                    help="absolute-change floor applied to gated metrics "
                         "(default: keep the built-in floors, 1.0 for "
                         "wall_ms and 1e6 for counters; pass a small value "
                         "when gating ratio-scale counters)")
    ap.add_argument("--normalize-by", metavar="COUNTER", default=None,
                    help="divide wall_ms and additive counters by this "
                         "counter's value in each artifact (e.g. "
                         "embed.calls), so runs with different "
                         "google-benchmark iteration counts compare "
                         "per-call instead of per-process")
    args = ap.parse_args()

    base = load_artifact(args.baseline)
    cand = load_artifact(args.candidate)

    table = not args.json

    base_div = cand_div = 1.0
    if args.normalize_by is not None:
        base_div = float(base["counters"].get(args.normalize_by, 0.0))
        cand_div = float(cand["counters"].get(args.normalize_by, 0.0))
        if base_div <= 0 or cand_div <= 0:
            sys.exit(f"bench_compare: counter {args.normalize_by} missing or "
                     f"zero; cannot normalize")
        if table:
            print(f"(normalized per {args.normalize_by}: "
                  f"baseline /{base_div:.0f}, candidate /{cand_div:.0f})")
    if base["bench"] != cand["bench"]:
        print(f"warning: comparing different benches "
              f"({base['bench']} vs {cand['bench']})", file=sys.stderr)

    if table:
        print(f"bench: {base['bench']}  baseline rev {base['git_rev']} -> "
              f"candidate rev {cand['git_rev']}")
        print(f"{'metric':<32} {'baseline':>14} {'candidate':>14} "
              f"{'change':>9}")
        print("-" * 72)

    regressions = []
    metrics = {}
    gate = None if args.gate is None else set(args.gate.split(","))

    def row(name, b, c, guard, min_delta=0.0):
        if gate is not None:
            guard = name in gate
            if guard and args.gate_min_delta is not None:
                min_delta = args.gate_min_delta
        p = pct_change(b, c)
        flagged = bool(guard and p is not None and p > args.regression_pct
                       and c - b > min_delta)
        if flagged:
            regressions.append((name, p))
        metrics[name] = {"baseline": b, "candidate": c, "pct_change": p,
                         "regression": flagged}
        if table:
            mark = "  << REGRESSION" if flagged else ""
            print(f"{name:<32} {b:>14.3f} {c:>14.3f} {fmt_pct(p):>9}{mark}")

    row("wall_ms", float(base["wall_ms"]) / base_div,
        float(cand["wall_ms"]) / cand_div, True, min_delta=1.0)

    if not args.ignore_counters:
        names = sorted(set(base["counters"]) | set(cand["counters"]))
        for name in names:
            b = float(base["counters"].get(name, 0.0))
            c = float(cand["counters"].get(name, 0.0))
            if name != args.normalize_by and name not in GAUGES:
                b /= base_div
                c /= cand_div
            # A phase regression must be both relatively and absolutely
            # meaningful: sub-millisecond phases jitter by large
            # percentages from timer granularity alone.
            row(name, b, c, name.startswith("phase.") and name.endswith("_ns"),
                min_delta=1e6)

    if args.json:
        json.dump({
            "bench": base["bench"],
            "baseline_rev": base["git_rev"],
            "candidate_rev": cand["git_rev"],
            "normalize_by": args.normalize_by,
            "regression_pct": args.regression_pct,
            "metrics": metrics,
            "regressions": [{"metric": n, "pct_change": p}
                            for n, p in regressions],
        }, sys.stdout, indent=2)
        print()
        return 1 if regressions else 0

    print("-" * 72)
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.regression_pct:.0f}% (worst: {worst[0]} {worst[1]:+.1f}%)")
        return 1
    print(f"no regressions beyond {args.regression_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
