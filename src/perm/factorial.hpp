// Compile-time factorial table used throughout the library for
// star-graph sizing (|V(S_n)| = n!) and Lehmer rank/unrank arithmetic.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace starring {

/// Largest n for which n! fits comfortably in uint64_t and for which the
/// packed permutation representation (4 bits per slot) works.
inline constexpr int kMaxN = 16;

namespace detail {
constexpr std::array<std::uint64_t, kMaxN + 1> make_factorials() {
  std::array<std::uint64_t, kMaxN + 1> f{};
  f[0] = 1;
  for (std::size_t i = 1; i < f.size(); ++i) f[i] = f[i - 1] * i;
  return f;
}
}  // namespace detail

/// factorial(n) == n! for 0 <= n <= kMaxN.
inline constexpr std::array<std::uint64_t, kMaxN + 1> kFactorial =
    detail::make_factorials();

/// Convenience accessor with an unsigned return type sized for vertex counts.
constexpr std::uint64_t factorial(int n) { return kFactorial[static_cast<std::size_t>(n)]; }

}  // namespace starring
