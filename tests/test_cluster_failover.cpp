// Process-level cluster tests: spawn real starringd shards and a real
// starring-proxy, SIGKILL the owner of a class mid-conversation, and
// assert a replica serves the retry (`status ok`, cluster.failover
// counted).  A second test storms the proxy's failpoints via the
// STARRING_FAILPOINTS environment and asserts every request still
// reaches a terminal status.
//
// These tests exec the binaries the build just produced, located
// relative to /proc/self/exe (build/tests/ -> build/src/...).  If the
// binaries are missing (component build), the tests skip.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.hpp"
#include "fault/generators.hpp"
#include "graph/graph.hpp"
#include "loadgen/loadgen.hpp"
#include "service/canonical.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring {
namespace {

std::string build_dir() {
  // /proc/self/exe = <build>/tests/test_cluster_failover
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len <= 0) return {};
  buf[len] = '\0';
  std::string path(buf);
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  path.resize(slash);  // .../tests
  const auto slash2 = path.rfind('/');
  if (slash2 == std::string::npos) return {};
  path.resize(slash2);  // <build>
  return path;
}

bool file_exists(const std::string& p) {
  return ::access(p.c_str(), X_OK) == 0;
}

/// fork+exec with stderr redirected to `stderr_path` (the daemons
/// announce their kernel-assigned port there) and optional extra
/// environment entries of the form NAME=VALUE.
pid_t spawn(const std::vector<std::string>& argv,
            const std::string& stderr_path,
            const std::vector<std::string>& extra_env = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int err_fd =
      ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (err_fd >= 0) {
    ::dup2(err_fd, 2);
    ::close(err_fd);
  }
  for (const std::string& kv : extra_env) {
    const auto eq = kv.find('=');
    ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
  }
  std::vector<char*> cargv;
  for (const std::string& a : argv)
    cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  ::execv(cargv[0], cargv.data());
  std::perror("execv");
  std::_Exit(127);
}

/// Poll a daemon's captured stderr for its "listening on
/// 127.0.0.1:<port>" line; -1 on timeout.
int wait_for_port(const std::string& stderr_path, int timeout_ms = 10000) {
  const char* needle = "listening on 127.0.0.1:";
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    std::ifstream f(stderr_path);
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    const auto pos = text.find(needle);
    if (pos != std::string::npos) {
      const int port = std::atoi(text.c_str() + pos + std::strlen(needle));
      if (port > 0) return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

/// A blocking client connection with bounded reads, so a wedged server
/// fails the test instead of hanging it.
struct Conn {
  explicit Conn(const net::Endpoint& ep, int read_timeout_ms = 20000)
      : fd(net::connect_endpoint(ep)),
        in_buf(fd, read_timeout_ms),
        out_buf(fd, /*write_timeout_ms=*/5000, &dead),
        in(&in_buf),
        out(&out_buf) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  bool ok() const { return fd >= 0; }

  int fd;
  std::atomic<bool> dead{false};
  net::FdInBuf in_buf;
  net::FdOutBuf out_buf;
  std::istream in;
  std::ostream out;
};

class ClusterProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::signal(SIGPIPE, SIG_IGN);
    bdir_ = build_dir();
    starringd_ = bdir_ + "/src/service/starringd";
    proxy_ = bdir_ + "/src/cluster/starring-proxy";
    if (!file_exists(starringd_) || !file_exists(proxy_))
      GTEST_SKIP() << "service binaries not built";
    char tmpl[] = "/tmp/starring-cluster-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (const pid_t pid : children_)
      if (pid > 0) ::kill(pid, SIGKILL);
    for (const pid_t pid : children_)
      if (pid > 0) ::waitpid(pid, nullptr, 0);
  }

  /// Reserve a free loopback port by binding and immediately closing a
  /// listener (SO_REUSEADDR on the daemon side makes the handoff safe).
  static int reserve_port() {
    int port = 0;
    std::string err;
    const int fd = net::listen_loopback(0, 1, &port, &err);
    if (fd < 0) return -1;
    ::close(fd);
    return port;
  }

  /// Boot `count` shards plus the proxy; fills shard_pids_/ports and
  /// returns the proxy endpoint.
  net::Endpoint boot_cluster(int count,
                             const std::vector<std::string>& proxy_extra,
                             const std::vector<std::string>& proxy_env) {
    std::ostringstream map;
    map << "starring-shard-map v1\nepoch 1\nreplication 2\nshards "
        << count << "\n";
    for (int i = 0; i < count; ++i) {
      shard_ports_.push_back(reserve_port());
      EXPECT_GT(shard_ports_.back(), 0);
      map << "shard " << i << " 127.0.0.1:" << shard_ports_.back() << "\n";
    }
    map << "end\n";
    map_path_ = dir_ + "/shards.map";
    std::ofstream(map_path_) << map.str();

    for (int i = 0; i < count; ++i) {
      const std::string log = dir_ + "/shard" + std::to_string(i) + ".log";
      const pid_t pid = spawn(
          {starringd_, "--listen", std::to_string(shard_ports_[i]),
           "--shard-id", std::to_string(i), "--shard-map", map_path_},
          log);
      children_.push_back(pid);
      shard_pids_.push_back(pid);
      EXPECT_EQ(wait_for_port(log), shard_ports_[i]) << "shard " << i;
    }

    std::vector<std::string> argv = {proxy_, "--shard-map", map_path_,
                                     "--listen", "0"};
    argv.insert(argv.end(), proxy_extra.begin(), proxy_extra.end());
    const std::string log = dir_ + "/proxy.log";
    children_.push_back(spawn(argv, log, proxy_env));
    const int port = wait_for_port(log);
    EXPECT_GT(port, 0) << "proxy never announced its port";
    return net::Endpoint{"127.0.0.1", port};
  }

  static std::optional<ServiceResponse> embed(Conn& c, std::uint64_t id,
                                              int n, const FaultSet& f) {
    ServiceRequest req;
    req.id = id;
    req.n = n;
    req.faults = f;
    if (!write_request(c.out, req)) return std::nullopt;
    c.out.flush();
    if (!c.out) return std::nullopt;
    return read_response(c.in);
  }

  static std::optional<double> scrape_counter(const net::Endpoint& ep,
                                              const std::string& metric) {
    Conn c(ep);
    if (!c.ok()) return std::nullopt;
    ServiceRequest req;
    req.kind = RequestKind::kStats;
    if (!write_request(c.out, req)) return std::nullopt;
    c.out.flush();
    const auto body = read_stats(c.in);
    if (!body) return std::nullopt;
    return loadgen::parse_scalar(*body, metric);
  }

  std::string bdir_, starringd_, proxy_, dir_, map_path_;
  std::vector<pid_t> children_;
  std::vector<pid_t> shard_pids_;
  std::vector<int> shard_ports_;
};

TEST_F(ClusterProcessTest, ReplicaServesAfterOwnerSigkill) {
  // Health polling off: the breaker state when the second request
  // arrives is exactly what the request path itself produced, so the
  // dead owner is still first in the candidate list and the serve
  // must go through the failover path (cluster.failover increments).
  const net::Endpoint proxy =
      boot_cluster(3, {"--health-interval-ms", "0", "--seed-threshold", "1"},
                   {});

  const int n = 5;
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, 2, 11);
  const auto canon = canonicalize(n, faults);

  // Compute the owner in-process from the same map file — placement is
  // deterministic across processes (test_cluster pins this).
  std::string err;
  const auto map = cluster::ShardMap::load(map_path_, &err);
  ASSERT_TRUE(map.has_value()) << err;
  const int owner = map->owner(canon.key);
  ASSERT_GE(owner, 0);

  Conn c(proxy);
  ASSERT_TRUE(c.ok());
  const auto first = embed(c, 1, n, faults);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->status, ServiceStatus::kOk);

  ASSERT_EQ(::kill(shard_pids_[owner], SIGKILL), 0);
  ::waitpid(shard_pids_[owner], nullptr, 0);
  shard_pids_[owner] = -1;

  // Same connection: the proxy's pooled upstream to the owner is now a
  // corpse; the retry must land on a replica and still answer ok.
  const auto second = embed(c, 2, n, faults);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, ServiceStatus::kOk) << second->reason;
  EXPECT_EQ(second->ring.size(), first->ring.size());

  const auto failover = scrape_counter(proxy, "starring_cluster_failover");
  ASSERT_TRUE(failover.has_value());
  EXPECT_GE(*failover, 1.0);
}

TEST_F(ClusterProcessTest, ChaosStormEveryRequestReachesTerminalStatus) {
  // Arm the proxy's failpoints through the environment, exactly as the
  // chaos CI stage does, and hammer it: some requests fail over, some
  // are answered error by the armed proxy.forward site — but every
  // single one gets a terminal response.
  const net::Endpoint proxy = boot_cluster(
      3, {"--health-interval-ms", "200"},
      {"STARRING_FAILPOINTS="
       "proxy.upstream=error@p:0.4,proxy.forward=error@p:0.1"});

  const int n = 4;
  const StarGraph g(n);
  Conn c(proxy);
  ASSERT_TRUE(c.ok());
  int ok = 0, errors = 0, rejected = 0, timeouts = 0;
  const int kRequests = 60;
  for (int i = 0; i < kRequests; ++i) {
    const FaultSet faults =
        random_vertex_faults(g, 1, static_cast<std::uint64_t>(i));
    const auto resp = embed(c, static_cast<std::uint64_t>(i + 1), n, faults);
    ASSERT_TRUE(resp.has_value()) << "request " << i << " never answered";
    switch (resp->status) {
      case ServiceStatus::kOk: ++ok; break;
      case ServiceStatus::kError: ++errors; break;
      case ServiceStatus::kRejected: ++rejected; break;
      case ServiceStatus::kTimeout: ++timeouts; break;
      case ServiceStatus::kThrottled: ++rejected; break;
    }
  }
  EXPECT_EQ(ok + errors + rejected + timeouts, kRequests);
  EXPECT_GT(ok, 0) << "storm at p:0.4 should still let most through";
}

}  // namespace
}  // namespace starring
