// Experiment E11 — routing substrate characterization
// (google-benchmark): the closed-form distance vs route generation vs
// fault-tolerant BFS, and single-port broadcast round counts.
#include <benchmark/benchmark.h>

#include "bench_artifact.hpp"

#include "fault/generators.hpp"
#include "routing/routing.hpp"

using namespace starring;

namespace {

void BM_StarDistance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  VertexId id = 1;
  for (auto _ : state) {
    id = (id * 2654435761u + 1) % g.num_vertices();
    benchmark::DoNotOptimize(star_distance(g.vertex(id)));
  }
}
BENCHMARK(BM_StarDistance)->DenseRange(6, 12, 2);

void BM_ShortestRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  VertexId id = 1;
  for (auto _ : state) {
    id = (id * 2654435761u + 1) % g.num_vertices();
    auto route = shortest_route(Perm::identity(n), g.vertex(id));
    benchmark::DoNotOptimize(route.data());
  }
}
BENCHMARK(BM_ShortestRoute)->DenseRange(6, 12, 2);

void BM_FaultTolerantRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  const FaultSet f = random_vertex_faults(g, n - 3, 3);
  Perm s = Perm::identity(n);
  while (f.vertex_faulty(s)) s = s.star_move(1).star_move(2);
  VertexId id = 1;
  for (auto _ : state) {
    id = (id * 2654435761u + 7) % g.num_vertices();
    Perm t = g.vertex(id);
    if (f.vertex_faulty(t)) t = s.star_move(1);
    auto route = fault_tolerant_route(g, f, s, t);
    benchmark::DoNotOptimize(route);
  }
}
BENCHMARK(BM_FaultTolerantRoute)->DenseRange(5, 7);

void BM_BroadcastSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  std::size_t rounds = 0;
  for (auto _ : state) {
    const auto sched = broadcast_schedule(g, Perm::identity(n));
    rounds = sched.num_rounds();
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  int lower = 0;
  while ((1ULL << lower) < g.num_vertices()) ++lower;
  state.counters["log2_lower_bound"] = lower;
}
BENCHMARK(BM_BroadcastSchedule)->DenseRange(4, 7);

}  // namespace

STARRING_BENCH_JSON_MAIN("routing");
