file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_faults.dir/bench_edge_faults.cpp.o"
  "CMakeFiles/bench_edge_faults.dir/bench_edge_faults.cpp.o.d"
  "bench_edge_faults"
  "bench_edge_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
