// Packed permutation kernel.
//
// A vertex of the n-dimensional star graph S_n is a permutation of
// {1, 2, ..., n}.  Internally we store symbols 0..n-1, one per 4-bit
// nibble of a uint64_t, slot i holding the symbol at position i
// (position 0 is the paper's "position 1", the pivot slot of every star
// move).  This keeps a vertex in a register, makes the star move a pair
// of shifts, and gives O(1) hashing and comparison.
#pragma once

#include <bit>
#include <cassert>
#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "perm/factorial.hpp"

namespace starring {

/// Dense vertex identifier: the Lehmer rank of the permutation,
/// in [0, n!).  Used to index per-vertex arrays and fault bitmaps.
using VertexId = std::uint64_t;

/// A permutation of {0, 1, ..., n-1}, packed 4 bits per slot.
///
/// Invariants: slots 0..n-1 hold each symbol 0..n-1 exactly once; slots
/// n..15 are zero.  `n` must be in [1, kMaxN].
class Perm {
 public:
  Perm() : bits_(0), n_(0) {}

  /// Identity permutation 0,1,...,n-1.
  static Perm identity(int n) {
    assert(n >= 1 && n <= kMaxN);
    std::uint64_t b = 0;
    for (int i = n - 1; i >= 0; --i) b = (b << 4) | static_cast<std::uint64_t>(i);
    return Perm(b, n);
  }

  /// Build from an explicit symbol sequence (0-based symbols).
  static Perm of(std::span<const int> symbols) {
    const int n = static_cast<int>(symbols.size());
    assert(n >= 1 && n <= kMaxN);
    std::uint64_t b = 0;
    for (int i = n - 1; i >= 0; --i) {
      assert(symbols[static_cast<std::size_t>(i)] >= 0 &&
             symbols[static_cast<std::size_t>(i)] < n);
      b = (b << 4) | static_cast<std::uint64_t>(symbols[static_cast<std::size_t>(i)]);
    }
    return Perm(b, n);
  }

  static Perm of(std::initializer_list<int> symbols) {
    return of(std::span<const int>(symbols.begin(), symbols.size()));
  }

  /// Reconstruct the permutation with Lehmer rank `r` among S_n.
  static Perm unrank(VertexId r, int n);

  /// Wrap already-packed nibble bits (4 bits per slot, slots n..15
  /// zero).  The caller vouches the bits encode a permutation; debug
  /// builds assert it.  Used by performance-critical expansion paths.
  static Perm from_packed(std::uint64_t bits, int n) {
    assert(n >= 1 && n <= kMaxN);
#ifndef NDEBUG
    std::uint16_t seen = 0;
    for (int i = 0; i < n; ++i) {
      const auto s = static_cast<int>((bits >> (4 * i)) & 0xF);
      assert(s < n && !((seen >> s) & 1));
      seen = static_cast<std::uint16_t>(seen | (1 << s));
    }
    assert((n == 16 ? 0 : bits >> (4 * n)) == 0);
#endif
    return Perm(bits, n);
  }

  /// Number of positions.
  int size() const { return n_; }

  /// Symbol at position i (0-based).
  int get(int i) const {
    assert(i >= 0 && i < n_);
    return static_cast<int>((bits_ >> (4 * i)) & 0xF);
  }

  /// Position currently holding symbol s.  O(n).
  int position_of(int s) const {
    assert(s >= 0 && s < n_);
    for (int i = 0; i < n_; ++i)
      if (get(i) == s) return i;
    assert(false && "symbol not found: corrupt permutation");
    return -1;
  }

  /// The star move along dimension i (1-based dimensions 2..n in the paper
  /// correspond to i = 1..n-1 here): swap slot 0 with slot i.
  /// This is exactly the adjacency relation of S_n.
  [[nodiscard]] Perm star_move(int i) const {
    assert(i >= 1 && i < n_);
    const std::uint64_t a = bits_ & 0xF;
    const std::uint64_t b = (bits_ >> (4 * i)) & 0xF;
    std::uint64_t out = bits_;
    out &= ~(0xFULL | (0xFULL << (4 * i)));
    out |= (b) | (a << (4 * i));
    return Perm(out, n_);
  }

  /// True iff `other` is adjacent to *this in S_n (differs by one star move).
  bool adjacent(const Perm& other) const {
    if (n_ != other.n_ || bits_ == other.bits_) return false;
    const std::uint64_t diff = bits_ ^ other.bits_;
    // Exactly two nibbles must differ, one of them slot 0, and the
    // symbols must be exchanged.
    if ((diff & 0xF) == 0) return false;
    std::uint64_t rest = diff >> 4;
    if (rest == 0) return false;
    // rest must be a single nibble.
    const int tz = std::countr_zero(rest) / 4;
    if ((rest & ~(0xFULL << (4 * tz))) != 0) return false;
    const int j = tz + 1;
    return get(0) == other.get(j) && get(j) == other.get(0);
  }

  /// Parity of the permutation: 0 = even, 1 = odd.  S_n is bipartite with
  /// the partite sets being the even and the odd permutations.
  int parity() const {
    int p = 0;
    std::uint16_t seen = 0;
    for (int i = 0; i < n_; ++i) {
      if (seen & (1u << i)) continue;
      int len = 0;
      int j = i;
      while (!(seen & (1u << j))) {
        seen = static_cast<std::uint16_t>(seen | (1u << j));
        j = get(j);
        ++len;
      }
      p ^= (len - 1) & 1;
    }
    return p;
  }

  /// Lehmer rank in [0, n!).  Stable dense vertex id for S_n.
  VertexId rank() const;

  /// Raw packed bits (for hashing / ordering).
  std::uint64_t bits() const { return bits_; }

  /// Human-readable 1-based form, e.g. "2134".
  std::string to_string() const;

  friend bool operator==(const Perm& a, const Perm& b) {
    return a.n_ == b.n_ && a.bits_ == b.bits_;
  }
  /// Lexicographic order on the symbol sequence (= Lehmer-rank order).
  friend std::strong_ordering operator<=>(const Perm& a, const Perm& b) {
    if (auto c = a.n_ <=> b.n_; c != 0) return c;
    for (int i = 0; i < a.n_; ++i)
      if (auto c = a.get(i) <=> b.get(i); c != 0) return c;
    return std::strong_ordering::equal;
  }

 private:
  Perm(std::uint64_t bits, int n) : bits_(bits), n_(n) {}

  std::uint64_t bits_;
  int n_;
};

/// All n-1 neighbours of `p` in S_n, in dimension order.
std::vector<Perm> neighbors(const Perm& p);

/// The group inverse: inverse_of(p).get(s) == i iff p.get(i) == s.
Perm inverse_of(const Perm& p);

/// Symbol relabeling g∘p: slot i holds g(p(i)).  For a fixed g the map
/// p -> relabel(g, p) is an automorphism of S_n — a star move swaps two
/// slots, and renaming every symbol uniformly commutes with slot swaps
/// — and the family acts transitively on vertices (g = q∘p⁻¹ maps p to
/// q).  This is the symmetry the service's canonical result cache
/// quotients by (service/canonical.hpp).
Perm relabel(const Perm& g, const Perm& p);

struct PermHash {
  std::size_t operator()(const Perm& p) const {
    // splitmix64 over the packed bits; n is implied by usage context.
    std::uint64_t x = p.bits() + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace starring
