// Paper-fidelity tests: the structural lemmas of Hsieh-Chen-Ho (ICPP
// 1998) stated directly against the library's primitives.
//
//  * Lemma 1: if U, V, W are consecutive r-vertices of an R_r with
//    u_dif(U,V) != w_dif(V,W), then after a partition every child of V
//    is connected (by a super-edge) to a child of U or of W.
//  * Lemma 5 (from Tseng et al., used by the paper): the two vertices
//    of a 3-vertex (a 6-cycle c_0..c_5) connected to an adjacent
//    3-vertex are antipodal: c_j and c_{j+3}.
//  * Lemma 6: when u_dif(U,V) != w_dif(V,W) for 3-vertices U, V, W with
//    V adjacent to both, the two vertices of V connected to U are
//    disjoint from the two connected to W.
//  * The non-adjacent-child identification of Section 2: after an
//    i-partition of adjacent r-vertices A (symbol a at dif p) and B
//    (symbol b), the unique child of A with no neighbour in B is
//    child(A, i, b), and vice versa child(B, i, a).
#include <gtest/gtest.h>

#include <set>

#include "stargraph/substar.hpp"

namespace starring {
namespace {

/// Super-edge connectivity test: does any member of `a` have a
/// neighbour in `b`?  (For same-free-set patterns this is equivalent to
/// pattern adjacency, but we check it the hard way on purpose.)
bool connected(const SubstarPattern& a, const SubstarPattern& b) {
  for (const Perm& u : a.members())
    for (int d = 1; d < u.size(); ++d)
      if (b.contains(u.star_move(d))) return true;
  return false;
}

TEST(PaperLemmas, NonAdjacentChildIdentification) {
  // A = <* 2 ...>, B = <* 5 ...> in S_6, partitioned at position 3.
  const auto whole = SubstarPattern::whole(6);
  const auto a = whole.child(1, 2);
  const auto b = whole.child(1, 5);
  ASSERT_TRUE(SubstarPattern::adjacent(a, b));
  for (const int qa : a.free_symbols()) {
    for (const int qb : b.free_symbols()) {
      const auto ca = a.child(3, qa);
      const auto cb = b.child(3, qb);
      // Children are adjacent iff they fixed the same symbol, and that
      // symbol is free in both parents (q not in {2, 5}).
      const bool expect = qa == qb;
      EXPECT_EQ(SubstarPattern::adjacent(ca, cb), expect);
      EXPECT_EQ(connected(ca, cb), expect);
    }
  }
  // The leftovers: child(A, b_sym) has no partner among B's children.
  const auto orphan_a = a.child(3, 5);
  for (const int qb : b.free_symbols())
    EXPECT_FALSE(connected(orphan_a, b.child(3, qb)));
}

TEST(PaperLemmas, Lemma1EveryChildConnectedToUOrW) {
  // Three consecutive 4-vertices U, V, W of S_6 differing at position 1
  // with distinct symbols (u_p != w_q is automatic when p == q and the
  // three patterns are distinct).
  const auto whole = SubstarPattern::whole(6);
  const auto level1 = whole.child(2, 0);
  const auto u = level1.child(1, 1);
  const auto v = level1.child(1, 2);
  const auto w = level1.child(1, 3);
  ASSERT_TRUE(SubstarPattern::adjacent(u, v));
  ASSERT_TRUE(SubstarPattern::adjacent(v, w));
  // Partition V (and U, W) at position 4; every child of V must touch
  // U or W.
  for (const int q : v.free_symbols()) {
    const auto child = v.child(4, q);
    EXPECT_TRUE(connected(child, u) || connected(child, w))
        << child.to_string();
  }
}

TEST(PaperLemmas, Lemma1ViolatedWhenSymbolsCollide) {
  // The contrapositive shape: with u_p == w_q (here U == W around V),
  // the child of V fixing that symbol connects to neither side.
  const auto whole = SubstarPattern::whole(6);
  const auto level1 = whole.child(2, 0);
  const auto u = level1.child(1, 1);
  const auto v = level1.child(1, 2);
  // W = U: dif(V, W) = dif(V, U) = position 1, w_q = 1 = u_p.
  const auto orphan = v.child(4, 1);  // fixes U's symbol at the new level
  EXPECT_FALSE(connected(orphan, u));
}

TEST(PaperLemmas, Lemma5AntipodalConnectors) {
  // 3-vertices of S_5: each is a 6-cycle; the two vertices connected to
  // an adjacent 3-vertex are antipodal on that cycle.
  const auto whole = SubstarPattern::whole(5);
  const auto parent = whole.child(4, 0);
  const auto u = parent.child(3, 1);
  const auto v = parent.child(3, 2);
  ASSERT_TRUE(SubstarPattern::adjacent(u, v));
  ASSERT_EQ(u.r(), 3);

  // Build U's 6-cycle explicitly.
  std::vector<Perm> cycle;
  Perm cur = u.member(0);
  for (int step = 0; step < 6; ++step) {
    cycle.push_back(cur);
    cur = cur.star_move(step % 2 == 0 ? 1 : 2);
  }
  ASSERT_EQ(cur, cycle.front());

  std::vector<int> connected_idx;
  for (int j = 0; j < 6; ++j) {
    for (int d = 1; d < 5; ++d) {
      if (v.contains(cycle[static_cast<std::size_t>(j)].star_move(d))) {
        connected_idx.push_back(j);
        break;
      }
    }
  }
  ASSERT_EQ(connected_idx.size(), 2u);
  EXPECT_EQ((connected_idx[1] - connected_idx[0]) % 6, 3)
      << "connectors must be antipodal (c_j and c_{j+3})";
}

TEST(PaperLemmas, Lemma6DisjointConnectors) {
  // U, V, W consecutive 3-vertices with u_dif(U,V) != w_dif(V,W): the
  // two vertices of V touching U are disjoint from the two touching W.
  const auto whole = SubstarPattern::whole(5);
  const auto parent = whole.child(4, 0);
  const auto u = parent.child(3, 1);
  const auto v = parent.child(3, 2);
  const auto w = parent.child(3, 3);
  // dif(U,V) = dif(V,W) = 3 with symbols 1 vs 3: u_p = 1 != 3 = w_q.
  std::set<std::uint64_t> to_u;
  std::set<std::uint64_t> to_w;
  for (const Perm& m : v.members()) {
    for (int d = 1; d < 5; ++d) {
      if (u.contains(m.star_move(d))) to_u.insert(m.bits());
      if (w.contains(m.star_move(d))) to_w.insert(m.bits());
    }
  }
  EXPECT_EQ(to_u.size(), 2u);
  EXPECT_EQ(to_w.size(), 2u);
  for (const auto bits : to_u) EXPECT_FALSE(to_w.contains(bits));
}

TEST(PaperLemmas, Lemma6FailsWithEqualSymbols) {
  // When u_p == w_q (U = W), the connector pairs coincide instead.
  const auto whole = SubstarPattern::whole(5);
  const auto parent = whole.child(4, 0);
  const auto u = parent.child(3, 1);
  const auto v = parent.child(3, 2);
  std::set<std::uint64_t> to_u;
  for (const Perm& m : v.members())
    for (int d = 1; d < 5; ++d)
      if (u.contains(m.star_move(d))) to_u.insert(m.bits());
  EXPECT_EQ(to_u.size(), 2u);  // exactly the antipodal pair, never more
}

TEST(PaperLemmas, SuperEdgeSizeMatchesSection2) {
  // "an r-edge in S_n comprises (r-1)! edges" — verified for r = 3, 4, 5.
  const auto whole = SubstarPattern::whole(6);
  const auto p5 = whole.child(1, 0);
  const auto q5 = whole.child(1, 2);
  EXPECT_EQ(superedge_endpoints(p5, q5).size(), factorial(4));
  const auto p4 = p5.child(2, 1);
  const auto q4 = q5.child(2, 1);
  ASSERT_TRUE(SubstarPattern::adjacent(p4, q4));
  EXPECT_EQ(superedge_endpoints(p4, q4).size(), factorial(3));
  const auto p3 = p4.child(3, 3);
  const auto q3 = q4.child(3, 3);
  ASSERT_TRUE(SubstarPattern::adjacent(p3, q3));
  EXPECT_EQ(superedge_endpoints(p3, q3).size(), factorial(2));
}

}  // namespace
}  // namespace starring
