// Experiment E2 — the paper's improvement over prior art.
//
// Compares, per (n, |Fv|) and fault shape, the ring length achieved by
//   * this paper (n! - 2|Fv|),
//   * Tseng, Chang & Sheu (n! - 4|Fv|),
//   * Latifi & Bagherzadeh (n! - m!, clustered faults only),
// against the bipartite ceiling.  The "who wins, by what factor" shape:
// ours always halves the loss of Tseng; Latifi only competes when the
// faults cluster tightly and degenerates (no ring) when they scatter.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/latifi.hpp"
#include "baselines/tseng.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("baselines");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf(
      "E2: ring-length comparison — ours vs Tseng'97 vs Latifi'96\n");
  std::printf("%3s %4s %-10s %9s %9s %9s %9s %9s\n", "n", "|Fv|", "shape",
              "n!", "ours", "tseng", "latifi", "ceiling");

  bool ok = true;
  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nf = 1; nf <= n - 3; ++nf) {
      struct Shape {
        const char* name;
        bool clustered;
      } shapes[] = {{"random", false}, {"clustered", true}};
      for (const auto& shape : shapes) {
        std::uint64_t ours_sum = 0;
        std::uint64_t tseng_sum = 0;
        std::uint64_t latifi_sum = 0;
        std::uint64_t ceil_sum = 0;
        int latifi_fail = 0;
        for (int t = 0; t < trials; ++t) {
          const auto seed = static_cast<std::uint64_t>(t);
          const FaultSet f = shape.clustered
                                 ? substar_clustered_faults(g, nf, seed)
                                 : random_vertex_faults(g, nf, seed);
          const auto o = embed_longest_ring(g, f, bench_embed_options());
          const auto ts = tseng_vertex_fault_ring(g, f);
          const auto la = latifi_clustered_ring(g, f);
          if (!o || !verify_healthy_ring(g, f, o->ring).valid ||
              !ts || !verify_healthy_ring(g, f, ts->ring).valid) {
            ok = false;
            continue;
          }
          ours_sum += o->ring.size();
          tseng_sum += ts->ring.size();
          if (la && verify_healthy_ring(g, f, la->embed.ring).valid)
            latifi_sum += la->embed.ring.size();
          else
            ++latifi_fail;
          ceil_sum += bipartite_upper_bound(g, f);
        }
        const auto tr = static_cast<std::uint64_t>(trials);
        std::string latifi_cell =
            latifi_fail == trials
                ? "-"
                : std::to_string(latifi_sum /
                                 static_cast<std::uint64_t>(
                                     trials - latifi_fail));
        std::printf("%3d %4d %-10s %9llu %9llu %9llu %9s %9llu\n", n, nf,
                    shape.name,
                    static_cast<unsigned long long>(factorial(n)),
                    static_cast<unsigned long long>(ours_sum / tr),
                    static_cast<unsigned long long>(tseng_sum / tr),
                    latifi_cell.c_str(),
                    static_cast<unsigned long long>(ceil_sum / tr));
      }
    }
  }
  std::printf("\nloss per fault: ours 2, tseng 4 (2x worse), latifi m!/|Fv| "
              "(unbounded when faults scatter: '-' rows)\n");
  std::printf("%s\n", ok ? "RESULT: all embeddings verified"
                         : "RESULT: some embeddings FAILED");
  return ok ? 0 : 1;
}
