# Empty compiler generated dependencies file for checkpoint_sweep.
# This may be replaced when dependencies are built.
