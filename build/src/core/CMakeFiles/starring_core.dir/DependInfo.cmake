
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_oracle.cpp" "src/core/CMakeFiles/starring_core.dir/block_oracle.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/block_oracle.cpp.o.d"
  "/root/repo/src/core/chaining.cpp" "src/core/CMakeFiles/starring_core.dir/chaining.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/chaining.cpp.o.d"
  "/root/repo/src/core/partition_selector.cpp" "src/core/CMakeFiles/starring_core.dir/partition_selector.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/partition_selector.cpp.o.d"
  "/root/repo/src/core/ring_embedder.cpp" "src/core/CMakeFiles/starring_core.dir/ring_embedder.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/ring_embedder.cpp.o.d"
  "/root/repo/src/core/super_ring.cpp" "src/core/CMakeFiles/starring_core.dir/super_ring.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/super_ring.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/starring_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/starring_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stargraph/CMakeFiles/starring_stargraph.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/starring_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/perm/CMakeFiles/starring_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/starring_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
