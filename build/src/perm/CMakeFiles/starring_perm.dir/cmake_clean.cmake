file(REMOVE_RECURSE
  "CMakeFiles/starring_perm.dir/permutation.cpp.o"
  "CMakeFiles/starring_perm.dir/permutation.cpp.o.d"
  "libstarring_perm.a"
  "libstarring_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
