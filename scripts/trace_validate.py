#!/usr/bin/env python3
"""Validate observability exports from starringd / starring-cli.

Two independent checks, selected by flags (both may be given):

  --trace FILE   Chrome trace_event JSON produced by --trace-out (a
                 single process) or by the proxy's merged cluster
                 export.  Asserts the document is well-formed, every
                 span is a complete ("X") event with non-negative
                 ts/dur, span ids are unique, parent links resolve
                 within the same trace, and every child interval nests
                 inside its parent (with a small clock tolerance).
                 process_name metadata ("M") rows are collected, not
                 span-checked.
  --prom FILE    Prometheus text exposition produced by the STATS
                 command.  Asserts every non-comment line matches the
                 0.0.4 text grammar and every # TYPE has >= 1 sample.

Extra assertions:
  --require-span NAME        (repeatable) span NAME occurs >= 1 time
  --require-histogram NAME   (repeatable) a full histogram family
                             (NAME_bucket le=..., +Inf, _sum, _count)
                             with monotone non-decreasing buckets
  --expect-hit-miss          the trace holds >= 1 svc.request with an
                             svc.embed descendant (miss) and >= 1
                             without (hit)
  --cluster                  cross-process stitching checks for a merged
                             trace: a `proxy` process row plus >= 2
                             `shard-*` rows exist, >= 1 trace id spans
                             the proxy and >= 2 shard processes, every
                             shard-side svc.request with a parent
                             resolves to a proxy-side span, and each
                             cross-process hop starts no earlier than
                             its parent (modulo clock skew)
  --expect-failover          >= 1 trace holds >= 2 proxy.forward.*
                             attempt spans (a request that bounced)

Exit 0 when every requested check passes; exit 1 with a message per
failure otherwise.  stdlib only.
"""
import argparse
import json
import re
import sys

# One scheduler tick of slack for cross-thread intervals whose endpoints
# were captured on different threads (microseconds).
NEST_TOLERANCE_US = 1e-3
# Cross-process intervals share CLOCK_MONOTONIC but were rebased via
# per-process epochs captured at different instants; allow a larger
# skew before calling a hop's start negative (microseconds).
CROSS_PROC_TOLERANCE_US = 50.0


def fail(errors, msg):
    errors.append(msg)


def validate_cluster(path, spans, processes, expect_failover, errors):
    """Cross-process stitching checks on a merged cluster trace."""
    proxy_pids = {pid for pid, name in processes.items() if name == "proxy"}
    shard_pids = {pid for pid, name in processes.items()
                  if name.startswith("shard-")}
    if not proxy_pids:
        fail(errors, f"{path}: no `proxy` process_name metadata row")
    if len(shard_pids) < 2:
        fail(errors,
             f"{path}: expected >= 2 `shard-*` process rows, found "
             f"{sorted(processes.values())}")
    if not proxy_pids or len(shard_pids) < 2:
        return

    # >= 1 trace id whose spans land on the proxy AND >= 2 shards.
    trace_pids = {}
    for e in spans:
        trace_pids.setdefault(e["args"]["trace"], set()).add(e["pid"])
    stitched = [t for t, pids in trace_pids.items()
                if pids & proxy_pids and len(pids & shard_pids) >= 2]
    spanning = [t for t, pids in trace_pids.items()
                if pids & proxy_pids and pids & shard_pids]
    if not stitched:
        fail(errors,
             f"{path}: no trace id spans the proxy and >= 2 shard "
             f"processes ({len(spanning)} cross one shard)")

    # Every shard-side svc.request that claims a parent must resolve to
    # a proxy-side span (the forward attempt that carried it), and the
    # hop must not start before its parent (modulo clock skew).
    by_span = {e["args"]["span"]: e for e in spans}
    orphans = 0
    hops = 0
    for e in spans:
        if e["pid"] not in shard_pids or e["name"] != "svc.request":
            continue
        parent_id = e["args"]["parent"]
        if parent_id == 0:
            fail(errors,
                 f"{path}: shard-side svc.request (trace "
                 f"{e['args']['trace']}) has no proxy parent")
            orphans += 1
            continue
        pe = by_span.get(parent_id)
        if pe is None or pe["pid"] not in proxy_pids:
            fail(errors,
                 f"{path}: shard-side svc.request parent {parent_id} is "
                 f"not a proxy-side span")
            orphans += 1
            continue
        hops += 1
        if e["ts"] + CROSS_PROC_TOLERANCE_US < pe["ts"]:
            fail(errors,
                 f"{path}: negative hop gap: shard span at {e['ts']}us "
                 f"starts before proxy parent {pe['name']} at "
                 f"{pe['ts']}us")

    failovers = []
    if expect_failover:
        attempts = {}
        for e in spans:
            if e["name"].startswith("proxy.forward."):
                attempts.setdefault(e["args"]["trace"], []).append(e)
        failovers = [t for t, es in attempts.items() if len(es) >= 2]
        if not failovers:
            fail(errors,
                 f"{path}: no trace with >= 2 proxy.forward attempts "
                 f"(expected a failover)")

    if orphans == 0 and stitched:
        print(f"cluster ok: {path}: {len(processes)} processes "
              f"({len(shard_pids)} shards), {len(stitched)} traces span "
              f"proxy + >= 2 shards, {hops} proxy->shard hops resolve"
              + (f", {len(failovers)} failover traces"
                 if expect_failover else ""))


def validate_trace(path, require_spans, expect_hit_miss, cluster,
                   expect_failover, errors):
    before = len(errors)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: not readable as JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: missing traceEvents array")
        return

    # Split span events from process metadata (merged cluster exports
    # carry one process_name "M" row per source process).
    spans = []
    processes = {}  # pid -> process name
    for i, e in enumerate(events):
        where = f"{path}: event {i}"
        if e.get("ph") == "M":
            if e.get("name") != "process_name" or "pid" not in e \
                    or not isinstance(e.get("args", {}).get("name"), str):
                fail(errors, f"{where}: malformed metadata event")
                return
            if e["pid"] in processes:
                fail(errors, f"{where}: duplicate process row for pid "
                             f"{e['pid']}")
            processes[e["pid"]] = e["args"]["name"]
            continue
        spans.append(e)

    by_span = {}
    for i, e in enumerate(spans):
        where = f"{path}: span event {i}"
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in e:
                fail(errors, f"{where}: missing key '{key}'")
                return
        if e["ph"] != "X":
            fail(errors, f"{where}: ph {e['ph']!r}, expected complete 'X'")
        if e["dur"] < 0:
            fail(errors, f"{where}: negative duration {e['dur']}")
        if e["ts"] < 0:
            fail(errors, f"{where}: negative timestamp {e['ts']}")
        args = e["args"]
        for key in ("trace", "span", "parent"):
            if not isinstance(args.get(key), int):
                fail(errors, f"{where}: args.{key} missing or non-integer")
                return
        if args["span"] in by_span:
            fail(errors, f"{where}: duplicate span id {args['span']}")
        by_span[args["span"]] = e

    for e in spans:
        parent_id = e["args"]["parent"]
        if parent_id == 0:
            continue
        pe = by_span.get(parent_id)
        if pe is None:
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) links to "
                 f"unknown parent {parent_id}")
            continue
        if pe["args"]["trace"] != e["args"]["trace"]:
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) crosses "
                 f"traces to parent {parent_id} ({pe['name']})")
        tolerance = (NEST_TOLERANCE_US if e["pid"] == pe["pid"]
                     else CROSS_PROC_TOLERANCE_US)
        if (e["ts"] + tolerance < pe["ts"]
                or e["ts"] + e["dur"]
                > pe["ts"] + pe["dur"] + tolerance):
            fail(errors,
                 f"{path}: span {e['args']['span']} ({e['name']}) "
                 f"[{e['ts']}, {e['ts'] + e['dur']}] escapes parent "
                 f"{pe['name']} [{pe['ts']}, {pe['ts'] + pe['dur']}]")

    names = [e["name"] for e in spans]
    for want in require_spans:
        if want not in names and not any(
                n.startswith(want + ".") for n in names):
            fail(errors, f"{path}: required span '{want}' never recorded")

    if expect_hit_miss:
        # A miss request trace contains an svc.embed span; a hit's does not.
        embed_traces = {e["args"]["trace"] for e in spans
                        if e["name"] == "svc.embed"}
        roots = [e for e in spans if e["name"] == "svc.request"]
        hits = [e for e in roots if e["args"]["trace"] not in embed_traces]
        misses = [e for e in roots if e["args"]["trace"] in embed_traces]
        if not roots:
            fail(errors, f"{path}: no svc.request root spans")
        if not misses:
            fail(errors, f"{path}: no cache-miss trace (svc.embed) found")
        if not hits:
            fail(errors, f"{path}: no cache-hit trace (embed-free) found")

    if cluster:
        validate_cluster(path, spans, processes, expect_failover, errors)

    if len(errors) == before:
        print(f"trace ok: {path}: {len(spans)} spans, "
              f"{len(set(e['args']['trace'] for e in spans))} traces, "
              f"{len(set(names))} distinct span names, "
              f"{len(processes)} process rows")


METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def validate_prom(path, require_histograms, errors):
    before = len(errors)
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(errors, f"{path}: {e}")
        return
    samples = {}  # full sample key (name + labels) -> value
    typed = {}  # family name -> declared type
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                fail(errors, f"{where}: malformed comment line: {line!r}")
            elif parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    fail(errors, f"{where}: bad TYPE {parts[3]!r}")
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail(errors, f"{where}: unparsable sample line: {line!r}")
            continue
        if m.group("labels"):
            body = m.group("labels")[1:-1]
            for pair in filter(None, body.split(",")):
                if not LABEL_RE.match(pair):
                    fail(errors, f"{where}: malformed label {pair!r}")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            fail(errors, f"{where}: non-numeric value: {line!r}")
            continue
        samples[m.group("name") + (m.group("labels") or "")] = value

    for family, kind in typed.items():
        suffixes = ("_bucket", "_sum", "_count") if kind in (
            "histogram", "summary") else ("",)
        if not any(k.startswith(family + s) for k in samples
                   for s in suffixes):
            fail(errors, f"{path}: TYPE {family} declared but no samples")

    for family in require_histograms:
        if typed.get(family) != "histogram":
            fail(errors, f"{path}: {family} not declared as a histogram")
            continue
        buckets = []
        for key, value in samples.items():
            m = re.match(
                re.escape(family) + r'_bucket\{le="([^"]+)"\}$', key)
            if m:
                buckets.append((parse_value(m.group(1)), value))
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            fail(errors, f"{path}: {family} lacks an le=\"+Inf\" bucket")
            continue
        for (lo_le, lo), (hi_le, hi) in zip(buckets, buckets[1:]):
            if lo > hi:
                fail(errors,
                     f"{path}: {family} bucket le={lo_le} count {lo} > "
                     f"le={hi_le} count {hi} (not cumulative)")
        count = samples.get(f"{family}_count")
        if count is None or f"{family}_sum" not in samples:
            fail(errors, f"{path}: {family} missing _sum/_count")
        elif buckets[-1][1] < count:
            fail(errors,
                 f"{path}: {family} +Inf bucket {buckets[-1][1]} < "
                 f"_count {count}")

    if len(errors) == before:
        hist = sum(1 for t in typed.values() if t == "histogram")
        print(f"prom ok: {path}: {len(samples)} samples, "
              f"{len(typed)} typed families ({hist} histograms)")


def main():
    ap = argparse.ArgumentParser(
        description="Validate trace JSON / Prometheus exposition exports.")
    ap.add_argument("--trace", help="Chrome trace_event JSON file")
    ap.add_argument("--prom", help="Prometheus text exposition file")
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME")
    ap.add_argument("--require-histogram", action="append", default=[],
                    metavar="NAME")
    ap.add_argument("--expect-hit-miss", action="store_true")
    ap.add_argument("--cluster", action="store_true")
    ap.add_argument("--expect-failover", action="store_true")
    args = ap.parse_args()
    if not args.trace and not args.prom:
        ap.error("nothing to do: pass --trace and/or --prom")

    errors = []
    if args.trace:
        validate_trace(args.trace, args.require_span, args.expect_hit_miss,
                       args.cluster, args.expect_failover, errors)
    if args.prom:
        validate_prom(args.prom, args.require_histogram, errors)
    for msg in errors:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
