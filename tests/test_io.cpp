// Tests for the embedding serialization format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "util/io.hpp"

namespace starring {
namespace {

EmbeddingFile make_sample(int n, int nf, std::uint64_t seed) {
  const StarGraph g(n);
  EmbeddingFile e;
  e.n = n;
  e.faults = random_vertex_faults(g, nf, seed);
  const auto res = embed_longest_ring(g, e.faults);
  EXPECT_TRUE(res.has_value());
  e.sequence = res->ring;
  return e;
}

TEST(Io, RoundTripRing) {
  const EmbeddingFile e = make_sample(6, 3, 5);
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  std::string err;
  const auto back = read_embedding(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->n, e.n);
  EXPECT_TRUE(back->is_ring);
  EXPECT_EQ(back->sequence, e.sequence);
  EXPECT_EQ(back->faults.num_vertex_faults(), e.faults.num_vertex_faults());
  for (const Perm& f : e.faults.vertex_faults())
    EXPECT_TRUE(back->faults.vertex_faulty(f));
  // The deserialized artefact still verifies.
  const StarGraph g(e.n);
  EXPECT_TRUE(verify_healthy_ring(g, back->faults, back->sequence).valid);
}

TEST(Io, RoundTripWithEdgeFaults) {
  const StarGraph g(5);
  EmbeddingFile e;
  e.n = 5;
  e.is_ring = false;
  e.faults = mixed_faults(g, 1, 1, 9);
  e.sequence = {0, 1, 2};
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->is_ring);
  EXPECT_EQ(back->faults.num_edge_faults(), 1u);
  for (const EdgeFault& f : e.faults.edge_faults())
    EXPECT_TRUE(back->faults.edge_faulty(f.u, f.v));
}

TEST(Io, RoundTripOpenPathWithEdgeFaults) {
  // An open path plus the edge fault that broke the ring: the shape the
  // self-healing runtime checkpoints after a link failure.
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  EmbeddingFile e;
  e.n = 5;
  e.is_ring = false;
  e.sequence = res->ring;
  e.sequence.pop_back();  // open the ring: drop one endpoint
  e.faults.add_edge(g.vertex(res->ring[res->ring.size() - 2]),
                    g.vertex(res->ring.back()));
  ASSERT_TRUE(verify_healthy_path(g, e.faults, e.sequence).valid);

  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  std::string err;
  const auto back = read_embedding(ss, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_FALSE(back->is_ring);
  EXPECT_EQ(back->sequence, e.sequence);
  ASSERT_EQ(back->faults.num_edge_faults(), 1u);
  for (const EdgeFault& f : e.faults.edge_faults())
    EXPECT_TRUE(back->faults.edge_faulty(f.u, f.v));
  // The deserialized open path still verifies against its fault set.
  EXPECT_TRUE(verify_healthy_path(g, back->faults, back->sequence).valid);
}

TEST(Io, RoundTripMixedFaultsRing) {
  const StarGraph g(6);
  EmbeddingFile e;
  e.n = 6;
  e.faults = mixed_faults(g, 2, 1, 17);
  const auto res = embed_longest_ring(g, e.faults);
  ASSERT_TRUE(res.has_value());
  e.sequence = res->ring;

  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->faults.num_vertex_faults(), 2u);
  EXPECT_EQ(back->faults.num_edge_faults(), 1u);
  EXPECT_TRUE(verify_healthy_ring(g, back->faults, back->sequence).valid);
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss("starring-embedding v9\nn 5\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad header");
}

TEST(Io, RejectsBadDimension) {
  std::stringstream ss("starring-embedding v1\nn 99\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad dimension line");
}

TEST(Io, RejectsBadFaultLiteral) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 1\n1135\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad vertex fault"), std::string::npos);
}

TEST(Io, RejectsNonAdjacentEdgeFault) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 1\n1234 4321\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad edge fault"), std::string::npos);
}

TEST(Io, RejectsTruncatedSequence) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 5\n1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated sequence");
}

TEST(Io, RejectsOutOfRangeId) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 2\n1 24\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(Io, RejectsBadKindLine) {
  std::stringstream ss("starring-embedding v1\nn 5\nkind torus\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad kind line");
}

TEST(Io, RejectsTruncatedVertexFaults) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 2\n2134\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated vertex faults");
}

TEST(Io, RejectsTruncatedEdgeFaults) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 1\n2134\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated edge faults");
}

TEST(Io, RejectsMissingSequenceHeader) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nvertices 3\n1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad sequence line");
}

TEST(Io, RejectsWrongLengthPermLiteral) {
  // A 3-symbol literal in an n=4 file names the offending token.
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 1\n213\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "bad vertex fault '213'");
}

TEST(Io, RejectsMalformedDotSeparatedLiteral) {
  std::stringstream ss(
      "starring-embedding v1\nn 11\nkind ring\nvertex_faults 1\n"
      "1.2.3.4.5.6.7.8.9.10.x\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_NE(err.find("bad vertex fault"), std::string::npos);
}

TEST(Io, RejectsNonNumericSequenceEntry) {
  std::stringstream ss(
      "starring-embedding v1\nn 4\nkind ring\nvertex_faults 0\n"
      "edge_faults 0\nsequence 3\n1 two 3\n");
  std::string err;
  EXPECT_FALSE(read_embedding(ss, &err).has_value());
  EXPECT_EQ(err, "truncated sequence");
}

TEST(Io, LargeNDotSeparatedFaults) {
  const StarGraph g(11);
  EmbeddingFile e;
  e.n = 11;
  FaultSet f;
  f.add_vertex(Perm::identity(11));
  e.faults = f;
  e.sequence = {0, 1};
  std::stringstream ss;
  ASSERT_TRUE(write_embedding(ss, e));
  const auto back = read_embedding(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->faults.vertex_faulty(Perm::identity(11)));
  (void)g;
}

}  // namespace
}  // namespace starring
