// Lightweight observability layer: named monotonic counters and
// phase wall-clock timers for the embedding pipeline.
//
// Design constraints, in order:
//   1. Disabled cost ~ zero.  The runtime switch is OFF by default; a
//      counter op behind it is one relaxed atomic load and a branch.
//      Configuring with -DSTARRING_OBS=OFF compiles the layer down to
//      empty inline stubs (STARRING_OBS_DISABLED).
//   2. No dependencies.  obs sits below every other library in the
//      repo (core, sim, util all may link it); it depends only on the
//      standard library.
//   3. Concurrency-safe.  Counters are atomics; the registry hands out
//      stable references, so hot paths cache a `Counter&` in a
//      function-local static and never re-lookup.
//
// Naming convention for counters (what lands in BENCH_*.json):
//   <area>.<what>           e.g. chain.backtracks, oracle.cache_hits
//   phase.<name>_ns         wall time accumulated by ScopedPhase
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starring::obs {

/// Ordered (name, value) view of the registry; the unit of exchange
/// for EmbedStats::counters and the bench artifact writer.
using Snapshot = std::vector<std::pair<std::string, std::int64_t>>;

#if defined(STARRING_OBS_DISABLED)

// Compile-time kill switch: every operation is an empty inline.
inline bool enabled() { return false; }
inline void set_enabled(bool) {}

class Counter {
 public:
  void add(std::int64_t = 1) {}
  void record_max(std::int64_t) {}
  void set(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

inline Counter& counter(std::string_view) {
  static Counter dummy;
  return dummy;
}

inline Snapshot snapshot() { return {}; }
inline Snapshot snapshot_delta(const Snapshot&) { return {}; }
inline void reset() {}

class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
};

class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::string_view) {}
  void record(std::chrono::nanoseconds) {}
};

#else  // metrics compiled in, gated at runtime

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime switch.  Defaults to off unless the environment sets
/// STARRING_METRICS=1; benches flip it on via BenchRecorder.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

class Counter {
 public:
  /// Monotonic increment; dropped while the layer is disabled.
  void add(std::int64_t delta = 1) {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Keep the largest value seen (gauge-style: max n, threads used).
  void record_max(std::int64_t v) {
    if (!enabled()) return;
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Gauge-style overwrite: latest value wins and may move down
  /// (breaker state, live map epoch).  add/record_max cannot express
  /// a value that legitimately decreases.
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend Snapshot snapshot();
  friend void reset();
  std::atomic<std::int64_t> value_{0};
};

/// Registry lookup; creates the counter on first use.  The reference
/// stays valid for the process lifetime, so call sites may cache it:
///   static obs::Counter& c = obs::counter("chain.backtracks");
Counter& counter(std::string_view name);

/// All registered counters, sorted by name (zeros included).
Snapshot snapshot();

/// Counters that changed since `before`, as deltas (zero deltas
/// dropped).  The baseline is matched by name, so it may be unsorted or
/// filtered (e.g. a previous delta), and counters first registered
/// after the baseline was taken are reported in full.
Snapshot snapshot_delta(const Snapshot& before);

/// Zero every counter (test isolation; not thread-safe vs. writers).
void reset();

/// RAII span: accumulates the enclosed wall time (steady clock) into
/// the counter `phase.<name>_ns`.  Cheap no-op when disabled — the
/// clock is only read if the layer was enabled at entry.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name) {
    if (!enabled()) return;
    c_ = &counter(std::string("phase.").append(name).append("_ns"));
    t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (c_ == nullptr) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    c_->add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Counter* c_ = nullptr;
  std::chrono::steady_clock::time_point t0_{};
};

/// Fixed-bucket latency histogram over plain counters, so distributions
/// ride the existing snapshot/JSON machinery without a new exchange
/// type.  One record() increments the first bucket whose upper bound
/// holds plus the running count and total:
///   <prefix>.le_100us .le_1ms .le_10ms .le_100ms .le_1s .gt_1s
///   <prefix>.count   <prefix>.total_us
/// Counter references are resolved once at construction; record() is
/// two relaxed atomic adds plus a small scan when the layer is enabled.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::string_view prefix) {
    static constexpr std::string_view kSuffix[kBuckets] = {
        ".le_100us", ".le_1ms", ".le_10ms", ".le_100ms", ".le_1s",
        ".gt_1s"};
    for (int i = 0; i < kBuckets; ++i)
      bucket_[i] = &counter(std::string(prefix).append(kSuffix[i]));
    count_ = &counter(std::string(prefix).append(".count"));
    total_us_ = &counter(std::string(prefix).append(".total_us"));
  }

  void record(std::chrono::nanoseconds elapsed) {
    if (!enabled()) return;
    const std::int64_t us = elapsed.count() / 1000;
    int i = 0;
    while (i < kBuckets - 1 && us > kBoundUs[i]) ++i;
    bucket_[i]->add();
    count_->add();
    total_us_->add(us);
  }

 private:
  static constexpr int kBuckets = 6;
  static constexpr std::int64_t kBoundUs[kBuckets - 1] = {
      100, 1'000, 10'000, 100'000, 1'000'000};
  Counter* bucket_[kBuckets];
  Counter* count_;
  Counter* total_us_;
};

#endif  // STARRING_OBS_DISABLED

}  // namespace starring::obs
