// Capped exponential retry backoff.
//
// One shared definition for every client that retries against the
// daemon (starring-cli rounds, loadgen reconnects): doubling from a
// base, saturating at a ceiling, jitter added by the caller on top.
// The doubling is computed by repeated addition bounded by the cap, so
// any round count is safe — the old `base << (round - 1)` was
// undefined behaviour from round 64 up and reached multi-minute sleeps
// long before that.
#pragma once

#include <algorithm>
#include <cstdint>

namespace starring {

/// Backoff before retry round `round` (1-based; round <= 0 yields 0):
/// min(cap_ms, base_ms * 2^(round-1)), computed without overflow.
inline std::int64_t retry_backoff_ms(int round, std::int64_t base_ms = 50,
                                     std::int64_t cap_ms = 5000) {
  if (round <= 0 || base_ms <= 0) return 0;
  std::int64_t b = base_ms;
  for (int i = 1; i < round && b < cap_ms; ++i) b += b;
  return std::min(b, cap_ms);
}

}  // namespace starring
