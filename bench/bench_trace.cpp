// Tracing overhead on the paper pipeline (google-benchmark).
//
// The flight recorder promises near-zero disabled cost: a span site
// behind the runtime switch is one relaxed load and a branch.  This
// bench puts a number on that promise at two scales:
//
//   * BM_EmbedMaxFaults{TraceOff,TraceOn} — the full n=9 pipeline
//     (Lemma 2 selection, R_4 construction, chaining, emission) with
//     tracing disabled vs enabled.  Fixed iteration counts; both the
//     phase totals and a min-of-iterations statistic land in the
//     artifact.  The min is what scripts/ci.sh gates at 2% against the
//     committed baseline: scheduler noise on a shared box only ever
//     inflates an iteration, so the minimum is the stable
//     "quiet-machine" cost of the compiled-in span sites, where the
//     sum of 60 iterations can swing by 10%+ run to run.
//   * BM_SpanSite{Disabled,Enabled} — the raw per-span cost, ns/op.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <ctime>

#include "bench_options.hpp"
#include "core/ring_embedder.hpp"
#include "fault/generators.hpp"
#include "obs/bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace starring;

namespace {

constexpr int kN = 9;
// Enough full-pipeline runs that the fastest of 100 is a repeatable
// quiet-machine sample without making the CI bench stage crawl.
constexpr int kEmbedIters = 100;

// Fastest single iteration of each timed series, picked up by main()
// after RunSpecifiedBenchmarks; 0 means the series did not run.
double g_off_min_ns = 0;
double g_on_min_ns = 0;

void embed_once(benchmark::State& state, const StarGraph& g,
                const FaultSet& f) {
  auto res = embed_longest_ring(g, f, bench_embed_options());
  if (!res) state.SkipWithError("embedding failed");
  benchmark::DoNotOptimize(res->ring.data());
}

/// One untimed run so the process-global oracle cache is warm before
/// either series starts — otherwise whichever benchmark runs first
/// pays all the misses and the off/on comparison is meaningless.
void warm_up(const StarGraph& g, const FaultSet& f) {
  (void)embed_longest_ring(g, f, bench_embed_options());
}

double process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

// Process CPU time, not wall: preemption on a shared box inflates wall
// samples unpredictably, while the CPU time of the fastest iteration
// is a repeatable measure of the work actually executed (and it still
// counts pool workers if the embed fans out).
double timed_embed_ns(benchmark::State& state, const StarGraph& g,
                      const FaultSet& f) {
  const double t0 = process_cpu_ns();
  embed_once(state, g, f);
  return process_cpu_ns() - t0;
}

void BM_EmbedMaxFaultsTraceOff(benchmark::State& state) {
  const StarGraph g(kN);
  const FaultSet f = random_vertex_faults(g, kN - 3, 42);
  warm_up(g, f);
  obs::trace::set_enabled(false);
  double min_ns = 0;
  for (auto _ : state) {
    const obs::ScopedPhase phase("trace_off_embed");
    const double ns = timed_embed_ns(state, g, f);
    min_ns = min_ns == 0 ? ns : std::min(min_ns, ns);
  }
  g_off_min_ns = min_ns;
  state.counters["min_ms"] = min_ns / 1e6;
}
BENCHMARK(BM_EmbedMaxFaultsTraceOff)
    ->Iterations(kEmbedIters)
    ->Unit(benchmark::kMillisecond);

void BM_EmbedMaxFaultsTraceOn(benchmark::State& state) {
  const StarGraph g(kN);
  const FaultSet f = random_vertex_faults(g, kN - 3, 42);
  warm_up(g, f);
  obs::trace::set_enabled(true);
  double min_ns = 0;
  for (auto _ : state) {
    const obs::ScopedPhase phase("trace_on_embed");
    const obs::trace::ScopedSpan root("bench.embed");
    const double ns = timed_embed_ns(state, g, f);
    min_ns = min_ns == 0 ? ns : std::min(min_ns, ns);
  }
  obs::trace::set_enabled(false);
  g_on_min_ns = min_ns;
  state.counters["min_ms"] = min_ns / 1e6;
}
BENCHMARK(BM_EmbedMaxFaultsTraceOn)
    ->Iterations(kEmbedIters)
    ->Unit(benchmark::kMillisecond);

void BM_SpanSiteDisabled(benchmark::State& state) {
  obs::trace::set_enabled(false);
  for (auto _ : state) {
    const obs::trace::ScopedSpan span("bench.site");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanSiteDisabled);

void BM_SpanSiteEnabled(benchmark::State& state) {
  obs::trace::set_enabled(true);
  for (auto _ : state) {
    const obs::trace::ScopedSpan span("bench.site");
    benchmark::ClobberMemory();
  }
  obs::trace::set_enabled(false);
}
BENCHMARK(BM_SpanSiteEnabled);

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("trace");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  rec.note_n(kN);
  rec.note_faults(kN - 3);
  // The min counters follow the phase.*_ns naming so bench_compare.py
  // treats them as gateable timings.
  if (g_off_min_ns > 0)
    rec.add_counter("phase.trace_off_embed_min_ns", g_off_min_ns);
  if (g_on_min_ns > 0)
    rec.add_counter("phase.trace_on_embed_min_ns", g_on_min_ns);
  if (g_off_min_ns > 0 && g_on_min_ns > 0)
    rec.add_counter("trace.overhead_pct",
                    (g_on_min_ns - g_off_min_ns) / g_off_min_ns * 100.0);
  return 0;
}
