// starringd — long-running embedding daemon.
//
// Speaks the versioned starring-request/starring-response line protocol
// (util/io.hpp) over stdio (default) or TCP (--listen PORT, loopback).
// Requests flow through the EmbedService: bounded admission queue,
// same-dimension batching on the persistent thread pool, and the
// symmetry-canonical result cache.
//
// Shutdown/drain semantics:
//   stdio: EOF on stdin stops admission; every queued request is still
//          answered, stdout is flushed, exit 0.  A SIGINT/SIGTERM drain
//          is bounded by --drain-timeout-ms (overrun aborts the
//          process: a hung embedding must not wedge shutdown forever).
//   TCP:   SIGINT/SIGTERM stops accepting, half-closes live
//          connections (their reads see EOF), drains under the same
//          bound, escalating laggards to a hard close.
// Backpressure: the stdio reader blocks on a full queue, which stops
// consuming the pipe — the OS pipe buffer then backpressures the
// client.  TCP connections instead get `status rejected` responses so
// remote callers can retry elsewhere.
//
// Slow-client defense (TCP): connection sockets are non-blocking and
// every write polls POLLOUT with a --write-timeout-ms budget; a client
// that cannot drain its socket is evicted (svc.evicted_conns) rather
// than allowed to pin a response callback forever.  A hard write error
// (EPIPE, reset) marks the connection dead (io.write_errors) and stops
// servicing it.  --max-conns caps concurrent connections; excess
// accepts are answered `status rejected` and closed.
//
// Cluster membership (TCP + --shard-id only): the daemon runs a SWIM
// gossip agent (cluster/membership.hpp) when started with --shard-map
// (static bootstrap: every listed member is known at launch),
// --bootstrap (first member of a brand-new cluster), or --join
// HOST:PORT (dial a running member and adopt its snapshot — live
// scale-out, no restart of the world).  It answers starring-gossip v1
// probes inline, serves MEMBERS, and honors a graceful LEAVE: announce
// departure to every peer, stop accepting, drain in-flight work, exit
// 0 — peers see `left`, not a suspicion window, so no failover fires.
//
// With --bench-artifact NAME the daemon enables the metrics layer and
// writes BENCH_<NAME>.json (svc.* counters, latency histogram, cache
// hit rate) to $STARRING_BENCH_DIR on clean drain.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "cluster/membership.hpp"
#include "cluster/shard_map.hpp"
#include "core/oracle_store.hpp"
#include "obs/bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// Process start, for HEALTH uptime_ms.  Static-initialized so the
// number covers the whole process, not just time since first probe.
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

// SIGUSR1 asks for a flight-recorder dump without stopping the daemon;
// a watcher thread does the actual file I/O (signal-safe handlers
// cannot).
volatile std::sig_atomic_t g_dump = 0;
void on_dump_signal(int) { g_dump = 1; }

// The fd <-> iostream glue, hardened accept, and drain scaffolding
// used to live here file-locally; they moved to util/net.hpp when the
// proxy and clients grew the same needs.

struct DaemonConfig {
  ServiceOptions svc;
  int listen_port = -1;  // -1: stdio mode; 0: kernel-assigned
  /// Cluster identity (--shard-id/--shard-map); -1 when standalone.
  /// Reported by the HEALTH probe so the proxy can detect a process
  /// serving under the wrong identity or an out-of-date map.
  int shard_id = -1;
  std::uint64_t map_epoch = 0;
  /// Non-empty: join a running cluster through this member (live
  /// scale-out).  Mutually exclusive with --shard-map/--bootstrap.
  std::string join_addr;
  /// First member of a brand-new cluster (no map file, no seed).
  bool bootstrap = false;
  /// SWIM tuning, forwarded to MembershipOptions.
  int gossip_interval_ms = 250;
  int suspicion_timeout_ms = 1500;
  /// Static map retained from --shard-map validation; seeds the gossip
  /// agent's initial member set.
  std::shared_ptr<cluster::ShardMap> static_map;
  int max_conns = 64;
  int write_timeout_ms = 5000;
  int drain_timeout_ms = 10000;
  std::string bench_artifact;
  std::string trace_out;  // non-empty: tracing on, dump here
  /// Tracing on without a local dump file: spans stay in the flight
  /// recorder for a remote TRACE pull (the proxy's merged export).
  bool trace = false;
  std::string oracle_snapshot;  // non-empty: warm-start from this file
  std::string shard_map;  // non-empty: validate --shard-id against it
  /// Canonical rings from a loaded snapshot, handed to the EmbedService
  /// (which is constructed inside serve_*) and consumed there.
  std::vector<OracleSnapshot::CanonicalRing> seed_rings;
};

/// Move the snapshot's canonical rings into the service's result cache.
void seed_service(EmbedService& svc, DaemonConfig& cfg) {
  for (OracleSnapshot::CanonicalRing& r : cfg.seed_rings)
    svc.seed_cache(r.key, std::move(r.ring));
  cfg.seed_rings.clear();
  cfg.seed_rings.shrink_to_fit();
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --queue-depth N      admission queue bound (default 256)\n"
      << "  --batch-max N        max requests per batch (default 16)\n"
      << "  --cache-capacity N   canonical embeddings kept (default 4096)\n"
      << "  --verify-on-hit      re-verify relabeled cache hits\n"
      << "  --tenant-rate R      per-tenant token-bucket refill, req/s\n"
      << "                       (default 0 = quotas off)\n"
      << "  --tenant-burst B     token-bucket depth (default: "
         "max(1, R))\n"
      << "  --drr-quantum N      requests per tenant per DRR visit at\n"
      << "                       batch formation (default 1)\n"
      << "  --threads N          embedding worker threads (0 = cores)\n"
      << "  --listen PORT        serve TCP on 127.0.0.1:PORT (default: "
         "stdio;\n"
      << "                       0 = kernel-assigned, printed on "
         "stderr)\n"
      << "  --shard-id N         cluster identity, reported by HEALTH\n"
      << "  --shard-map FILE     validate --shard-id against this map, "
         "seed\n"
      << "                       gossip membership from it (static "
         "bootstrap)\n"
      << "  --bootstrap          start a brand-new cluster with self as "
         "the\n"
      << "                       only member (TCP + --shard-id)\n"
      << "  --join HOST:PORT     join a running cluster through this "
         "member\n"
      << "                       (TCP + --shard-id; adopts its snapshot)\n"
      << "  --gossip-interval-ms N  SWIM probe period (default 250)\n"
      << "  --suspicion-timeout-ms N  silence before a suspect is "
         "declared\n"
      << "                       dead (default 1500)\n"
      << "  --max-conns N        concurrent TCP connections; excess "
         "accepts\n"
      << "                       are answered `status rejected` "
         "(default 64)\n"
      << "  --write-timeout-ms N evict a TCP client that cannot drain "
         "its\n"
      << "                       socket within N ms (default 5000)\n"
      << "  --drain-timeout-ms N abort if shutdown drain exceeds N ms\n"
      << "                       (default 10000)\n"
      << "  --oracle-snapshot F  warm-start: seed the path-oracle memo "
         "and\n"
      << "                       canonical cache from this snapshot "
         "file\n"
      << "                       (written by `starring-cli warm`); a "
         "bad\n"
      << "                       snapshot is rejected and computation\n"
      << "                       proceeds cold\n"
      << "  --bench-artifact S   write BENCH_<S>.json on clean drain\n"
      << "  --trace-out FILE     enable tracing; dump Chrome trace JSON\n"
      << "                       on clean drain and on SIGUSR1\n"
      << "  --trace              enable tracing without a local dump; "
         "spans\n"
      << "                       are served to the TRACE command (the\n"
      << "                       proxy's merged cluster export)\n";
  return 2;
}

std::optional<DaemonConfig> parse_args(int argc, char** argv) {
  DaemonConfig cfg;
  cfg.svc.embed.prewarm_oracle = true;  // a daemon amortizes the warmup
  const auto num = [&](int* i) -> long {
    if (*i + 1 >= argc) return -1;
    return std::atol(argv[++*i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long v = 0;
    if (a == "--queue-depth" && (v = num(&i)) > 0) {
      cfg.svc.queue_depth = static_cast<std::size_t>(v);
    } else if (a == "--batch-max" && (v = num(&i)) > 0) {
      cfg.svc.batch_max = static_cast<std::size_t>(v);
    } else if (a == "--cache-capacity" && (v = num(&i)) > 0) {
      cfg.svc.cache_capacity = static_cast<std::size_t>(v);
    } else if (a == "--verify-on-hit") {
      cfg.svc.verify_on_hit = true;
    } else if (a == "--tenant-rate" && i + 1 < argc) {
      cfg.svc.tenant_rate = std::atof(argv[++i]);
      if (cfg.svc.tenant_rate < 0) return std::nullopt;
    } else if (a == "--tenant-burst" && i + 1 < argc) {
      cfg.svc.tenant_burst = std::atof(argv[++i]);
      if (cfg.svc.tenant_burst < 0) return std::nullopt;
    } else if (a == "--drr-quantum" && (v = num(&i)) > 0) {
      cfg.svc.drr_quantum = static_cast<std::size_t>(v);
    } else if (a == "--threads" && (v = num(&i)) >= 0) {
      cfg.svc.embed.num_threads = static_cast<unsigned>(v);
    } else if (a == "--listen" && (v = num(&i)) >= 0 && v < 65536) {
      cfg.listen_port = static_cast<int>(v);
    } else if (a == "--shard-id" && (v = num(&i)) >= 0) {
      cfg.shard_id = static_cast<int>(v);
    } else if (a == "--shard-map" && i + 1 < argc) {
      cfg.shard_map = argv[++i];
    } else if (a == "--join" && i + 1 < argc) {
      cfg.join_addr = argv[++i];
    } else if (a == "--bootstrap") {
      cfg.bootstrap = true;
    } else if (a == "--gossip-interval-ms" && (v = num(&i)) > 0) {
      cfg.gossip_interval_ms = static_cast<int>(v);
    } else if (a == "--suspicion-timeout-ms" && (v = num(&i)) > 0) {
      cfg.suspicion_timeout_ms = static_cast<int>(v);
    } else if (a == "--max-conns" && (v = num(&i)) > 0) {
      cfg.max_conns = static_cast<int>(v);
    } else if (a == "--write-timeout-ms" && (v = num(&i)) > 0) {
      cfg.write_timeout_ms = static_cast<int>(v);
    } else if (a == "--drain-timeout-ms" && (v = num(&i)) > 0) {
      cfg.drain_timeout_ms = static_cast<int>(v);
    } else if (a == "--oracle-snapshot" && i + 1 < argc) {
      cfg.oracle_snapshot = argv[++i];
    } else if (a == "--bench-artifact" && i + 1 < argc) {
      cfg.bench_artifact = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else if (a == "--trace") {
      cfg.trace = true;
    } else {
      return std::nullopt;
    }
  }
  // Dynamic membership needs a dialable identity: TCP and a shard id.
  const int sources = (!cfg.shard_map.empty() ? 1 : 0) +
                      (!cfg.join_addr.empty() ? 1 : 0) +
                      (cfg.bootstrap ? 1 : 0);
  if (sources > 1) return std::nullopt;
  if ((!cfg.join_addr.empty() || cfg.bootstrap) &&
      (cfg.listen_port < 0 || cfg.shard_id < 0))
    return std::nullopt;
  return cfg;
}

// --- stdio transport --------------------------------------------------

/// Answer a PING, FAIL, HEALTH, gossip, membership, or seed command on
/// `out`; true when `req` was one.  All are answered inline on the
/// reader thread — liveness probes, fault arming, gossip exchanges,
/// and cache seeding must not wait behind queued embeddings.  `agent`
/// is null outside member mode (stdio, or TCP without membership).
bool answer_command(ServiceRequest& req, std::ostream& out,
                    std::mutex& out_mu, EmbedService& svc,
                    const DaemonConfig& cfg,
                    cluster::MembershipAgent* agent) {
  if (req.kind == RequestKind::kPing) {
    const std::lock_guard<std::mutex> lock(out_mu);
    out << "PONG\n";
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kHealth) {
    HealthInfo h;
    h.shard_id = cfg.shard_id;
    // Live membership owns the epoch once an agent runs; the static
    // number is only the pre-membership fallback.
    h.epoch = agent != nullptr ? agent->epoch() : cfg.map_epoch;
    h.cache_entries = svc.cache_size();
    h.cache_hits = static_cast<std::uint64_t>(
        obs::counter("svc.cache_hits").value());
    h.cache_misses = static_cast<std::uint64_t>(
        obs::counter("svc.cache_misses").value());
    h.uptime_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - g_start)
            .count());
    h.inflight = svc.inflight();
    const std::lock_guard<std::mutex> lock(out_mu);
    write_health(out, h);
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kTrace) {
    // Remote flight-recorder drain (a read, not a reset): the proxy's
    // merge path pulls these from every shard into one Perfetto file.
    TraceDump d;
    d.process = cfg.shard_id >= 0
                    ? "shard-" + std::to_string(cfg.shard_id)
                    : "starringd";
    d.epoch_ns = obs::trace::epoch_ns();
    d.dropped = obs::trace::stats().dropped;
    d.spans = obs::trace::collect();
    const std::lock_guard<std::mutex> lock(out_mu);
    write_trace(out, d);
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kSlow) {
    // The slow-request flight recorder lives in the proxy; a shard
    // answers the framed record with an empty report so callers can
    // issue SLOW cluster-wide without special-casing.
    const std::lock_guard<std::mutex> lock(out_mu);
    write_stats(out, "# slow-request recorder: not a proxy\n");
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kSeed) {
    // Proxy-initiated read-through replication: insert the pushed
    // canonical ring as if it came from a snapshot warm start.  Trust
    // boundary is the same as FAIL — loopback peers are operators.
    std::string why;
    if (req.seed_key.empty())
      why = "empty key";
    else if (req.seed_ring.empty())
      why = "empty ring";
    else
      svc.seed_cache(req.seed_key, std::move(req.seed_ring));
    obs::counter(why.empty() ? "svc.seeds_accepted" : "svc.seeds_rejected")
        .add();
    const std::lock_guard<std::mutex> lock(out_mu);
    if (why.empty())
      out << "SEED ok\n";
    else
      out << "SEED bad " << why << "\n";
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kFail) {
    std::string why;
    const bool ok = failpoint::set(req.fail_config, &why);
    const std::lock_guard<std::mutex> lock(out_mu);
    if (ok)
      out << "FAIL ok\n";
    else
      out << "FAIL bad "
          << (why.empty() ? std::string("failpoints unavailable") : why)
          << "\n";
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kGossip) {
    if (agent == nullptr) {
      // Not a member: a malformed-on-purpose line makes the peer's
      // gossip parse fail fast instead of burning its read timeout.
      const std::lock_guard<std::mutex> lock(out_mu);
      out << "GOSSIP bad not a cluster member\n";
      out.flush();
      return true;
    }
    const cluster::MembershipAgent::Reply reply = agent->handle(*req.gossip);
    if (FAILPOINT("gossip.ack")) {
      // Partition chaos, receiver half: the updates were merged but
      // the peer hears nothing back — its probe fails and we start
      // accruing suspicion over there.
      obs::counter("cluster.membership.acks_dropped").add();
      return true;
    }
    const std::lock_guard<std::mutex> lock(out_mu);
    if (reply.snapshot)
      write_membership(out, *reply.snapshot);
    else if (reply.ack)
      write_gossip(out, *reply.ack);
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kMembers) {
    MembershipRecord rec;
    if (agent != nullptr) {
      rec = agent->membership();
    } else {
      rec.epoch = cfg.map_epoch;  // static view: no live members list
    }
    const std::lock_guard<std::mutex> lock(out_mu);
    write_membership(out, rec);
    out.flush();
    return true;
  }
  if (req.kind == RequestKind::kLeave) {
    {
      const std::lock_guard<std::mutex> lock(out_mu);
      out << "LEAVE ok\n";
      out.flush();
    }
    // Graceful departure: announce `left` to every peer (so nobody
    // burns a suspicion window or trips a breaker on us), then stop
    // accepting; the main loop's bounded drain answers what's queued.
    // Detached: leave() dials peers and must not block this reader.
    std::thread([agent] {
      if (agent != nullptr) agent->leave();
      g_stop = 1;
    }).detach();
    return true;
  }
  return false;
}

int serve_stdio(DaemonConfig& cfg) {
  // Declared before the service: destroyed after it, so a signal-drain
  // bound armed below covers the scheduler join in ~EmbedService.
  std::optional<net::DrainGuard> drain_guard;
  EmbedService svc(cfg.svc);
  seed_service(svc, cfg);
  std::mutex out_mu;
  std::thread writer([&] {
    while (auto resp = svc.next_response()) {
      const std::lock_guard<std::mutex> lock(out_mu);
      write_response(std::cout, *resp);
      std::cout.flush();
    }
  });

  int rc = 0;
  std::string err;
  while (g_stop == 0) {
    auto req = read_request(std::cin, &err);
    if (!req) {
      if (!err.empty()) {
        // Framing is token-based; a malformed record poisons the
        // stream.  Report once and drain what was admitted.
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        write_response(std::cout, bad);
        std::cout.flush();
        rc = 1;
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      const std::lock_guard<std::mutex> lock(out_mu);
      write_stats(std::cout, obs::render_prometheus());
      std::cout.flush();
      continue;
    }
    if (answer_command(*req, std::cout, out_mu, svc, cfg, nullptr))
      continue;
    // wait=true: a full queue stops the reader, and the pipe buffer
    // backpressures the writer on the other side.
    svc.submit(std::move(*req));
  }
  // A clean EOF drain is allowed to take as long as the queue needs;
  // a signal-initiated one is bounded.
  if (g_stop != 0) drain_guard.emplace(cfg.drain_timeout_ms);
  svc.drain();
  writer.join();
  return rc;
}

// --- TCP transport ----------------------------------------------------

void serve_connection(int fd, EmbedService& svc, net::ConnRegistry& reg,
                      const DaemonConfig& cfg,
                      cluster::MembershipAgent* agent) {
  // Set on write timeout (eviction), hard write error, or a response
  // that failed to serialize; once dead the
  // connection is no longer serviced — reads stop (the socket is
  // hard-closed) and queued callbacks drop their responses.
  std::atomic<bool> dead{false};
  net::FdInBuf in_buf(fd);
  net::FdOutBuf out_buf(fd, cfg.write_timeout_ms, &dead);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);
  // Per-connection response routing; responses may complete out of
  // submission order across batches, ids correlate them.
  std::mutex out_mu;
  std::condition_variable done_cv;
  std::mutex done_mu;
  int outstanding = 0;

  // Call under out_mu.  A response that fails to serialize (the
  // io.write_response failpoint, or a stream that went bad underneath
  // us) must not leave the connection half-alive: the peer would burn
  // its full read timeout on a socket that will never answer.  Kill it
  // instead so the client sees EOF promptly and fails over.
  auto send_response = [&](const ServiceResponse& resp) {
    if (write_response(out, resp)) {
      out.flush();
    } else {
      out_buf.mark_dead();
    }
  };

  std::string err;
  while (!dead.load(std::memory_order_relaxed)) {
    auto req = read_request(in, &err);
    if (!req) {
      if (!err.empty() && !dead.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        send_response(bad);
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      const std::lock_guard<std::mutex> lock(out_mu);
      write_stats(out, obs::render_prometheus());
      out.flush();
      continue;
    }
    if (answer_command(*req, out, out_mu, svc, cfg, agent)) continue;
    {
      const std::lock_guard<std::mutex> lock(done_mu);
      ++outstanding;
    }
    const std::uint64_t id = req->id;
    const bool admitted = svc.submit(
        *req,
        [&, id](ServiceResponse resp) {
          if (!dead.load(std::memory_order_relaxed)) {
            const std::lock_guard<std::mutex> lock(out_mu);
            send_response(resp);
          }
          {
            // Notify under the lock: the connection thread may destroy
            // the cv the moment it observes outstanding == 0.
            const std::lock_guard<std::mutex> lock(done_mu);
            --outstanding;
            done_cv.notify_all();
          }
        },
        /*wait=*/false);
    if (!admitted) {
      // Remote callers get an explicit bounce instead of a stalled
      // socket, so they can back off or retry elsewhere.
      if (!dead.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(out_mu);
        ServiceResponse rej;
        rej.id = id;
        rej.status = ServiceStatus::kRejected;
        rej.reason = "queue full";
        send_response(rej);
      }
      const std::lock_guard<std::mutex> lock(done_mu);
      --outstanding;
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return outstanding == 0; });
  }
  reg.remove(fd);
  ::close(fd);
}

/// Over the connection cap: one `status rejected` response, then close.
/// The socket is still blocking here (best effort; a peer that will not
/// read its bounce is closed on anyway when the process exits).
void refuse_connection(int fd) {
  obs::counter("svc.rejected_conns").add();
  net::FdOutBuf out_buf(fd, /*write_timeout_ms=*/1000, nullptr);
  std::ostream out(&out_buf);
  ServiceResponse rej;
  rej.status = ServiceStatus::kRejected;
  rej.reason = "connection limit";
  write_response(out, rej);
  out.flush();
  ::close(fd);
}

int serve_tcp(DaemonConfig& cfg) {
  int actual_port = 0;
  std::string err;
  const int listen_fd =
      net::listen_loopback(cfg.listen_port, 16, &actual_port, &err);
  if (listen_fd < 0) {
    std::cerr << "starringd: " << err << "\n";
    return 1;
  }
  // With --listen 0 this line is how a test or launch script learns
  // the kernel-assigned port — keep it parseable.
  std::cerr << "starringd: listening on 127.0.0.1:" << actual_port << "\n";

  // Membership agent (member mode only): identity is the endpoint
  // peers dial — the map's listed endpoint under static bootstrap, the
  // actual listen address under --bootstrap/--join.
  std::unique_ptr<cluster::MembershipAgent> agent;
  if (cfg.shard_id >= 0 &&
      (cfg.static_map || cfg.bootstrap || !cfg.join_addr.empty())) {
    MemberRecord self;
    self.shard_id = cfg.shard_id;
    self.incarnation = 1;
    self.addr = "127.0.0.1:" + std::to_string(actual_port);
    cluster::MembershipOptions mopts;
    mopts.probe_interval_ms = cfg.gossip_interval_ms;
    mopts.suspicion_timeout_ms = cfg.suspicion_timeout_ms;
    if (cfg.static_map) {
      if (const cluster::ShardInfo* mine =
              cfg.static_map->find(cfg.shard_id))
        self.addr = net::to_string(mine->endpoint);
      agent = std::make_unique<cluster::MembershipAgent>(self, mopts);
      agent->bootstrap_from_map(*cfg.static_map);
    } else if (cfg.bootstrap) {
      agent = std::make_unique<cluster::MembershipAgent>(self, mopts);
      agent->bootstrap_single();
    } else {
      agent = std::make_unique<cluster::MembershipAgent>(self, mopts);
      if (!agent->join(cfg.join_addr)) {
        std::cerr << "starringd: failed to join cluster via "
                  << cfg.join_addr << "\n";
        ::close(listen_fd);
        return 1;
      }
      std::cerr << "starringd: joined cluster via " << cfg.join_addr
                << ", epoch " << agent->epoch() << "\n";
    }
    agent->start();
  }

  // Declared before the service and registry: destroyed last, so the
  // drain bound armed at shutdown covers the scheduler join too.
  std::optional<net::DrainGuard> drain_guard;
  EmbedService svc(cfg.svc);
  seed_service(svc, cfg);
  net::ConnRegistry reg;
  obs::Counter& accept_errors = obs::counter("svc.accept_errors");
  while (g_stop == 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200 /*ms*/);
    if (r <= 0) continue;  // timeout or EINTR: re-check g_stop
    const int fd =
        net::accept_transient(listen_fd, "starringd", accept_errors);
    if (fd < 0) continue;
    if (reg.count() >= static_cast<std::size_t>(cfg.max_conns)) {
      refuse_connection(fd);
      continue;
    }
    if (!net::set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    reg.add(fd);
    // Detached with the registry as the liveness ledger: finished
    // connections release their thread immediately instead of
    // accumulating joinable handles until shutdown.
    std::thread([fd, &svc, &reg, &cfg, agent_raw = agent.get()] {
      serve_connection(fd, svc, reg, cfg, agent_raw);
    }).detach();
  }
  ::close(listen_fd);
  // Depart politely on SIGTERM too (idempotent after a LEAVE command):
  // peers record `left` and drop us from their maps without a
  // suspicion window.  A SIGKILLed process never gets here, which is
  // exactly the failure-detection path.
  if (agent) {
    agent->leave();
    agent->stop();
  }
  drain_guard.emplace(cfg.drain_timeout_ms);
  reg.shutdown_all(SHUT_RD);
  if (!reg.wait_empty(cfg.drain_timeout_ms / 2)) {
    // Laggards lose their half-closed grace: hard-close both ways so
    // blocked reads and writes fail and the connections unwind.
    reg.shutdown_all(SHUT_RDWR);
    if (!reg.wait_empty(cfg.drain_timeout_ms / 4)) {
      // Detached threads still reference svc/reg; exiting now is the
      // only unwind that cannot touch freed state.
      std::cerr << "starringd: connections failed to drain, aborting\n";
      std::_Exit(1);
    }
  }
  svc.drain();
  return 0;
}

int daemon_main(int argc, char** argv) {
  auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!cfg->shard_map.empty()) {
    // The map is the deployment's source of truth: refusing to start
    // under an identity it does not list catches the classic copy-paste
    // launch error before the proxy ever sees a mismatched HEALTH.
    std::string err;
    const auto map = cluster::ShardMap::load(cfg->shard_map, &err);
    if (!map) {
      std::cerr << "starringd: bad shard map: " << err << "\n";
      return 1;
    }
    if (cfg->shard_id < 0 || map->find(cfg->shard_id) == nullptr) {
      std::cerr << "starringd: --shard-id "
                << (cfg->shard_id < 0 ? std::string("(unset)")
                                      : std::to_string(cfg->shard_id))
                << " not in " << cfg->shard_map << "\n";
      return 1;
    }
    cfg->map_epoch = map->epoch();
    // Retained: serve_tcp seeds the gossip agent's member set from it.
    cfg->static_map =
        std::make_shared<cluster::ShardMap>(std::move(*map));
  }

  // A live daemon is meant to be inspected (STATS), so the metrics
  // layer is always on here; batch tools still opt in via BenchRecorder
  // or STARRING_METRICS.
  obs::set_enabled(true);

  // Cluster members mint trace/span ids in a per-process namespace so
  // a merged trace file never sees two processes reuse an id (shard k
  // gets namespace k+1; the proxy keeps the default 0).
  if (cfg->shard_id >= 0)
    obs::trace::set_id_namespace(
        static_cast<std::uint32_t>(cfg->shard_id) + 1);

  if (!cfg->oracle_snapshot.empty()) {
    // Warm start.  A rejected snapshot is a logged degradation, not a
    // startup failure: the daemon serves identical answers either way,
    // just colder.  snapshot_load_ms is greppable — the CI cold-start
    // smoke compares it against the warm run's warm_compute_ms.
    const auto t0 = std::chrono::steady_clock::now();
    std::string err;
    if (auto snap = load_oracle_snapshot(cfg->oracle_snapshot, &err)) {
      BlockOracle::import_memo(snap->memo);
      cfg->seed_rings = std::move(snap->rings);
      const double load_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      std::fprintf(stderr,
                   "starringd: snapshot_load_ms %.3f (%zu canonical rings, "
                   "%zu memo entries) from %s\n",
                   load_ms, cfg->seed_rings.size(), snap->memo.size(),
                   cfg->oracle_snapshot.c_str());
    } else {
      std::cerr << "starringd: snapshot rejected (" << err
                << "); starting cold\n";
    }
  }

  std::unique_ptr<obs::BenchRecorder> rec;
  if (!cfg->bench_artifact.empty())
    rec = std::make_unique<obs::BenchRecorder>(cfg->bench_artifact);

  if (cfg->trace) obs::trace::set_enabled(true);
  std::thread dump_watcher;
  std::atomic<bool> dump_watcher_stop{false};
  if (!cfg->trace_out.empty()) {
    obs::trace::set_enabled(true);
    std::signal(SIGUSR1, on_dump_signal);
    const std::string path = cfg->trace_out;
    dump_watcher = std::thread([path, &dump_watcher_stop] {
      while (!dump_watcher_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (g_dump != 0) {
          g_dump = 0;
          if (!obs::trace::write_chrome_trace_file(path))
            std::cerr << "starringd: cannot write trace to " << path
                      << "\n";
          else
            std::cerr << "starringd: trace dumped to " << path << "\n";
        }
      }
    });
  }

  const int rc = cfg->listen_port >= 0 ? serve_tcp(*cfg) : serve_stdio(*cfg);

  if (!cfg->trace_out.empty()) {
    dump_watcher_stop.store(true, std::memory_order_relaxed);
    dump_watcher.join();
    if (!obs::trace::write_chrome_trace_file(cfg->trace_out)) {
      std::cerr << "starringd: cannot write trace to " << cfg->trace_out
                << "\n";
      return rc == 0 ? 1 : rc;
    }
  }

  if (rec) {
    const double hits =
        static_cast<double>(obs::counter("svc.cache_hits").value());
    const double misses =
        static_cast<double>(obs::counter("svc.cache_misses").value());
    rec->add_counter("svc.cache_hit_rate",
                     hits + misses > 0 ? hits / (hits + misses) : 0.0);
  }
  return rc;
}

}  // namespace
}  // namespace starring

int main(int argc, char** argv) {
  return starring::daemon_main(argc, argv);
}
