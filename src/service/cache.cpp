#include "service/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace starring {

CanonicalRingCache::CanonicalRingCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      shards_(std::min(kMaxShards, capacity_)) {
  // Exact distribution: base share everywhere, remainder spread one
  // entry at a time so the shard budgets sum to capacity_ (the old
  // max(1, capacity / kShards) both over-budgeted small capacities and
  // truncated up to kShards-1 entries of larger ones).
  const std::size_t base = capacity_ / shards_.size();
  const std::size_t rem = capacity_ % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    s.cap = base + (i < rem ? 1 : 0);
    // ~80% of the shard protects the re-referenced set; at least one
    // probation slot always remains so new entries have somewhere to
    // land (and single-entry shards degrade to plain LRU).
    s.protected_cap = s.cap - std::max<std::size_t>(1, (s.cap + 4) / 5);
  }
}

CanonicalRingCache::RingPtr CanonicalRingCache::lookup(
    const std::string& key) {
  // A fired lookup site forces a miss: the service recomputes (and
  // re-verifies) what the cache would have served.
  if (FAILPOINT("svc.cache_lookup")) return nullptr;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  Slot& slot = it->second;
  if (slot.in_protected) {
    s.protect.splice(s.protect.begin(), s.protect, slot.it);
    return slot.it->ring;
  }
  // Second touch: the entry has proven it is not scan traffic.
  if (s.protected_cap == 0) {
    s.probation.splice(s.probation.begin(), s.probation, slot.it);
    return slot.it->ring;
  }
  s.protect.splice(s.protect.begin(), s.probation, slot.it);
  slot.in_protected = true;
  if (s.protect.size() > s.protected_cap) {
    // Demote the coolest protected entry instead of dropping it: it
    // re-enters probation at the MRU end for one more chance.
    const auto demoted = std::prev(s.protect.end());
    s.probation.splice(s.probation.begin(), s.protect, demoted);
    s.index[demoted->key].in_protected = false;
  }
  return slot.it->ring;
}

void CanonicalRingCache::insert(const std::string& key, RingPtr ring) {
  // A fired insert site silently loses the entry — the miss path must
  // still answer the request and the next lookup must recompute.
  if (FAILPOINT("svc.cache_insert")) return;
  static obs::Counter& evictions = obs::counter("svc.cache_evictions");
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    Slot& slot = it->second;
    slot.it->ring = std::move(ring);
    EntryList& list = slot.in_protected ? s.protect : s.probation;
    list.splice(list.begin(), list, slot.it);
    return;
  }
  s.probation.emplace_front(Entry{key, std::move(ring)});
  s.index.emplace(key, Slot{false, s.probation.begin()});
  if (s.probation.size() + s.protect.size() > s.cap) {
    // New entries always land in probation, so it is non-empty here;
    // scans evict only each other from its tail.
    s.index.erase(s.probation.back().key);
    s.probation.pop_back();
    evictions.add();
  }
}

std::size_t CanonicalRingCache::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    total += s.probation.size() + s.protect.size();
  }
  return total;
}

}  // namespace starring
