# Empty dependencies file for starring_stargraph.
# This may be replaced when dependencies are built.
