#include "core/partition_selector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace starring {

namespace {

/// Number of distinct groups after refining `groups` by the symbol each
/// member shows at position p.
int groups_after_split(const std::vector<std::vector<Perm>>& groups, int p) {
  int total = 0;
  for (const auto& g : groups) {
    std::uint32_t symbols = 0;
    for (const Perm& perm : g) symbols |= 1u << perm.get(p);
    total += std::popcount(symbols);
  }
  return total;
}

/// True iff some group holds two members differing at position p.
bool splits_something(const std::vector<std::vector<Perm>>& groups, int p) {
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    const int s0 = g.front().get(p);
    for (const Perm& perm : g)
      if (perm.get(p) != s0) return true;
  }
  return false;
}

std::vector<std::vector<Perm>> apply_split(
    const std::vector<std::vector<Perm>>& groups, int p) {
  std::vector<std::vector<Perm>> out;
  for (const auto& g : groups) {
    std::map<int, std::vector<Perm>> by_symbol;
    for (const Perm& perm : g) by_symbol[perm.get(p)].push_back(perm);
    for (auto& [sym, members] : by_symbol) out.push_back(std::move(members));
  }
  return out;
}

}  // namespace

PartitionSelection select_positions_for(int n, std::span<const Perm> items,
                                        int count, SplitHeuristic heuristic,
                                        std::span<const int> preferred_fillers,
                                        std::span<const int> forced_first) {
  assert(n >= 2 && count >= 0 && count <= n - 1);
  PartitionSelection sel;
  std::vector<std::vector<Perm>> groups;
  if (!items.empty()) groups.emplace_back(items.begin(), items.end());

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  used[0] = true;  // position 0 is never a partition position

  for (const int p : forced_first) {
    if (static_cast<int>(sel.positions.size()) >= count) break;
    assert(p >= 1 && p < n);
    if (used[static_cast<std::size_t>(p)]) continue;
    used[static_cast<std::size_t>(p)] = true;
    sel.positions.push_back(p);
    if (splits_something(groups, p)) ++sel.effective_splits;
    groups = apply_split(groups, p);
  }

  while (static_cast<int>(sel.positions.size()) < count) {
    int best = -1;
    int best_groups = -1;
    for (int p = 1; p < n; ++p) {
      if (used[static_cast<std::size_t>(p)]) continue;
      if (!splits_something(groups, p)) continue;
      if (heuristic == SplitHeuristic::kFirstSplitting) {
        best = p;
        break;
      }
      const int ng = groups_after_split(groups, p);
      if (ng > best_groups) {
        best_groups = ng;
        best = p;
      }
    }
    if (best == -1) break;  // all groups are singletons (or unsplittable)
    used[static_cast<std::size_t>(best)] = true;
    sel.positions.push_back(best);
    groups = apply_split(groups, best);
    ++sel.effective_splits;
  }

  // Fill the remaining slots — preferred fillers first (faulty-edge
  // dimensions), then arbitrary unused positions; refine the groups
  // through them too so max_faults_per_block reflects the final blocks.
  for (const int p : preferred_fillers) {
    if (static_cast<int>(sel.positions.size()) >= count) break;
    if (p < 1 || p >= n || used[static_cast<std::size_t>(p)]) continue;
    used[static_cast<std::size_t>(p)] = true;
    sel.positions.push_back(p);
    groups = apply_split(groups, p);
  }
  for (int p = 1;
       p < n && static_cast<int>(sel.positions.size()) < count; ++p) {
    if (used[static_cast<std::size_t>(p)]) continue;
    used[static_cast<std::size_t>(p)] = true;
    sel.positions.push_back(p);
    groups = apply_split(groups, p);
  }

  sel.max_faults_per_block = 0;
  for (const auto& g : groups)
    sel.max_faults_per_block =
        std::max(sel.max_faults_per_block, static_cast<int>(g.size()));
  return sel;
}

std::vector<int> edge_fault_dims(int n, const FaultSet& faults) {
  std::vector<int> dim_count(static_cast<std::size_t>(n), 0);
  for (const EdgeFault& e : faults.edge_faults()) {
    for (int d = 1; d < n; ++d) {
      if (e.u.star_move(d) == e.v) {
        ++dim_count[static_cast<std::size_t>(d)];
        break;
      }
    }
  }
  std::vector<int> dims;
  for (int d = 1; d < n; ++d)
    if (dim_count[static_cast<std::size_t>(d)] > 0) dims.push_back(d);
  std::sort(dims.begin(), dims.end(), [&](int a, int b) {
    return dim_count[static_cast<std::size_t>(a)] >
           dim_count[static_cast<std::size_t>(b)];
  });
  return dims;
}

PartitionSelection select_partition_positions(int n, const FaultSet& faults,
                                              SplitHeuristic heuristic) {
  assert(n >= 5);
  obs::ScopedPhase phase("partition_select");
  obs::trace::ScopedSpan span("partition_select");
  const std::vector<Perm> items = faults.vertex_faults();
  // Faulty-link swap dimensions, most frequent first: using them as
  // partition positions turns those links into super-edge crossings.
  const std::vector<int> preferred = edge_fault_dims(n, faults);
  PartitionSelection sel =
      select_positions_for(n, items, n - 4, heuristic, preferred);
  obs::counter("partition.selections").add();
  obs::counter("partition.effective_splits").add(sel.effective_splits);
  return sel;
}

}  // namespace starring
