// Experiment E14 — star graph vs hypercube under faults.
//
// The paper's opening claim: the star graph is "an attractive
// alternative to the hypercube".  This harness puts the two
// fault-tolerant ring results side by side at comparable machine
// sizes — S_7 (5040 nodes, degree 6) vs Q_12 (4096 nodes, degree 12),
// and S_8 (40320, degree 7) vs Q_15 (32768, degree 15):
//   * both lose exactly 2 ring slots per fault inside their regimes
//     (bipartite optimality on both sides),
//   * but the star graph's regime (|Fv| <= n-3) is reached with half
//     the links per node, and its degree grows sub-logarithmically in
//     machine size — the paper's argument, quantified.
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "hypercube/hypercube.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

namespace {

CubeFaults cube_faults(int n, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << n) - 1);
  CubeFaults f;
  while (static_cast<int>(f.size()) < count) f.insert(dist(rng));
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("star_vs_cube");
  const int trials = argc > 1 ? std::atoi(argv[1]) : 3;
  struct Pairing {
    int star_n;
    int cube_n;
  } pairings[] = {{7, 12}, {8, 15}};

  std::printf("E14: ring degradation, star graph vs hypercube\n");
  std::printf("%6s %7s %8s | %6s %7s %8s | %6s\n", "S_n", "nodes", "degree",
              "Q_n", "nodes", "degree", "faults");
  bool ok = true;
  for (const auto& pair : pairings) {
    const StarGraph g(pair.star_n);
    const Hypercube q(pair.cube_n);
    std::printf("%6d %7llu %8d | %6d %7u %8d |\n", pair.star_n,
                static_cast<unsigned long long>(g.num_vertices()), g.degree(),
                pair.cube_n, q.num_vertices(), q.degree());
    std::printf("   %6s %14s %14s %16s %16s\n", "f", "star_ring",
                "cube_ring", "star_loss_frac", "cube_loss_frac");
    const int max_f = pair.star_n - 3;  // the star regime (the smaller)
    for (int f = 0; f <= max_f; ++f) {
      std::uint64_t star_len = 0;
      std::uint64_t cube_len = 0;
      for (int t = 0; t < trials; ++t) {
        const auto seed = static_cast<std::uint64_t>(t);
        const FaultSet sf = random_vertex_faults(g, f, seed);
        const auto sring = embed_longest_ring(g, sf, bench_embed_options());
        if (!sring || !verify_healthy_ring(g, sf, sring->ring).valid) {
          ok = false;
          continue;
        }
        star_len += sring->ring.size();
        const CubeFaults cf = cube_faults(pair.cube_n, f, seed);
        const auto cring = embed_hypercube_ring(pair.cube_n, cf);
        if (!cring || !verify_hypercube_ring(pair.cube_n, cf, *cring)) {
          ok = false;
          continue;
        }
        cube_len += cring->size();
      }
      const auto tr = static_cast<std::uint64_t>(trials);
      const double sl =
          1.0 - static_cast<double>(star_len / tr) /
                    static_cast<double>(g.num_vertices());
      const double cl = 1.0 - static_cast<double>(cube_len / tr) /
                                  static_cast<double>(q.num_vertices());
      std::printf("   %6d %14llu %14llu %16.6f %16.6f\n", f,
                  static_cast<unsigned long long>(star_len / tr),
                  static_cast<unsigned long long>(cube_len / tr), sl, cl);
    }
  }
  std::printf("\nboth topologies lose exactly 2 ring slots per fault "
              "(bipartite optimum);\nthe star graph does it with %s the "
              "degree at comparable size — the paper's premise.\n",
              "roughly half");
  std::printf("RESULT: %s\n", ok ? "all embeddings verified"
                                 : "some embeddings FAILED");
  return ok ? 0 : 1;
}
