file(REMOVE_RECURSE
  "CMakeFiles/test_pancyclic.dir/test_pancyclic.cpp.o"
  "CMakeFiles/test_pancyclic.dir/test_pancyclic.cpp.o.d"
  "test_pancyclic"
  "test_pancyclic.pdb"
  "test_pancyclic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pancyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
