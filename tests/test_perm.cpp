// Unit tests for the packed permutation kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "perm/permutation.hpp"

namespace starring {
namespace {

TEST(Factorial, Values) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(4), 24u);
  EXPECT_EQ(factorial(10), 3628800u);
  EXPECT_EQ(factorial(16), 20922789888000ULL);
}

TEST(Perm, IdentityRoundTrip) {
  for (int n = 1; n <= 12; ++n) {
    const Perm id = Perm::identity(n);
    EXPECT_EQ(id.size(), n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(id.get(i), i);
    EXPECT_EQ(id.rank(), 0u);
    EXPECT_EQ(Perm::unrank(0, n), id);
  }
}

TEST(Perm, OfList) {
  const Perm p = Perm::of({2, 0, 1, 3});
  EXPECT_EQ(p.get(0), 2);
  EXPECT_EQ(p.get(1), 0);
  EXPECT_EQ(p.get(2), 1);
  EXPECT_EQ(p.get(3), 3);
  EXPECT_EQ(p.to_string(), "3124");
}

TEST(Perm, RankUnrankBijective) {
  for (int n = 1; n <= 7; ++n) {
    std::set<std::uint64_t> seen;
    for (VertexId r = 0; r < factorial(n); ++r) {
      const Perm p = Perm::unrank(r, n);
      EXPECT_EQ(p.rank(), r);
      EXPECT_TRUE(seen.insert(p.bits()).second) << "duplicate perm at " << r;
    }
  }
}

TEST(Perm, RankIsLexicographic) {
  // Lehmer rank orders permutations lexicographically.
  for (int n = 2; n <= 6; ++n) {
    std::vector<std::vector<int>> all;
    std::vector<int> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
    do {
      all.push_back(v);
    } while (std::next_permutation(v.begin(), v.end()));
    for (std::size_t r = 0; r < all.size(); ++r) {
      const Perm p = Perm::unrank(r, n);
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(p.get(i), all[r][static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Perm, StarMoveSwapsWithFront) {
  const Perm p = Perm::of({0, 1, 2, 3, 4});
  const Perm q = p.star_move(3);
  EXPECT_EQ(q.get(0), 3);
  EXPECT_EQ(q.get(3), 0);
  EXPECT_EQ(q.get(1), 1);
  EXPECT_EQ(q.get(2), 2);
  EXPECT_EQ(q.get(4), 4);
}

TEST(Perm, StarMoveIsInvolution) {
  for (VertexId r = 0; r < factorial(5); ++r) {
    const Perm p = Perm::unrank(r, 5);
    for (int i = 1; i < 5; ++i) EXPECT_EQ(p.star_move(i).star_move(i), p);
  }
}

TEST(Perm, AdjacencyMatchesStarMoves) {
  // Exhaustive on S_4: u ~ v iff v is a star move of u.
  const int n = 4;
  for (VertexId a = 0; a < factorial(n); ++a) {
    const Perm pa = Perm::unrank(a, n);
    std::set<std::uint64_t> nbrs;
    for (int i = 1; i < n; ++i) nbrs.insert(pa.star_move(i).bits());
    for (VertexId b = 0; b < factorial(n); ++b) {
      const Perm pb = Perm::unrank(b, n);
      EXPECT_EQ(pa.adjacent(pb), nbrs.contains(pb.bits()))
          << pa.to_string() << " vs " << pb.to_string();
    }
  }
}

TEST(Perm, AdjacencyIrreflexiveSymmetric) {
  for (VertexId a = 0; a < factorial(5); a += 7) {
    const Perm pa = Perm::unrank(a, 5);
    EXPECT_FALSE(pa.adjacent(pa));
    for (int i = 1; i < 5; ++i) {
      const Perm pb = pa.star_move(i);
      EXPECT_TRUE(pa.adjacent(pb));
      EXPECT_TRUE(pb.adjacent(pa));
    }
  }
}

TEST(Perm, ParityMatchesInversionCount) {
  for (int n = 2; n <= 7; ++n) {
    for (VertexId r = 0; r < factorial(n); ++r) {
      const Perm p = Perm::unrank(r, n);
      int inversions = 0;
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
          if (p.get(i) > p.get(j)) ++inversions;
      EXPECT_EQ(p.parity(), inversions % 2) << p.to_string();
    }
  }
}

TEST(Perm, StarMoveFlipsParity) {
  // Every S_n edge is a transposition: adjacency flips parity — the
  // bipartiteness of the star graph.
  for (VertexId r = 0; r < factorial(6); r += 11) {
    const Perm p = Perm::unrank(r, 6);
    for (int i = 1; i < 6; ++i)
      EXPECT_NE(p.parity(), p.star_move(i).parity());
  }
}

TEST(Perm, PartiteSetsEqualSize) {
  for (int n = 2; n <= 7; ++n) {
    std::uint64_t even = 0;
    for (VertexId r = 0; r < factorial(n); ++r)
      if (Perm::unrank(r, n).parity() == 0) ++even;
    EXPECT_EQ(even, factorial(n) / 2);
  }
}

TEST(Perm, PositionOf) {
  const Perm p = Perm::of({2, 0, 3, 1});
  EXPECT_EQ(p.position_of(2), 0);
  EXPECT_EQ(p.position_of(0), 1);
  EXPECT_EQ(p.position_of(3), 2);
  EXPECT_EQ(p.position_of(1), 3);
}

TEST(Perm, NeighborsCount) {
  const Perm p = Perm::identity(8);
  EXPECT_EQ(neighbors(p).size(), 7u);
}

TEST(Perm, ToStringLargeN) {
  const Perm p = Perm::identity(11);
  EXPECT_EQ(p.to_string(), "1.2.3.4.5.6.7.8.9.10.11");
}

TEST(Perm, HashSpreads) {
  std::set<std::size_t> hashes;
  for (VertexId r = 0; r < factorial(6); ++r)
    hashes.insert(PermHash{}(Perm::unrank(r, 6)));
  // All 720 hashes distinct (splitmix over distinct bit patterns).
  EXPECT_EQ(hashes.size(), factorial(6));
}

TEST(Perm, Ordering) {
  EXPECT_LT(Perm::of({0, 1, 2}), Perm::of({0, 2, 1}));
  EXPECT_EQ(Perm::of({1, 0, 2}), Perm::of({1, 0, 2}));
}

}  // namespace
}  // namespace starring
