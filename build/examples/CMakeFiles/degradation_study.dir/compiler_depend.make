# Empty compiler generated dependencies file for degradation_study.
# This may be replaced when dependencies are built.
