// Experiment E13 — embedding-service microbenchmarks.
//
// Measures the three costs a service caller sees: a cold request
// (canonicalize + embed + relabel), a warm request (canonicalize +
// cache hit + relabel), and the canonicalization step alone.  The
// hit/miss gap is the value of the symmetry-canonical cache: every
// relabeled copy of an already-solved fault class is answered at hit
// cost, and at n >= 8 the gap is several orders of magnitude.
#include <benchmark/benchmark.h>

#include "bench_artifact.hpp"

#include "fault/generators.hpp"
#include "service/canonical.hpp"
#include "service/service.hpp"
#include "stargraph/star_graph.hpp"

using namespace starring;

namespace {

ServiceRequest request_for(int n, int nf, std::uint64_t seed) {
  const StarGraph g(n);
  ServiceRequest r;
  r.n = n;
  r.faults = random_vertex_faults(g, nf, seed);
  return r;
}

void BM_ServiceMiss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    // Fresh service each iteration: every request is a cold miss.
    state.PauseTiming();
    EmbedService svc;
    const ServiceRequest req = request_for(n, n - 3, seed++);
    state.ResumeTiming();
    const ServiceResponse r = svc.process_now(req);
    if (r.status != ServiceStatus::kOk) state.SkipWithError(r.reason.c_str());
    benchmark::DoNotOptimize(r.ring.data());
  }
}
BENCHMARK(BM_ServiceMiss)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ServiceHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  EmbedService svc;
  const ServiceRequest seedreq = request_for(n, n - 3, 42);
  if (svc.process_now(seedreq).status != ServiceStatus::kOk) {
    state.SkipWithError("warmup embedding failed");
    return;
  }
  // Every iteration asks for a random relabeling of the warmed class:
  // always a hit, never the identical byte-for-byte request.
  std::uint64_t k = 0;
  std::vector<ServiceRequest> moved;
  for (int i = 0; i < 64; ++i) {
    ServiceRequest r = seedreq;
    r.faults = seedreq.faults.relabeled(Perm::unrank(i * 104729 % factorial(n), n));
    moved.push_back(std::move(r));
  }
  for (auto _ : state) {
    const ServiceResponse r = svc.process_now(moved[k++ % moved.size()]);
    if (r.status != ServiceStatus::kOk || !r.cache_hit)
      state.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(r.ring.data());
  }
}
BENCHMARK(BM_ServiceHit)->Arg(7)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_ServiceHitVerified(benchmark::State& state) {
  // The paranoid configuration: every hit re-verified after relabeling.
  const int n = static_cast<int>(state.range(0));
  ServiceOptions opts;
  opts.verify_on_hit = true;
  EmbedService svc(opts);
  const ServiceRequest req = request_for(n, n - 3, 42);
  if (svc.process_now(req).status != ServiceStatus::kOk) {
    state.SkipWithError("warmup embedding failed");
    return;
  }
  for (auto _ : state) {
    const ServiceResponse r = svc.process_now(req);
    if (r.status != ServiceStatus::kOk || !r.verified)
      state.SkipWithError("expected a verified hit");
    benchmark::DoNotOptimize(r.ring.data());
  }
}
BENCHMARK(BM_ServiceHitVerified)->Arg(7)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_Canonicalize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, n - 3, 7);
  for (auto _ : state) {
    const CanonicalForm c = canonicalize(n, faults);
    benchmark::DoNotOptimize(c.key.data());
  }
}
BENCHMARK(BM_Canonicalize)->Arg(7)->Arg(8)->Arg(9)->Unit(benchmark::kMicrosecond);

void BM_BatchedThroughput(benchmark::State& state) {
  // End-to-end scheduler path: submit a burst, drain, consume.  Mixed
  // fault classes so the cache takes hits and misses in one batch.
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  const int kBurst = 32;
  for (auto _ : state) {
    EmbedService svc;
    for (int i = 0; i < kBurst; ++i) {
      ServiceRequest r;
      r.id = static_cast<std::uint64_t>(i);
      r.n = n;
      r.faults = random_vertex_faults(g, 1 + i % (n - 3), i % 4);
      svc.submit(std::move(r));
    }
    svc.drain();
    int ok = 0;
    while (auto resp = svc.next_response())
      ok += resp->status == ServiceStatus::kOk;
    if (ok != kBurst) state.SkipWithError("lost responses");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBurst);
}
BENCHMARK(BM_BatchedThroughput)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

STARRING_BENCH_JSON_MAIN("service_micro");
