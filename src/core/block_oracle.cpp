#include "core/block_oracle.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "perm/permutation.hpp"
#include "stargraph/substar.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

using PathVal = BlockOracle::PathVal;

constexpr int kB = BlockOracle::kBlockSize;

std::uint64_t cache_key(int from, int to, std::uint32_t forbidden,
                        int target_vertices) {
  // Packs (from, to, forbidden, target): 5+5+24+5 bits.
  return static_cast<std::uint64_t>(from) |
         (static_cast<std::uint64_t>(to) << 5) |
         (static_cast<std::uint64_t>(forbidden) << 10) |
         (static_cast<std::uint64_t>(target_vertices) << 34);
}

bool is_fault_free_key(std::uint64_t key, int* from, int* to) {
  *from = static_cast<int>(key & 0x1F);
  *to = static_cast<int>((key >> 5) & 0x1F);
  const auto forbidden = static_cast<std::uint32_t>((key >> 10) & 0xFFFFFF);
  const int target = static_cast<int>((key >> 34) & 0x1F);
  return forbidden == 0 && target == kB && *from < kB && *to < kB &&
         *from != *to;
}

PathVal to_pathval(const std::optional<std::vector<int>>& path) {
  PathVal out;
  out.len = -1;
  out.v.fill(0);
  if (path.has_value()) {
    assert(path->size() <= static_cast<std::size_t>(kB));
    out.len = static_cast<std::int8_t>(path->size());
    for (std::size_t i = 0; i < path->size(); ++i)
      out.v[i] = static_cast<std::int8_t>((*path)[i]);
  }
  return out;
}

/// Process-wide memo.  The fault-free Hamiltonian plane (forbidden == 0,
/// target == 24 — virtually all chaining traffic) is a direct-indexed
/// immutable-once-published table read with a single acquire load and no
/// lock.  The long tail (faulty blocks, short blocks) is striped so
/// concurrent embeds contend on at most one shard per query: lookups
/// take a shared lock, inserts an exclusive one.
struct OracleCache {
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::uint64_t, PathVal> map;
  };
  Shard shards[kShards];

  // Fault-free plane: ff[from * 24 + to].  Written only while holding
  // ff_mu and before ff_ready is published with release order; readers
  // that observe ff_ready == true (acquire) see the completed table.
  std::array<PathVal, kB * kB> ff;
  std::mutex ff_mu;
  std::atomic<bool> ff_ready{false};

  static OracleCache& instance() {
    static OracleCache cache;
    return cache;
  }

  Shard& shard_for(std::uint64_t key) {
    // splitmix-style spread so consecutive keys hit different stripes.
    std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
    return shards[(x >> 60) & (kShards - 1)];
  }

  bool lookup(std::uint64_t key, PathVal* out) {
    Shard& s = shard_for(key);
    const std::shared_lock<std::shared_mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
  }

  void insert(std::uint64_t key, const PathVal& val) {
    Shard& s = shard_for(key);
    const std::unique_lock<std::shared_mutex> lock(s.mu);
    s.map.emplace(key, val);  // racing computers produce identical values
  }

  void clear() {
    for (Shard& s : shards) {
      const std::unique_lock<std::shared_mutex> lock(s.mu);
      s.map.clear();
    }
    const std::lock_guard<std::mutex> lock(ff_mu);
    ff_ready.store(false, std::memory_order_release);
  }
};

/// The one canonical S_4 block graph and local parity table, shared by
/// every BlockOracle instance (chaining constructs oracles in per-call
/// scopes; rebuilding the graph there is pure waste).
struct BlockData {
  SmallGraph graph{kB};
  std::array<int, kB> parity{};

  BlockData() {
    // Materialize the abstract block graph from the one canonical S_4:
    // the whole pattern of n = 4 (free positions 0..3, local index =
    // Lehmer rank).  Every embedded S_4 block of every S_n has this
    // exact local structure.
    const SubstarPattern s4 = SubstarPattern::whole(4);
    const SmallGraph g = s4.block_graph();
    for (int u = 0; u < kB; ++u)
      for (int v = u + 1; v < kB; ++v)
        if (g.has_edge(u, v)) graph.add_edge(u, v);
    for (int k = 0; k < kB; ++k)
      parity[static_cast<std::size_t>(k)] =
          Perm::unrank(static_cast<VertexId>(k), 4).parity();
  }

  static const BlockData& instance() {
    static const BlockData data;
    return data;
  }
};

}  // namespace

BlockOracle::BlockOracle()
    : graph_(&BlockData::instance().graph),
      parity_(&BlockData::instance().parity) {}

bool BlockOracle::find_path_into(
    int from, int to, std::uint32_t forbidden, int target_vertices,
    PathVal* out, std::span<const std::pair<int, int>> removed_edges) {
  assert(from >= 0 && from < kBlockSize && to >= 0 && to < kBlockSize);
  if (!removed_edges.empty()) {
    // Rare (edge-fault experiments only): search an ad-hoc copy.
    SmallGraph g = *graph_;
    for (const auto& [u, v] : removed_edges) g.remove_edge(u, v);
    *out = to_pathval(
        path_with_exact_vertices(g, from, to, forbidden, target_vertices));
    return out->len >= 0;
  }
  // Function-local statics: one registry lookup per process, then a
  // relaxed atomic add per query (and only while metrics are enabled).
  static obs::Counter& hit_counter = obs::counter("oracle.cache_hits");
  static obs::Counter& miss_counter = obs::counter("oracle.cache_misses");
  OracleCache& cache = OracleCache::instance();
  const bool fault_free = forbidden == 0 && target_vertices == kBlockSize;
  if (fault_free && from != to &&
      cache.ff_ready.load(std::memory_order_acquire)) {
    *out = cache.ff[static_cast<std::size_t>(from) * kBlockSize +
                    static_cast<std::size_t>(to)];
    ++hits_;
    hit_counter.add();
    return out->len >= 0;
  }
  const std::uint64_t key = cache_key(from, to, forbidden, target_vertices);
  if (cache.lookup(key, out)) {
    ++hits_;
    hit_counter.add();
    return out->len >= 0;
  }
  ++misses_;
  miss_counter.add();
  *out = to_pathval(
      path_with_exact_vertices(*graph_, from, to, forbidden, target_vertices));
  cache.insert(key, *out);
  return out->len >= 0;
}

std::optional<std::vector<int>> BlockOracle::find_path(
    int from, int to, std::uint32_t forbidden, int target_vertices,
    std::span<const std::pair<int, int>> removed_edges) {
  PathVal val;
  if (!find_path_into(from, to, forbidden, target_vertices, &val,
                      removed_edges))
    return std::nullopt;
  std::vector<int> path(static_cast<std::size_t>(val.len));
  for (std::size_t i = 0; i < path.size(); ++i)
    path[i] = val.v[i];
  return path;
}

const BlockOracle::PathVal* BlockOracle::fault_free_plane() {
  OracleCache& cache = OracleCache::instance();
  return cache.ff_ready.load(std::memory_order_acquire) ? cache.ff.data()
                                                        : nullptr;
}

void BlockOracle::prewarm_fault_free(unsigned threads) {
  OracleCache& cache = OracleCache::instance();
  if (cache.ff_ready.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(cache.ff_mu);
  if (cache.ff_ready.load(std::memory_order_acquire)) return;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  const SmallGraph& g = BlockData::instance().graph;
  // Rows are independent; fan them out over the persistent pool.  The
  // searches write directly into the fault-free table, bypassing the
  // shard locks entirely.
  parallel_for(0, kBlockSize, threads, [&](std::size_t from) {
    for (int to = 0; to < kBlockSize; ++to) {
      PathVal& slot =
          cache.ff[from * kBlockSize + static_cast<std::size_t>(to)];
      if (static_cast<int>(from) == to) {
        slot.len = -1;
        slot.v.fill(0);
        continue;
      }
      slot = to_pathval(path_with_exact_vertices(
          g, static_cast<int>(from), to, 0, kBlockSize));
    }
  });
  // Publish AFTER the fill; racing readers fall back to the shard map
  // (and recompute into it) until they observe the flag.
  cache.ff_ready.store(true, std::memory_order_release);
}

void BlockOracle::clear_cache() { OracleCache::instance().clear(); }

std::vector<BlockOracle::MemoEntry> BlockOracle::export_memo() {
  OracleCache& cache = OracleCache::instance();
  std::vector<MemoEntry> out;
  if (cache.ff_ready.load(std::memory_order_acquire)) {
    for (int from = 0; from < kBlockSize; ++from)
      for (int to = 0; to < kBlockSize; ++to) {
        if (from == to) continue;
        out.push_back(
            {cache_key(from, to, 0, kBlockSize),
             cache.ff[static_cast<std::size_t>(from) * kBlockSize +
                      static_cast<std::size_t>(to)]});
      }
  }
  std::vector<MemoEntry> tail;
  for (auto& shard : cache.shards) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [key, val] : shard.map) tail.push_back({key, val});
  }
  std::sort(tail.begin(), tail.end(),
            [](const MemoEntry& a, const MemoEntry& b) { return a.key < b.key; });
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void BlockOracle::import_memo(std::span<const MemoEntry> entries) {
  OracleCache& cache = OracleCache::instance();
  std::array<bool, kB * kB> got{};
  std::size_t ff_count = 0;
  {
    const std::lock_guard<std::mutex> lock(cache.ff_mu);
    const bool have_ff = cache.ff_ready.load(std::memory_order_acquire);
    for (const MemoEntry& e : entries) {
      int from = 0, to = 0;
      if (is_fault_free_key(e.key, &from, &to)) {
        if (have_ff) continue;  // already complete; nothing to add
        const std::size_t idx =
            static_cast<std::size_t>(from) * kB + static_cast<std::size_t>(to);
        cache.ff[idx] = e.val;
        if (!got[idx]) {
          got[idx] = true;
          ++ff_count;
        }
      } else if (from < kB && to < kB) {
        cache.insert(e.key, e.val);
      }
    }
    if (!have_ff && ff_count == static_cast<std::size_t>(kB) * (kB - 1)) {
      for (int d = 0; d < kB; ++d) {
        PathVal& diag = cache.ff[static_cast<std::size_t>(d) * kB +
                                 static_cast<std::size_t>(d)];
        diag.len = -1;
        diag.v.fill(0);
      }
      cache.ff_ready.store(true, std::memory_order_release);
    }
  }
  // A partial fault-free section (truncated snapshot that still passed
  // the checksum, or a future format change) never publishes the table;
  // those entries are recomputed lazily through the shard map.
}

}  // namespace starring
