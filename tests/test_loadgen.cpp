// Tests for the open-loop load-generation library: zipf sampling,
// arrival schedules, tenant-spec parsing, deterministic request
// synthesis, and the promtext scalar parser.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/verify.hpp"
#include "loadgen/loadgen.hpp"
#include "stargraph/star_graph.hpp"

namespace starring::loadgen {
namespace {

TEST(ZipfSampler, SkewsTowardLowClasses) {
  const ZipfSampler zipf(/*classes=*/16, /*exponent=*/1.1);
  std::mt19937_64 rng(7);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(rng()) / static_cast<double>(UINT64_MAX);
    const std::size_t c = zipf.sample(u);
    ASSERT_LT(c, 16u);
    ++counts[c];
  }
  // Class 0 dominates and the tail decays: the head must beat the sum
  // of the last half by a wide margin under exponent 1.1.
  EXPECT_GT(counts[0], counts[1]);
  int tail = 0;
  for (int i = 8; i < 16; ++i) tail += counts[i];
  EXPECT_GT(counts[0], tail);
}

TEST(ZipfSampler, EdgeDrawsStayInRange) {
  const ZipfSampler zipf(4, 1.0);
  EXPECT_EQ(zipf.sample(0.0), 0u);
  EXPECT_LT(zipf.sample(1.0), 4u);
  EXPECT_LT(zipf.sample(-0.5), 4u);  // clamped
  EXPECT_LT(zipf.sample(2.0), 4u);   // clamped
}

TEST(ArrivalClock, PoissonMatchesRateAndIncreases) {
  TenantSpec spec;
  spec.rate = 1000.0;  // 1/ms
  ArrivalClock clock(spec, /*seed=*/42);
  std::chrono::nanoseconds prev{0};
  std::chrono::nanoseconds last{0};
  const int kArrivals = 5000;
  for (int i = 0; i < kArrivals; ++i) {
    const auto t = clock.next();
    EXPECT_GT(t, prev);
    prev = t;
    last = t;
  }
  // Mean inter-arrival 1 ms: 5000 arrivals land near the 5 s mark
  // (generous window; the draw is deterministic for the fixed seed).
  const double span_s =
      std::chrono::duration<double>(last).count();
  EXPECT_GT(span_s, 4.0);
  EXPECT_LT(span_s, 6.5);
}

TEST(ArrivalClock, BurstyLeavesOffWindowsSilent) {
  TenantSpec spec;
  spec.rate = 2000.0;
  spec.arrival = Arrival::kBursty;
  spec.on_ms = 50;
  spec.off_ms = 450;
  ArrivalClock clock(spec, /*seed=*/3);
  // Period 500 ms: every arrival's offset modulo the period must fall
  // inside [0, on_ms] — nothing fires in the silent 450 ms.
  for (int i = 0; i < 2000; ++i) {
    const double t_ms =
        std::chrono::duration<double, std::milli>(clock.next()).count();
    const double phase = std::fmod(t_ms, 500.0);
    EXPECT_LE(phase, 50.0 + 1e-6) << "arrival inside an off-window at "
                                  << t_ms << " ms";
  }
}

TEST(TenantSpec, ParsesFullGrammar) {
  std::string err;
  const auto spec = parse_tenant_spec(
      "hot:rate=200:arrival=burst:on_ms=20:off_ms=80:zipf=1.3:classes=64:"
      "pattern=scan:nmin=4:nmax=6:deadline_ms=250:verify=1",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->name, "hot");
  EXPECT_DOUBLE_EQ(spec->rate, 200.0);
  EXPECT_EQ(spec->arrival, Arrival::kBursty);
  EXPECT_DOUBLE_EQ(spec->on_ms, 20.0);
  EXPECT_DOUBLE_EQ(spec->off_ms, 80.0);
  EXPECT_DOUBLE_EQ(spec->zipf, 1.3);
  EXPECT_EQ(spec->classes, 64u);
  EXPECT_EQ(spec->pattern, Pattern::kScan);
  EXPECT_EQ(spec->nmin, 4);
  EXPECT_EQ(spec->nmax, 6);
  EXPECT_EQ(spec->deadline_ms, 250);
  EXPECT_TRUE(spec->verify);
}

TEST(TenantSpec, NameAloneUsesDefaults) {
  const auto spec = parse_tenant_spec("solo");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "solo");
  EXPECT_EQ(spec->arrival, Arrival::kPoisson);
  EXPECT_EQ(spec->pattern, Pattern::kZipf);
  EXPECT_GT(spec->rate, 0);
}

TEST(TenantSpec, RejectsMalformedSpecs) {
  std::string err;
  EXPECT_FALSE(parse_tenant_spec("", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:rate=0", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:rate=-5", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:bogus=1", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:rate", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:arrival=lumpy", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:pattern=sparse", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:nmin=2", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:nmin=7:nmax=5", &err).has_value());
  EXPECT_FALSE(parse_tenant_spec("t:classes=0", &err).has_value());
  EXPECT_FALSE(
      parse_tenant_spec(std::string(65, 'x') + ":rate=1", &err).has_value())
      << "tenant name longer than the wire allows";
}

TEST(SynthRequest, DeterministicPerClassAndInGuaranteeRegime) {
  TenantSpec spec;
  spec.name = "t";
  spec.nmin = 5;
  spec.nmax = 7;
  const ServiceRequest a = synth_request(spec, /*seed=*/9, /*cls=*/3, 1);
  const ServiceRequest b = synth_request(spec, 9, 3, 2);
  // Same class: identical workload (the cacheable unit), ids aside.
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.faults.num_vertex_faults(), b.faults.num_vertex_faults());
  for (const Perm& f : a.faults.vertex_faults())
    EXPECT_TRUE(b.faults.vertex_faulty(f));
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(a.tenant, "t");
  // Different classes diverge (for some class in a small probe set).
  bool diverged = false;
  for (std::size_t cls = 0; cls < 8 && !diverged; ++cls) {
    const ServiceRequest c = synth_request(spec, 9, cls, 0);
    diverged = c.n != a.n ||
               c.faults.num_vertex_faults() != a.faults.num_vertex_faults();
  }
  EXPECT_TRUE(diverged);
  // Every synthesized request stays inside the paper's guarantee
  // regime: n in range, vertex faults <= n - 3, no edge faults.
  for (std::size_t cls = 0; cls < 64; ++cls) {
    const ServiceRequest r = synth_request(spec, 11, cls, cls);
    EXPECT_GE(r.n, 5);
    EXPECT_LE(r.n, 7);
    EXPECT_LE(r.faults.num_vertex_faults(),
              static_cast<std::size_t>(r.n - 3));
    EXPECT_EQ(r.faults.num_edge_faults(), 0u);
  }
}

TEST(ParseScalar, ReadsCountersAndSkipsLookalikes) {
  const std::string prom =
      "# HELP starring_svc_cache_hits hits\n"
      "# TYPE starring_svc_cache_hits counter\n"
      "starring_svc_cache_hits 42\n"
      "starring_svc_cache_hits_total 99\n"
      "starring_svc_latency_seconds_bucket{le=\"0.1\"} 7\n"
      "starring_svc_cache_misses 8\n";
  const auto hits = parse_scalar(prom, "starring_svc_cache_hits");
  ASSERT_TRUE(hits.has_value());
  EXPECT_DOUBLE_EQ(*hits, 42.0);
  const auto misses = parse_scalar(prom, "starring_svc_cache_misses");
  ASSERT_TRUE(misses.has_value());
  EXPECT_DOUBLE_EQ(*misses, 8.0);
  EXPECT_FALSE(parse_scalar(prom, "starring_absent").has_value());
  // A labeled sample is not a scalar match for its family prefix.
  EXPECT_FALSE(
      parse_scalar(prom, "starring_svc_latency_seconds_bucket").has_value());
}

}  // namespace
}  // namespace starring::loadgen
