// Embedding explorer: a small CLI for poking at the construction.
//
//   $ ./embedding_explorer ring  <n> <faults...>       embed with the given
//                                                      faulty vertices
//   $ ./embedding_explorer path  <n> <fault>           show Lemma 4 paths in
//                                                      S_4 around one fault
//   $ ./embedding_explorer super <n> <num_faults>      print the R_4 block
//                                                      ring structure
//   $ ./embedding_explorer save  <n> <file> <faults..> embed and write the
//                                                      artefact to disk
//   $ ./embedding_explorer check <file>                load and re-verify a
//                                                      saved embedding
//
// Faulty vertices are given 1-based, e.g. "2134".
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/block_oracle.hpp"
#include "core/partition_selector.hpp"
#include "core/ring_embedder.hpp"
#include "core/super_ring.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "util/io.hpp"

namespace {

using namespace starring;

std::optional<Perm> parse_perm(const std::string& s, int n) {
  if (static_cast<int>(s.size()) != n) return std::nullopt;
  std::vector<int> syms;
  std::uint32_t seen = 0;
  for (char c : s) {
    const int v = c - '1';
    if (v < 0 || v >= n || (seen >> v) & 1u) return std::nullopt;
    seen |= 1u << v;
    syms.push_back(v);
  }
  return Perm::of(syms);
}

int cmd_ring(int n, const std::vector<std::string>& fault_strs) {
  const StarGraph g(n);
  FaultSet faults;
  for (const auto& s : fault_strs) {
    const auto p = parse_perm(s, n);
    if (!p) {
      std::cerr << "bad vertex '" << s << "' (want a permutation of 1.." << n
                << ")\n";
      return 1;
    }
    faults.add_vertex(*p);
  }
  const auto res = embed_longest_ring(g, faults);
  if (!res) {
    std::cerr << "no embedding found\n";
    return 1;
  }
  const auto rep = verify_healthy_ring(g, faults, res->ring);
  std::cout << "ring length " << rep.length << " ("
            << (rep.valid ? "verified" : rep.error) << ")\n";
  for (std::size_t i = 0; i < res->ring.size(); ++i) {
    std::cout << g.vertex(res->ring[i]).to_string()
              << (i + 1 == res->ring.size() ? "\n" : " ");
    if (i % 12 == 11) std::cout << "\n ";
  }
  return rep.valid ? 0 : 1;
}

int cmd_path(const std::string& fault_str) {
  const auto f = parse_perm(fault_str, 4);
  if (!f) {
    std::cerr << "bad S_4 vertex '" << fault_str << "'\n";
    return 1;
  }
  BlockOracle oracle;
  const auto flocal = static_cast<int>(f->rank());
  std::cout << "Lemma 4 in S_4 with fault " << f->to_string()
            << ": healthy 22-vertex paths between adjacent healthy pairs\n";
  int shown = 0;
  for (int u = 0; u < 24 && shown < 3; ++u) {
    if (u == flocal) continue;
    for (int dim = 1; dim < 4 && shown < 3; ++dim) {
      const Perm pu = Perm::unrank(static_cast<VertexId>(u), 4);
      const Perm pv = pu.star_move(dim);
      const int v = static_cast<int>(pv.rank());
      if (v == flocal || v < u) continue;
      const auto path = oracle.find_path(u, v, 1u << flocal, 22);
      if (!path) continue;
      ++shown;
      std::cout << "  " << pu.to_string() << " .. " << pv.to_string() << ": ";
      for (int x : *path)
        std::cout << Perm::unrank(static_cast<VertexId>(x), 4).to_string()
                  << ' ';
      std::cout << "\n";
    }
  }
  return 0;
}

int cmd_super(int n, int nf) {
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, nf, 7);
  const auto sel = select_partition_positions(n, faults);
  std::cout << "partition positions (1-based):";
  for (int p : sel.positions) std::cout << ' ' << (p + 1);
  std::cout << "  max faults/block " << sel.max_faults_per_block << "\n";
  const auto sr = build_block_ring(n, sel.positions, faults);
  if (!sr) {
    std::cerr << "super-ring construction failed\n";
    return 1;
  }
  std::cout << "R_4 with " << sr->ring.size() << " blocks:\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(sr->ring.size(), 20);
       ++k) {
    const int nf_here = faults_in_pattern(sr->ring[k], faults);
    std::cout << "  [" << k << "] " << sr->ring[k].to_string()
              << (nf_here ? "  <- faulty" : "") << "\n";
  }
  if (sr->ring.size() > 20)
    std::cout << "  ... (" << sr->ring.size() - 20 << " more)\n";
  return 0;
}

int cmd_save(int n, const std::string& file,
             const std::vector<std::string>& fault_strs) {
  const StarGraph g(n);
  EmbeddingFile e;
  e.n = n;
  for (const auto& s : fault_strs) {
    const auto p = parse_perm(s, n);
    if (!p) {
      std::cerr << "bad vertex '" << s << "'\n";
      return 1;
    }
    e.faults.add_vertex(*p);
  }
  const auto res = embed_longest_ring(g, e.faults);
  if (!res) {
    std::cerr << "no embedding found\n";
    return 1;
  }
  e.sequence = res->ring;
  std::ofstream os(file);
  if (!os || !write_embedding(os, e)) {
    std::cerr << "cannot write " << file << "\n";
    return 1;
  }
  std::cout << "wrote ring of length " << e.sequence.size() << " to " << file
            << "\n";
  return 0;
}

int cmd_check(const std::string& file) {
  std::ifstream is(file);
  if (!is) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  std::string err;
  const auto e = read_embedding(is, &err);
  if (!e) {
    std::cerr << "parse error: " << err << "\n";
    return 1;
  }
  const StarGraph g(e->n);
  const auto rep = e->is_ring
                       ? verify_healthy_ring(g, e->faults, e->sequence)
                       : verify_healthy_path(g, e->faults, e->sequence);
  std::cout << (e->is_ring ? "ring" : "path") << " of length " << rep.length
            << " in S_" << e->n << " with "
            << e->faults.num_vertex_faults() << "+"
            << e->faults.num_edge_faults() << " faults: "
            << (rep.valid ? "VALID" : "INVALID (" + rep.error + ")") << "\n";
  return rep.valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: embedding_explorer ring|path|super ...\n";
    return 1;
  }
  if (args[0] == "ring" && args.size() >= 2) {
    return cmd_ring(std::atoi(args[1].c_str()),
                    {args.begin() + 2, args.end()});
  }
  if (args[0] == "path" && args.size() == 2) return cmd_path(args[1]);
  if (args[0] == "super" && args.size() == 3)
    return cmd_super(std::atoi(args[1].c_str()), std::atoi(args[2].c_str()));
  if (args[0] == "save" && args.size() >= 3)
    return cmd_save(std::atoi(args[1].c_str()), args[2],
                    {args.begin() + 3, args.end()});
  if (args[0] == "check" && args.size() == 2) return cmd_check(args[1]);
  std::cerr << "unrecognized command\n";
  return 1;
}
