// starring-load — multi-tenant open-loop load harness for starringd.
//
// Each --tenant SPEC runs on its own TCP connection with an open-loop
// sender (arrivals follow the spec's Poisson or bursty schedule and
// never wait for responses) and a reader that correlates responses by
// id for client-side latency.  After --duration-ms the senders stop,
// the connections half-close (the daemon answers everything still in
// flight, then EOF), and a fresh connection scrapes STATS for the
// daemon-side view: per-tenant latency histograms (svc.tenant.*) and
// cache counters.
//
// The harness is also the assertion rig CI uses:
//   --assert-p99-ratio X   fail unless, across tenants with enough
//                          samples, max client p99 <= X * min p99
//                          (the DRR fairness bound)
//   --min-hit-rate F       fail unless the daemon's canonical-cache
//                          hit rate reached F (the scan-resistance
//                          bound: a hot zipf tenant must keep hitting
//                          while a scan tenant churns probation)
// Exit is non-zero on transport/parse errors, unanswered requests,
// failed assertions, or status-error responses; throttled / rejected /
// timeout responses are expected outcomes under QoS and are only
// counted.
//
// With --bench-artifact NAME the run writes BENCH_<NAME>.json
// (load.* counters) for scripts/bench_compare.py gating.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ext/stdio_filebuf.h>  // libstdc++; the repo targets the gcc toolchain
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "obs/bench_io.hpp"
#include "obs/prometheus.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring {
namespace {

using loadgen::TenantSpec;

struct LoadConfig {
  /// Targets ("PORT" or "HOST:PORT"); repeatable.  Tenant i dials
  /// endpoint i mod size, so one harness can spread tenants over a
  /// proxy plus individual shards (or several proxies).
  std::vector<net::Endpoint> connect;
  std::int64_t duration_ms = 2000;
  std::uint64_t seed = 1;
  std::vector<TenantSpec> tenants;
  double assert_p99_ratio = 0.0;  // 0 = no fairness assertion
  double min_hit_rate = -1.0;     // < 0 = no hit-rate assertion
  /// Stamp every request with a deterministic trace context (namespace
  /// 0xFFFE + the request's open-loop id) so proxy/shard spans of a
  /// load run stitch into per-request trees in a merged trace.
  bool trace = false;
  std::string bench_artifact;
  std::string stats_out;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --connect HOST:PORT [options]\n"
      << "  --connect HOST:PORT    target daemon or proxy (repeatable;\n"
      << "                         a bare PORT means 127.0.0.1:PORT;\n"
      << "                         tenant i dials endpoint i mod "
         "count)\n"
      << "  --tenant SPEC          add a tenant workload (repeatable);\n"
      << "                         SPEC = name[:key=value]... with keys\n"
      << "                         rate, arrival=poisson|burst, on_ms,\n"
      << "                         off_ms, zipf, classes,\n"
      << "                         pattern=zipf|scan, nmin, nmax,\n"
      << "                         deadline_ms, verify\n"
      << "  --duration-ms N        open-loop send window (default 2000)\n"
      << "  --seed S               workload seed (default 1)\n"
      << "  --assert-p99-ratio X   fail if max/min client p99 across\n"
      << "                         tenants exceeds X\n"
      << "  --min-hit-rate F       fail if the daemon cache hit rate\n"
      << "                         ends below F (0..1)\n"
      << "  --stats-out F          save the scraped STATS promtext\n"
      << "  --trace                stamp requests with trace ids so "
         "server\n"
      << "                         spans stitch into per-request trees\n"
      << "  --bench-artifact S     write BENCH_<S>.json (load.* "
         "counters)\n";
  return 2;
}

std::optional<LoadConfig> parse_args(int argc, char** argv) {
  LoadConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto num = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : -1;
    };
    long v = 0;
    if (a == "--connect" && i + 1 < argc) {
      const auto ep = net::parse_endpoint(argv[++i]);
      if (!ep) return std::nullopt;
      cfg.connect.push_back(*ep);
    } else if (a == "--duration-ms" && (v = num()) > 0) {
      cfg.duration_ms = v;
    } else if (a == "--seed" && (v = num()) >= 0) {
      cfg.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--tenant" && i + 1 < argc) {
      std::string why;
      const auto spec = loadgen::parse_tenant_spec(argv[++i], &why);
      if (!spec) {
        std::cerr << "starring-load: bad --tenant: " << why << "\n";
        return std::nullopt;
      }
      cfg.tenants.push_back(*spec);
    } else if (a == "--assert-p99-ratio" && i + 1 < argc) {
      cfg.assert_p99_ratio = std::atof(argv[++i]);
      if (cfg.assert_p99_ratio < 1.0) return std::nullopt;
    } else if (a == "--min-hit-rate" && i + 1 < argc) {
      cfg.min_hit_rate = std::atof(argv[++i]);
      if (cfg.min_hit_rate < 0 || cfg.min_hit_rate > 1) return std::nullopt;
    } else if (a == "--stats-out" && i + 1 < argc) {
      cfg.stats_out = argv[++i];
    } else if (a == "--trace") {
      cfg.trace = true;
    } else if (a == "--bench-artifact" && i + 1 < argc) {
      cfg.bench_artifact = argv[++i];
    } else {
      return std::nullopt;
    }
  }
  if (cfg.connect.empty() || cfg.tenants.empty()) return std::nullopt;
  return cfg;
}

/// One tenant's client-side tally.  The latency vector is only touched
/// by the tenant's reader thread until join, then read by main.
struct TenantTally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t throttled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t status_errors = 0;
  std::uint64_t hits = 0;
  std::uint64_t unanswered = 0;
  std::uint64_t transport_errors = 0;
  std::vector<std::int64_t> latencies_us;
};

std::int64_t percentile_us(std::vector<std::int64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, idx == 0 ? 0 : idx - 1)];
}

/// Drive one tenant: open-loop sender on this thread, reader on a
/// helper.  Returns when the send window elapsed AND every answered
/// response was consumed (the half-close makes the daemon flush
/// everything in flight and EOF the stream).
void run_tenant(const LoadConfig& cfg, const TenantSpec& spec,
                std::size_t idx, TenantTally& tally) {
  const net::Endpoint& ep = cfg.connect[idx % cfg.connect.size()];
  const int fd = net::connect_endpoint(ep);
  if (fd < 0) {
    std::cerr << "starring-load: " << spec.name << ": connect "
              << net::to_string(ep) << ": " << std::strerror(errno)
              << "\n";
    ++tally.transport_errors;
    return;
  }
  __gnu_cxx::stdio_filebuf<char> out_buf(::dup(fd), std::ios::out);
  __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
  std::ostream out(&out_buf);
  std::istream in(&in_buf);

  std::mutex mu;  // guards sends
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      sends;

  std::thread reader([&] {
    std::string err;
    while (true) {
      const auto resp = read_response(in, &err);
      if (!resp) {
        if (!err.empty()) {
          std::cerr << "starring-load: " << spec.name
                    << ": response parse error: " << err << "\n";
          ++tally.transport_errors;
        }
        return;  // EOF: the daemon delivered everything and closed
      }
      const auto now = std::chrono::steady_clock::now();
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = sends.find(resp->id);
        if (it != sends.end()) {
          tally.latencies_us.push_back(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - it->second)
                  .count());
          sends.erase(it);
        }
      }
      switch (resp->status) {
        case ServiceStatus::kOk:
          ++tally.ok;
          if (resp->cache_hit) ++tally.hits;
          break;
        case ServiceStatus::kThrottled:
          ++tally.throttled;
          break;
        case ServiceStatus::kRejected:
          ++tally.rejected;
          break;
        case ServiceStatus::kTimeout:
          ++tally.timeouts;
          break;
        case ServiceStatus::kError:
          ++tally.status_errors;
          std::cerr << "starring-load: " << spec.name << ": request "
                    << resp->id << ": " << resp->reason << "\n";
          break;
      }
    }
  });

  // Open loop: walk the arrival schedule by wall clock; a request whose
  // arrival time has already passed (daemon backpressure never reaches
  // here, but scheduling jitter can) is sent immediately.
  loadgen::ArrivalClock clock(spec, cfg.seed + idx);
  loadgen::ZipfSampler zipf(spec.classes, spec.zipf);
  std::mt19937_64 pick(cfg.seed * 1315423911ULL + idx);
  const auto start = std::chrono::steady_clock::now();
  const auto window = std::chrono::milliseconds(cfg.duration_ms);
  std::uint64_t seq = 0;
  while (true) {
    const auto offset = clock.next();
    if (offset >= window) break;
    std::this_thread::sleep_until(start + offset);
    const std::size_t cls =
        spec.pattern == loadgen::Pattern::kScan
            ? spec.classes + seq  // fresh class every time: pure scan
            : zipf.sample(static_cast<double>(pick()) /
                          static_cast<double>(UINT64_MAX));
    const std::uint64_t id = (static_cast<std::uint64_t>(idx) << 32) | seq;
    ServiceRequest req = synth_request(spec, cfg.seed, cls, id);
    if (cfg.trace) {
      // Client-minted trace id under its own namespace; the open-loop
      // id (tenant << 32 | seq) is unique across the run and < 2^48.
      req.trace_id = (std::uint64_t{0xFFFE} << 48) + id + 1;
      req.parent_span_id = 0;
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      sends.emplace(id, std::chrono::steady_clock::now());
    }
    if (!write_request(out, req)) {
      ++tally.transport_errors;
      break;
    }
    out.flush();
    ++tally.sent;
    ++seq;
  }
  // Half-close: the daemon's connection loop sees EOF, waits for its
  // outstanding responses, writes them, and closes — our reader then
  // sees EOF with every in-flight answer consumed.
  ::shutdown(fd, SHUT_WR);
  reader.join();
  {
    const std::lock_guard<std::mutex> lock(mu);
    tally.unanswered = sends.size();
  }
}

/// Scrape STATS on a fresh connection; returns the promtext or nullopt.
std::optional<std::string> scrape_one(const net::Endpoint& ep) {
  const int fd = net::connect_endpoint(ep);
  if (fd < 0) return std::nullopt;
  __gnu_cxx::stdio_filebuf<char> out_buf(::dup(fd), std::ios::out);
  __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
  std::ostream out(&out_buf);
  std::istream in(&in_buf);
  ServiceRequest stats_req;
  stats_req.kind = RequestKind::kStats;
  if (!write_request(out, stats_req)) {
    ::close(fd);
    return std::nullopt;
  }
  out.flush();
  std::string err;
  auto body = read_stats(in, &err);
  ::shutdown(fd, SHUT_RDWR);
  return body;
}

/// Scrape every distinct endpoint, concatenating the expositions under
/// `# endpoint` separator comments.  nullopt only when every scrape
/// failed (a dead shard in a multi-endpoint run is survivable).
std::optional<std::string> scrape_stats(const LoadConfig& cfg) {
  std::string combined;
  bool any = false;
  for (std::size_t i = 0; i < cfg.connect.size(); ++i) {
    const net::Endpoint& ep = cfg.connect[i];
    // Skip duplicates (several tenants may share one endpoint).
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j)
      seen = cfg.connect[j].host == ep.host &&
             cfg.connect[j].port == ep.port;
    if (seen) continue;
    const auto body = scrape_one(ep);
    if (!body) {
      std::cerr << "starring-load: STATS scrape of " << net::to_string(ep)
                << " failed\n";
      continue;
    }
    combined += "# endpoint " + net::to_string(ep) + "\n";
    combined += *body;
    any = true;
  }
  if (!any) return std::nullopt;
  return combined;
}

/// Prometheus-mangled per-tenant histogram family name for `tenant`.
std::string tenant_histogram_metric(const std::string& tenant) {
  std::string mangled;
  for (const char c : tenant)
    mangled += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return "starring_svc_tenant_" + mangled + "_latency_seconds";
}

int load_main(int argc, char** argv) {
  const auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);
  std::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<obs::BenchRecorder> rec;
  if (!cfg->bench_artifact.empty())
    rec = std::make_unique<obs::BenchRecorder>(cfg->bench_artifact);

  std::vector<TenantTally> tallies(cfg->tenants.size());
  std::vector<std::thread> workers;
  workers.reserve(cfg->tenants.size());
  for (std::size_t i = 0; i < cfg->tenants.size(); ++i)
    workers.emplace_back([&, i] {
      run_tenant(*cfg, cfg->tenants[i], i, tallies[i]);
    });
  for (std::thread& w : workers) w.join();

  int rc = 0;
  std::uint64_t total_sent = 0;
  std::uint64_t total_ok = 0;
  std::uint64_t total_throttled = 0;
  std::uint64_t total_timeouts = 0;
  std::uint64_t total_errors = 0;
  std::uint64_t total_unanswered = 0;
  std::vector<std::int64_t> p99s;  // per asserted tenant, us
  std::int64_t p99_max_us = 0;
  for (std::size_t i = 0; i < cfg->tenants.size(); ++i) {
    TenantTally& t = tallies[i];
    const std::int64_t p50 = percentile_us(t.latencies_us, 0.50);
    const std::int64_t p95 = percentile_us(t.latencies_us, 0.95);
    const std::int64_t p99 = percentile_us(t.latencies_us, 0.99);
    std::printf(
        "starring-load: %-12s sent %6llu  ok %6llu  throttled %5llu  "
        "rejected %4llu  timeout %4llu  error %3llu  hits %6llu  "
        "p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
        cfg->tenants[i].name.c_str(),
        static_cast<unsigned long long>(t.sent),
        static_cast<unsigned long long>(t.ok),
        static_cast<unsigned long long>(t.throttled),
        static_cast<unsigned long long>(t.rejected),
        static_cast<unsigned long long>(t.timeouts),
        static_cast<unsigned long long>(t.status_errors),
        static_cast<unsigned long long>(t.hits),
        static_cast<double>(p50) / 1e3, static_cast<double>(p95) / 1e3,
        static_cast<double>(p99) / 1e3);
    total_sent += t.sent;
    total_ok += t.ok;
    total_throttled += t.throttled;
    total_timeouts += t.timeouts;
    total_errors += t.status_errors + t.transport_errors;
    total_unanswered += t.unanswered;
    p99_max_us = std::max(p99_max_us, p99);
    // Fairness is only judged over tenants with a statistically
    // meaningful sample; a tenant throttled down to a handful of
    // answers has no p99 worth comparing.
    if (t.latencies_us.size() >= 20) p99s.push_back(p99);
  }

  double p99_ratio = 1.0;
  if (p99s.size() >= 2) {
    const auto [lo, hi] = std::minmax_element(p99s.begin(), p99s.end());
    if (*lo > 0)
      p99_ratio = static_cast<double>(*hi) / static_cast<double>(*lo);
  }
  if (cfg->assert_p99_ratio > 0) {
    if (p99s.size() < 2) {
      std::cerr << "starring-load: --assert-p99-ratio needs >= 2 tenants "
                   "with >= 20 answered requests\n";
      rc = 1;
    } else if (p99_ratio > cfg->assert_p99_ratio) {
      std::cerr << "starring-load: p99 ratio " << p99_ratio
                << " exceeds bound " << cfg->assert_p99_ratio << "\n";
      rc = 1;
    } else {
      std::cout << "starring-load: p99 ratio " << p99_ratio
                << " within bound " << cfg->assert_p99_ratio << "\n";
    }
  }

  // Daemon-side view: scrape STATS for the cache counters and the
  // per-tenant histograms the Prometheus exposition folds.
  double hit_rate = -1.0;
  const auto stats = scrape_stats(*cfg);
  if (stats) {
    if (!cfg->stats_out.empty()) {
      std::ofstream f(cfg->stats_out, std::ios::trunc);
      f << *stats;
      if (!f) {
        std::cerr << "starring-load: cannot write " << cfg->stats_out
                  << "\n";
        rc = 1;
      }
    }
    // Sum the cache counters across every scraped endpoint.  A daemon
    // exposes svc.cache_*; the proxy exposes cluster.cache_* instead
    // (hits as observed through routing), so fall back per endpoint.
    double hits_sum = 0.0, misses_sum = 0.0;
    bool have_cache = false;
    std::size_t pos = 0;
    while (pos < stats->size()) {
      std::size_t next = stats->find("# endpoint ", pos + 1);
      if (next == std::string::npos) next = stats->size();
      const std::string section = stats->substr(pos, next - pos);
      auto hits = loadgen::parse_scalar(section, "starring_svc_cache_hits");
      auto misses =
          loadgen::parse_scalar(section, "starring_svc_cache_misses");
      if (!hits || !misses) {
        hits = loadgen::parse_scalar(section, "starring_cluster_cache_hits");
        misses =
            loadgen::parse_scalar(section, "starring_cluster_cache_misses");
      }
      if (hits && misses) {
        hits_sum += *hits;
        misses_sum += *misses;
        have_cache = true;
      }
      pos = next;
    }
    if (have_cache && hits_sum + misses_sum > 0)
      hit_rate = hits_sum / (hits_sum + misses_sum);
    std::printf("starring-load: daemon cache hit rate %.3f\n", hit_rate);
    for (const TenantSpec& spec : cfg->tenants) {
      const auto h = obs::parse_histogram(
          *stats, tenant_histogram_metric(spec.name));
      if (h && h->count > 0)
        std::printf(
            "starring-load: %-12s daemon p99 %.3f ms (%lld samples)\n",
            spec.name.c_str(),
            obs::histogram_quantile(*h, 0.99) * 1e3,
            static_cast<long long>(h->count));
    }
  } else {
    std::cerr << "starring-load: STATS scrape failed\n";
    rc = 1;
  }
  if (cfg->min_hit_rate >= 0) {
    if (hit_rate < cfg->min_hit_rate) {
      std::cerr << "starring-load: hit rate " << hit_rate
                << " below bound " << cfg->min_hit_rate << "\n";
      rc = 1;
    } else {
      std::cout << "starring-load: hit rate " << hit_rate
                << " within bound " << cfg->min_hit_rate << "\n";
    }
  }

  if (total_unanswered > 0) {
    std::cerr << "starring-load: " << total_unanswered
              << " requests never answered\n";
    rc = 1;
  }
  if (total_errors > 0) rc = 1;
  std::printf(
      "starring-load: total sent %llu ok %llu throttled %llu timeouts "
      "%llu errors %llu\n",
      static_cast<unsigned long long>(total_sent),
      static_cast<unsigned long long>(total_ok),
      static_cast<unsigned long long>(total_throttled),
      static_cast<unsigned long long>(total_timeouts),
      static_cast<unsigned long long>(total_errors));

  if (rec) {
    int nmax = 0;
    for (const TenantSpec& spec : cfg->tenants)
      nmax = std::max(nmax, spec.nmax);
    rec->note_n(nmax);
    rec->add_counter("load.sent", static_cast<double>(total_sent));
    rec->add_counter("load.ok", static_cast<double>(total_ok));
    rec->add_counter("load.throttled",
                     static_cast<double>(total_throttled));
    rec->add_counter("load.timeouts", static_cast<double>(total_timeouts));
    rec->add_counter("load.errors", static_cast<double>(total_errors));
    rec->add_counter("load.unanswered",
                     static_cast<double>(total_unanswered));
    rec->add_counter("load.p99_ratio_x100", std::round(p99_ratio * 100));
    rec->add_counter("load.p99_us_max", static_cast<double>(p99_max_us));
    rec->add_counter("load.hit_rate_x1000",
                     hit_rate < 0 ? -1 : std::round(hit_rate * 1000));
  }
  return rc;
}

}  // namespace
}  // namespace starring

int main(int argc, char** argv) {
  return starring::load_main(argc, argv);
}
