// TCP plumbing shared by every networked binary (starringd,
// starring-proxy, starring-cli, starring-load).
//
// Before the cluster work each binary carried its own copy of the
// fd <-> iostream glue and hardcoded 127.0.0.1: the daemon's streambufs
// lived in starringd.cpp, and both clients could only dial a bare
// loopback port.  A sharded deployment needs the same pieces in four
// processes — endpoint parsing ("HOST:PORT" as well as the
// back-compatible bare "PORT"), bounded-read/bounded-write stream
// glue (a proxy must not hang forever on a wedged shard), a hardened
// accept loop, and the connection-drain scaffolding — so they live
// here once.
//
// Everything is loopback/IPv4-oriented on purpose: the cluster model
// (DESIGN.md §13) is co-located processes behind one router, not a
// WAN protocol.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace starring::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parse "PORT" (loopback, the historical grammar) or "HOST:PORT".
/// nullopt on an empty host, a non-numeric or out-of-range port.
std::optional<Endpoint> parse_endpoint(const std::string& text);

std::string to_string(const Endpoint& ep);

/// Blocking TCP connect (IPv4, name resolution via getaddrinfo);
/// -1 on failure with errno left from the failing call.  On success
/// the fd is switched to non-blocking when `nonblocking` is set, so it
/// composes with the poll-based stream glue below.
int connect_endpoint(const Endpoint& ep, bool nonblocking = false);

bool set_nonblocking(int fd);

/// Bind + listen on 127.0.0.1:port (port 0: kernel-assigned).  Returns
/// the listening fd, or -1 with *error describing the failing call.
/// *actual_port receives the bound port — the way a test or script
/// using `--listen 0` learns where the daemon actually lives.
int listen_loopback(int port, int backlog, int* actual_port,
                    std::string* error);

/// accept() with transient-error discipline.  A daemon accept loop
/// must never treat accept failure as uniform: EINTR is silent,
/// ECONNABORTED (peer gave up in the backlog) and EMFILE/ENFILE
/// (fd exhaustion — hot when a proxy fronts many connections) are
/// logged, counted in `errors`, and survived.  EMFILE additionally
/// sleeps briefly so the loop cannot spin at 100% while the process
/// is out of descriptors.  Returns the accepted fd or -1 (caller
/// continues its loop either way).
int accept_transient(int listen_fd, const char* tag, obs::Counter& errors);

// --- fd <-> iostream glue --------------------------------------------
//
// Minimal streambufs over a non-blocking socket.  Reads poll for data
// (bounded by read_timeout_ms when >= 0); writes poll for POLLOUT
// bounded by write_timeout_ms.  A write timeout evicts the peer
// (svc.evicted_conns) and a hard error records io.write_errors; both
// mark the optional `dead` flag so the owner stops servicing the
// connection.

class FdInBuf : public std::streambuf {
 public:
  /// read_timeout_ms < 0 blocks forever (a server reading its client);
  /// >= 0 bounds each poll — a proxy waiting on a shard reports EOF
  /// instead of hanging when the shard wedges.
  explicit FdInBuf(int fd, int read_timeout_ms = -1)
      : fd_(fd), timeout_ms_(read_timeout_ms) {}

 private:
  int_type underflow() override;

  int fd_;
  int timeout_ms_;
  char buf_[4096];
};

class FdOutBuf : public std::streambuf {
 public:
  /// write_timeout_ms < 0 means block forever.  `dead`, when non-null,
  /// is set on eviction or hard write error so the owner stops
  /// servicing the connection.
  FdOutBuf(int fd, int write_timeout_ms, std::atomic<bool>* dead)
      : fd_(fd), timeout_ms_(write_timeout_ms), dead_(dead) {}

  /// Owner-invoked kill switch: sets `dead` and hard-closes the socket
  /// so the peer sees EOF.  Used when a response fails to serialize —
  /// a wedged output stream must not leave the connection half-alive.
  void mark_dead();

 private:
  int_type overflow(int_type c) override;
  std::streamsize xsputn(const char* s, std::streamsize count) override;
  bool write_all(const char* p, std::size_t count);

  int fd_;
  int timeout_ms_;
  std::atomic<bool>* dead_;
};

// --- daemon shutdown scaffolding -------------------------------------

/// Live-connection ledger for a TCP daemon: connection threads
/// register their fd, the acceptor half-closes everything at drain and
/// waits (bounded) for the table to empty.
struct ConnRegistry {
  std::mutex mu;
  std::condition_variable empty_cv;
  std::vector<int> fds;

  std::size_t count();
  void add(int fd);
  void remove(int fd);
  /// SHUT_RD: readers see EOF, pending responses still flow out.
  /// SHUT_RDWR: hard close for drain laggards.
  void shutdown_all(int how);
  /// Wait (bounded) for every connection thread to deregister.
  bool wait_empty(int budget_ms);
};

/// Arms a wall-clock bound on shutdown: if the owner has not finished
/// draining (destroyed the guard) within the budget, the process is
/// aborted — a wedged embedding or connection must not turn SIGTERM
/// into a hang.
class DrainGuard {
 public:
  explicit DrainGuard(int budget_ms);
  ~DrainGuard();
  DrainGuard(const DrainGuard&) = delete;
  DrainGuard& operator=(const DrainGuard&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread watcher_;
};

}  // namespace starring::net
