#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace starring::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) hit = &v;
  return hit;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!value(v)) {
      if (error != nullptr) *error = err_.empty() ? "parse error" : err_;
      return std::nullopt;
    }
    skip_ws();
    if (at_ < text_.size()) {
      if (error != nullptr) *error = "trailing characters";
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty())
      err_ = std::string(why) + " at offset " + std::to_string(at_);
    return false;
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r'))
      ++at_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return fail("bad literal");
    at_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (at_ >= text_.size()) return fail("unexpected end");
    switch (text_[at_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++at_;  // '{'
    skip_ws();
    if (at_ < text_.size() && text_[at_] == '}') {
      ++at_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (at_ >= text_.size() || text_[at_] != '"')
        return fail("expected object key");
      if (!string(key)) return false;
      skip_ws();
      if (at_ >= text_.size() || text_[at_] != ':') return fail("expected ':'");
      ++at_;
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_ >= text_.size()) return fail("unterminated object");
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == '}') {
        ++at_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++at_;  // '['
    skip_ws();
    if (at_ < text_.size() && text_[at_] == ']') {
      ++at_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (at_ >= text_.size()) return fail("unterminated array");
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == ']') {
        ++at_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool string(std::string& out) {
    ++at_;  // opening quote
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) break;
      const char esc = text_[at_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    while (at_ < text_.size() &&
           ((text_[at_] >= '0' && text_[at_] <= '9') || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' ||
            text_[at_] == '-'))
      ++at_;
    if (at_ == start) return fail("expected value");
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t at_ = 0;
  std::string err_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace starring::obs
