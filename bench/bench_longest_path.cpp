// Experiment E10 — the longest-path extension: between healthy s and t,
// a healthy path of n!-2|Fv| vertices (opposite parity) or
// n!-2|Fv|-1 (same parity), both worst-case optimal by the bipartite
// argument.
#include <cstdio>
#include <cstdlib>

#include "core/verify.hpp"
#include "extensions/longest_path.hpp"
#include "fault/generators.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

namespace {

Perm healthy_vertex(const StarGraph& g, const FaultSet& f, int parity,
                    std::uint64_t salt) {
  for (VertexId id = salt % 113; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (p.parity() == parity && !f.vertex_faulty(p)) return p;
  }
  return Perm::identity(g.n());
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("longest_path");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("E10: longest healthy s-t paths (extension)\n");
  std::printf("%3s %4s %-14s %10s %10s %6s\n", "n", "|Fv|", "parity",
              "promise", "achieved", "ok");

  bool all_ok = true;
  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nf = 0; nf <= n - 3; ++nf) {
      for (const bool same_parity : {false, true}) {
        int ok = 0;
        std::uint64_t promise = 0;
        std::uint64_t achieved = 0;
        for (int t = 0; t < trials; ++t) {
          const auto seed = static_cast<std::uint64_t>(t);
          const FaultSet f = random_vertex_faults(g, nf, seed);
          const Perm s = healthy_vertex(g, f, 0, seed);
          Perm dst = healthy_vertex(g, f, same_parity ? 0 : 1, seed * 29 + 11);
          if (dst == s) dst = healthy_vertex(g, f, s.parity(), seed * 57 + 91);
          if (dst == s) continue;
          promise = expected_path_vertices(n, f.num_vertex_faults(), s, dst);
          const auto res = embed_longest_path(g, f, s, dst, bench_embed_options());
          if (!res) continue;
          const auto rep = verify_healthy_path(g, f, res->embed.ring);
          if (rep.valid && rep.length == promise &&
              g.vertex(res->embed.ring.front()) == s &&
              g.vertex(res->embed.ring.back()) == dst) {
            ++ok;
            achieved = rep.length;
          }
        }
        std::printf("%3d %4d %-14s %10llu %10llu %3d/%-2d\n", n, nf,
                    same_parity ? "same" : "opposite",
                    static_cast<unsigned long long>(promise),
                    static_cast<unsigned long long>(achieved), ok, trials);
        all_ok &= ok == trials;
      }
    }
  }
  std::printf("\n%s\n", all_ok
                            ? "RESULT: longest-path extension meets its "
                              "promise on every instance"
                            : "RESULT: some path instances FAILED");
  return all_ok ? 0 : 1;
}
