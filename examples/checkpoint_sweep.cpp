// Checkpoint sweep: drain every healthy processor's state through a
// snake path to an I/O node.
//
//   $ ./checkpoint_sweep [n] [num_faults]
//
// Scenario: a maintenance task (checkpointing, memory scrubbing, rolling
// upgrade) must visit every healthy processor exactly once, starting at
// the coordinator and finishing at the I/O gateway where the last batch
// is flushed.  That is precisely a longest healthy path between two
// prescribed vertices — the extension result built on the paper's ring
// machinery.  The example embeds the sweep, verifies it, and compares
// the walk length against the trivial lower bound (visit count) and a
// shortest route (what you'd get without an embedding).
#include <cstdlib>
#include <iostream>

#include "core/verify.hpp"
#include "extensions/longest_path.hpp"
#include "fault/generators.hpp"
#include "routing/routing.hpp"

int main(int argc, char** argv) {
  using namespace starring;
  const int n = argc > 1 ? std::atoi(argv[1]) : 7;
  const int nf = argc > 2 ? std::atoi(argv[2]) : n - 3;
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, nf, 7);

  // Coordinator: the identity node.  I/O gateway: the "reversal" node,
  // far away in the graph.
  Perm coordinator = Perm::identity(n);
  while (faults.vertex_faulty(coordinator))
    coordinator = coordinator.star_move(1).star_move(2);
  std::vector<int> rev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rev[static_cast<std::size_t>(i)] = n - 1 - i;
  Perm gateway = Perm::of(rev);
  while (faults.vertex_faulty(gateway) || gateway == coordinator)
    gateway = gateway.star_move(2).star_move(3);

  std::cout << "S_" << n << " with " << nf << " failed processors\n"
            << "coordinator " << coordinator.to_string() << "  ->  gateway "
            << gateway.to_string() << "  (star distance "
            << star_distance(coordinator, gateway) << ", diameter "
            << star_diameter(n) << ")\n\n";

  const auto sweep = embed_longest_path(g, faults, coordinator, gateway);
  if (!sweep) {
    std::cerr << "sweep embedding failed\n";
    return 1;
  }
  const auto rep = verify_healthy_path(g, faults, sweep->embed.ring);
  if (!rep.valid) {
    std::cerr << "verification FAILED: " << rep.error << "\n";
    return 1;
  }

  const std::uint64_t healthy = g.num_vertices() - faults.num_vertex_faults();
  std::cout << "checkpoint sweep visits " << rep.length << " of " << healthy
            << " healthy processors ("
            << (100.0 * static_cast<double>(rep.length) /
                static_cast<double>(healthy))
            << "%)\n";
  std::cout << "promise: n! - 2|Fv|"
            << (coordinator.parity() == gateway.parity() ? " - 1" : "")
            << " = " << sweep->promised_vertices << "\n";

  const auto direct = fault_tolerant_route(g, faults, coordinator, gateway);
  std::cout << "for contrast, a direct fault-tolerant route covers only "
            << (direct ? direct->size() + 1 : 0) << " processors\n";
  return 0;
}
