// Request-scoped tracing and flight recorder.
//
// Where obs/metrics.hpp answers "how much, in aggregate", this layer
// answers "where did THIS request spend its time": lightweight spans
// with trace/span ids and parent links, recorded on completion into a
// fixed-capacity per-thread ring buffer (a "flight recorder") that
// overwrites its oldest entries instead of growing — a live starringd
// always holds the last N spans per thread, ready to dump.
//
// Design constraints, in order (matching the metrics layer):
//   1. Disabled cost ~ zero.  The runtime switch is OFF by default
//      (STARRING_TRACE=1 flips it at startup); a span op behind it is
//      one relaxed atomic load and a branch, and -DSTARRING_OBS=OFF
//      compiles the layer down to empty inline stubs.
//   2. Lock-free recording.  Each thread owns its ring; a span write is
//      a handful of relaxed atomic stores plus two sequence-word
//      updates (a per-cell seqlock), never a mutex.  Drains from other
//      threads validate the sequence word and drop the (rare) cell
//      caught mid-overwrite rather than block the writer.
//   3. No dependencies beyond the standard library.
//
// Span model:
//   * A Context is (trace_id, span_id).  Every span belongs to one
//     trace (one service request, one batch, one bench iteration) and
//     has at most one parent span.
//   * ScopedSpan opens a span as a child of the thread's current
//     context and installs itself as current, so nested scopes chain
//     automatically; destruction records the completed span.
//   * ContextGuard installs an explicit context (cross-thread
//     propagation: the thread pool adopts the submitting thread's
//     context for every worker of a region; the service adopts the
//     per-request root inside batch stages).
//   * emit() records a span with explicit timestamps for intervals
//     that no single scope witnesses (queue wait: admitted on the
//     caller thread, drained on the scheduler thread).
//
// Exporter: write_chrome_trace() renders every surviving record as a
// Chrome/Perfetto trace_event "X" (complete) event — load the file in
// chrome://tracing or ui.perfetto.dev.  Timestamps are microseconds
// relative to a process-start epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace starring::obs::trace {

/// Identity of an in-progress span: the trace it belongs to and its own
/// span id (the id children use as their parent link).  trace_id 0
/// means "no active trace" — the invalid/empty context.
struct Context {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// A completed span as drained from the flight recorder.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root of its trace
  std::int64_t start_ns = 0;    // relative to the process trace epoch
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;  // small per-thread index, stable per ring
  std::string name;
};

/// Recorder totals (monotonic since process start).
struct RecorderStats {
  std::uint64_t recorded = 0;  // spans written into some ring
  std::uint64_t dropped = 0;   // spans overwritten before a drain saw them
};

#if defined(STARRING_OBS_DISABLED)

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline std::size_t ring_capacity() { return 0; }

inline Context current() { return {}; }
inline std::uint64_t new_trace_id() { return 0; }
inline std::uint64_t new_span_id() { return 0; }
inline void set_id_namespace(std::uint32_t) {}
inline std::uint64_t epoch_ns() { return 0; }

inline void emit(std::string_view, std::uint64_t, std::uint64_t,
                 std::uint64_t, std::chrono::steady_clock::time_point,
                 std::chrono::steady_clock::time_point) {}

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  ScopedSpan(std::string_view, Context) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  Context context() const { return {}; }
};

class ContextGuard {
 public:
  explicit ContextGuard(Context) {}
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;
};

inline std::vector<SpanRecord> collect() { return {}; }
inline void clear() {}
inline RecorderStats stats() { return {}; }

#else  // tracing compiled in, gated at runtime

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime switch.  Defaults to off unless the environment sets
/// STARRING_TRACE=1; starringd flips it on under --trace-out.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Per-thread ring capacity in spans (power of two).  Fixed for the
/// process lifetime; STARRING_TRACE_BUFFER overrides the default 4096
/// at startup.
std::size_t ring_capacity();

/// The calling thread's current span context (invalid when no span is
/// open on this thread).
Context current();

/// Fresh ids.  A trace id identifies one logical request end-to-end;
/// span ids are unique across all traces of the process.
std::uint64_t new_trace_id();
std::uint64_t new_span_id();

/// Seed the id generators at (ns << 48) + 1 so ids minted by different
/// processes of one cluster never collide in a merged trace file (shard
/// k uses namespace k+1, the proxy keeps the default 0).  Call once at
/// startup, before any span is recorded.
void set_id_namespace(std::uint32_t ns);

/// The process trace epoch (the zero point of SpanRecord::start_ns) as
/// raw steady-clock nanoseconds.  On Linux the steady clock is
/// CLOCK_MONOTONIC, which all processes of one boot share, so a merger
/// can rebase per-process spans onto a common timeline by offsetting
/// each dump by (its epoch_ns - min epoch_ns across dumps).
std::uint64_t epoch_ns();

/// Record a completed span with explicit endpoints — for intervals
/// measured across threads (queue wait) or reconstructed after the
/// fact (the per-request root).  No-op while disabled; a t1 before t0
/// records a zero-length span.
void emit(std::string_view name, std::uint64_t trace_id,
          std::uint64_t span_id, std::uint64_t parent_id,
          std::chrono::steady_clock::time_point t0,
          std::chrono::steady_clock::time_point t1);

/// RAII span.  Opens as a child of the thread's current context (or of
/// an explicit parent), becomes the current context for its scope, and
/// records itself on destruction.  When the layer is disabled at entry
/// the constructor is one load and a branch, and nothing is recorded.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (!enabled()) return;
    begin(name, current());
  }
  ScopedSpan(std::string_view name, Context parent) {
    if (!enabled()) return;
    begin(name, parent);
  }
  ~ScopedSpan() {
    if (armed_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's context, handed to other threads as their parent.
  /// Invalid when the layer was disabled at construction.
  Context context() const { return armed_ ? ctx_ : Context{}; }

 private:
  void begin(std::string_view name, Context parent);
  void end();

  bool armed_ = false;
  Context ctx_{};
  Context prev_{};  // thread-current context to restore
  std::uint64_t parent_span_ = 0;
  char name_[25] = {};  // record name capacity (24) + NUL
  std::chrono::steady_clock::time_point t0_{};
};

/// Install `ctx` as the calling thread's current context for one scope
/// (restores the previous context on destruction).  Used by the thread
/// pool to propagate the submitting thread's context into workers and
/// by the service to parent per-request work inside a batch.
class ContextGuard {
 public:
  explicit ContextGuard(Context ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Context prev_;
};

/// Copy every stable record out of every thread's ring, sorted by
/// start time.  Cells caught mid-overwrite are skipped.  Safe to call
/// concurrently with recording.
std::vector<SpanRecord> collect();

/// Reset every ring and the id generators (test isolation; not safe
/// against concurrent recording, like obs::reset()).
void clear();

RecorderStats stats();

#endif  // STARRING_OBS_DISABLED

/// Render the flight recorder as Chrome trace_event JSON ("X" events,
/// microsecond timestamps).  Always writes a well-formed document —
/// empty when tracing is disabled or compiled out.  Returns false on
/// stream failure.
bool write_chrome_trace(std::ostream& os);

/// write_chrome_trace to `path` (truncating).  Returns false on I/O
/// failure.
bool write_chrome_trace_file(const std::string& path);

}  // namespace starring::obs::trace
