// Embedded substars: the paper's <s1 s2 ... sn>_r notation.
//
// An embedded S_r inside S_n (Definition 1 of the paper, notation from
// Section 2) is written <s1 s2 ... sn>_r where s1 = '*', each other
// position is '*' or a fixed symbol, and exactly r positions are '*'.
// Such a pattern denotes the subgraph induced by all permutations that
// agree with the fixed positions; it is isomorphic to S_r.
//
// The paper's machinery lives here:
//  * i-partition (Definition 2): split an r-pattern into its r child
//    (r-1)-patterns by fixing one free position to each free symbol;
//  * adjacency of r-vertices and dif(U, V) (Section 2): two patterns
//    with the same free-position set that differ in exactly one fixed
//    position; the "super-edge" between them consists of (r-1)! real
//    edges of S_n;
//  * membership, enumeration, and the induced block graph used by the
//    in-block path oracle.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "perm/permutation.hpp"

namespace starring {

/// An embedded S_r pattern inside S_n.  Position 0 (the paper's
/// position 1) is always free.
class SubstarPattern {
 public:
  static constexpr std::int8_t kFree = -1;

  /// The full pattern <* * ... *>_n, i.e. S_n itself.
  static SubstarPattern whole(int n);

  /// The 1-pattern containing exactly the single permutation... is not
  /// representable (position 0 is always free), so the finest pattern has
  /// r = 1 and contains exactly one vertex: every position but 0 fixed.
  static SubstarPattern singleton(const Perm& p);

  int n() const { return n_; }

  /// Dimension r of the embedded star: number of free positions.
  int r() const { return r_; }

  /// Number of vertices contained: r!.
  std::uint64_t num_members() const { return factorial(r_); }

  /// Slot value at position i: kFree or a fixed symbol in [0, n).
  std::int8_t slot(int i) const { return slots_[static_cast<std::size_t>(i)]; }

  bool is_free(int i) const { return slot(i) == kFree; }

  /// Free positions in increasing order (always starts with 0).
  std::vector<int> free_positions() const;

  /// Symbols not used by any fixed position, increasing order; there are
  /// exactly r of them.
  std::vector<int> free_symbols() const;

  /// Bitmask over symbols 0..n-1 of the free symbols.
  std::uint32_t free_symbol_mask() const;

  /// True iff permutation p matches every fixed position.
  bool contains(const Perm& p) const;

  /// Child pattern of the i-partition that fixes free position i to free
  /// symbol q (Definition 2).  Preconditions: i >= 1 free, q free.
  [[nodiscard]] SubstarPattern child(int i, int q) const;

  /// All r children of the i-partition, ordered by fixed symbol.
  std::vector<SubstarPattern> children(int i) const;

  /// Adjacency of equal-r patterns sharing a free-position set: true iff
  /// they differ in exactly one fixed position.  When adjacent,
  /// *dif_pos receives that position (the paper's dif(U, V)).
  static bool adjacent(const SubstarPattern& a, const SubstarPattern& b,
                       int* dif_pos = nullptr);

  /// Enumerate all r! member permutations, in Lehmer order of the free
  /// symbols laid over the free positions.
  std::vector<Perm> members() const;

  /// Member with local index k (the k-th in members() order).  Local
  /// indices give the SmallGraph vertex ids of block_graph().
  Perm member(std::uint64_t k) const;

  /// Local index of member p (inverse of member()).  Precondition:
  /// contains(p).
  std::uint64_t local_index(const Perm& p) const;

  /// The induced subgraph over the members, on local indices.  Only
  /// meaningful for r small enough that r! <= 64 (r <= 4 in practice:
  /// r! = 24).  Edges are the star moves that stay inside the pattern,
  /// i.e. swaps of position 0 with another free position.
  SmallGraph block_graph() const;

  /// e.g. "<* 3 * * 1>_3" (1-based symbols, as in the paper).
  std::string to_string() const;

  friend bool operator==(const SubstarPattern& a, const SubstarPattern& b) {
    return a.n_ == b.n_ && a.slots_ == b.slots_;
  }

 private:
  SubstarPattern() = default;

  std::array<std::int8_t, kMaxN> slots_{};
  std::int8_t n_ = 0;
  std::int8_t r_ = 0;
};

/// Allocation-free member expansion for one pattern.
///
/// SubstarPattern::member() rebuilds its position/symbol scratch vectors
/// on every call; the chaining engine calls it ~48 times per block over
/// n!/24 blocks, which makes those allocations the hot path.  This
/// helper hoists the per-pattern work: construct once per block, then
/// member(k) is a handful of register operations.
class MemberExpander {
 public:
  explicit MemberExpander(const SubstarPattern& pat);

  /// Same value as pat.member(k).
  Perm member(std::uint64_t k) const;

  /// Same value as pat.local_index(p) (p must be a member).
  std::uint64_t local_index(const Perm& p) const;

  /// Same value as pat.member(k).rank(), without materializing the
  /// permutation.  For r <= kRankTableMaxR the global Lehmer rank
  /// decomposes into a per-pattern constant plus per-free-slot table
  /// lookups (precomputed at construction), so each call is one local
  /// Lehmer decode — the O(n^2) unrank+rank round-trip the vertex
  /// emission hot loop used to pay disappears.  Larger r falls back to
  /// member(k).rank().
  VertexId member_rank(std::uint64_t k) const;

  /// Index of symbol s among the ascending free symbols, or -1 when s
  /// is fixed.  Members whose position-0 symbol is free symbol j are
  /// exactly the local indices [j*(r-1)!, (j+1)*(r-1)!): position 0 is
  /// always free and is decoded from the leading Lehmer digit.
  int free_symbol_index(int s) const {
    for (int j = 0; j < r_; ++j)
      if (free_sym_[static_cast<std::size_t>(j)] == s) return j;
    return -1;
  }

  int r() const { return r_; }

  /// Largest r with precomputed rank tables (S_4 blocks and below; the
  /// chaining engine only ever expands r = 4).
  static constexpr int kRankTableMaxR = 4;

 private:
  std::uint64_t base_bits_ = 0;  // fixed slots, free slots zero
  std::array<std::int8_t, kMaxN> free_pos_{};
  std::array<std::int8_t, kMaxN> free_sym_{};
  std::int8_t r_ = 0;
  std::int8_t n_ = 0;

  // Rank decomposition (r <= kRankTableMaxR): member_rank(k) =
  // rank_base_ + sum over free slots m of
  //   rank_sym_[m][a_m] + lehmer_digit_m(k) * rank_weight_[m]
  // where a_m is the index of the free symbol the arrangement k puts at
  // free position m.  rank_base_ collects the fixed-over-fixed Lehmer
  // contributions; rank_sym_[m][a] collects both the fixed-position
  // contributions that count free symbol f_a behind them and the fixed
  // symbols counted behind free position m; rank_weight_[m] is
  // (n-1-free_pos_[m])!, the weight of the free-over-free inversions
  // the local Lehmer digit already counts.
  VertexId rank_base_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(kRankTableMaxR)>
      rank_weight_{};
  std::array<std::array<std::uint64_t,
                        static_cast<std::size_t>(kRankTableMaxR)>,
             static_cast<std::size_t>(kRankTableMaxR)>
      rank_sym_{};
};

/// The real edges of S_n forming the super-edge between adjacent patterns
/// A and B (dif position p, A fixing symbol a, B fixing symbol b at p):
/// the pairs (u, v) with u in A, u[0] = b, and v = u.star_move(p) in B.
/// There are (r-1)! of them.
struct SuperEdgeEndpoint {
  Perm in_a;
  Perm in_b;
};
std::vector<SuperEdgeEndpoint> superedge_endpoints(const SubstarPattern& a,
                                                   const SubstarPattern& b);

struct SubstarPatternHash {
  std::size_t operator()(const SubstarPattern& p) const {
    std::uint64_t x = 0xcbf29ce484222325ULL;
    for (int i = 0; i < p.n(); ++i) {
      x ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p.slot(i)));
      x *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(x);
  }
};

}  // namespace starring
