#include "obs/metrics.hpp"

#if !defined(STARRING_OBS_DISABLED)

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace starring::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("STARRING_METRICS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

struct Registry {
  std::mutex mu;
  // std::map: stable iteration order for snapshot(); unique_ptr keeps
  // Counter addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
};

Registry& registry() {
  // Leaked singleton: counters referenced from function-local statics
  // in other TUs must outlive every destructor.
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    out.emplace_back(name, c->value());
  return out;
}

Snapshot snapshot_delta(const Snapshot& before) {
  const Snapshot now = snapshot();
  // The baseline is looked up by name, not merged positionally: an
  // earlier implementation walked `before` with a monotone cursor,
  // which silently mis-attributed values whenever the baseline was not
  // sorted exactly like the live registry — e.g. a filtered snapshot,
  // or a previous delta reused as the next baseline while counters kept
  // registering in between.  A map lookup is insensitive to baseline
  // order and trivially includes counters first registered after the
  // baseline (absent name -> prev 0).
  std::map<std::string_view, std::int64_t> prev_by_name;
  for (const auto& [name, value] : before) prev_by_name[name] = value;
  Snapshot out;
  for (const auto& [name, value] : now) {
    const auto it = prev_by_name.find(name);
    const std::int64_t prev = it == prev_by_name.end() ? 0 : it->second;
    if (value != prev) out.emplace_back(name, value - prev);
  }
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters)
    c->value_.store(0, std::memory_order_relaxed);
}

}  // namespace starring::obs

#endif  // !STARRING_OBS_DISABLED
