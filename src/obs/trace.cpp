#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

#if !defined(STARRING_OBS_DISABLED)

namespace starring::obs::trace {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("STARRING_TRACE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

// Fixed per-record name capacity; longer names are truncated.  Three
// 64-bit words in the packed cell layout below.
constexpr std::size_t kNameCap = 24;
// Packed record: trace, span, parent, start_ns, dur_ns, tid, name[3].
constexpr int kWords = 9;

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 64;  // floor: even a tiny override keeps some history
  while (p < v && p < (std::size_t{1} << 20)) p <<= 1;
  return p;
}

std::size_t env_capacity() {
  const char* v = std::getenv("STARRING_TRACE_BUFFER");
  if (v == nullptr || *v == '\0') return 4096;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) return 4096;
  return round_pow2(static_cast<std::size_t>(parsed));
}

/// Anchor for exported timestamps.  Captured during static
/// initialization, before main() — lazily anchoring at the first
/// record would make timestamps captured earlier (a request admitted
/// before its first span completes) come out negative.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

std::chrono::steady_clock::time_point process_epoch() { return g_epoch; }

/// One flight-recorder cell, a tiny seqlock: `seq` is bumped to odd
/// before the payload words are overwritten and back to even after, so
/// a concurrent drain can detect (and drop) a record it caught
/// mid-overwrite.  Every field is an atomic accessed with explicit
/// ordering — no mutex on the write path, and no non-atomic access for
/// TSan to flag.  A drain racing the writer can in principle still
/// observe a torn-but-even cell (the payload stores are relaxed); the
/// worst case is one garbage span in a dump, never corruption of live
/// state, which is the standard flight-recorder trade.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> w[kWords];
};

/// Per-thread ring.  Single writer (the owning thread), any number of
/// concurrent drain readers.
class ThreadRing {
 public:
  ThreadRing(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)),
        drops_(&obs::counter("trace.dropped_spans")) {}

  std::uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return mask_ + 1; }

  void push(std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_id, std::int64_t start_ns,
            std::int64_t dur_ns, const char* name) {
    const std::uint64_t idx = head_.load(std::memory_order_relaxed);
    if (idx > mask_) drops_->add(1);  // overwriting an undrained cell
    Cell& c = cells_[idx & mask_];
    // acq_rel RMW: the payload stores below cannot be hoisted above the
    // odd (dirty) mark.
    c.seq.fetch_add(1, std::memory_order_acq_rel);
    c.w[0].store(trace_id, std::memory_order_relaxed);
    c.w[1].store(span_id, std::memory_order_relaxed);
    c.w[2].store(parent_id, std::memory_order_relaxed);
    c.w[3].store(static_cast<std::uint64_t>(start_ns),
                 std::memory_order_relaxed);
    c.w[4].store(static_cast<std::uint64_t>(dur_ns),
                 std::memory_order_relaxed);
    c.w[5].store(tid_, std::memory_order_relaxed);
    std::uint64_t packed[3] = {0, 0, 0};
    std::memcpy(packed, name, std::min(std::strlen(name), kNameCap));
    for (int i = 0; i < 3; ++i)
      c.w[6 + i].store(packed[i], std::memory_order_relaxed);
    c.seq.fetch_add(1, std::memory_order_release);  // publish (even)
    head_.store(idx + 1, std::memory_order_release);
  }

  /// Copy out every stable record, oldest first.
  void drain_into(std::vector<SpanRecord>* out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, mask_ + 1);
    for (std::uint64_t idx = head - count; idx < head; ++idx) {
      const Cell& c = cells_[idx & mask_];
      const std::uint64_t s1 = c.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // being overwritten right now
      std::uint64_t w[kWords];
      for (int i = 0; i < kWords; ++i)
        w[i] = c.w[i].load(std::memory_order_acquire);
      if (c.seq.load(std::memory_order_acquire) != s1) continue;  // torn
      SpanRecord rec;
      rec.trace_id = w[0];
      rec.span_id = w[1];
      rec.parent_id = w[2];
      rec.start_ns = static_cast<std::int64_t>(w[3]);
      rec.dur_ns = static_cast<std::int64_t>(w[4]);
      rec.tid = static_cast<std::uint32_t>(w[5]);
      char name[kNameCap + 1] = {};
      std::memcpy(name, &w[6], kNameCap);
      rec.name = name;
      out->push_back(std::move(rec));
    }
  }

  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return head > mask_ + 1 ? head - (mask_ + 1) : 0;
  }

  void reset() { head_.store(0, std::memory_order_relaxed); }

 private:
  const std::uint32_t tid_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  obs::Counter* drops_;
  std::atomic<std::uint64_t> head_{0};
};

struct Recorder {
  std::mutex mu;  // ring registration and drain iteration only
  std::vector<std::unique_ptr<ThreadRing>> rings;
};

Recorder& recorder() {
  // Leaked singleton, like the counter registry: rings are referenced
  // from thread-locals in threads that may outlive static destruction.
  static Recorder* r = new Recorder;
  return *r;
}

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};
std::atomic<std::uint64_t> g_id_base{1};  // (namespace << 48) + 1

thread_local ThreadRing* t_ring = nullptr;
thread_local Context t_current{};

ThreadRing& local_ring() {
  if (t_ring == nullptr) {
    Recorder& r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.rings.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint32_t>(r.rings.size()), ring_capacity()));
    t_ring = r.rings.back().get();
  }
  return *t_ring;
}

std::int64_t rel_ns(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t - process_epoch())
      .count();
}

}  // namespace

std::size_t ring_capacity() {
  static const std::size_t cap = round_pow2(env_capacity());
  return cap;
}

Context current() { return t_current; }

std::uint64_t new_trace_id() {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t new_span_id() {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

void set_id_namespace(std::uint32_t ns) {
  const std::uint64_t base = (static_cast<std::uint64_t>(ns) << 48) + 1;
  g_id_base.store(base, std::memory_order_relaxed);
  g_next_trace.store(base, std::memory_order_relaxed);
  g_next_span.store(base, std::memory_order_relaxed);
}

std::uint64_t epoch_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          process_epoch().time_since_epoch())
          .count());
}

void emit(std::string_view name, std::uint64_t trace_id,
          std::uint64_t span_id, std::uint64_t parent_id,
          std::chrono::steady_clock::time_point t0,
          std::chrono::steady_clock::time_point t1) {
  if (!enabled() || trace_id == 0) return;
  char buf[kNameCap + 1] = {};
  std::memcpy(buf, name.data(), std::min(name.size(), kNameCap));
  const std::int64_t start = rel_ns(t0);
  const std::int64_t dur = std::max<std::int64_t>(0, rel_ns(t1) - start);
  local_ring().push(trace_id, span_id, parent_id, start, dur, buf);
}

void ScopedSpan::begin(std::string_view name, Context parent) {
  armed_ = true;
  ctx_.trace_id = parent.valid() ? parent.trace_id : new_trace_id();
  ctx_.span_id = new_span_id();
  parent_span_ = parent.valid() ? parent.span_id : 0;
  std::memcpy(name_, name.data(),
              std::min(name.size(), sizeof(name_) - 1));
  prev_ = t_current;
  t_current = ctx_;
  t0_ = std::chrono::steady_clock::now();
}

void ScopedSpan::end() {
  const auto t1 = std::chrono::steady_clock::now();
  t_current = prev_;
  // Record even if the layer was switched off mid-span: the ids were
  // allocated and children may already reference this span.
  const std::int64_t start = rel_ns(t0_);
  local_ring().push(ctx_.trace_id, ctx_.span_id, parent_span_, start,
                    std::max<std::int64_t>(0, rel_ns(t1) - start), name_);
}

ContextGuard::ContextGuard(Context ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextGuard::~ContextGuard() { t_current = prev_; }

std::vector<SpanRecord> collect() {
  std::vector<SpanRecord> out;
  Recorder& r = recorder();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) ring->drain_into(&out);
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return out;
}

void clear() {
  Recorder& r = recorder();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) ring->reset();
  const std::uint64_t base = g_id_base.load(std::memory_order_relaxed);
  g_next_trace.store(base, std::memory_order_relaxed);
  g_next_span.store(base, std::memory_order_relaxed);
}

RecorderStats stats() {
  RecorderStats s;
  Recorder& r = recorder();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    s.recorded += ring->recorded();
    s.dropped += ring->dropped();
  }
  return s;
}

}  // namespace starring::obs::trace

#endif  // !STARRING_OBS_DISABLED

namespace starring::obs::trace {

bool write_chrome_trace(std::ostream& os) {
  const std::vector<SpanRecord> records = collect();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records) {
    if (!first) os << ",";
    first = false;
    const std::string_view name = r.name;
    const std::string_view cat = name.substr(0, name.find('.'));
    os << "\n{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
       << json_escape(cat) << "\",\"ph\":\"X\",\"ts\":"
       << json_number(static_cast<double>(r.start_ns) / 1000.0)
       << ",\"dur\":" << json_number(static_cast<double>(r.dur_ns) / 1000.0)
       << ",\"pid\":1,\"tid\":" << r.tid << ",\"args\":{\"trace\":"
       << r.trace_id << ",\"span\":" << r.span_id << ",\"parent\":"
       << r.parent_id << "}}";
  }
  os << "\n]}\n";
  return static_cast<bool>(os);
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  return write_chrome_trace(os);
}

}  // namespace starring::obs::trace
