#include "hypercube/hypercube.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <unordered_set>

#include "graph/graph.hpp"

namespace starring {

Hypercube::Hypercube(int n) : n_(n) { assert(n >= 1 && n <= 30); }

int Hypercube::parity(std::uint32_t u) { return std::popcount(u) & 1; }

namespace {

/// Drop bit d from a mask (compress to n-1 coordinates).
std::uint32_t drop_bit(std::uint32_t u, int d) {
  const std::uint32_t low = u & ((1u << d) - 1);
  const std::uint32_t high = (u >> (d + 1)) << d;
  return low | high;
}

/// Insert bit `value` at position d (inverse of drop_bit).
std::uint32_t insert_bit(std::uint32_t u, int d, std::uint32_t value) {
  const std::uint32_t low = u & ((1u << d) - 1);
  const std::uint32_t high = (u >> d) << (d + 1);
  return low | high | (value << d);
}

/// Exhaustive base case for n <= 4 (at most 16 vertices): the longest
/// fault-free cycle, demanded to hit 2^n - 2|Fv| exactly.
std::optional<std::vector<std::uint32_t>> base_ring(int n,
                                                    const CubeFaults& faults) {
  const int size = 1 << n;
  SmallGraph g(size);
  for (int u = 0; u < size; ++u)
    for (int b = 0; b < n; ++b)
      if ((u ^ (1 << b)) > u) g.add_edge(u, u ^ (1 << b));
  std::uint64_t forbidden = 0;
  for (const std::uint32_t f : faults) forbidden |= 1ULL << f;
  const int target = size - 2 * static_cast<int>(faults.size());
  if (target < 4) return std::nullopt;
  // Exactly 2^n - 2|Fv| (the theorem's length); with opposite-parity
  // faults the optimum can be longer, but exact length keeps the
  // recursive composition and the cross-topology comparison honest.
  const auto cycle = cycle_with_exact_vertices(g, forbidden, target);
  if (!cycle) return std::nullopt;
  return std::vector<std::uint32_t>(cycle->begin(), cycle->end());
}

struct PairHash {
  std::size_t operator()(const std::uint64_t v) const {
    return std::hash<std::uint64_t>{}(v);
  }
};

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::optional<std::vector<std::uint32_t>> embed_hypercube_ring(
    int n, const CubeFaults& faults) {
  assert(n >= 2 && n <= 24);
  if (n <= 4) return base_ring(n, faults);

  // Try split dimensions, most balanced fault split first; both halves
  // must stay inside the recursive regime |F| <= (n-1) - 2.
  std::vector<int> dims(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) dims[static_cast<std::size_t>(d)] = d;
  auto imbalance = [&](int d) {
    int ones = 0;
    for (const std::uint32_t f : faults)
      if ((f >> d) & 1u) ++ones;
    return std::abs(2 * ones - static_cast<int>(faults.size()));
  };
  std::sort(dims.begin(), dims.end(),
            [&](int a, int b) { return imbalance(a) < imbalance(b); });

  for (const int d : dims) {
    CubeFaults lower;
    CubeFaults upper;
    for (const std::uint32_t f : faults)
      ((f >> d) & 1u ? upper : lower).insert(drop_bit(f, d));
    const std::size_t cap = static_cast<std::size_t>(n - 3);
    if (lower.size() > cap || upper.size() > cap) continue;

    const auto c0 = embed_hypercube_ring(n - 1, lower);
    if (!c0) continue;
    const auto c1 = embed_hypercube_ring(n - 1, upper);
    if (!c1) continue;

    // Expand back to n-bit coordinates.
    std::vector<std::uint32_t> r0;
    r0.reserve(c0->size());
    for (const std::uint32_t u : *c0) r0.push_back(insert_bit(u, d, 0));
    std::vector<std::uint32_t> r1;
    r1.reserve(c1->size());
    for (const std::uint32_t u : *c1) r1.push_back(insert_bit(u, d, 1));

    // Splice: an edge (u, v) of r0 whose mirror (u^d, v^d) is an edge
    // of r1.  Drop both edges, bridge with (u, u^d) and (v, v^d).
    std::unordered_set<std::uint64_t, PairHash> edges1;
    edges1.reserve(r1.size() * 2);
    for (std::size_t i = 0; i < r1.size(); ++i)
      edges1.insert(edge_key(r1[i], r1[(i + 1) % r1.size()]));
    const std::uint32_t bit = 1u << d;

    for (std::size_t i = 0; i < r0.size(); ++i) {
      const std::uint32_t u = r0[i];
      const std::uint32_t v = r0[(i + 1) % r0.size()];
      if (!edges1.contains(edge_key(u ^ bit, v ^ bit))) continue;
      // Orient r0 to end at u (... -> v ... u), i.e. start at v.
      std::vector<std::uint32_t> ring;
      ring.reserve(r0.size() + r1.size());
      for (std::size_t k = 0; k < r0.size(); ++k)
        ring.push_back(r0[(i + 1 + k) % r0.size()]);  // v ... u
      // Append r1 from u^bit to v^bit (orientation chosen so the
      // mirrored edge is the wrap-around we drop).
      const auto ju = static_cast<std::size_t>(
          std::find(r1.begin(), r1.end(), u ^ bit) - r1.begin());
      const std::size_t m1 = r1.size();
      if (r1[(ju + 1) % m1] == (v ^ bit)) {
        // u' ... (backwards) ... v': walk r1 in reverse from ju.
        for (std::size_t k = 0; k < m1; ++k)
          ring.push_back(r1[(ju + m1 - k) % m1]);
      } else {
        for (std::size_t k = 0; k < m1; ++k)
          ring.push_back(r1[(ju + k) % m1]);
      }
      return ring;
    }
  }
  return std::nullopt;
}

bool verify_hypercube_ring(int n, const CubeFaults& faults,
                           const std::vector<std::uint32_t>& ring) {
  if (ring.size() < 4) return false;
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(ring.size() * 2);
  for (const std::uint32_t u : ring) {
    if (u >= (1u << n)) return false;
    if (faults.contains(u)) return false;
    if (!seen.insert(u).second) return false;
  }
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (!Hypercube::adjacent(ring[i], ring[(i + 1) % ring.size()]))
      return false;
  return true;
}

}  // namespace starring
