#include "stargraph/star_graph.hpp"

#include <algorithm>
#include <cassert>

namespace starring {

StarGraph::StarGraph(int n) : n_(n) { assert(n >= 1 && n <= kMaxN); }

std::vector<VertexId> StarGraph::neighbor_ids(VertexId id) const {
  const Perm p = vertex(id);
  std::vector<VertexId> out;
  out.reserve(static_cast<std::size_t>(n_ - 1));
  for (int i = 1; i < n_; ++i) out.push_back(p.star_move(i).rank());
  return out;
}

Graph StarGraph::materialize() const {
  Graph g(num_vertices());
  for (VertexId id = 0; id < num_vertices(); ++id) {
    const Perm p = vertex(id);
    for (int i = 1; i < n_; ++i) {
      const VertexId q = p.star_move(i).rank();
      if (q > id) g.add_edge(id, q);
    }
  }
  return g;
}

bool is_star_ring(const StarGraph& g, const std::vector<VertexId>& ring) {
  if (ring.size() < 3) return false;
  std::vector<VertexId> sorted = ring;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;
  if (sorted.back() >= g.num_vertices()) return false;
  Perm prev = g.vertex(ring.back());
  for (const VertexId id : ring) {
    const Perm cur = g.vertex(id);
    if (!prev.adjacent(cur)) return false;
    prev = cur;
  }
  return true;
}

}  // namespace starring
