// Embedded use of the embedding service: run EmbedService in-process
// instead of talking to a starringd daemon.
//
//   $ ./service_client [n] [requests] [seed]
//
// Submits a burst of random fault scenarios through the batched
// scheduler, then demonstrates the symmetry-canonical cache: a
// relabeled copy of an already-answered request comes back as a cache
// hit, bit-identical to the fresh computation after mapping frames.
#include <cstdlib>
#include <iostream>
#include <map>
#include <random>

#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) {
  using namespace starring;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const int count = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  if (n < 4 || n > 9) {
    std::cerr << "n must be in [4, 9]\n";
    return 1;
  }

  const StarGraph g(n);
  ServiceOptions opts;
  opts.verify_on_hit = true;
  EmbedService svc(opts);

  // Burst of random scenarios through the queue + batcher.
  std::mt19937_64 rng(seed);
  std::map<std::uint64_t, FaultSet> submitted;
  for (int i = 0; i < count; ++i) {
    ServiceRequest r;
    r.id = static_cast<std::uint64_t>(i);
    r.n = n;
    r.faults = random_vertex_faults(
        g, static_cast<int>(rng() % static_cast<std::uint64_t>(n - 2)), rng());
    r.verify = true;
    submitted.emplace(r.id, r.faults);
    svc.submit(std::move(r));
  }
  svc.drain();

  int ok = 0;
  int hits = 0;
  while (auto resp = svc.next_response()) {
    if (resp->status != ServiceStatus::kOk) {
      std::cerr << "request " << resp->id << " failed: " << resp->reason
                << "\n";
      return 1;
    }
    const auto rep =
        verify_healthy_ring(g, submitted.at(resp->id), resp->ring);
    if (!rep.valid) {
      std::cerr << "request " << resp->id << " verification FAILED: "
                << rep.error << "\n";
      return 1;
    }
    ++ok;
    hits += resp->cache_hit;
  }
  std::cout << ok << "/" << count << " requests embedded and verified, "
            << hits << " cache hits\n";

  // The symmetry dividend: any relabeling of a solved instance is a
  // hit, with the cached canonical ring mapped into the caller's frame.
  const FaultSet base = random_vertex_faults(g, n - 3, seed);
  ServiceRequest fresh;
  fresh.id = 1000;
  fresh.n = n;
  fresh.faults = base;
  const ServiceResponse first = svc.process_now(fresh);
  const Perm h = Perm::unrank(rng() % factorial(n), n);
  ServiceRequest moved = fresh;
  moved.id = 1001;
  moved.faults = base.relabeled(h);
  const ServiceResponse second = svc.process_now(moved);
  if (first.status != ServiceStatus::kOk ||
      second.status != ServiceStatus::kOk) {
    std::cerr << "canonical-cache demo failed\n";
    return 1;
  }
  std::cout << "relabeled request: cache_hit="
            << (second.cache_hit ? "yes" : "no") << ", verified="
            << (second.verified ? "yes" : "no") << ", ring length "
            << second.ring.size() << " (= n! - 2|Fv| = "
            << expected_ring_length(n, static_cast<int>(
                                           base.num_vertex_faults()))
            << ")\n";
  return second.cache_hit ? 0 : 1;
}
