#include "cluster/shard_map.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

namespace starring::cluster {

namespace {

void fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
}

// A deployment is a handful of processes; the cap only guards the
// parser against a garbage count line.
constexpr int kMaxShards = 1024;
constexpr int kMaxVnodes = 4096;

}  // namespace

std::optional<ShardMap> ShardMap::parse(std::istream& is,
                                        std::string* error) {
  std::string word;
  std::string version;
  if (!(is >> word >> version) || word != "starring-shard-map" ||
      version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  ShardMap m;
  // Optional scalar lines in any order, then `shards N`.
  std::size_t count = 0;
  while (true) {
    if (!(is >> word)) {
      fail(error, "missing shards line");
      return std::nullopt;
    }
    if (word == "shards") {
      if (!(is >> count) || count < 1 ||
          count > static_cast<std::size_t>(kMaxShards)) {
        fail(error, "bad shards count");
        return std::nullopt;
      }
      break;
    }
    if (word == "epoch") {
      if (!(is >> m.epoch_)) {
        fail(error, "bad epoch line");
        return std::nullopt;
      }
    } else if (word == "replication") {
      if (!(is >> m.replication_) || m.replication_ < 1) {
        fail(error, "bad replication line");
        return std::nullopt;
      }
    } else if (word == "vnodes") {
      if (!(is >> m.vnodes_) || m.vnodes_ < 1 || m.vnodes_ > kMaxVnodes) {
        fail(error, "bad vnodes line");
        return std::nullopt;
      }
    } else {
      fail(error, "unknown line '" + word + "'");
      return std::nullopt;
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    ShardInfo s;
    std::string ep_text;
    if (!(is >> word >> s.id >> ep_text) || word != "shard" || s.id < 0) {
      fail(error, "bad shard line");
      return std::nullopt;
    }
    const auto ep = net::parse_endpoint(ep_text);
    if (!ep) {
      fail(error, "bad endpoint '" + ep_text + "'");
      return std::nullopt;
    }
    s.endpoint = *ep;
    for (const ShardInfo& prev : m.shards_) {
      if (prev.id == s.id) {
        fail(error, "duplicate shard id " + std::to_string(s.id));
        return std::nullopt;
      }
    }
    m.shards_.push_back(std::move(s));
  }
  if (!(is >> word) || word != "end") {
    fail(error, "missing end line");
    return std::nullopt;
  }
  if (m.replication_ > static_cast<int>(m.shards_.size())) {
    fail(error, "replication exceeds shard count");
    return std::nullopt;
  }
  m.target_replication_ = m.replication_;
  m.build_ring();
  return m;
}

ShardMap ShardMap::make(std::vector<ShardInfo> shards, std::uint64_t epoch,
                        int replication, int vnodes) {
  ShardMap m;
  m.epoch_ = epoch;
  m.vnodes_ = std::clamp(vnodes, 1, kMaxVnodes);
  m.shards_ = std::move(shards);
  m.set_replication(replication);
  m.build_ring();
  return m;
}

std::optional<ShardMap> ShardMap::load(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return parse(in, error);
}

const ShardInfo* ShardMap::find(int shard_id) const {
  for (const ShardInfo& s : shards_)
    if (s.id == shard_id) return &s;
  return nullptr;
}

void ShardMap::build_ring() {
  ring_.clear();
  ring_.reserve(shards_.size() * static_cast<std::size_t>(vnodes_));
  for (const ShardInfo& s : shards_) {
    for (int k = 0; k < vnodes_; ++k) {
      // The point depends only on the shard's own id: removing a shard
      // deletes exactly its points, leaving every other key in place.
      const std::string label =
          "shard-" + std::to_string(s.id) + "#" + std::to_string(k);
      ring_.push_back({place_hash(label), s.id});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              // shard_id tie-break: identical hash points place
              // deterministically regardless of file order.
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.shard_id < b.shard_id;
            });
}

std::size_t ShardMap::ring_start(std::string_view key) const {
  const std::uint64_t h = place_hash(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, std::uint64_t v) { return p.hash < v; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

int ShardMap::owner(std::string_view key) const {
  if (ring_.empty()) return -1;
  return ring_[ring_start(key)].shard_id;
}

std::vector<int> ShardMap::replicas(std::string_view key) const {
  std::vector<int> out;
  if (ring_.empty()) return out;
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(replication_), shards_.size());
  const std::size_t start = ring_start(key);
  for (std::size_t i = 0; i < ring_.size() && out.size() < want; ++i) {
    const int id = ring_[(start + i) % ring_.size()].shard_id;
    if (std::find(out.begin(), out.end(), id) == out.end())
      out.push_back(id);
  }
  return out;
}

std::vector<int> ShardMap::all_candidates(std::string_view key) const {
  std::vector<int> out;
  if (ring_.empty()) return out;
  const std::size_t start = ring_start(key);
  for (std::size_t i = 0; i < ring_.size() && out.size() < shards_.size();
       ++i) {
    const int id = ring_[(start + i) % ring_.size()].shard_id;
    if (std::find(out.begin(), out.end(), id) == out.end())
      out.push_back(id);
  }
  return out;
}

ShardMap ShardMap::without(int shard_id) const {
  ShardMap m;
  m.epoch_ = epoch_ + 1;  // a shrink is a membership change
  m.vnodes_ = vnodes_;
  for (const ShardInfo& s : shards_)
    if (s.id != shard_id) m.shards_.push_back(s);
  m.set_replication(target_replication_);
  m.build_ring();
  return m;
}

ShardMap ShardMap::with(const ShardInfo& s) const {
  ShardMap m;
  m.epoch_ = epoch_ + 1;  // growth is a membership change too
  m.vnodes_ = vnodes_;
  m.shards_ = shards_;
  bool replaced = false;
  for (ShardInfo& prev : m.shards_) {
    if (prev.id == s.id) {
      prev.endpoint = s.endpoint;  // rejoin at a new address
      replaced = true;
      break;
    }
  }
  if (!replaced) m.shards_.push_back(s);
  // Growth heals replication toward the configured target: a cluster
  // that shrank below R regains replicas as members return.
  m.set_replication(target_replication_);
  m.build_ring();
  return m;
}

void ShardMap::set_replication(int target) {
  target_replication_ = std::max(1, target);
  replication_ =
      std::min(target_replication_, static_cast<int>(shards_.size()));
  if (replication_ < 1) replication_ = 1;
}

std::string ShardMap::to_text() const {
  std::ostringstream os;
  os << "starring-shard-map v1\n";
  os << "epoch " << epoch_ << "\n";
  os << "replication " << replication_ << "\n";
  os << "vnodes " << vnodes_ << "\n";
  os << "shards " << shards_.size() << "\n";
  for (const ShardInfo& s : shards_)
    os << "shard " << s.id << " " << net::to_string(s.endpoint) << "\n";
  os << "end\n";
  return os.str();
}

}  // namespace starring::cluster
