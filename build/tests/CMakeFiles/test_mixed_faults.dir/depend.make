# Empty dependencies file for test_mixed_faults.
# This may be replaced when dependencies are built.
