// starring-proxy — thin cluster router in front of sharded starringd.
//
// Speaks starring-request/starring-response v1 on both sides.  For
// each embedding request it canonicalizes the fault set
// (service/canonical), hashes the canonical class key onto the shard
// map's consistent-hash ring, and forwards to the owner shard.  On
// connect/write/read failure — or a `status timeout` from the shard —
// it retries the next replica; per-shard circuit breakers
// (cluster/router.hpp) keep a dead shard from taxing every request
// with a connect timeout, while still leaving it in every candidate
// list as a last resort, so a request always reaches some terminal
// status.  Exhausting every shard answers `status rejected` with
// reason "no live shard" — terminal and retryable, like a queue-full
// bounce.
//
// Read-through replication: the proxy counts ok-served canonical
// classes; when one crosses --seed-threshold it pushes the canonical
// ring to the class's replica shards as `starring-seed v1` records
// (EmbedService::seed_cache on the far side), so a failover lands on a
// warm cache instead of recomputing.
//
// A health poller sends the bare `HEALTH` line to every shard each
// --health-interval-ms: a dead shard trips its breaker between data-
// path requests, a recovered one closes it, and an id/epoch mismatch
// (a process serving under the wrong identity or an out-of-date map)
// is logged and counted.
//
// The proxy answers STATS (its own cluster.* registry, including
// per-shard latency histograms cluster.shard.<id>.latency.*), PING,
// FAIL (local failpoints: proxy.forward fails a request before any
// forward, proxy.upstream fails individual forward attempts — the
// chaos tests storm these), and HEALTH (shard -1, the map's epoch).
// Client-side transport, accept hardening, and drain semantics match
// starringd (util/net.hpp).
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <poll.h>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "obs/bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "service/canonical.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring::cluster {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct ProxyConfig {
  std::string shard_map_path;
  int listen_port = -1;
  int max_conns = 64;
  int write_timeout_ms = 5000;
  /// Budget for one upstream exchange (connect + request + response);
  /// a shard that cannot answer within it counts as failed and the
  /// request fails over.
  int upstream_timeout_ms = 10000;
  int drain_timeout_ms = 10000;
  /// Health-poll period; 0 disables the poller (data-path failures
  /// still drive the breakers).
  int health_interval_ms = 1000;
  /// Ok-served responses of one canonical class before its ring is
  /// pushed to the replicas; 0 disables replication seeding.
  int seed_threshold = 3;
  std::string bench_artifact;
};

/// One cached upstream connection (blocking-looking iostreams over a
/// non-blocking fd with bounded reads/writes).
struct UpstreamConn {
  int fd;
  net::FdInBuf in_buf;
  net::FdOutBuf out_buf;
  std::istream in;
  std::ostream out;

  UpstreamConn(int fd_, int read_timeout_ms, int write_timeout_ms)
      : fd(fd_),
        in_buf(fd_, read_timeout_ms),
        out_buf(fd_, write_timeout_ms, nullptr),
        in(&in_buf),
        out(&out_buf) {}
  ~UpstreamConn() { ::close(fd); }
  UpstreamConn(const UpstreamConn&) = delete;
  UpstreamConn& operator=(const UpstreamConn&) = delete;
};

/// Per-client-thread pool of upstream connections, one per shard,
/// created lazily and dropped on any failure (the next attempt
/// reconnects).  Not shared across client threads: each gets its own
/// upstream sockets, so responses never interleave.
class UpstreamPool {
 public:
  UpstreamPool(const ShardMap& map, int upstream_timeout_ms,
               int write_timeout_ms)
      : map_(map),
        read_timeout_ms_(upstream_timeout_ms),
        write_timeout_ms_(write_timeout_ms) {}

  UpstreamConn* get(int shard_id) {
    const auto it = conns_.find(shard_id);
    if (it != conns_.end()) return it->second.get();
    const ShardInfo* info = map_.find(shard_id);
    if (info == nullptr) return nullptr;
    const int fd = net::connect_endpoint(info->endpoint, /*nonblocking=*/true);
    if (fd < 0) return nullptr;
    auto conn = std::make_unique<UpstreamConn>(fd, read_timeout_ms_,
                                               write_timeout_ms_);
    UpstreamConn* raw = conn.get();
    conns_[shard_id] = std::move(conn);
    return raw;
  }

  void drop(int shard_id) { conns_.erase(shard_id); }

 private:
  const ShardMap& map_;
  int read_timeout_ms_;
  int write_timeout_ms_;
  std::map<int, std::unique_ptr<UpstreamConn>> conns_;
};

/// Read-through replication: count ok-served canonical classes and,
/// at the threshold, push the canonical ring to the class's replicas
/// from a background worker (a slow replica must not add latency to
/// the data path).
class Seeder {
 public:
  Seeder(const ShardMap& map, int threshold, int upstream_timeout_ms)
      : map_(map),
        threshold_(threshold),
        timeout_ms_(upstream_timeout_ms),
        worker_([this] { run(); }) {}

  ~Seeder() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  /// Note an ok response for canonical class `key` served by
  /// `served_by`.  `ring` is in the *canonical* frame (the caller
  /// relabels before handing it over).  Crossing the threshold
  /// enqueues one seed push to every replica except the server.
  void note_ok(const std::string& key, int n, std::vector<VertexId> ring,
               const std::vector<int>& replica_ids, int served_by) {
    std::vector<int> targets;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      // Bounded tracker: losing the counts on overflow only delays
      // re-seeding, which is idempotent anyway.
      if (counts_.size() > kMaxTracked) counts_.clear();
      int& c = counts_[key];
      if (c < 0) return;  // already seeded
      if (++c < threshold_) return;
      c = -1;
      for (const int id : replica_ids)
        if (id != served_by) targets.push_back(id);
      if (targets.empty()) return;
      jobs_.push_back(Job{key, n, std::move(ring), std::move(targets)});
    }
    cv_.notify_one();
  }

  /// Drop the seeded-marker for every class (a killed shard's replicas
  /// may themselves have died; tests re-arm via this).  Cheap, so the
  /// health poller calls it whenever a shard transitions to dead.
  void forget_seeded() {
    const std::lock_guard<std::mutex> lock(mu_);
    counts_.clear();
  }

 private:
  struct Job {
    std::string key;
    int n;
    std::vector<VertexId> ring;
    std::vector<int> targets;
  };

  void run() {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ and drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      for (const int id : job.targets) push(job, id);
    }
  }

  void push(const Job& job, int shard_id) {
    const ShardInfo* info = map_.find(shard_id);
    if (info == nullptr) return;
    const int fd = net::connect_endpoint(info->endpoint, /*nonblocking=*/true);
    if (fd < 0) {
      obs::counter("cluster.seed_failures").add();
      return;
    }
    UpstreamConn conn(fd, timeout_ms_, timeout_ms_);
    ServiceRequest seed;
    seed.kind = RequestKind::kSeed;
    seed.n = job.n;
    seed.seed_key = job.key;
    seed.seed_ring = job.ring;
    write_request(conn.out, seed);
    conn.out.flush();
    std::string line;
    std::string word;
    if (conn.out.good() && (conn.in >> word >> line) && word == "SEED" &&
        line == "ok") {
      obs::counter("cluster.seeds_sent").add();
    } else {
      obs::counter("cluster.seed_failures").add();
    }
  }

  static constexpr std::size_t kMaxTracked = 8192;

  const ShardMap& map_;
  const int threshold_;
  const int timeout_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, int> counts_;
  std::deque<Job> jobs_;
  bool stop_ = false;
  std::thread worker_;
};

struct ProxyCtx {
  ProxyConfig cfg;
  ShardRouter router;
  std::unique_ptr<Seeder> seeder;  // null: seeding disabled
  /// Per-shard forward latency histograms, built once at startup; the
  /// generic histogram folding in obs/prometheus renders them as
  /// cluster.shard.<id>.latency quantiles for free.
  std::map<int, std::unique_ptr<obs::LatencyHistogram>> latency;

  ProxyCtx(ProxyConfig cfg_, ShardMap map) : cfg(std::move(cfg_)), router(std::move(map)) {
    for (const ShardInfo& s : router.map().shards())
      latency[s.id] = std::make_unique<obs::LatencyHistogram>(
          "cluster.shard." + std::to_string(s.id) + ".latency");
    if (cfg.seed_threshold > 0 && router.map().replication() > 1)
      seeder = std::make_unique<Seeder>(router.map(), cfg.seed_threshold,
                                        cfg.upstream_timeout_ms);
  }
};

/// Forward one embedding request, failing over across the candidate
/// list.  Always returns a terminal response.
ServiceResponse forward_embed(const ServiceRequest& req, ProxyCtx& ctx,
                              UpstreamPool& pool) {
  obs::counter("cluster.requests").add();
  const CanonicalForm canon = canonicalize(req.n, req.faults);
  const auto cands =
      ctx.router.candidates(canon.key, ShardRouter::Clock::now());

  const auto fail_with = [&](ServiceStatus status, const char* reason) {
    ServiceResponse r;
    r.id = req.id;
    r.status = status;
    r.reason = reason;
    return r;
  };

  if (FAILPOINT("proxy.forward"))
    return fail_with(ServiceStatus::kError, "failpoint proxy.forward");

  std::optional<ServiceResponse> shard_timeout;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const int sid = cands[i];
    const auto now = ShardRouter::Clock::now();
    if (FAILPOINT("proxy.upstream")) {
      // Chaos stands in for a dead upstream: same bookkeeping, same
      // failover path.
      ctx.router.record_failure(sid, now);
      obs::counter("cluster.upstream_failures").add();
      continue;
    }
    UpstreamConn* conn = pool.get(sid);
    if (conn == nullptr) {
      ctx.router.record_failure(sid, now);
      obs::counter("cluster.connect_failures").add();
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    write_request(conn->out, req);
    conn->out.flush();
    if (!conn->out.good()) {
      pool.drop(sid);
      ctx.router.record_failure(sid, ShardRouter::Clock::now());
      obs::counter("cluster.write_failures").add();
      continue;
    }
    std::string err;
    const auto resp = read_response(conn->in, &err);
    if (!resp || resp->id != req.id) {
      // EOF, a wedged shard (bounded read expired), a malformed frame,
      // or a response for someone else: the connection is unusable.
      pool.drop(sid);
      ctx.router.record_failure(sid, ShardRouter::Clock::now());
      obs::counter("cluster.read_failures").add();
      continue;
    }
    ctx.router.record_success(sid);
    const auto it = ctx.latency.find(sid);
    if (it != ctx.latency.end())
      it->second->record(std::chrono::steady_clock::now() - t0);
    obs::counter("cluster.forwarded").add();

    if (resp->status == ServiceStatus::kTimeout) {
      // The shard is alive but missed the request's budget; a replica
      // with the class cached may still make it.  Keep the timeout as
      // the answer of last resort.
      obs::counter("cluster.upstream_timeouts").add();
      shard_timeout = *resp;
      continue;
    }
    if (i > 0) obs::counter("cluster.failover").add();
    if (resp->status == ServiceStatus::kOk) {
      obs::counter(resp->cache_hit ? "cluster.cache_hits"
                                   : "cluster.cache_misses")
          .add();
      if (ctx.seeder) {
        // The response ring is in the caller's frame; replicas cache
        // by canonical key, so hand the seeder the canonical-frame
        // ring (exactly inverse to the shard's finish() relabel).
        ctx.seeder->note_ok(canon.key, req.n,
                            relabel_ring(resp->ring, canon.to_canonical,
                                         req.n),
                            ctx.router.map().replicas(canon.key), sid);
      }
    }
    return *resp;
  }
  if (shard_timeout) return *shard_timeout;
  obs::counter("cluster.no_shard").add();
  return fail_with(ServiceStatus::kRejected, "no live shard");
}

// --- client side ------------------------------------------------------

/// Serve one client connection: requests are handled serially (the
/// proxy holds no embedding state, so per-request concurrency belongs
/// to the client opening more connections, which is what starring-load
/// does — one per tenant).
void serve_client(int fd, ProxyCtx& ctx, net::ConnRegistry& reg) {
  std::atomic<bool> dead{false};
  net::FdInBuf in_buf(fd);
  net::FdOutBuf out_buf(fd, ctx.cfg.write_timeout_ms, &dead);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);
  UpstreamPool pool(ctx.router.map(), ctx.cfg.upstream_timeout_ms,
                    ctx.cfg.write_timeout_ms);

  std::string err;
  while (!dead.load(std::memory_order_relaxed)) {
    auto req = read_request(in, &err);
    if (!req) {
      if (!err.empty() && !dead.load(std::memory_order_relaxed)) {
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        write_response(out, bad);
        out.flush();
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      write_stats(out, obs::render_prometheus());
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kPing) {
      out << "PONG\n";
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kFail) {
      std::string why;
      const bool ok = failpoint::set(req->fail_config, &why);
      if (ok)
        out << "FAIL ok\n";
      else
        out << "FAIL bad "
            << (why.empty() ? std::string("failpoints unavailable") : why)
            << "\n";
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kHealth) {
      HealthInfo h;
      h.shard_id = -1;  // a router, not a shard
      h.epoch = ctx.router.map().epoch();
      h.cache_entries = 0;
      h.cache_hits = static_cast<std::uint64_t>(
          obs::counter("cluster.cache_hits").value());
      h.cache_misses = static_cast<std::uint64_t>(
          obs::counter("cluster.cache_misses").value());
      write_health(out, h);
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kSeed) {
      out << "SEED bad proxy is not a shard\n";
      out.flush();
      continue;
    }
    const ServiceResponse resp = forward_embed(*req, ctx, pool);
    if (!dead.load(std::memory_order_relaxed)) {
      write_response(out, resp);
      out.flush();
    }
  }
  reg.remove(fd);
  ::close(fd);
}

/// Over the connection cap: one `status rejected` response, then close.
void refuse_connection(int fd) {
  obs::counter("svc.rejected_conns").add();
  net::FdOutBuf out_buf(fd, /*write_timeout_ms=*/1000, nullptr);
  std::ostream out(&out_buf);
  ServiceResponse rej;
  rej.status = ServiceStatus::kRejected;
  rej.reason = "connection limit";
  write_response(out, rej);
  out.flush();
  ::close(fd);
}

/// Poll every shard's HEALTH each interval: trip the breaker of a
/// shard that cannot answer, close the breaker of one that recovered,
/// and flag identity/epoch mismatches.
void health_loop(ProxyCtx& ctx, std::atomic<bool>& stop) {
  const ShardMap& map = ctx.router.map();
  std::map<int, bool> was_alive;
  while (!stop.load(std::memory_order_relaxed)) {
    for (const ShardInfo& s : map.shards()) {
      if (stop.load(std::memory_order_relaxed)) break;
      bool alive = false;
      const int fd = net::connect_endpoint(s.endpoint, /*nonblocking=*/true);
      if (fd >= 0) {
        // Health probes get a short budget of their own: a wedged
        // shard should trip its breaker well within the poll period.
        const int budget =
            std::max(100, ctx.cfg.health_interval_ms / 2);
        UpstreamConn conn(fd, budget, budget);
        ServiceRequest probe;
        probe.kind = RequestKind::kHealth;
        write_request(conn.out, probe);
        conn.out.flush();
        if (const auto h = read_health(conn.in)) {
          if (h->shard_id != s.id || h->epoch != map.epoch()) {
            obs::counter("cluster.health_mismatch").add();
            std::cerr << "starring-proxy: shard " << s.id << " at "
                      << net::to_string(s.endpoint)
                      << " reports identity " << h->shard_id << " epoch "
                      << h->epoch << " (want epoch " << map.epoch()
                      << ")\n";
          } else {
            alive = true;
          }
        }
      }
      if (alive) {
        ctx.router.record_success(s.id);
      } else {
        obs::counter("cluster.health_failures").add();
        ctx.router.record_failure(s.id, ShardRouter::Clock::now());
        const auto it = was_alive.find(s.id);
        if (ctx.seeder && (it == was_alive.end() || it->second)) {
          // A shard just died: previously pushed seeds may have lived
          // there, so let hot classes qualify for seeding again.
          ctx.seeder->forget_seeded();
        }
      }
      was_alive[s.id] = alive;
    }
    // Sleep in small slices so shutdown is prompt.
    for (int waited = 0;
         waited < ctx.cfg.health_interval_ms &&
         !stop.load(std::memory_order_relaxed);
         waited += 50)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// --- main -------------------------------------------------------------

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --shard-map FILE --listen PORT [options]\n"
      << "  --shard-map FILE       cluster membership (starring-shard-map "
         "v1)\n"
      << "  --listen PORT          serve TCP on 127.0.0.1:PORT (0 = "
         "kernel-assigned,\n"
      << "                         printed on stderr)\n"
      << "  --max-conns N          concurrent client connections "
         "(default 64)\n"
      << "  --write-timeout-ms N   evict a client that cannot drain its "
         "socket\n"
      << "                         (default 5000)\n"
      << "  --upstream-timeout-ms N  budget for one shard exchange; "
         "overrun\n"
      << "                         counts as failure and fails over "
         "(default 10000)\n"
      << "  --health-interval-ms N HEALTH poll period, 0 = off "
         "(default 1000)\n"
      << "  --seed-threshold N     ok responses of a class before its "
         "ring is\n"
      << "                         replicated, 0 = off (default 3)\n"
      << "  --drain-timeout-ms N   abort if shutdown drain exceeds N ms\n"
      << "                         (default 10000)\n"
      << "  --bench-artifact S     write BENCH_<S>.json on clean drain\n";
  return 2;
}

std::optional<ProxyConfig> parse_args(int argc, char** argv) {
  ProxyConfig cfg;
  bool saw_listen = false;
  const auto num = [&](int* i) -> long {
    if (*i + 1 >= argc) return -1;
    return std::atol(argv[++*i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long v = 0;
    if (a == "--shard-map" && i + 1 < argc) {
      cfg.shard_map_path = argv[++i];
    } else if (a == "--listen" && (v = num(&i)) >= 0 && v < 65536) {
      cfg.listen_port = static_cast<int>(v);
      saw_listen = true;
    } else if (a == "--max-conns" && (v = num(&i)) > 0) {
      cfg.max_conns = static_cast<int>(v);
    } else if (a == "--write-timeout-ms" && (v = num(&i)) > 0) {
      cfg.write_timeout_ms = static_cast<int>(v);
    } else if (a == "--upstream-timeout-ms" && (v = num(&i)) > 0) {
      cfg.upstream_timeout_ms = static_cast<int>(v);
    } else if (a == "--health-interval-ms" && (v = num(&i)) >= 0) {
      cfg.health_interval_ms = static_cast<int>(v);
    } else if (a == "--seed-threshold" && (v = num(&i)) >= 0) {
      cfg.seed_threshold = static_cast<int>(v);
    } else if (a == "--drain-timeout-ms" && (v = num(&i)) > 0) {
      cfg.drain_timeout_ms = static_cast<int>(v);
    } else if (a == "--bench-artifact" && i + 1 < argc) {
      cfg.bench_artifact = argv[++i];
    } else {
      return std::nullopt;
    }
  }
  if (cfg.shard_map_path.empty() || !saw_listen) return std::nullopt;
  return cfg;
}

int proxy_main(int argc, char** argv) {
  auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  obs::set_enabled(true);

  std::string err;
  auto map = ShardMap::load(cfg->shard_map_path, &err);
  if (!map) {
    std::cerr << "starring-proxy: bad shard map: " << err << "\n";
    return 1;
  }
  std::cerr << "starring-proxy: " << map->shards().size()
            << " shards, replication " << map->replication() << ", epoch "
            << map->epoch() << "\n";

  std::unique_ptr<obs::BenchRecorder> rec;
  if (!cfg->bench_artifact.empty())
    rec = std::make_unique<obs::BenchRecorder>(cfg->bench_artifact);

  int actual_port = 0;
  const int listen_fd =
      net::listen_loopback(cfg->listen_port, 16, &actual_port, &err);
  if (listen_fd < 0) {
    std::cerr << "starring-proxy: " << err << "\n";
    return 1;
  }
  std::cerr << "starring-proxy: listening on 127.0.0.1:" << actual_port
            << "\n";

  ProxyCtx ctx(*cfg, std::move(*map));

  std::atomic<bool> health_stop{false};
  std::thread health;
  if (cfg->health_interval_ms > 0)
    health = std::thread([&] { health_loop(ctx, health_stop); });

  net::ConnRegistry reg;
  obs::Counter& accept_errors = obs::counter("svc.accept_errors");
  while (g_stop == 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200 /*ms*/);
    if (r <= 0) continue;  // timeout or EINTR: re-check g_stop
    const int fd =
        net::accept_transient(listen_fd, "starring-proxy", accept_errors);
    if (fd < 0) continue;
    if (reg.count() >= static_cast<std::size_t>(cfg->max_conns)) {
      refuse_connection(fd);
      continue;
    }
    if (!net::set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    reg.add(fd);
    std::thread([fd, &ctx, &reg] { serve_client(fd, ctx, reg); }).detach();
  }
  ::close(listen_fd);

  net::DrainGuard drain_guard(cfg->drain_timeout_ms);
  reg.shutdown_all(SHUT_RD);
  if (!reg.wait_empty(cfg->drain_timeout_ms / 2)) {
    reg.shutdown_all(SHUT_RDWR);
    if (!reg.wait_empty(cfg->drain_timeout_ms / 4)) {
      std::cerr << "starring-proxy: connections failed to drain, aborting\n";
      std::_Exit(1);
    }
  }
  if (health.joinable()) {
    health_stop.store(true, std::memory_order_relaxed);
    health.join();
  }
  ctx.seeder.reset();  // flush pending seed pushes

  if (rec) {
    const double hits =
        static_cast<double>(obs::counter("cluster.cache_hits").value());
    const double misses =
        static_cast<double>(obs::counter("cluster.cache_misses").value());
    rec->add_counter("cluster.cache_hit_rate",
                     hits + misses > 0 ? hits / (hits + misses) : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace starring::cluster

int main(int argc, char** argv) {
  return starring::cluster::proxy_main(argc, argv);
}
