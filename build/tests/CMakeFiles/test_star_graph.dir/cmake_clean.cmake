file(REMOVE_RECURSE
  "CMakeFiles/test_star_graph.dir/test_star_graph.cpp.o"
  "CMakeFiles/test_star_graph.dir/test_star_graph.cpp.o.d"
  "test_star_graph"
  "test_star_graph.pdb"
  "test_star_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_star_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
