#include "service/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace starring {

CanonicalRingCache::CanonicalRingCache(std::size_t capacity)
    : per_shard_(std::max<std::size_t>(1, capacity / kShards)) {}

CanonicalRingCache::RingPtr CanonicalRingCache::lookup(
    const std::string& key) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->second;
}

void CanonicalRingCache::insert(const std::string& key, RingPtr ring) {
  static obs::Counter& evictions = obs::counter("svc.cache_evictions");
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = std::move(ring);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(ring));
  s.index.emplace(key, s.lru.begin());
  if (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions.add();
  }
}

std::size_t CanonicalRingCache::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    total += s.lru.size();
  }
  return total;
}

}  // namespace starring
