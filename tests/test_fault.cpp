// Unit tests for fault sets and the deterministic generators.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "fault/generators.hpp"

namespace starring {
namespace {

TEST(FaultSet, VertexMembership) {
  FaultSet f;
  const Perm p = Perm::of({1, 0, 2, 3});
  EXPECT_FALSE(f.vertex_faulty(p));
  f.add_vertex(p);
  EXPECT_TRUE(f.vertex_faulty(p));
  EXPECT_EQ(f.num_vertex_faults(), 1u);
  f.add_vertex(p);  // idempotent
  EXPECT_EQ(f.num_vertex_faults(), 1u);
}

TEST(FaultSet, EdgeMembershipUndirected) {
  FaultSet f;
  const Perm u = Perm::identity(5);
  const Perm v = u.star_move(2);
  f.add_edge(u, v);
  EXPECT_TRUE(f.edge_faulty(u, v));
  EXPECT_TRUE(f.edge_faulty(v, u));
  EXPECT_FALSE(f.edge_faulty(u, u.star_move(3)));
  EXPECT_EQ(f.num_edge_faults(), 1u);
}

TEST(FaultSet, EmptyAndCounts) {
  FaultSet f;
  EXPECT_TRUE(f.empty());
  f.add_edge(Perm::identity(4), Perm::identity(4).star_move(1));
  EXPECT_FALSE(f.empty());
}

TEST(Generators, RandomVertexFaultsCountAndDeterminism) {
  const StarGraph g(6);
  const auto a = random_vertex_faults(g, 3, 42);
  const auto b = random_vertex_faults(g, 3, 42);
  EXPECT_EQ(a.num_vertex_faults(), 3u);
  auto va = a.vertex_faults();
  auto vb = b.vertex_faults();
  for (const auto& p : va) EXPECT_TRUE(b.vertex_faulty(p));
  EXPECT_EQ(va.size(), vb.size());
}

TEST(Generators, DifferentSeedsDiffer) {
  const StarGraph g(7);
  const auto a = random_vertex_faults(g, 4, 1);
  const auto b = random_vertex_faults(g, 4, 2);
  int shared = 0;
  for (const auto& p : a.vertex_faults())
    if (b.vertex_faulty(p)) ++shared;
  EXPECT_LT(shared, 4);  // astronomically unlikely to coincide fully
}

TEST(Generators, SamePartiteRespectParity) {
  const StarGraph g(6);
  for (int parity = 0; parity <= 1; ++parity) {
    const auto f = same_partite_vertex_faults(g, 3, parity, 7);
    EXPECT_EQ(f.num_vertex_faults(), 3u);
    for (const auto& p : f.vertex_faults()) EXPECT_EQ(p.parity(), parity);
  }
}

TEST(Generators, ClusteredNeighborsShareACentre) {
  const StarGraph g(7);
  const auto f = clustered_neighbor_faults(g, 4, 99);
  const auto faults = f.vertex_faults();
  ASSERT_EQ(faults.size(), 4u);
  // All faults are neighbours of one common vertex.
  int common = 0;
  for (const VertexId nid : g.neighbor_ids(faults[0].rank())) {
    const Perm candidate = g.vertex(nid);
    bool all = true;
    for (const auto& p : faults)
      if (!p.adjacent(candidate)) all = false;
    if (all) ++common;
  }
  EXPECT_GE(common, 1);
}

TEST(Generators, SubstarClusteredFitInSmallPattern) {
  const StarGraph g(7);
  const auto f = substar_clustered_faults(g, 4, 5);
  ASSERT_EQ(f.num_vertex_faults(), 4u);
  // 4 faults need m! >= 4, i.e. m = 3: all faults agree outside at most
  // 3 free positions — verify they pairwise agree on >= n-3 positions.
  const auto faults = f.vertex_faults();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (std::size_t j = i + 1; j < faults.size(); ++j) {
      int agree = 0;
      for (int pos = 0; pos < 7; ++pos)
        if (faults[i].get(pos) == faults[j].get(pos)) ++agree;
      EXPECT_GE(agree, 4);
    }
  }
}

TEST(Generators, RandomEdgeFaultsAreRealEdges) {
  const StarGraph g(6);
  const auto f = random_edge_faults(g, 3, 11);
  EXPECT_EQ(f.num_edge_faults(), 3u);
  for (const auto& e : f.edge_faults()) EXPECT_TRUE(e.u.adjacent(e.v));
}

TEST(Generators, ClusteredEdgeFaultsShareEndpoint) {
  const StarGraph g(6);
  const auto f = clustered_edge_faults(g, 3, 17);
  const auto edges = f.edge_faults();
  ASSERT_EQ(edges.size(), 3u);
  // One vertex appears in every faulty edge.
  bool found = false;
  for (const auto& centre : {edges[0].u, edges[0].v}) {
    bool all = true;
    for (const auto& e : edges)
      if (!(e.u == centre || e.v == centre)) all = false;
    if (all) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Generators, MixedFaultsDisjoint) {
  const StarGraph g(6);
  const auto f = mixed_faults(g, 2, 2, 23);
  EXPECT_EQ(f.num_vertex_faults(), 2u);
  EXPECT_EQ(f.num_edge_faults(), 2u);
  for (const auto& e : f.edge_faults()) {
    EXPECT_FALSE(f.vertex_faulty(e.u));
    EXPECT_FALSE(f.vertex_faulty(e.v));
  }
}

}  // namespace
}  // namespace starring
