# Empty dependencies file for starring_routing.
# This may be replaced when dependencies are built.
