#include "core/oracle_store.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define STARRING_HAVE_MMAP 1
#endif

#include "obs/metrics.hpp"

namespace starring {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'R', 'O', 'R', 'C', 'L', '1'};
constexpr std::size_t kHeaderSize = 24;      // magic + version + count + checksum
constexpr std::size_t kSectionEntrySize = 24;
constexpr std::uint32_t kSectionMemo = 1;
constexpr std::uint32_t kSectionRings = 2;
constexpr std::size_t kMemoRecordSize = 33;  // u64 key + i8 len + 24 path bytes

// Serialization is explicit little-endian byte shuffling, so the format
// is identical across hosts regardless of native endianness.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_word(const unsigned char* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
  } else {
    return get_u64(p);
  }
}

std::uint64_t fnv1a64(const unsigned char* data, std::size_t size) {
  // FNV-1a mixing constants, run as four independent lanes over 8-byte
  // little-endian words (word i of each 32-byte block feeds lane i),
  // folded together asymmetrically, then remaining words and tail
  // bytes sequentially.  The checksum covers tens of megabytes of ring
  // payload at daemon startup; a serial FNV is latency-bound on its
  // multiply chain and would cost more than the parse it protects —
  // four lanes hide that latency and leave the pass memory-bound.
  constexpr std::uint64_t kBasis = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t lane[4] = {kBasis, kBasis + 1, kBasis + 2, kBasis + 3};
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32)
    for (int l = 0; l < 4; ++l) {
      lane[l] ^= load_word(data + i + static_cast<std::size_t>(l) * 8);
      lane[l] *= kPrime;
    }
  std::uint64_t h = lane[0];
  for (int l = 1; l < 4; ++l) h = (h * kPrime) ^ lane[l];
  for (; i + 8 <= size; i += 8) {
    h ^= load_word(data + i);
    h *= kPrime;
  }
  for (; i < size; ++i) {
    h ^= data[i];
    h *= kPrime;
  }
  return h;
}

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

/// Read-only view of the snapshot file: an mmap when available, a
/// heap copy otherwise.  Loading goes through this one abstraction so
/// the validation code is identical on both paths.
class FileView {
 public:
  FileView() = default;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;

  ~FileView() {
#ifdef STARRING_HAVE_MMAP
    if (mapped_ != nullptr) ::munmap(mapped_, size_);
#endif
  }

  bool open(const std::string& path, std::string* error) {
#ifdef STARRING_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* m = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (m != MAP_FAILED) {
          mapped_ = m;
          size_ = static_cast<std::size_t>(st.st_size);
          return true;
        }
      } else {
        ::close(fd);
      }
      // fstat/mmap failure (or empty file): fall through to the
      // buffered read, which produces the same rejection diagnostics.
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      set_error(error, "cannot open snapshot: " + path);
      return false;
    }
    buffer_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    if (in.bad()) {
      set_error(error, "read error on snapshot: " + path);
      return false;
    }
    return true;
  }

  const unsigned char* data() const {
    if (mapped_ != nullptr) return static_cast<const unsigned char*>(mapped_);
    return reinterpret_cast<const unsigned char*>(buffer_.data());
  }
  std::size_t size() const {
    return mapped_ != nullptr ? size_ : buffer_.size();
  }

 private:
  void* mapped_ = nullptr;
  std::size_t size_ = 0;
  std::string buffer_;
};

std::optional<OracleSnapshot> reject(std::string* error, std::string msg) {
  obs::counter("oracle.snapshot_rejected").add();
  set_error(error, std::move(msg));
  return std::nullopt;
}

/// Bounds-checked cursor over one section payload.  Every read checks
/// remaining bytes first, so a lying section table can only produce a
/// clean rejection, never an out-of-bounds access.
struct Cursor {
  const unsigned char* p;
  std::size_t left;

  bool take(std::size_t n, const unsigned char** out) {
    if (left < n) return false;
    *out = p;
    p += n;
    left -= n;
    return true;
  }
};

bool parse_memo_section(Cursor cur, std::uint64_t count,
                        std::vector<BlockOracle::MemoEntry>* memo) {
  if (cur.left / kMemoRecordSize < count) return false;
  memo->reserve(memo->size() + static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* rec = nullptr;
    if (!cur.take(kMemoRecordSize, &rec)) return false;
    BlockOracle::MemoEntry e;
    e.key = get_u64(rec);
    e.val.len = static_cast<std::int8_t>(rec[8]);
    if (e.val.len < -1 || e.val.len > BlockOracle::kBlockSize) return false;
    for (int j = 0; j < BlockOracle::kBlockSize; ++j)
      e.val.v[static_cast<std::size_t>(j)] =
          static_cast<std::int8_t>(rec[9 + j]);
    memo->push_back(e);
  }
  return true;
}

bool parse_rings_section(Cursor cur, std::uint64_t count,
                         std::vector<OracleSnapshot::CanonicalRing>* rings) {
  rings->reserve(rings->size() + static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* hdr = nullptr;
    if (!cur.take(16, &hdr)) return false;
    const std::uint32_t n = get_u32(hdr);
    const std::uint32_t key_len = get_u32(hdr + 4);
    const std::uint64_t ring_len = get_u64(hdr + 8);
    // Sanity caps: n beyond kMaxN or a ring longer than 16! cannot be a
    // legitimate record and would otherwise drive a giant allocation.
    if (n < 3 || n > 16) return false;
    if (key_len > 4096) return false;
    if (ring_len > (1ULL << 45)) return false;
    const unsigned char* key_bytes = nullptr;
    const unsigned char* ring_bytes = nullptr;
    if (!cur.take(key_len, &key_bytes)) return false;
    if (cur.left / 8 < ring_len) return false;
    if (!cur.take(static_cast<std::size_t>(ring_len) * 8, &ring_bytes))
      return false;
    OracleSnapshot::CanonicalRing r;
    r.n = static_cast<int>(n);
    r.key.assign(reinterpret_cast<const char*>(key_bytes), key_len);
    r.ring.resize(static_cast<std::size_t>(ring_len));
    if constexpr (std::endian::native == std::endian::little) {
      // Rings dominate the snapshot (megabytes per n=9 instance); on LE
      // hosts the wire format IS the in-memory layout, so one memcpy
      // replaces millions of byte-shuffling iterations.  The cold-start
      // win CI asserts leans on this.
      std::memcpy(r.ring.data(), ring_bytes,
                  static_cast<std::size_t>(ring_len) * 8);
    } else {
      for (std::uint64_t j = 0; j < ring_len; ++j)
        r.ring[static_cast<std::size_t>(j)] = get_u64(ring_bytes + j * 8);
    }
    rings->push_back(std::move(r));
  }
  return true;
}

}  // namespace

bool write_oracle_snapshot(const std::string& path, const OracleSnapshot& snap,
                           std::string* error) {
  // Build payload sections first so the section table can carry final
  // absolute offsets.
  std::string memo_payload;
  memo_payload.reserve(snap.memo.size() * kMemoRecordSize);
  for (const BlockOracle::MemoEntry& e : snap.memo) {
    put_u64(memo_payload, e.key);
    memo_payload.push_back(static_cast<char>(e.val.len));
    for (int j = 0; j < BlockOracle::kBlockSize; ++j)
      memo_payload.push_back(
          static_cast<char>(e.val.v[static_cast<std::size_t>(j)]));
  }

  std::string rings_payload;
  for (const OracleSnapshot::CanonicalRing& r : snap.rings) {
    put_u32(rings_payload, static_cast<std::uint32_t>(r.n));
    put_u32(rings_payload, static_cast<std::uint32_t>(r.key.size()));
    put_u64(rings_payload, static_cast<std::uint64_t>(r.ring.size()));
    rings_payload.append(r.key);
    if constexpr (std::endian::native == std::endian::little) {
      rings_payload.append(reinterpret_cast<const char*>(r.ring.data()),
                           r.ring.size() * 8);
    } else {
      for (const VertexId v : r.ring) put_u64(rings_payload, v);
    }
  }

  const std::uint32_t section_count = 2;
  const std::size_t table_size = section_count * kSectionEntrySize;
  const std::uint64_t memo_off = kHeaderSize + table_size;
  const std::uint64_t rings_off = memo_off + memo_payload.size();

  // Everything the checksum covers: section table + payloads.
  std::string body;
  body.reserve(table_size + memo_payload.size() + rings_payload.size());
  put_u32(body, kSectionMemo);
  put_u32(body, 0);  // reserved
  put_u64(body, memo_off);
  put_u64(body, static_cast<std::uint64_t>(snap.memo.size()));
  put_u32(body, kSectionRings);
  put_u32(body, 0);  // reserved
  put_u64(body, rings_off);
  put_u64(body, static_cast<std::uint64_t>(snap.rings.size()));
  body += memo_payload;
  body += rings_payload;

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u32(header, kSnapshotVersion);
  put_u32(header, section_count);
  put_u64(header,
          fnv1a64(reinterpret_cast<const unsigned char*>(body.data()),
                  body.size()));

  // Temp sibling + rename: readers either see the old snapshot or the
  // complete new one, never a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, "cannot open for write: " + tmp);
      return false;
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      set_error(error, "write failed: " + tmp);
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename failed: " + std::string(std::strerror(errno)));
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<OracleSnapshot> load_oracle_snapshot(const std::string& path,
                                                   std::string* error) {
  FileView file;
  std::string open_err;
  if (!file.open(path, &open_err)) return reject(error, std::move(open_err));

  const unsigned char* data = file.data();
  const std::size_t size = file.size();
  if (size < kHeaderSize) return reject(error, "snapshot truncated: header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
    return reject(error, "snapshot magic mismatch");
  const std::uint32_t version = get_u32(data + 8);
  if (version != kSnapshotVersion)
    return reject(error,
                  "snapshot version mismatch: " + std::to_string(version));
  const std::uint32_t section_count = get_u32(data + 12);
  const std::uint64_t stored_sum = get_u64(data + 16);
  const std::uint64_t computed_sum =
      fnv1a64(data + kHeaderSize, size - kHeaderSize);
  if (stored_sum != computed_sum)
    return reject(error, "snapshot checksum mismatch");
  if (section_count > 1024)
    return reject(error, "snapshot section count implausible");
  const std::size_t table_size =
      static_cast<std::size_t>(section_count) * kSectionEntrySize;
  if (size - kHeaderSize < table_size)
    return reject(error, "snapshot truncated: section table");

  OracleSnapshot snap;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const unsigned char* entry = data + kHeaderSize + s * kSectionEntrySize;
    const std::uint32_t type = get_u32(entry);
    const std::uint64_t offset = get_u64(entry + 8);
    const std::uint64_t count = get_u64(entry + 16);
    if (offset > size)
      return reject(error, "snapshot section offset out of bounds");
    const Cursor cur{data + offset, size - static_cast<std::size_t>(offset)};
    switch (type) {
      case kSectionMemo:
        if (!parse_memo_section(cur, count, &snap.memo))
          return reject(error, "snapshot memo section malformed");
        break;
      case kSectionRings:
        if (!parse_rings_section(cur, count, &snap.rings))
          return reject(error, "snapshot rings section malformed");
        break;
      default:
        break;  // unknown section from a newer writer: skip
    }
  }
  return snap;
}

}  // namespace starring
