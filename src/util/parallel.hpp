// Data-parallel helpers over the persistent worker pool.
//
// The construction pipeline has three embarrassingly parallel phases —
// per-block exit enumeration, final vertex emission, and verification —
// whose cost scales with n! while the sequential chaining search
// between them is cheap.  parallel_for schedules those phases in
// dynamic chunks over the process-wide ThreadPool (util/thread_pool.hpp)
// so one expensive fault-containing block cannot straggle a whole lane;
// with threads == 1 it degenerates to a plain loop (no pool touch),
// which is also the deterministic default everywhere correctness tests
// care about ordering.
// Exception safety: a throw from fn escapes to the caller.  With
// threads > 1 the first exception any participant raises is captured
// via std::exception_ptr and rethrown after the region drains (the
// other participants stop at their next iteration boundary instead of
// calling std::terminate); with threads <= 1 it propagates directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace starring {

namespace parallel_detail {

/// First-exception capture shared by the participants of one region.
struct ErrorSlot {
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr error;

  void capture() noexcept {
    failed.store(true, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::current_exception();
  }
  bool tripped() const {
    return failed.load(std::memory_order_relaxed);
  }
  void rethrow_if_set() {
    if (error) std::rethrow_exception(error);
  }
};

/// Per-lane reduction accumulator, padded out to a cache line so
/// adjacent lanes never false-share the accumulator array.
template <typename T>
struct alignas(64) PaddedAccumulator {
  T value;
};

}  // namespace parallel_detail

/// Invoke fn(i) for i in [begin, end) across `threads` participants of
/// the persistent pool, in dynamically scheduled chunks.  fn must be
/// safe to call concurrently for distinct i.  threads <= 1 runs inline,
/// as does a region opened from inside a pool worker (no nested pools).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, unsigned threads,
                  Fn&& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (threads <= 1 || count == 1 || ThreadPool::in_worker()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  parallel_detail::ErrorSlot err;
  struct Ctx {
    Fn* fn;
    parallel_detail::ErrorSlot* err;
  } ctx{&fn, &err};
  ThreadPool::instance().run(
      begin, end, lanes,
      [](void* c, std::size_t lo, std::size_t hi, unsigned) {
        auto* x = static_cast<Ctx*>(c);
        try {
          for (std::size_t i = lo; i < hi; ++i) {
            if (x->err->tripped()) return;
            (*x->fn)(i);
          }
        } catch (...) {
          x->err->capture();
        }
      },
      &ctx, &err.failed);
  err.rethrow_if_set();
}

/// Parallel reduction: combine per-index values with a commutative,
/// associative `combine` starting from `init`, which must be an
/// identity (or at least idempotent) element for `combine` — every lane
/// seeds its private accumulator with it.  Each lane reduces the chunks
/// it grabs into a cache-line-padded private accumulator; partials
/// merge serially at the end (so the result is deterministic for
/// commutative+associative combines regardless of chunk schedule).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, unsigned threads,
                  T init, Map&& map, Combine&& combine) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return init;
  if (threads <= 1 || count == 1 || ThreadPool::in_worker()) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  parallel_detail::ErrorSlot err;
  std::vector<parallel_detail::PaddedAccumulator<T>> partial(
      lanes, parallel_detail::PaddedAccumulator<T>{init});
  struct Ctx {
    Map* map;
    Combine* combine;
    parallel_detail::ErrorSlot* err;
    parallel_detail::PaddedAccumulator<T>* partial;
  } ctx{&map, &combine, &err, partial.data()};
  ThreadPool::instance().run(
      begin, end, lanes,
      [](void* c, std::size_t lo, std::size_t hi, unsigned lane) {
        auto* x = static_cast<Ctx*>(c);
        try {
          T acc = x->partial[lane].value;
          for (std::size_t i = lo; i < hi; ++i) {
            if (x->err->tripped()) return;
            acc = (*x->combine)(acc, (*x->map)(i));
          }
          x->partial[lane].value = acc;
        } catch (...) {
          x->err->capture();
        }
      },
      &ctx, &err.failed);
  err.rethrow_if_set();
  T acc = init;
  for (const auto& p : partial) acc = combine(acc, p.value);
  return acc;
}

}  // namespace starring
