// Experiment E5 — Tseng et al.'s edge-fault theorem: S_n with
// |Fe| <= n-3 edge faults embeds a ring of the FULL length n!
// (worst-case optimal, since n-2 faulty links at one vertex could
// leave it degree 1).
#include <cstdio>
#include <cstdlib>

#include "baselines/tseng.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("edge_faults");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("E5: edge-fault ring embedding — full n! despite |Fe| <= n-3\n");
  std::printf("%3s %4s %-10s %10s %10s %6s\n", "n", "|Fe|", "shape", "n!",
              "achieved", "ok");

  bool all_ok = true;
  for (int n = 4; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int ne = 1; ne <= n - 3; ++ne) {
      struct Shape {
        const char* name;
        bool clustered;
      } shapes[] = {{"random", false}, {"one-vertex", true}};
      for (const auto& shape : shapes) {
        if (shape.clustered && ne > n - 1) continue;
        int ok = 0;
        std::uint64_t achieved = 0;
        for (int t = 0; t < trials; ++t) {
          const auto seed = static_cast<std::uint64_t>(t);
          const FaultSet f = shape.clustered
                                 ? clustered_edge_faults(g, ne, seed)
                                 : random_edge_faults(g, ne, seed);
          const auto res = tseng_edge_fault_ring(g, f);
          if (!res) continue;
          const auto rep = verify_healthy_ring(g, f, res->ring);
          if (rep.valid && rep.length == factorial(n)) {
            ++ok;
            achieved = rep.length;
          }
        }
        std::printf("%3d %4d %-10s %10llu %10llu %3d/%-2d\n", n, ne,
                    shape.name,
                    static_cast<unsigned long long>(factorial(n)),
                    static_cast<unsigned long long>(achieved), ok, trials);
        all_ok &= ok == trials;
      }
    }
  }
  std::printf("\n%s\n", all_ok ? "RESULT: full-length ring on every "
                                 "edge-fault instance (Tseng'97 reproduced)"
                               : "RESULT: some edge-fault instances FAILED");
  return all_ok ? 0 : 1;
}
