// Chaos tests for the reliability layer: the failpoint grammar and
// firing semantics, and the embedding service run under a storm of
// injected faults.  The invariants under chaos are absolute — every
// request reaches a terminal status, nothing deadlocks (ctest enforces
// a wall-clock timeout), and the shared cache stays verify-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "util/failpoint.hpp"

namespace starring {
namespace {

// Every test disarms the process-global registry on both ends so a
// failure in one test cannot leak injected faults into the next.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::compiled_in())
      GTEST_SKIP() << "failpoints compiled out";
    failpoint::clear();
  }
  void TearDown() override {
    if (failpoint::compiled_in()) failpoint::clear();
  }
};

using FailpointSpec = FailpointTest;
using Chaos = FailpointTest;

TEST_F(FailpointSpec, RejectsMalformedEntries) {
  const std::pair<const char*, const char*> cases[] = {
      {"noequals", "missing site="},
      {"=error", "missing site="},
      {"site=", "missing mode"},
      {"site=explode", "unknown mode"},
      {"site=delay:soon", "bad delay"},
      {"site=error@p:2.0", "bad probability"},
      {"site=error@p:x", "bad probability"},
      {"site=error@sometimes", "unknown modifier"},
      {"site=error@every:0", "unknown modifier"},
      {"site=off@once", "'off' takes no modifiers"},
  };
  for (const auto& [spec, why] : cases) {
    std::string err;
    EXPECT_FALSE(failpoint::set(spec, &err)) << spec;
    EXPECT_NE(err.find(why), std::string::npos)
        << spec << " -> " << err;
    EXPECT_NE(err.find(spec), std::string::npos)
        << "error must echo the offending entry: " << err;
  }
}

TEST_F(FailpointSpec, EntriesBeforeAMalformedOneStayApplied) {
  std::string err;
  EXPECT_FALSE(failpoint::set("t.good=error,t.bad=bogus", &err));
  const auto armed = failpoint::list();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].first, "t.good");
  EXPECT_EQ(armed[0].second, "error");
}

TEST_F(FailpointSpec, OffDisarmsOneSite) {
  ASSERT_TRUE(failpoint::set("t.a=error,t.b=error"));
  EXPECT_EQ(failpoint::list().size(), 2u);
  ASSERT_TRUE(failpoint::set("t.a=off"));
  const auto armed = failpoint::list();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].first, "t.b");
  EXPECT_FALSE(FAILPOINT("t.a"));
  EXPECT_TRUE(FAILPOINT("t.b"));
}

TEST_F(FailpointSpec, ClearDisarmsEverything) {
  ASSERT_TRUE(failpoint::set("t.a=error,t.b=throw"));
  failpoint::clear();
  EXPECT_TRUE(failpoint::list().empty());
  EXPECT_FALSE(FAILPOINT("t.a"));
  EXPECT_FALSE(FAILPOINT("t.b"));
  // The "clear" keyword in a config string does the same.
  ASSERT_TRUE(failpoint::set("t.a=error"));
  ASSERT_TRUE(failpoint::set("clear"));
  EXPECT_TRUE(failpoint::list().empty());
}

TEST_F(FailpointSpec, UnarmedSiteNeverFires) {
  ASSERT_TRUE(failpoint::set("t.other=error"));
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(FAILPOINT("t.unarmed"));
}

TEST_F(FailpointSpec, EveryNFiresOnSchedule) {
  ASSERT_TRUE(failpoint::set("t.every=error@every:3"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(FAILPOINT("t.every"));
  const std::vector<bool> want = {false, false, true, false, false,
                                  true, false, false, true};
  EXPECT_EQ(fired, want);
}

TEST_F(FailpointSpec, OnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::set("t.once=error@once"));
  EXPECT_TRUE(FAILPOINT("t.once"));
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(FAILPOINT("t.once"));
  // Re-arming resets the spent latch.
  ASSERT_TRUE(failpoint::set("t.once=error@once"));
  EXPECT_TRUE(FAILPOINT("t.once"));
}

TEST_F(FailpointSpec, ThrowModeThrowsFailpointError) {
  ASSERT_TRUE(failpoint::set("t.throw=throw"));
  EXPECT_THROW((void)FAILPOINT("t.throw"), failpoint::FailpointError);
  try {
    (void)FAILPOINT("t.throw");
    FAIL() << "must throw";
  } catch (const failpoint::FailpointError& e) {
    EXPECT_NE(std::string(e.what()).find("t.throw"), std::string::npos);
  }
}

TEST_F(FailpointSpec, DelayModeSleepsAndDoesNotFail) {
  ASSERT_TRUE(failpoint::set("t.delay=delay:40"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(FAILPOINT("t.delay"))
      << "a delay perturbs timing but is not a failure branch";
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 35);
}

TEST_F(FailpointSpec, ProbabilisticFiringIsDeterministic) {
  // The per-site RNG is seeded from hash(site) ^ STARRING_FAILPOINT_SEED,
  // so re-arming the same spec replays the exact firing sequence: a
  // probabilistic chaos run reproduces bit-for-bit.
  ASSERT_TRUE(failpoint::set("t.prob=error@p:0.5"));
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(FAILPOINT("t.prob"));
  ASSERT_TRUE(failpoint::set("t.prob=error@p:0.5"));
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(FAILPOINT("t.prob"));
  EXPECT_EQ(first, second);
  // p:0.5 over 64 draws: both outcomes must appear (deterministically).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointSpec, FiredCountersReconcile) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const obs::Snapshot before = obs::snapshot();
  ASSERT_TRUE(failpoint::set("t.ca=error,t.cb=error@every:2"));
  for (int i = 0; i < 6; ++i) (void)FAILPOINT("t.ca");
  for (int i = 0; i < 6; ++i) (void)FAILPOINT("t.cb");
  std::int64_t total = 0;
  std::int64_t per_site = 0;
  for (const auto& [name, delta] : obs::snapshot_delta(before)) {
    if (name == "svc.failpoints_fired") total = delta;
    if (name.rfind("fail.t.c", 0) == 0) per_site += delta;
  }
  EXPECT_EQ(total, 6 + 3);
  EXPECT_EQ(per_site, total)
      << "svc.failpoints_fired must equal the sum of fail.<site> counters";
  obs::set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// The service under a chaos storm.

ServiceRequest chaos_request(std::uint64_t id, int n, FaultSet faults) {
  ServiceRequest r;
  r.id = id;
  r.n = n;
  r.faults = std::move(faults);
  return r;
}

TEST_F(Chaos, ServiceSurvivesAChaosStorm) {
  // Probabilistic faults at every service-layer site at once: forced
  // cache misses, lost inserts, embed failures, scheduler-batch throws,
  // respond-path evaluation.  Invariants: every request reaches a
  // terminal status, ok responses carry verifiable rings, and after the
  // storm the cache serves only verify-clean entries.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const obs::Snapshot before = obs::snapshot();
  ASSERT_TRUE(failpoint::set(
      "svc.cache_lookup=error@p:0.3,svc.cache_insert=error@p:0.3,"
      "svc.embed=error@p:0.15,svc.batch=throw@every:5,"
      "svc.respond=error@p:0.25"));

  ServiceOptions opts;
  opts.batch_max = 4;
  opts.verify_on_hit = true;
  struct Spec {
    int n;
    FaultSet faults;
  };
  std::vector<Spec> specs;
  const int kRequests = 60;
  std::map<std::uint64_t, ServiceResponse> got;
  {
    EmbedService svc(opts);
    for (int i = 0; i < kRequests; ++i) {
      const int n = 4 + (i % 3);
      const StarGraph g(n);
      Spec s{n, random_vertex_faults(g, i % (n - 2), /*seed=*/1000 + i)};
      ServiceRequest r = chaos_request(i, n, s.faults);
      r.verify = i % 4 == 0;
      if (i % 5 == 0) r.deadline_ms = 500;
      specs.push_back(std::move(s));
      ASSERT_TRUE(svc.submit(std::move(r)));
    }
    svc.drain();
    while (auto r = svc.next_response()) got.emplace(r->id, std::move(*r));

    ASSERT_EQ(got.size(), static_cast<std::size_t>(kRequests))
        << "every request must reach a terminal status";
    int ok = 0;
    int errors = 0;
    for (const auto& [id, resp] : got) {
      switch (resp.status) {
        case ServiceStatus::kOk: {
          ++ok;
          const Spec& s = specs.at(static_cast<std::size_t>(id));
          const StarGraph g(s.n);
          ASSERT_FALSE(resp.ring.empty());
          EXPECT_TRUE(verify_healthy_ring(g, s.faults, resp.ring).valid)
              << "id=" << id;
          break;
        }
        case ServiceStatus::kError:
          ++errors;
          EXPECT_FALSE(resp.reason.empty());
          break;
        case ServiceStatus::kTimeout:
          EXPECT_TRUE(resp.ring.empty());
          break;
        case ServiceStatus::kRejected:
          ADD_FAILURE() << "nothing should be rejected: id=" << id;
          break;
        case ServiceStatus::kThrottled:
          ADD_FAILURE() << "quotas are off: nothing should be throttled: id="
                        << id;
          break;
      }
    }
    EXPECT_GT(ok, 0) << "chaos at these rates must not starve the service";
    EXPECT_GT(errors, 0) << "the storm must actually inject failures";

    // Counter reconciliation: the aggregate equals the per-site sum.
    std::int64_t total = 0;
    std::int64_t per_site = 0;
    std::int64_t distinct_sites = 0;
    for (const auto& [name, delta] : obs::snapshot_delta(before)) {
      if (name == "svc.failpoints_fired") total = delta;
      if (name.rfind("fail.", 0) == 0) {
        per_site += delta;
        ++distinct_sites;
      }
    }
    EXPECT_EQ(per_site, total);
    EXPECT_GE(distinct_sites, 3)
        << "a storm over five armed sites should fire at least three";

    // Post-chaos verify sweep through the surviving cache: disarm and
    // re-ask for every instance with verification on.  A corrupt cache
    // entry (e.g. from a torn insert) would surface here.
    failpoint::clear();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ServiceRequest r =
          chaos_request(10000 + i, specs[i].n, specs[i].faults);
      r.verify = true;
      const ServiceResponse resp = svc.process_now(r);
      ASSERT_EQ(resp.status, ServiceStatus::kOk)
          << "sweep id=" << r.id << ": " << resp.reason;
      EXPECT_TRUE(resp.verified);
    }
  }
  obs::set_enabled(was_enabled);
}

TEST_F(Chaos, DrainUnderChaosDeliversEverything) {
  // drain() racing a throw-heavy scheduler: the contract that every
  // admitted request is answered holds even when whole batches fail.
  ASSERT_TRUE(failpoint::set("svc.batch=throw@every:2"));
  ServiceOptions opts;
  opts.batch_max = 2;
  EmbedService svc(opts);
  const StarGraph g(5);
  const int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(svc.submit(
        chaos_request(i, 5, random_vertex_faults(g, 1, /*seed=*/i))));
  }
  svc.drain();
  int terminal = 0;
  while (auto r = svc.next_response()) {
    EXPECT_TRUE(r->status == ServiceStatus::kOk ||
                r->status == ServiceStatus::kError)
        << "id=" << r->id;
    ++terminal;
  }
  EXPECT_EQ(terminal, kRequests);
}

}  // namespace
}  // namespace starring
