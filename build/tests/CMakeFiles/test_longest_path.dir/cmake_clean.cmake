file(REMOVE_RECURSE
  "CMakeFiles/test_longest_path.dir/test_longest_path.cpp.o"
  "CMakeFiles/test_longest_path.dir/test_longest_path.cpp.o.d"
  "test_longest_path"
  "test_longest_path.pdb"
  "test_longest_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_longest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
