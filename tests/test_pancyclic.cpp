// Tests for even pancyclicity: rings of every even length 6..n!.
#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "extensions/pancyclic.hpp"

namespace starring {
namespace {

void expect_ring_of(const StarGraph& g, std::uint64_t length) {
  const auto ring = embed_even_ring(g, length);
  ASSERT_TRUE(ring.has_value()) << "length " << length;
  ASSERT_EQ(ring->size(), length);
  const auto rep = verify_healthy_ring(g, FaultSet{}, *ring);
  ASSERT_TRUE(rep.valid) << "length " << length << ": " << rep.error;
}

TEST(Pancyclic, RejectsImpossibleLengths) {
  const StarGraph g(5);
  EXPECT_FALSE(embed_even_ring(g, 7).has_value());   // odd
  EXPECT_FALSE(embed_even_ring(g, 4).has_value());   // below girth
  EXPECT_FALSE(embed_even_ring(g, 122).has_value()); // above n!
  EXPECT_FALSE(embed_even_ring(g, 0).has_value());
}

TEST(Pancyclic, S3OnlySixCycle) {
  const StarGraph g(3);
  expect_ring_of(g, 6);
  EXPECT_FALSE(embed_even_ring(g, 8).has_value());
}

TEST(Pancyclic, S4AllEvenLengths) {
  const StarGraph g(4);
  for (std::uint64_t len = 6; len <= 24; len += 2) expect_ring_of(g, len);
}

TEST(Pancyclic, S5AllEvenLengths) {
  // The full spectrum: every even length 6..120.
  const StarGraph g(5);
  for (std::uint64_t len = 6; len <= 120; len += 2) expect_ring_of(g, len);
}

TEST(Pancyclic, S6AllEvenLengths) {
  // The complete spectrum: every even length 6..720 (~200 ms total).
  const StarGraph g(6);
  for (std::uint64_t len = 6; len <= 720; len += 2) expect_ring_of(g, len);
}

TEST(Pancyclic, S7SpotChecks) {
  const StarGraph g(7);
  for (const std::uint64_t len : {720u, 1000u, 2222u, 5040u})
    expect_ring_of(g, len);
}

TEST(Pancyclic, RingsAreConfinedToSmallestSubstar) {
  // A ring of length <= 120 embedded in S_7 must not wander: all its
  // vertices agree on positions 5 and 6 (it lives in one S_5).
  const StarGraph g(7);
  const auto ring = embed_even_ring(g, 100);
  ASSERT_TRUE(ring.has_value());
  const Perm base = g.vertex(ring->front());
  for (const VertexId id : *ring) {
    const Perm p = g.vertex(id);
    EXPECT_EQ(p.get(5), base.get(5));
    EXPECT_EQ(p.get(6), base.get(6));
  }
}

}  // namespace
}  // namespace starring
