# Empty compiler generated dependencies file for bench_beyond_regime.
# This may be replaced when dependencies are built.
