// Experiment E13 — self-healing under progressive failures.
//
// Processors fail one at a time up to the regime boundary n-3; after
// each failure the runtime re-embeds.  The table traces ring length,
// stranded healthy processors, re-embedding cost, and collective time
// for this paper's construction vs the Tseng baseline.  The shape to
// look for: ours strands exactly 1 healthy processor per fault (the
// bipartite minimum), the baseline 3 per fault; re-embed cost stays
// flat (the construction is output-linear, independent of fault count).
#include <cstdio>
#include <cstdlib>

#include "baselines/tseng.hpp"
#include "fault/generators.hpp"
#include "sim/self_healing.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("self_healing");
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(n);
  const StarGraph g(n);

  // One shared failure sequence (uniform random, seeded).
  const FaultSet pool = random_vertex_faults(g, n - 3, 7777);
  const std::vector<Perm> sequence = pool.vertex_faults();

  const SimParams params;
  const auto ours = run_self_healing(
      g, sequence, params,
      [](const StarGraph& sg, const FaultSet& f) {
        return embed_longest_ring(sg, f, bench_embed_options());
      });
  const auto base = run_self_healing(
      g, sequence, params,
      [](const StarGraph& sg, const FaultSet& f) {
        return tseng_vertex_fault_ring(sg, f);
      });

  std::printf("E13: self-healing on S_%d (%llu processors), failures one "
              "at a time\n",
              n, static_cast<unsigned long long>(g.num_vertices()));
  std::printf("%7s %12s %12s %10s %10s %12s %12s\n", "faults", "ours_len",
              "tseng_len", "ours_strd", "tseng_strd", "ours_ms",
              "tseng_ms");
  const std::size_t steps =
      std::min(ours.events.size(), base.events.size());
  bool ok = ours.completed && base.completed;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto& a = ours.events[i];
    const auto& b = base.events[i];
    std::printf("%7d %12llu %12llu %10llu %10llu %12.1f %12.1f\n",
                a.faults_so_far,
                static_cast<unsigned long long>(a.ring_length),
                static_cast<unsigned long long>(b.ring_length),
                static_cast<unsigned long long>(a.stranded),
                static_cast<unsigned long long>(b.stranded), a.reembed_ms,
                b.reembed_ms);
    ok &= a.ring_length ==
          expected_ring_length(n, static_cast<std::size_t>(a.faults_so_far));
    ok &= a.stranded == static_cast<std::uint64_t>(a.faults_so_far);
  }
  std::printf("\n%s\n",
              ok ? "RESULT: every re-embedding optimal (1 stranded healthy "
                   "processor per fault, the bipartite minimum)"
                 : "RESULT: some re-embedding FAILED or was sub-optimal");
  return ok ? 0 : 1;
}
