#include "cluster/membership.hpp"

#include <unistd.h>

#include <algorithm>
#include <istream>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"
#include "util/net.hpp"

namespace starring::cluster {

namespace {

/// Most piggybacked updates per outbound message.  Dissemination is
/// eventual; a small bound keeps gossip frames tiny even mid-churn.
constexpr std::size_t kMaxPiggyback = 16;

bool is_live(MemberWireState s) {
  return s == MemberWireState::kAlive || s == MemberWireState::kSuspect;
}

/// SWIM state precedence at equal incarnation.  A claim only loses to
/// a *stronger* claim: alive < suspect < left < dead.  dead outranks
/// left so a crash observed during a graceful departure stays a crash.
int state_rank(MemberWireState s) {
  switch (s) {
    case MemberWireState::kAlive:
      return 0;
    case MemberWireState::kSuspect:
      return 1;
    case MemberWireState::kLeft:
      return 2;
    case MemberWireState::kDead:
      return 3;
  }
  return 0;
}

}  // namespace

const char* membership_event_name(MembershipEvent::Kind k) {
  switch (k) {
    case MembershipEvent::Kind::kJoin:
      return "join";
    case MembershipEvent::Kind::kAlive:
      return "alive";
    case MembershipEvent::Kind::kSuspect:
      return "suspect";
    case MembershipEvent::Kind::kDead:
      return "dead";
    case MembershipEvent::Kind::kLeft:
      return "left";
    case MembershipEvent::Kind::kRefute:
      return "refute";
  }
  return "join";
}

// --- MembershipTable --------------------------------------------------

MembershipTable::MembershipTable(MemberRecord self, MembershipOptions opts)
    : self_(std::move(self)), opts_(opts) {
  self_.state = MemberWireState::kAlive;
  if (self_.incarnation == 0) self_.incarnation = 1;
  full_rebuild(1);
}

bool MembershipTable::overrides(const MemberRecord& cur,
                                const MemberRecord& upd) {
  if (upd.incarnation != cur.incarnation)
    return upd.incarnation > cur.incarnation;
  return state_rank(upd.state) > state_rank(cur.state);
}

void MembershipTable::set_map_params(int replication, int vnodes) {
  opts_.replication = std::max(1, replication);
  opts_.vnodes = std::max(1, vnodes);
}

void MembershipTable::bootstrap(std::vector<MemberRecord> members,
                                std::uint64_t epoch, Clock::time_point) {
  members_.clear();
  for (MemberRecord& m : members) {
    if (m.addr == self_.addr) {
      // The bootstrap source may know our shard id (static map file);
      // our incarnation stays our own.
      if (m.shard_id >= 0) self_.shard_id = m.shard_id;
      continue;
    }
    m.state = MemberWireState::kAlive;
    if (m.incarnation == 0) m.incarnation = 1;
    Entry e;
    e.rec = std::move(m);
    members_.push_back(std::move(e));
  }
  std::sort(members_.begin(), members_.end(),
            [](const Entry& a, const Entry& b) {
              return a.rec.addr < b.rec.addr;
            });
  full_rebuild(epoch);
}

void MembershipTable::absorb(const MembershipRecord& snap,
                             Clock::time_point now) {
  set_map_params(snap.replication, snap.vnodes);
  // Bulk merge: per-member epoch bumps would leave the joiner's epoch
  // out of step with the cluster's, so rebuilds are suppressed and the
  // map is built once at the snapshot's epoch.
  in_bulk_ = true;
  for (const MemberRecord& m : snap.members) apply(m, now);
  in_bulk_ = false;
  full_rebuild(std::max(snap.epoch, map_->epoch()));
}

void MembershipTable::apply_about_self(const MemberRecord& update) {
  if (self_left()) return;  // departing: no claim is worth refuting
  if (update.incarnation < self_.incarnation) return;
  if (update.state == MemberWireState::kAlive) {
    // An echo of ourselves, possibly fresher than our own counter
    // (e.g. after a fast restart); fast-forward so our next claim wins.
    self_.incarnation = std::max(self_.incarnation, update.incarnation);
    return;
  }
  // Someone believes we are suspect/dead/left.  We are demonstrably
  // processing messages, so refute: outbid the claim and re-announce.
  self_.incarnation = update.incarnation + 1;
  queue_update(self_);
  note(MembershipEvent::Kind::kRefute, self_, false);
}

void MembershipTable::apply(const MemberRecord& update,
                            Clock::time_point now) {
  if (update.addr == self_.addr) {
    apply_about_self(update);
    return;
  }
  auto it = std::lower_bound(members_.begin(), members_.end(), update.addr,
                             [](const Entry& e, const std::string& addr) {
                               return e.rec.addr < addr;
                             });
  if (it == members_.end() || it->rec.addr != update.addr) {
    // First sighting.  Dead/left tombstones are stored too — they
    // outrank any stale alive claim that arrives later.
    Entry e;
    e.rec = update;
    if (update.state == MemberWireState::kSuspect) e.suspect_since = now;
    it = members_.insert(it, std::move(e));
    queue_update(update);
    const bool live = is_live(update.state);
    const bool map_rel = update.shard_id >= 0 && live;
    if (map_rel && !in_bulk_) rebuild_map_with(it->rec);
    if (live) {
      note(MembershipEvent::Kind::kJoin, it->rec, map_rel && !in_bulk_);
    } else {
      note(update.state == MemberWireState::kDead
               ? MembershipEvent::Kind::kDead
               : MembershipEvent::Kind::kLeft,
           it->rec, false);
    }
    return;
  }
  Entry& e = *it;
  if (!overrides(e.rec, update)) return;
  const MemberWireState old_state = e.rec.state;
  const bool was_live = is_live(old_state);
  const bool now_live = is_live(update.state);
  e.rec.incarnation = update.incarnation;
  e.rec.state = update.state;
  if (update.shard_id >= 0) e.rec.shard_id = update.shard_id;
  if (update.state == MemberWireState::kSuspect &&
      old_state != MemberWireState::kSuspect)
    e.suspect_since = now;
  queue_update(e.rec);
  bool map_changed = false;
  if (e.rec.shard_id >= 0 && !in_bulk_) {
    if (now_live && !was_live) {
      rebuild_map_with(e.rec);
      map_changed = true;
    } else if (!now_live && was_live) {
      rebuild_map_without(e.rec);
      map_changed = true;
    }
  }
  if (update.state != old_state) {
    MembershipEvent::Kind kind = MembershipEvent::Kind::kAlive;
    switch (update.state) {
      case MemberWireState::kAlive:
        kind = MembershipEvent::Kind::kAlive;
        break;
      case MemberWireState::kSuspect:
        kind = MembershipEvent::Kind::kSuspect;
        break;
      case MemberWireState::kDead:
        kind = MembershipEvent::Kind::kDead;
        break;
      case MemberWireState::kLeft:
        kind = MembershipEvent::Kind::kLeft;
        break;
    }
    note(kind, e.rec, map_changed);
  }
}

void MembershipTable::probe_failed(const std::string& addr,
                                   Clock::time_point now) {
  for (Entry& e : members_) {
    if (e.rec.addr != addr) continue;
    if (e.rec.state != MemberWireState::kAlive) return;
    // Suspicion keeps the member's own incarnation: only the member
    // itself can outbid it (the refutation), everyone else just
    // relays.
    e.rec.state = MemberWireState::kSuspect;
    e.suspect_since = now;
    queue_update(e.rec);
    note(MembershipEvent::Kind::kSuspect, e.rec, false);
    return;
  }
}

void MembershipTable::probe_succeeded(const std::string&,
                                      Clock::time_point) {
  // Deliberately no state change: a suspect only returns to alive via
  // its own refutation (higher incarnation), which the probe's ack
  // piggybacks — the prober forces the suspicion update into the ping
  // so the target always learns it is suspected.
}

void MembershipTable::tick(Clock::time_point now) {
  const auto window = std::chrono::milliseconds(opts_.suspicion_timeout_ms);
  for (Entry& e : members_) {
    if (e.rec.state != MemberWireState::kSuspect) continue;
    if (now - e.suspect_since < window) continue;
    e.rec.state = MemberWireState::kDead;
    queue_update(e.rec);
    bool map_changed = false;
    if (e.rec.shard_id >= 0 && !in_bulk_) {
      rebuild_map_without(e.rec);
      map_changed = true;
    }
    note(MembershipEvent::Kind::kDead, e.rec, map_changed);
  }
}

void MembershipTable::mark_self_left() {
  if (self_left()) return;
  self_.state = MemberWireState::kLeft;
  queue_update(self_);
  bool map_changed = false;
  if (self_.shard_id >= 0) {
    rebuild_map_without(self_);
    map_changed = true;
  }
  note(MembershipEvent::Kind::kLeft, self_, map_changed);
}

MembershipRecord MembershipTable::snapshot() const {
  MembershipRecord rec;
  rec.epoch = map_->epoch();
  rec.replication = opts_.replication;
  rec.vnodes = opts_.vnodes;
  rec.members.reserve(members_.size() + 1);
  rec.members.push_back(self_);
  for (const Entry& e : members_) rec.members.push_back(e.rec);
  return rec;
}

std::vector<std::string> MembershipTable::probe_targets() const {
  std::vector<std::string> out;
  for (const Entry& e : members_)
    if (is_live(e.rec.state)) out.push_back(e.rec.addr);
  return out;
}

const MemberRecord* MembershipTable::find(const std::string& addr) const {
  for (const Entry& e : members_)
    if (e.rec.addr == addr) return &e.rec;
  return nullptr;
}

std::vector<MemberRecord> MembershipTable::piggyback(std::size_t max) {
  std::vector<MemberRecord> out;
  const std::size_t n = std::min(max, outbox_.size());
  for (std::size_t i = 0; i < n; ++i) {
    Outgoing o = outbox_.front();
    outbox_.pop_front();
    out.push_back(o.rec);
    if (--o.transmits_left > 0) outbox_.push_back(std::move(o));
  }
  return out;
}

std::vector<MembershipEvent> MembershipTable::take_events() {
  std::vector<MembershipEvent> out;
  out.swap(events_);
  return out;
}

void MembershipTable::note(MembershipEvent::Kind kind,
                           const MemberRecord& rec, bool map_changed) {
  events_.push_back({kind, rec, map_changed ? map_->epoch() : 0});
}

void MembershipTable::queue_update(const MemberRecord& rec) {
  // Fresh news about a member supersedes whatever of it was still in
  // flight, with a reset retransmit budget.
  for (Outgoing& o : outbox_) {
    if (o.rec.addr == rec.addr) {
      o.rec = rec;
      o.transmits_left = opts_.piggyback_transmits;
      return;
    }
  }
  outbox_.push_back({rec, opts_.piggyback_transmits});
}

void MembershipTable::rebuild_map_with(const MemberRecord& rec) {
  const auto ep = net::parse_endpoint(rec.addr);
  if (!ep) return;
  ShardMap next = map_->with({rec.shard_id, *ep});
  next.set_replication(opts_.replication);
  map_ = std::make_shared<const ShardMap>(std::move(next));
}

void MembershipTable::rebuild_map_without(const MemberRecord& rec) {
  ShardMap next = map_->without(rec.shard_id);
  next.set_replication(opts_.replication);
  map_ = std::make_shared<const ShardMap>(std::move(next));
}

void MembershipTable::full_rebuild(std::uint64_t epoch) {
  std::vector<ShardInfo> shards;
  auto add = [&shards](const MemberRecord& rec) {
    if (rec.shard_id < 0 || !is_live(rec.state)) return;
    for (const ShardInfo& s : shards)
      if (s.id == rec.shard_id) return;  // first sighting owns the id
    const auto ep = net::parse_endpoint(rec.addr);
    if (ep) shards.push_back({rec.shard_id, *ep});
  };
  add(self_);
  for (const Entry& e : members_) add(e.rec);
  map_ = std::make_shared<const ShardMap>(
      ShardMap::make(std::move(shards), epoch, opts_.replication,
                     opts_.vnodes));
}

// --- MembershipAgent --------------------------------------------------

MembershipAgent::MembershipAgent(MemberRecord self, MembershipOptions opts)
    : table_(std::move(self), opts) {}

MembershipAgent::~MembershipAgent() { stop(); }

void MembershipAgent::bootstrap_from_map(const ShardMap& map) {
  std::vector<MemberRecord> members;
  members.reserve(map.shards().size());
  for (const ShardInfo& s : map.shards()) {
    MemberRecord m;
    m.addr = net::to_string(s.endpoint);
    m.shard_id = s.id;
    m.incarnation = 1;
    members.push_back(std::move(m));
  }
  std::unique_lock<std::mutex> lock(mu_);
  table_.set_map_params(map.replication(), map.vnodes());
  table_.bootstrap(std::move(members), map.epoch(), Clock::now());
  flush_events_locked(lock);
}

void MembershipAgent::bootstrap_single() {
  std::unique_lock<std::mutex> lock(mu_);
  table_.bootstrap({}, 1, Clock::now());
  flush_events_locked(lock);
}

bool MembershipAgent::join(const std::string& seed_addr, int attempts) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto ep = net::parse_endpoint(seed_addr);
    if (!ep) return false;
    const int fd = net::connect_endpoint(*ep, /*nonblocking=*/true);
    if (fd < 0) continue;
    net::FdInBuf inbuf(fd, table_.options().probe_timeout_ms * 4);
    net::FdOutBuf outbuf(fd, table_.options().probe_timeout_ms * 4, nullptr);
    std::istream is(&inbuf);
    std::ostream os(&outbuf);
    GossipMessage msg = make_message(GossipMessage::Kind::kJoin);
    if (!write_gossip(os, msg) || !os.flush()) {
      ::close(fd);
      continue;
    }
    auto snap = read_membership(is);
    ::close(fd);
    if (!snap) continue;
    std::unique_lock<std::mutex> lock(mu_);
    table_.absorb(*snap, Clock::now());
    flush_events_locked(lock);
    obs::counter("cluster.membership.joined_via_seed").add();
    return true;
  }
  return false;
}

void MembershipAgent::on_map_change(MapCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  map_cb_ = std::move(cb);
}

void MembershipAgent::start() {
  if (prober_.joinable()) return;
  stop_.store(false);
  prober_ = std::thread([this] { prober_loop(); });
}

void MembershipAgent::stop() {
  stop_.store(true);
  if (prober_.joinable()) prober_.join();
}

void MembershipAgent::leave() {
  if (left_.exchange(true)) return;
  std::vector<std::string> targets;
  GossipMessage msg;
  {
    std::unique_lock<std::mutex> lock(mu_);
    targets = table_.probe_targets();
    table_.mark_self_left();
    msg = make_message(GossipMessage::Kind::kLeave);
    flush_events_locked(lock);
  }
  // Push the departure synchronously to every live peer: a leave must
  // not depend on piggyback luck, or the leaver dies before the news
  // spreads and peers burn a suspicion window on it.
  for (const std::string& t : targets) (void)exchange(t, msg);
  stop_.store(true);
}

MembershipAgent::Reply MembershipAgent::handle(const GossipMessage& in) {
  Reply reply;
  std::string pingreq_target;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto now = Clock::now();
    // The sender's own record is evidence: alive for most kinds, its
    // stated (left) record on a leave announcement.
    MemberRecord from = in.from;
    if (in.kind != GossipMessage::Kind::kLeave)
      from.state = MemberWireState::kAlive;
    table_.apply(from, now);
    for (const MemberRecord& u : in.updates) table_.apply(u, now);
    flush_events_locked(lock);
    if (in.kind == GossipMessage::Kind::kJoin) {
      reply.snapshot = table_.snapshot();
      obs::counter("cluster.membership.joins_served").add();
      return reply;
    }
    if (in.kind == GossipMessage::Kind::kPingReq) {
      pingreq_target = in.target;
    } else {
      GossipMessage ack = make_message(GossipMessage::Kind::kAck);
      // If we believe the *sender* is dead or left, tell it so
      // directly: its piggybacked obituary may long since have
      // exhausted its retransmit budget, and without this echo a
      // falsely-buried member can never learn it must refute.
      if (const MemberRecord* cur = table_.find(in.from.addr)) {
        if (!is_live(cur->state)) ack.updates.push_back(*cur);
      }
      reply.ack = std::move(ack);
    }
  }
  if (!pingreq_target.empty()) {
    // Probe on the requester's behalf, outside the lock (it dials).
    GossipMessage probe;
    {
      std::lock_guard<std::mutex> lock(mu_);
      probe = make_message(GossipMessage::Kind::kPing);
    }
    obs::counter("cluster.membership.indirect_probes_served").add();
    auto got = exchange(pingreq_target, probe);
    std::unique_lock<std::mutex> lock(mu_);
    if (got) {
      merge_reply(*got);
      flush_events_locked(lock);
      GossipMessage ack = make_message(GossipMessage::Kind::kAck);
      // Carry fresh first-hand evidence about the target.
      ack.updates.push_back(got->from);
      reply.ack = std::move(ack);
    } else {
      reply.ack = make_message(GossipMessage::Kind::kNack);
    }
  }
  return reply;
}

std::shared_ptr<const ShardMap> MembershipAgent::map() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.map();
}

std::uint64_t MembershipAgent::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.epoch();
}

MembershipRecord MembershipAgent::membership() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.snapshot();
}

MemberRecord MembershipAgent::self() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.self();
}

GossipMessage MembershipAgent::make_message(GossipMessage::Kind kind) {
  GossipMessage msg;
  msg.kind = kind;
  msg.from = table_.self();
  msg.updates = table_.piggyback(kMaxPiggyback);
  return msg;
}

void MembershipAgent::merge_reply(const GossipMessage& reply) {
  const auto now = Clock::now();
  MemberRecord from = reply.from;
  if (from.state != MemberWireState::kLeft)
    from.state = MemberWireState::kAlive;
  table_.apply(from, now);
  for (const MemberRecord& u : reply.updates) table_.apply(u, now);
}

std::optional<GossipMessage> MembershipAgent::exchange(
    const std::string& addr, const GossipMessage& msg) {
  const auto ep = net::parse_endpoint(addr);
  if (!ep) return std::nullopt;
  const int timeout_ms = table_.options().probe_timeout_ms;
  const int fd = net::connect_endpoint(*ep, /*nonblocking=*/true);
  if (fd < 0) return std::nullopt;
  net::FdInBuf inbuf(fd, timeout_ms);
  net::FdOutBuf outbuf(fd, timeout_ms, nullptr);
  std::istream is(&inbuf);
  std::ostream os(&outbuf);
  std::optional<GossipMessage> reply;
  if (write_gossip(os, msg) && os.flush()) reply = read_gossip(is);
  ::close(fd);
  return reply;
}

void MembershipAgent::probe_round() {
  // Chaos site: the silent-sender half of a gossip partition — the
  // round simply does not happen, so no suspicion verdict is recorded
  // either (a silent member, not a observed-dead one).
  if (FAILPOINT("gossip.probe")) {
    obs::counter("cluster.membership.probes_suppressed").add();
    return;
  }
  std::string target;
  GossipMessage ping;
  {
    std::unique_lock<std::mutex> lock(mu_);
    table_.tick(Clock::now());
    flush_events_locked(lock);
    auto targets = table_.probe_targets();
    if (targets.empty()) return;
    rr_cursor_ %= targets.size();
    target = targets[rr_cursor_++];
    ping = make_message(GossipMessage::Kind::kPing);
    // Force the suspicion through: a suspect must always learn it is
    // suspected from the very probe that reaches it, or the piggyback
    // budget could expire before it ever refutes.
    if (const MemberRecord* cur = table_.find(target)) {
      if (cur->state == MemberWireState::kSuspect)
        ping.updates.push_back(*cur);
    }
  }
  obs::counter("cluster.membership.probes").add();
  bool ok = false;
  if (auto reply = exchange(target, ping)) {
    std::unique_lock<std::mutex> lock(mu_);
    merge_reply(*reply);
    flush_events_locked(lock);
    ok = true;
  }
  if (!ok) {
    obs::counter("cluster.membership.probe_failures").add();
    // Indirect fallback: ask up to k other members to probe the
    // target for us — our path to it may be the broken part.
    std::vector<std::string> helpers;
    GossipMessage req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (const std::string& t : table_.probe_targets())
        if (t != target) helpers.push_back(t);
      req = make_message(GossipMessage::Kind::kPingReq);
      req.target = target;
    }
    const int want = table_.options().indirect_probes;
    int sent = 0;
    for (const std::string& h : helpers) {
      if (sent >= want) break;
      ++sent;
      obs::counter("cluster.membership.indirect_probes").add();
      auto reply = exchange(h, req);
      if (reply && reply->kind == GossipMessage::Kind::kAck) {
        std::unique_lock<std::mutex> lock(mu_);
        merge_reply(*reply);
        flush_events_locked(lock);
        obs::counter("cluster.membership.indirect_acks").add();
        ok = true;
        break;
      }
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  const auto now = Clock::now();
  if (ok)
    table_.probe_succeeded(target, now);
  else
    table_.probe_failed(target, now);
  table_.tick(now);
  flush_events_locked(lock);
}

void MembershipAgent::prober_loop() {
  const auto interval =
      std::chrono::milliseconds(table_.options().probe_interval_ms);
  auto next = Clock::now() + interval;
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (Clock::now() < next) continue;
    next = Clock::now() + interval;
    if (stop_.load() || left_.load()) break;
    probe_round();
  }
}

void MembershipAgent::flush_events_locked(
    std::unique_lock<std::mutex>& lock) {
  auto events = table_.take_events();
  if (events.empty()) return;
  auto map = table_.map();
  obs::counter("cluster.map_epoch").set(
      static_cast<std::int64_t>(map->epoch()));
  for (const MembershipEvent& e : events) {
    const char* name = membership_event_name(e.kind);
    switch (e.kind) {
      case MembershipEvent::Kind::kJoin:
        obs::counter("cluster.membership.joins").add();
        break;
      case MembershipEvent::Kind::kAlive:
        obs::counter("cluster.membership.revivals").add();
        break;
      case MembershipEvent::Kind::kSuspect:
        obs::counter("cluster.membership.suspects").add();
        break;
      case MembershipEvent::Kind::kDead:
        obs::counter("cluster.membership.deaths").add();
        break;
      case MembershipEvent::Kind::kLeft:
        obs::counter("cluster.membership.leaves").add();
        break;
      case MembershipEvent::Kind::kRefute:
        obs::counter("cluster.membership.refutes").add();
        break;
    }
    if (e.member.shard_id >= 0 &&
        e.kind != MembershipEvent::Kind::kRefute) {
      const bool live = e.kind == MembershipEvent::Kind::kJoin ||
                        e.kind == MembershipEvent::Kind::kAlive ||
                        e.kind == MembershipEvent::Kind::kSuspect;
      obs::counter("cluster.shard." + std::to_string(e.member.shard_id) +
                   ".alive")
          .set(live ? 1 : 0);
    }
    if (obs::trace::enabled()) {
      // Zero-length marker span: membership transitions land on the
      // merged timeline next to the requests they explain.
      const auto t = std::chrono::steady_clock::now();
      obs::trace::emit(std::string("member.") + name,
                       obs::trace::new_trace_id(),
                       obs::trace::new_span_id(), 0, t, t);
    }
  }
  if (!map_cb_) return;
  // Map-change callbacks run unlocked: the proxy's handler swaps the
  // router map and enqueues seed handoffs, which must not re-enter the
  // agent under its own lock.
  MapCallback cb = map_cb_;
  std::vector<MembershipEvent> map_events;
  for (const MembershipEvent& e : events)
    if (e.map_epoch != 0) map_events.push_back(e);
  if (map_events.empty()) return;
  lock.unlock();
  for (const MembershipEvent& e : map_events) cb(map, e);
  lock.lock();
}

}  // namespace starring::cluster
