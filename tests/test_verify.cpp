// Unit tests for the independent verifier — it must catch every way an
// embedding can be wrong.
#include <gtest/gtest.h>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"

namespace starring {
namespace {

std::vector<VertexId> good_ring(const StarGraph& g) {
  const auto res = embed_hamiltonian_cycle(g);
  EXPECT_TRUE(res.has_value());
  return res->ring;
}

TEST(Verify, AcceptsValidRing) {
  const StarGraph g(5);
  const auto rep = verify_healthy_ring(g, FaultSet{}, good_ring(g));
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_EQ(rep.length, 120u);
}

TEST(Verify, RejectsEmpty) {
  const StarGraph g(4);
  const auto rep = verify_healthy_ring(g, FaultSet{}, {});
  EXPECT_FALSE(rep.valid);
  // Degenerate input has a fixed message, independent of the adjacency
  // scan (and identical for the ring and path variants).
  EXPECT_EQ(rep.error, "empty sequence");
  EXPECT_EQ(rep.length, 0u);
  EXPECT_EQ(verify_healthy_path(g, FaultSet{}, {}).error, "empty sequence");
}

TEST(Verify, RejectsTooShortCycle) {
  const StarGraph g(4);
  const auto rep = verify_healthy_ring(g, FaultSet{}, {0, 1});
  EXPECT_FALSE(rep.valid);
  EXPECT_EQ(rep.error, "a cycle needs at least 3 vertices, got 2");
  const auto rep1 = verify_healthy_ring(g, FaultSet{}, {0});
  EXPECT_FALSE(rep1.valid);
  EXPECT_EQ(rep1.error, "a cycle needs at least 3 vertices, got 1");
}

TEST(Verify, TooShortCycleBeatsOtherDefects) {
  // Even when the short sequence also holds an out-of-range id, the
  // shape error wins: the scan must never touch the bad id.
  const StarGraph g(4);
  const auto rep =
      verify_healthy_ring(g, FaultSet{}, {0, factorial(4) + 7});
  EXPECT_FALSE(rep.valid);
  EXPECT_EQ(rep.error, "a cycle needs at least 3 vertices, got 2");
}

TEST(Verify, RejectsDuplicatesDeterministically) {
  // A two-vertex "path" that repeats one vertex: the duplicate check
  // reports it, not the adjacency scan (a vertex is not self-adjacent,
  // but the error must name the repetition).
  const StarGraph g(4);
  const auto rep = verify_healthy_path(g, FaultSet{}, {5, 5});
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("repeated vertex"), std::string::npos);
  // The first repeated occurrence is the one reported.
  auto ring = good_ring(g);
  ring[9] = ring[2];
  ring[15] = ring[4];
  const auto rep2 = verify_healthy_ring(g, FaultSet{}, ring);
  EXPECT_FALSE(rep2.valid);
  EXPECT_NE(rep2.error.find(g.vertex(ring[2]).to_string()),
            std::string::npos);
}

TEST(Verify, DuplicateCheckRunsAtAnyThreadCount) {
  const StarGraph g(5);
  auto ring = good_ring(g);
  ring[50] = ring[10];
  for (const unsigned threads : {1u, 4u}) {
    const auto rep = verify_healthy_ring(g, FaultSet{}, ring, threads);
    EXPECT_FALSE(rep.valid);
    EXPECT_NE(rep.error.find("repeated vertex"), std::string::npos);
  }
}

TEST(Verify, RejectsDuplicates) {
  const StarGraph g(5);
  auto ring = good_ring(g);
  ring[3] = ring[10];
  const auto rep = verify_healthy_ring(g, FaultSet{}, ring);
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("repeated"), std::string::npos);
}

TEST(Verify, RejectsOutOfRangeId) {
  const StarGraph g(4);
  auto ring = good_ring(g);
  ring[0] = factorial(4) + 1;
  const auto rep = verify_healthy_ring(g, FaultSet{}, ring);
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("out of range"), std::string::npos);
}

TEST(Verify, RejectsNonAdjacentStep) {
  const StarGraph g(5);
  auto ring = good_ring(g);
  std::swap(ring[2], ring[40]);
  const auto rep = verify_healthy_ring(g, FaultSet{}, ring);
  EXPECT_FALSE(rep.valid);
}

TEST(Verify, RejectsFaultyVertexOnRing) {
  const StarGraph g(5);
  const auto ring = good_ring(g);
  FaultSet f;
  f.add_vertex(g.vertex(ring[7]));
  const auto rep = verify_healthy_ring(g, f, ring);
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("faulty vertex"), std::string::npos);
}

TEST(Verify, RejectsFaultyEdgeOnRing) {
  const StarGraph g(5);
  const auto ring = good_ring(g);
  FaultSet f;
  f.add_edge(g.vertex(ring[4]), g.vertex(ring[5]));
  const auto rep = verify_healthy_ring(g, f, ring);
  EXPECT_FALSE(rep.valid);
  EXPECT_NE(rep.error.find("faulty edge"), std::string::npos);
}

TEST(Verify, WrapAroundEdgeIsChecked) {
  const StarGraph g(5);
  const auto ring = good_ring(g);
  FaultSet f;
  f.add_edge(g.vertex(ring.back()), g.vertex(ring.front()));
  const auto rep = verify_healthy_ring(g, f, ring);
  EXPECT_FALSE(rep.valid);
}

TEST(Verify, PathVariantAcceptsOpenPath) {
  const StarGraph g(5);
  auto ring = good_ring(g);
  // Drop the last vertex: still a valid open path even though the ends
  // may not be adjacent.
  ring.pop_back();
  const auto rep = verify_healthy_path(g, FaultSet{}, ring);
  EXPECT_TRUE(rep.valid) << rep.error;
}

TEST(Verify, PathVariantSingleVertex) {
  const StarGraph g(4);
  const auto rep = verify_healthy_path(g, FaultSet{}, {5});
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ(rep.length, 1u);
}

TEST(Verify, PathVariantRejectsFaultyInterior) {
  const StarGraph g(4);
  const Perm p = g.vertex(3);
  const Perm q = p.star_move(1);
  FaultSet f;
  f.add_vertex(q);
  const auto rep =
      verify_healthy_path(g, f, {p.rank(), q.rank(), q.star_move(2).rank()});
  EXPECT_FALSE(rep.valid);
}

}  // namespace
}  // namespace starring
