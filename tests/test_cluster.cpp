// Cluster placement + routing unit tests: the FNV-1a test vectors, the
// shard-map grammar, the consistent-hash ring's balance / minimal-
// disruption / replica-set properties, endpoint parsing, and the
// circuit-breaker state machine (driven with injected time — no
// sleeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "obs/metrics.hpp"
#include "util/net.hpp"

namespace starring::cluster {
namespace {

std::string map_text(int shards, int replication = 2, int vnodes = 128) {
  std::ostringstream os;
  os << "starring-shard-map v1\n"
     << "epoch 7\n"
     << "replication " << replication << "\n"
     << "vnodes " << vnodes << "\n"
     << "shards " << shards << "\n";
  for (int i = 0; i < shards; ++i)
    os << "shard " << i << " 127.0.0.1:" << (47181 + i) << "\n";
  os << "end\n";
  return os.str();
}

ShardMap parse_or_die(const std::string& text) {
  std::istringstream is(text);
  std::string err;
  const auto m = ShardMap::parse(is, &err);
  EXPECT_TRUE(m.has_value()) << err;
  return *m;
}

std::string key_for(int i) { return "class-" + std::to_string(i); }

TEST(Fnv, PublishedTestVectors) {
  // Offset basis and the canonical fnv.isthe.com vectors — pins the
  // constants so placement can never silently drift across builds.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  // And the finalized placement hash, so ring positions can never
  // silently drift either (mix64 is murmur3's fmix64).
  EXPECT_EQ(place_hash(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(mix64(0), 0u);
}

TEST(ShardMapParse, FullRecordRoundTrips) {
  const ShardMap m = parse_or_die(map_text(3));
  EXPECT_EQ(m.epoch(), 7u);
  EXPECT_EQ(m.replication(), 2);
  EXPECT_EQ(m.vnodes(), 128);
  ASSERT_EQ(m.shards().size(), 3u);
  EXPECT_EQ(m.shards()[1].id, 1);
  EXPECT_EQ(m.shards()[1].endpoint.port, 47182);
  const ShardMap again = parse_or_die(m.to_text());
  EXPECT_EQ(again.epoch(), m.epoch());
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(again.owner(key_for(i)), m.owner(key_for(i)));
}

TEST(ShardMapParse, ScalarsAreOptionalWithDefaults) {
  const ShardMap m = parse_or_die(
      "starring-shard-map v1\n"
      "shards 2\n"
      "shard 0 127.0.0.1:1\n"
      "shard 5 127.0.0.1:2\n"
      "end\n");
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.replication(), 2);
  EXPECT_EQ(m.vnodes(), 128);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(m.find(5)->endpoint.port, 2);
  EXPECT_EQ(m.find(3), nullptr);
}

TEST(ShardMapParse, RejectsMalformedRecords) {
  const char* bad[] = {
      "starring-shard-map v2\nshards 1\nshard 0 127.0.0.1:1\nend\n",
      "starring-shard-map v1\nshards 2\nshard 0 127.0.0.1:1\n"
      "shard 0 127.0.0.1:2\nend\n",  // duplicate id
      "starring-shard-map v1\nreplication 3\nshards 2\n"
      "shard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\nend\n",  // R > shards
      "starring-shard-map v1\nreplication 0\nshards 1\n"
      "shard 0 127.0.0.1:1\nend\n",
      "starring-shard-map v1\nshards 1\nshard 0 notaport\nend\n",
      "starring-shard-map v1\nshards 1\nshard 0 127.0.0.1:1\n",  // no end
      "starring-shard-map v1\nshards 0\nend\n",
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    std::string err;
    EXPECT_FALSE(ShardMap::parse(is, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(ShardMapRing, BalancesKeysAcrossEightShards) {
  const ShardMap m = parse_or_die(map_text(8));
  std::map<int, int> per_shard;
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) per_shard[m.owner(key_for(i))]++;
  ASSERT_EQ(per_shard.size(), 8u) << "every shard must own some keys";
  const double expect = kKeys / 8.0;
  for (const auto& [id, count] : per_shard) {
    EXPECT_GE(count, expect * 0.85) << "shard " << id << " underloaded";
    EXPECT_LE(count, expect * 1.15) << "shard " << id << " overloaded";
  }
}

TEST(ShardMapRing, RemovalMovesOnlyTheRemovedShardsKeys) {
  // The minimal-disruption property: vnode points depend only on the
  // shard's own id, so dropping shard 3 leaves every other point in
  // place — a key moves iff shard 3 owned it.
  const ShardMap before = parse_or_die(map_text(8));
  const ShardMap after = before.without(3);
  ASSERT_EQ(after.shards().size(), 7u);
  EXPECT_EQ(after.epoch(), before.epoch() + 1);
  const int kKeys = 10000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = key_for(i);
    if (before.owner(k) == 3) {
      EXPECT_NE(after.owner(k), 3);
      ++moved;
    } else {
      EXPECT_EQ(after.owner(k), before.owner(k)) << k;
    }
  }
  // ~1/8 of keys lived on the removed shard; comfortably under the
  // 2/N disruption bound the design promises.
  EXPECT_LT(moved, 2 * kKeys / 8);
  EXPECT_GT(moved, 0);
}

TEST(ShardMapRing, ReplicaSetsAreDistinctAndOwnerFirst) {
  const ShardMap m = parse_or_die(map_text(8, /*replication=*/3));
  for (int i = 0; i < 1000; ++i) {
    const std::string k = key_for(i);
    const auto reps = m.replicas(k);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], m.owner(k));
    EXPECT_EQ(std::set<int>(reps.begin(), reps.end()).size(), reps.size());
  }
}

TEST(ShardMapRing, ReplicationClampsToShardCount) {
  const ShardMap m = parse_or_die(map_text(2, /*replication=*/2));
  const auto reps = m.replicas("anything");
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_NE(reps[0], reps[1]);
}

TEST(ShardMapRing, AllCandidatesIsAPermutationWithReplicaPrefix) {
  const ShardMap m = parse_or_die(map_text(8, /*replication=*/3));
  for (int i = 0; i < 200; ++i) {
    const std::string k = key_for(i);
    const auto all = m.all_candidates(k);
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(std::set<int>(all.begin(), all.end()).size(), 8u);
    const auto reps = m.replicas(k);
    ASSERT_LE(reps.size(), all.size());
    for (std::size_t j = 0; j < reps.size(); ++j)
      EXPECT_EQ(all[j], reps[j]) << k;
  }
}

TEST(ShardMapRing, PlacementIsIndependentOfFileOrder) {
  // Two maps listing the same shards in different order must place
  // every key identically — cross-process determinism is what lets a
  // failover test compute the owner without asking the proxy.
  const ShardMap a = parse_or_die(
      "starring-shard-map v1\nshards 3\n"
      "shard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\nshard 2 127.0.0.1:3\n"
      "end\n");
  const ShardMap b = parse_or_die(
      "starring-shard-map v1\nshards 3\n"
      "shard 2 127.0.0.1:3\nshard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\n"
      "end\n");
  for (int i = 0; i < 2000; ++i) {
    const std::string k = key_for(i);
    EXPECT_EQ(a.owner(k), b.owner(k)) << k;
    EXPECT_EQ(a.replicas(k), b.replicas(k)) << k;
  }
}

TEST(EndpointParse, AcceptsPortAndHostPortForms) {
  const auto bare = net::parse_endpoint("47181");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 47181);
  const auto full = net::parse_endpoint("10.0.0.2:80");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "10.0.0.2");
  EXPECT_EQ(full->port, 80);
  EXPECT_EQ(net::to_string(*full), "10.0.0.2:80");
  for (const char* bad : {"", ":80", "host:", "host:0", "host:99999",
                          "host:8x0", "-1"})
    EXPECT_FALSE(net::parse_endpoint(bad).has_value()) << bad;
}

// ---- circuit breaker ------------------------------------------------

using Clock = ShardRouter::Clock;
using std::chrono::milliseconds;

ShardRouter make_router(int shards = 3) {
  BreakerOptions opts;
  opts.open_threshold = 3;
  opts.base_ms = 100;
  opts.cap_ms = 5000;
  return ShardRouter(parse_or_die(map_text(shards)), opts);
}

TEST(Breaker, OpensAfterThresholdConsecutiveFailures) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  EXPECT_TRUE(r.allow(0, t0));
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  EXPECT_TRUE(r.allow(0, t0)) << "two failures stay below threshold";
  r.record_failure(0, t0);
  EXPECT_FALSE(r.allow(0, t0)) << "third failure opens the breaker";
  EXPECT_EQ(r.consecutive_failures(0), 3);
}

TEST(Breaker, HalfOpenProbeAfterCooldownThenCloseOnSuccess) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  for (int i = 0; i < 3; ++i) r.record_failure(0, t0);
  EXPECT_FALSE(r.allow(0, t0 + milliseconds(99)));
  EXPECT_TRUE(r.allow(0, t0 + milliseconds(100)))
      << "cooldown elapsed: half-open probe may go out";
  r.record_success(0);
  EXPECT_TRUE(r.allow(0, t0));
  EXPECT_EQ(r.consecutive_failures(0), 0);
}

TEST(Breaker, ReopenCooldownGrowsWithTheStreak) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  for (int i = 0; i < 3; ++i) r.record_failure(0, t0);
  // Failed half-open probe: re-opens for a second, longer round.
  const Clock::time_point t1 = t0 + milliseconds(100);
  r.record_failure(0, t1);
  EXPECT_FALSE(r.allow(0, t1 + milliseconds(199)));
  EXPECT_TRUE(r.allow(0, t1 + milliseconds(200)));
}

TEST(Breaker, OpenShardsSinkToTheBackOfCandidates) {
  ShardRouter r = make_router(3);
  const Clock::time_point t0{};
  const std::string key = "class-key";
  const auto healthy = r.candidates(key, t0);
  ASSERT_EQ(healthy.size(), 3u);
  const int victim = healthy[0];
  for (int i = 0; i < 3; ++i) r.record_failure(victim, t0);
  const auto degraded = r.candidates(key, t0);
  ASSERT_EQ(degraded.size(), 3u) << "open breakers demote, never remove";
  EXPECT_EQ(degraded.back(), victim);
  // Relative order of the still-closed shards is preserved.
  EXPECT_EQ(degraded[0], healthy[1]);
  EXPECT_EQ(degraded[1], healthy[2]);
  // Recovery restores the original nearest-first order.
  r.record_success(victim);
  EXPECT_EQ(r.candidates(key, t0), healthy);
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  r.record_success(0);
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  EXPECT_TRUE(r.allow(0, t0))
      << "streak restarted after a success; two failures must not open";
}

TEST(Breaker, StateAndStreakExportedAsGauges) {
  obs::set_enabled(true);
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  const auto state = [] {
    return obs::counter("cluster.shard.0.breaker_state").value();
  };
  const auto streak = [] {
    return obs::counter("cluster.shard.0.breaker_streak").value();
  };
  r.record_failure(0, t0);
  EXPECT_EQ(state(), static_cast<std::int64_t>(BreakerState::kClosed));
  EXPECT_EQ(streak(), 1);
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  EXPECT_EQ(state(), static_cast<std::int64_t>(BreakerState::kOpen));
  EXPECT_EQ(streak(), 3);
  // Past the cooldown, the candidates() walk republishes the flip to
  // half-open — no request-side success/failure event needed.
  r.candidates("class-key", t0 + milliseconds(200));
  EXPECT_EQ(state(), static_cast<std::int64_t>(BreakerState::kHalfOpen));
  r.record_success(0);
  EXPECT_EQ(state(), static_cast<std::int64_t>(BreakerState::kClosed));
  EXPECT_EQ(streak(), 0);
  obs::set_enabled(false);
}

TEST(Router, SwapMapDropsDepartedBreakersAndRoutesNewSet) {
  ShardRouter r = make_router(3);
  const Clock::time_point t0{};
  for (int i = 0; i < 3; ++i) r.record_failure(2, t0);
  EXPECT_FALSE(r.allow(2, t0));
  // Shard 2 departs; its streak must not haunt the id on rejoin.
  auto next = std::make_shared<const ShardMap>(r.map()->without(2));
  r.swap_map(next);
  EXPECT_EQ(r.map()->epoch(), 8u) << "without() bumps the parsed epoch 7";
  EXPECT_EQ(r.candidates("class-key", t0).size(), 2u);
  auto back = std::make_shared<const ShardMap>(
      r.map()->with(ShardInfo{2, *net::parse_endpoint("127.0.0.1:47999")}));
  r.swap_map(back);
  EXPECT_TRUE(r.allow(2, t0)) << "rejoined shard starts with a clean breaker";
  EXPECT_EQ(r.candidates("class-key", t0).size(), 3u);
}

// ---- membership-driven map churn (with()/without() sequences) -------

TEST(ShardMapChurn, RepeatedRemovalDownToOneShardMovesOnlyDepartedKeys) {
  ShardMap m = parse_or_die(map_text(5));
  std::map<std::string, int> owner;
  for (int i = 0; i < 400; ++i) owner[key_for(i)] = m.owner(key_for(i));
  std::uint64_t epoch = m.epoch();
  for (const int victim : {4, 3, 2, 1}) {
    const ShardMap next = m.without(victim);
    EXPECT_EQ(next.epoch(), epoch + 1);
    EXPECT_EQ(next.find(victim), nullptr);
    for (auto& [key, prev] : owner) {
      const int now = next.owner(key);
      if (prev != victim)
        EXPECT_EQ(now, prev) << "surviving shard " << prev
                             << " lost key " << key << " to " << now;
      else
        EXPECT_NE(now, victim);
      owner[key] = now;
    }
    m = next;
    epoch = m.epoch();
  }
  // Down to one shard: it owns everything, replication degrades to 1.
  ASSERT_EQ(m.shards().size(), 1u);
  EXPECT_EQ(m.replication(), 1);
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(m.owner(key_for(i)), 0);
    EXPECT_EQ(m.replicas(key_for(i)).size(), 1u);
  }
}

TEST(ShardMapChurn, RejoinViaWithMovesOnlyKeysToTheArrival) {
  ShardMap one = parse_or_die(map_text(5));
  for (const int victim : {4, 3, 2, 1}) one = one.without(victim);
  ASSERT_EQ(one.shards().size(), 1u);
  const ShardMap two =
      one.with(ShardInfo{3, *net::parse_endpoint("127.0.0.1:50000")});
  EXPECT_EQ(two.epoch(), one.epoch() + 1);
  ASSERT_EQ(two.shards().size(), 2u);
  // Replication re-raises toward the target R=2 as members return.
  EXPECT_EQ(two.replication(), 2);
  int moved = 0;
  for (int i = 0; i < 400; ++i) {
    const int now = two.owner(key_for(i));
    if (now != one.owner(key_for(i))) {
      EXPECT_EQ(now, 3) << "a key may only move to the arriving shard";
      ++moved;
    }
    // With 2 shards and R=2, replica sets must be the full distinct
    // pair.
    const auto reps = two.replicas(key_for(i));
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_NE(reps[0], reps[1]);
  }
  EXPECT_GT(moved, 0) << "the arrival must take some ownership";
  // Vnode labels depend only on the shard id, so the rejoin lands the
  // same ring points the original shard 3 held: against the *original*
  // 5-shard map, every key shard 3 owned still resolves consistently.
  const ShardMap orig = parse_or_die(map_text(5));
  for (int i = 0; i < 400; ++i)
    if (orig.owner(key_for(i)) == 3 && two.owner(key_for(i)) != 3)
      FAIL() << "key " << key_for(i)
             << " belonged to shard 3 in the full map but did not return";
}

TEST(ShardMapChurn, WithReplacesEndpointInPlaceMovingZeroKeys) {
  const ShardMap m = parse_or_die(map_text(4));
  const ShardMap moved =
      m.with(ShardInfo{2, *net::parse_endpoint("127.0.0.1:60001")});
  EXPECT_EQ(moved.epoch(), m.epoch() + 1);
  ASSERT_EQ(moved.shards().size(), 4u);
  EXPECT_EQ(moved.find(2)->endpoint.port, 60001);
  // A rejoin at a new port is a membership change but not a placement
  // change: zero keys move.
  for (int i = 0; i < 400; ++i)
    EXPECT_EQ(moved.owner(key_for(i)), m.owner(key_for(i)));
}

TEST(ShardMapChurn, MakeBuildsEmptyAndGrowsFromNothing) {
  const ShardMap empty = ShardMap::make({}, 1, 2, 128);
  EXPECT_EQ(empty.shards().size(), 0u);
  EXPECT_TRUE(empty.replicas("anything").empty());
  const ShardMap one =
      empty.with(ShardInfo{0, *net::parse_endpoint("127.0.0.1:47181")});
  EXPECT_EQ(one.epoch(), 2u);
  EXPECT_EQ(one.owner("anything"), 0);
  EXPECT_EQ(one.replication(), 1) << "clamped to the live count";
}

}  // namespace
}  // namespace starring::cluster
