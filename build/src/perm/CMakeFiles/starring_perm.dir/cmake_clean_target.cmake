file(REMOVE_RECURSE
  "libstarring_perm.a"
)
