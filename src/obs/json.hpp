// Minimal JSON support for the observability layer: string escaping
// for the emitter and a small recursive-descent parser so tests (and
// tooling) can validate the BENCH_*.json artifacts without an external
// dependency.  Not a general-purpose JSON library: numbers are doubles
// and duplicate object keys keep the last value only on lookup.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starring::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// added).  Control characters become \u00XX.
std::string json_escape(std::string_view s);

/// Format a double as a JSON number (no nan/inf — those clamp to 0,
/// which JSON cannot represent).
std::string json_number(double v);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // source order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Last value under `key` when this is an object, else nullptr.
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document (trailing garbage is an error).
/// Returns nullopt with a short reason in *error on malformed input.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace starring::obs
