// The binary n-cube Q_n and fault-tolerant ring embedding in it.
//
// Why it is here: the paper's opening claim is that the star graph is
// "an attractive alternative to the hypercube", and its reference [35]
// (Yang, Tien & Raghavendra) is precisely ring embedding in faulty
// hypercubes — a ring of length 2^n - 2|Fv| survives |Fv| <= n-2 vertex
// faults.  Reproducing that result gives experiment E14 its comparison
// axis: how ring capacity degrades per fault on the two topologies at
// comparable machine sizes (S_8 with 40320 nodes of degree 7 vs Q_15
// with 32768 nodes of degree 15).
//
// Q_n is bipartite by parity of popcount with equal halves, so
// 2^n - 2|Fv| is worst-case optimal by the same argument as the star
// graph's bound.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

namespace starring {

/// Vertices of Q_n are the bitmasks 0 .. 2^n - 1; u ~ v iff they differ
/// in exactly one bit.
class Hypercube {
 public:
  explicit Hypercube(int n);

  int n() const { return n_; }
  std::uint32_t num_vertices() const { return 1u << n_; }
  int degree() const { return n_; }

  static bool adjacent(std::uint32_t u, std::uint32_t v) {
    const std::uint32_t d = u ^ v;
    return d != 0 && (d & (d - 1)) == 0;
  }

  static int parity(std::uint32_t u);

 private:
  int n_;
};

using CubeFaults = std::unordered_set<std::uint32_t>;

/// Healthy ring of length 2^n - 2|Fv| in Q_n with |Fv| <= n-2 vertex
/// faults (Yang-Tien-Raghavendra).  Recursive: split along a dimension
/// that balances the faults, embed in both halves, splice across; base
/// cases (n <= 4) are solved exhaustively and optimally.  Returns
/// nullopt outside the regime when no such ring exists.
std::optional<std::vector<std::uint32_t>> embed_hypercube_ring(
    int n, const CubeFaults& faults);

/// Independent check: simple cycle, no faulty vertex.
bool verify_hypercube_ring(int n, const CubeFaults& faults,
                           const std::vector<std::uint32_t>& ring);

}  // namespace starring
