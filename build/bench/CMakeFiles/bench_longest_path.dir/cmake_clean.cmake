file(REMOVE_RECURSE
  "CMakeFiles/bench_longest_path.dir/bench_longest_path.cpp.o"
  "CMakeFiles/bench_longest_path.dir/bench_longest_path.cpp.o.d"
  "bench_longest_path"
  "bench_longest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_longest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
