#include "baselines/tseng.hpp"

#include <cassert>

#include "core/chaining.hpp"
#include "core/super_ring.hpp"

namespace starring {

namespace {

std::optional<EmbedResult> embed_with_loss(const StarGraph& g,
                                           const FaultSet& faults,
                                           const EmbedOptions& opts,
                                           int per_fault_loss) {
  const int n = g.n();
  if (n < 5) {
    // One block: the paper's small cases coincide with the main engine.
    auto res = embed_longest_ring(g, faults, opts);
    if (res && per_fault_loss > 2) {
      // Emulate the baseline's loss on the single block: drop extra
      // vertices so the reported ring matches the baseline bound.  For
      // comparison purposes the ring returned stays the best found.
      return res;
    }
    return res;
  }
  const PartitionSelection sel =
      select_partition_positions(n, faults, opts.heuristic);
  for (int restart = 0; restart < std::max(1, opts.max_restarts); ++restart) {
    const auto sr = build_block_ring(n, sel.positions, faults, restart);
    if (!sr) continue;
    auto res = chain_block_ring(g, *sr, faults, opts, per_fault_loss);
    if (res) {
      res->stats.restarts = restart;
      return res;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<EmbedResult> tseng_vertex_fault_ring(const StarGraph& g,
                                                   const FaultSet& faults,
                                                   const EmbedOptions& opts) {
  assert(faults.num_edge_faults() == 0);
  return embed_with_loss(g, faults, opts, /*per_fault_loss=*/4);
}

std::optional<EmbedResult> tseng_edge_fault_ring(const StarGraph& g,
                                                 const FaultSet& faults,
                                                 const EmbedOptions& opts) {
  assert(faults.num_vertex_faults() == 0);
  // No vertex faults: every block target stays 24 and the engine only
  // has to route around the forbidden edges — exactly the edge-fault
  // theorem.
  return embed_longest_ring(g, faults, opts);
}

}  // namespace starring
