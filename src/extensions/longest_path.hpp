// Extension: longest fault-free PATHS with prescribed endpoints.
//
// The natural companion of the paper's ring theorem (published by the
// same authors as follow-up work): in S_n with |Fv| <= n-3 vertex
// faults, between any two healthy vertices s and t there is a healthy
// path of length
//     n! - 2|Fv| - 1   vertices: n! - 2|Fv|      when parity(s) != parity(t),
//     n! - 2|Fv| - 2   vertices: n! - 2|Fv| - 1  when parity(s) == parity(t),
// and both counts are worst-case optimal by the same bipartite
// argument (a path alternates partite sets, so its two endpoints fix
// how many vertices of each class it can absorb).
//
// The construction reuses the paper's machinery in open-chain form:
// Lemma 2 position selection (with one position forced to separate s
// and t, so they start in different blocks), an R_4-style block CHAIN
// whose first block holds s and last holds t, and per-block threading
// where one designated block gives up one extra vertex when s and t
// share a parity class.
#pragma once

#include <optional>

#include "core/ring_embedder.hpp"

namespace starring {

struct LongestPathResult {
  /// Open vertex sequence from s to t (EmbedResult::ring reused as the
  /// container; it is a path here, not a cycle).
  EmbedResult embed;
  /// Number of vertices promised: n! - 2|Fv| - (parities equal ? 1 : 0).
  std::uint64_t promised_vertices = 0;
};

/// The promise above, as a helper for tests and benches.
std::uint64_t expected_path_vertices(int n, std::size_t num_vertex_faults,
                                     const Perm& s, const Perm& t);

/// Embed the longest healthy s-t path.  Both endpoints must be healthy
/// and distinct; the guarantee regime is |Fv| + |Fe| <= n-3, n >= 4.
std::optional<LongestPathResult> embed_longest_path(const StarGraph& g,
                                                    const FaultSet& faults,
                                                    const Perm& s,
                                                    const Perm& t,
                                                    const EmbedOptions& opts = {});

}  // namespace starring
