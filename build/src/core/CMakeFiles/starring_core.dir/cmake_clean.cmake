file(REMOVE_RECURSE
  "CMakeFiles/starring_core.dir/block_oracle.cpp.o"
  "CMakeFiles/starring_core.dir/block_oracle.cpp.o.d"
  "CMakeFiles/starring_core.dir/chaining.cpp.o"
  "CMakeFiles/starring_core.dir/chaining.cpp.o.d"
  "CMakeFiles/starring_core.dir/partition_selector.cpp.o"
  "CMakeFiles/starring_core.dir/partition_selector.cpp.o.d"
  "CMakeFiles/starring_core.dir/ring_embedder.cpp.o"
  "CMakeFiles/starring_core.dir/ring_embedder.cpp.o.d"
  "CMakeFiles/starring_core.dir/super_ring.cpp.o"
  "CMakeFiles/starring_core.dir/super_ring.cpp.o.d"
  "CMakeFiles/starring_core.dir/verify.cpp.o"
  "CMakeFiles/starring_core.dir/verify.cpp.o.d"
  "libstarring_core.a"
  "libstarring_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
