// Unit tests for substar patterns: the paper's <s1...sn>_r notation,
// i-partitions, r-vertex adjacency/dif, and super-edges.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <string>

#include "stargraph/substar.hpp"

namespace starring {
namespace {

TEST(Substar, WholePattern) {
  const auto w = SubstarPattern::whole(5);
  EXPECT_EQ(w.n(), 5);
  EXPECT_EQ(w.r(), 5);
  EXPECT_EQ(w.num_members(), 120u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(w.is_free(i));
  EXPECT_TRUE(w.contains(Perm::identity(5)));
}

TEST(Substar, ChildFixesPosition) {
  const auto w = SubstarPattern::whole(5);
  const auto c = w.child(2, 3);
  EXPECT_EQ(c.r(), 4);
  EXPECT_EQ(c.slot(2), 3);
  EXPECT_TRUE(c.is_free(0));
  EXPECT_EQ(c.num_members(), 24u);
  EXPECT_TRUE(c.contains(Perm::of({0, 1, 3, 2, 4})));
  EXPECT_FALSE(c.contains(Perm::of({0, 3, 1, 2, 4})));
}

TEST(Substar, PaperExampleMembers) {
  // The paper's example: <* * * 3>_3 in S_4 (0-based: symbol 2 at
  // position 3) contains the six permutations with '3' last (1-based).
  auto pat = SubstarPattern::whole(4).child(3, 2);
  const auto ms = pat.members();
  ASSERT_EQ(ms.size(), 6u);
  std::set<std::string> strs;
  for (const auto& p : ms) strs.insert(p.to_string());
  // 1-based renderings: all permutations of {1,2,4} followed by 3.
  EXPECT_TRUE(strs.contains("1243"));
  EXPECT_TRUE(strs.contains("2143"));
  EXPECT_TRUE(strs.contains("4123"));
  EXPECT_TRUE(strs.contains("1423"));
  EXPECT_TRUE(strs.contains("2413"));
  EXPECT_TRUE(strs.contains("4213"));
}

TEST(Substar, ChildrenOfIPartition) {
  // Definition 2: an i-partition of an r-pattern yields r children.
  const auto w = SubstarPattern::whole(6);
  const auto kids = w.children(4);
  EXPECT_EQ(kids.size(), 6u);
  std::set<int> symbols;
  for (const auto& k : kids) {
    EXPECT_EQ(k.r(), 5);
    symbols.insert(k.slot(4));
  }
  EXPECT_EQ(symbols.size(), 6u);
}

TEST(Substar, ChildrenPartitionMembers) {
  // The children of an i-partition partition the parent's members.
  const auto parent = SubstarPattern::whole(5).child(1, 4);
  const auto kids = parent.children(3);
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& k : kids) {
    for (const auto& p : k.members()) {
      EXPECT_TRUE(parent.contains(p));
      EXPECT_TRUE(seen.insert(p.bits()).second);
      ++total;
    }
  }
  EXPECT_EQ(total, parent.num_members());
}

TEST(Substar, FreeSymbolsComplementFixed) {
  auto pat = SubstarPattern::whole(6).child(2, 1).child(5, 4);
  const auto fs = pat.free_symbols();
  ASSERT_EQ(fs.size(), 4u);
  for (int s : fs) {
    EXPECT_NE(s, 1);
    EXPECT_NE(s, 4);
  }
  EXPECT_EQ(pat.free_positions().size(), 4u);
  EXPECT_EQ(pat.free_positions().front(), 0);
}

TEST(Substar, AdjacencyAndDif) {
  // The paper's example: <* * 2 3>_2 adjacent to <* * 1 3>_2 with dif 3
  // (1-based); 0-based: position 2, symbols 1 vs 0.
  const auto a = SubstarPattern::whole(4).child(2, 1).child(3, 2);
  const auto b = SubstarPattern::whole(4).child(2, 0).child(3, 2);
  int dif = -1;
  EXPECT_TRUE(SubstarPattern::adjacent(a, b, &dif));
  EXPECT_EQ(dif, 2);
}

TEST(Substar, NotAdjacentToSelfOrTwoDiffs) {
  const auto a = SubstarPattern::whole(5).child(2, 1).child(3, 2);
  EXPECT_FALSE(SubstarPattern::adjacent(a, a));
  const auto c = SubstarPattern::whole(5).child(2, 0).child(3, 4);
  EXPECT_FALSE(SubstarPattern::adjacent(a, c));  // differs at 2 positions
}

TEST(Substar, DifferentFreeSetsNotAdjacent) {
  const auto a = SubstarPattern::whole(5).child(2, 1);
  const auto b = SubstarPattern::whole(5).child(3, 1);
  EXPECT_FALSE(SubstarPattern::adjacent(a, b));
}

TEST(Substar, MemberLocalIndexRoundTrip) {
  auto pat = SubstarPattern::whole(6).child(1, 2).child(4, 5);
  for (std::uint64_t k = 0; k < pat.num_members(); ++k) {
    const Perm p = pat.member(k);
    EXPECT_TRUE(pat.contains(p));
    EXPECT_EQ(pat.local_index(p), k);
  }
}

TEST(Substar, SingletonPattern) {
  const Perm p = Perm::of({3, 0, 2, 1});
  const auto s = SubstarPattern::singleton(p);
  EXPECT_EQ(s.r(), 1);
  EXPECT_EQ(s.num_members(), 1u);
  EXPECT_EQ(s.member(0), p);
  EXPECT_TRUE(s.contains(p));
  EXPECT_FALSE(s.contains(p.star_move(1)));
}

TEST(Substar, BlockGraphIsS4) {
  // Every 4-pattern's block graph is the 24-vertex, 3-regular S_4.
  auto pat = SubstarPattern::whole(7).child(2, 6).child(3, 5).child(6, 4);
  ASSERT_EQ(pat.r(), 4);
  const SmallGraph g = pat.block_graph();
  EXPECT_EQ(g.size(), 24);
  for (int v = 0; v < 24; ++v)
    EXPECT_EQ(std::popcount(g.neighbor_mask(v)), 3) << "vertex " << v;
}

TEST(Substar, BlockGraphIdenticalAcrossBlocks) {
  // The canonical-local-index claim the BlockOracle depends on: all
  // 4-patterns induce the same abstract graph.
  const SmallGraph base = SubstarPattern::whole(4).block_graph();
  auto other = SubstarPattern::whole(8)
                   .child(1, 0)
                   .child(3, 7)
                   .child(5, 2)
                   .child(7, 4);
  ASSERT_EQ(other.r(), 4);
  const SmallGraph g = other.block_graph();
  for (int u = 0; u < 24; ++u)
    EXPECT_EQ(g.neighbor_mask(u), base.neighbor_mask(u)) << "vertex " << u;
}

TEST(Substar, BlockGraphEdgesAreRealEdges) {
  auto pat = SubstarPattern::whole(6).child(2, 3).child(5, 0);
  const SmallGraph g = pat.block_graph();
  for (int u = 0; u < 24; ++u)
    for (int v = u + 1; v < 24; ++v)
      EXPECT_EQ(g.has_edge(u, v),
                pat.member(static_cast<std::uint64_t>(u))
                    .adjacent(pat.member(static_cast<std::uint64_t>(v))));
}

TEST(Substar, SuperEdgeEndpointCount) {
  // An r-edge comprises (r-1)! real edges (Section 2 of the paper).
  const auto parent = SubstarPattern::whole(6);
  const auto kids = parent.children(3);
  const auto eps = superedge_endpoints(kids[0], kids[1]);
  EXPECT_EQ(eps.size(), factorial(4));  // r = 5 children: (5-1)! = 24
  for (const auto& [u, v] : eps) {
    EXPECT_TRUE(kids[0].contains(u));
    EXPECT_TRUE(kids[1].contains(v));
    EXPECT_TRUE(u.adjacent(v));
  }
}

TEST(Substar, SuperEdgeEndpointsDistinct) {
  const auto parent = SubstarPattern::whole(5);
  const auto kids = parent.children(2);
  const auto eps = superedge_endpoints(kids[1], kids[3]);
  std::set<std::uint64_t> us;
  std::set<std::uint64_t> vs;
  for (const auto& [u, v] : eps) {
    us.insert(u.bits());
    vs.insert(v.bits());
  }
  EXPECT_EQ(us.size(), eps.size());
  EXPECT_EQ(vs.size(), eps.size());
}

TEST(Substar, MemberExpanderMatchesPattern) {
  // The allocation-free expander must agree with the reference
  // implementation on every member of assorted patterns.
  const std::vector<SubstarPattern> pats = {
      SubstarPattern::whole(4),
      SubstarPattern::whole(6).child(2, 1).child(4, 5),
      SubstarPattern::whole(8).child(1, 7).child(3, 0).child(5, 2).child(7, 4),
      SubstarPattern::whole(5).child(2, 3),
  };
  for (const auto& pat : pats) {
    const MemberExpander ex(pat);
    EXPECT_EQ(ex.r(), pat.r());
    for (std::uint64_t k = 0; k < pat.num_members(); ++k) {
      const Perm p = pat.member(k);
      EXPECT_EQ(ex.member(k), p) << pat.to_string() << " k=" << k;
      EXPECT_EQ(ex.local_index(p), k);
    }
  }
}

TEST(Substar, MemberRankMatchesUnrankRoundTrip) {
  // member_rank(k) must equal member(k).rank() everywhere: r == 4 takes
  // the table fast path, r < 4 the generic decomposition, r > 4 the
  // unrank fallback.
  const std::vector<SubstarPattern> pats = {
      SubstarPattern::whole(4),                                    // r=4, n=4
      SubstarPattern::whole(6).child(4, 0).child(5, 3),            // r=4, n=6
      SubstarPattern::whole(8).child(2, 6).child(5, 1).child(7, 3),  // r=5
      SubstarPattern::whole(9)
          .child(1, 8)
          .child(4, 2)
          .child(6, 0)
          .child(8, 5),                                            // r=5, n=9
      SubstarPattern::whole(9)
          .child(1, 8)
          .child(4, 2)
          .child(6, 0)
          .child(8, 5)
          .child(3, 7),                                            // r=4, n=9
      SubstarPattern::whole(7).child(2, 4).child(3, 0).child(5, 6)
          .child(6, 1),                                            // r=3
      SubstarPattern::whole(5).child(1, 0).child(2, 4).child(3, 1)
          .child(4, 2),                                            // r=1
  };
  for (const auto& pat : pats) {
    const MemberExpander ex(pat);
    for (std::uint64_t k = 0; k < pat.num_members(); ++k)
      EXPECT_EQ(ex.member_rank(k), ex.member(k).rank())
          << pat.to_string() << " k=" << k;
  }
}

TEST(Substar, FreeSymbolIndexMatchesSortedFreeSymbols) {
  const auto pat = SubstarPattern::whole(7).child(2, 4).child(5, 0).child(6, 2);
  const MemberExpander ex(pat);
  const auto syms = pat.free_symbols();  // ascending
  for (int idx = 0; idx < static_cast<int>(syms.size()); ++idx)
    EXPECT_EQ(ex.free_symbol_index(syms[static_cast<std::size_t>(idx)]), idx);
  EXPECT_EQ(ex.free_symbol_index(4), -1);  // fixed symbol
  EXPECT_EQ(ex.free_symbol_index(0), -1);
  EXPECT_EQ(ex.free_symbol_index(2), -1);
}

TEST(Substar, FromPackedRoundTrip) {
  for (VertexId r = 0; r < factorial(6); r += 37) {
    const Perm p = Perm::unrank(r, 6);
    EXPECT_EQ(Perm::from_packed(p.bits(), 6), p);
  }
}

TEST(Substar, ToStringFormat) {
  auto pat = SubstarPattern::whole(5).child(2, 1).child(4, 3);
  EXPECT_EQ(pat.to_string(), "<* * 2 * 4>_3");
}

TEST(Substar, HashDistinguishesPatterns) {
  const auto a = SubstarPattern::whole(5).child(2, 1);
  const auto b = SubstarPattern::whole(5).child(2, 3);
  EXPECT_NE(SubstarPatternHash{}(a), SubstarPatternHash{}(b));
  EXPECT_EQ(SubstarPatternHash{}(a), SubstarPatternHash{}(a));
}

}  // namespace
}  // namespace starring
