file(REMOVE_RECURSE
  "CMakeFiles/starring_baselines.dir/latifi.cpp.o"
  "CMakeFiles/starring_baselines.dir/latifi.cpp.o.d"
  "CMakeFiles/starring_baselines.dir/tseng.cpp.o"
  "CMakeFiles/starring_baselines.dir/tseng.cpp.o.d"
  "libstarring_baselines.a"
  "libstarring_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
