# Empty dependencies file for starring_baselines.
# This may be replaced when dependencies are built.
