# Empty dependencies file for starring_sim.
# This may be replaced when dependencies are built.
