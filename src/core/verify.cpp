#include "core/verify.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

constexpr std::size_t kOk = std::numeric_limits<std::size_t>::max();

RingReport verify_sequence(const StarGraph& g, const FaultSet& faults,
                           const std::vector<VertexId>& seq, bool cyclic,
                           unsigned threads) {
  obs::ScopedPhase phase("verify");
  obs::trace::ScopedSpan span("verify");
  obs::counter("verify.calls").add();
  RingReport rep;
  rep.length = seq.size();
  // Degenerate shapes are rejected up front with fixed messages — the
  // adjacency scan below must never be what trips on them.
  if (seq.empty()) {
    rep.error = "empty sequence";
    return rep;
  }
  if (cyclic && seq.size() < 3) {
    rep.error = "a cycle needs at least 3 vertices, got " +
                std::to_string(seq.size());
    return rep;
  }

  // Range check (parallel scan for the first offender).
  const std::size_t bad_id = parallel_reduce(
      std::size_t{0}, seq.size(), threads, kOk,
      [&](std::size_t i) { return seq[i] >= g.num_vertices() ? i : kOk; },
      [](std::size_t a, std::size_t b) { return std::min(a, b); });
  if (bad_id != kOk) {
    rep.error = "vertex id out of range: " + std::to_string(seq[bad_id]);
    return rep;
  }

  // Duplicate check: dense bitmap over [0, n!) — sequential writes, but
  // a single linear pass.
  {
    std::vector<std::uint8_t> seen(g.num_vertices(), 0);
    for (const VertexId id : seq) {
      if (seen[id]) {
        rep.error = "repeated vertex: " + g.vertex(id).to_string();
        return rep;
      }
      seen[id] = 1;
    }
  }

  // Adjacency + fault checks, one step per index (the unrank-heavy hot
  // loop: this is where threads pay off on multi-million-vertex rings).
  const std::size_t steps = cyclic ? seq.size() : seq.size() - 1;
  const std::size_t bad_step = parallel_reduce(
      std::size_t{0}, steps + 1, threads, kOk,
      [&](std::size_t i) -> std::size_t {
        if (i == steps) {
          // Fault check for the first vertex (not covered as any step's
          // successor when the sequence is open).
          return faults.vertex_faulty(g.vertex(seq[0])) ? i : kOk;
        }
        const Perm a = g.vertex(seq[i]);
        const Perm b = g.vertex(seq[(i + 1) % seq.size()]);
        if (faults.vertex_faulty(b)) return i;
        if (!a.adjacent(b)) return i;
        if (faults.edge_faulty(a, b)) return i;
        return kOk;
      },
      [](std::size_t a, std::size_t b) { return std::min(a, b); });

  if (bad_step != kOk) {
    if (bad_step == steps) {
      rep.error = "faulty vertex on ring: " + g.vertex(seq[0]).to_string();
      return rep;
    }
    const Perm a = g.vertex(seq[bad_step]);
    const Perm b = g.vertex(seq[(bad_step + 1) % seq.size()]);
    if (faults.vertex_faulty(b))
      rep.error = "faulty vertex on ring: " + b.to_string();
    else if (!a.adjacent(b))
      rep.error =
          "non-adjacent step " + a.to_string() + " -> " + b.to_string();
    else
      rep.error = "faulty edge used: " + a.to_string() + " -- " +
                  b.to_string();
    return rep;
  }
  rep.valid = true;
  return rep;
}

}  // namespace

RingReport verify_healthy_ring(const StarGraph& g, const FaultSet& faults,
                               const std::vector<VertexId>& ring,
                               unsigned threads) {
  RingReport rep = verify_sequence(g, faults, ring, /*cyclic=*/true, threads);
  if (!rep.valid) obs::counter("verify.rejects").add();
  return rep;
}

RingReport verify_healthy_path(const StarGraph& g, const FaultSet& faults,
                               const std::vector<VertexId>& path,
                               unsigned threads) {
  RingReport rep = verify_sequence(g, faults, path, /*cyclic=*/false, threads);
  if (!rep.valid) obs::counter("verify.rejects").add();
  return rep;
}

}  // namespace starring
