file(REMOVE_RECURSE
  "libstarring_util.a"
)
