// starring — longest-ring embedding in faulty star graphs.
//
// Umbrella header: pulls in the whole public API.
//
//   StarGraph g(8);
//   FaultSet faults = random_vertex_faults(g, 5, /*seed=*/1);
//   auto ring = embed_longest_ring(g, faults);           // n! - 2|Fv|
//   auto ok   = verify_healthy_ring(g, faults, ring->ring);
//
// Reproduces Hsieh, Chen & Ho, "Embed Longest Rings onto Star Graphs
// with Vertex Faults" (ICPP 1998), the prior-art baselines it improves
// on (Tseng et al., Latifi & Bagherzadeh), its mixed-fault corollary,
// and the companion longest-path result, plus the routing and
// simulation substrate of the surrounding literature.
#pragma once

#include "baselines/latifi.hpp"
#include "baselines/tseng.hpp"
#include "core/block_oracle.hpp"
#include "core/chaining.hpp"
#include "core/partition_selector.hpp"
#include "core/ring_embedder.hpp"
#include "core/super_ring.hpp"
#include "core/verify.hpp"
#include "extensions/longest_path.hpp"
#include "extensions/mixed_faults.hpp"
#include "extensions/pancyclic.hpp"
#include "fault/fault.hpp"
#include "fault/generators.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/graph.hpp"
#include "hypercube/hypercube.hpp"
#include "pancake/pancake.hpp"
#include "perm/permutation.hpp"
#include "routing/routing.hpp"
#include "service/cache.hpp"
#include "service/canonical.hpp"
#include "service/service.hpp"
#include "sim/ring_sim.hpp"
#include "sim/self_healing.hpp"
#include "stargraph/decomposition.hpp"
#include "stargraph/star_graph.hpp"
#include "stargraph/substar.hpp"
#include "util/io.hpp"
#include "util/parallel.hpp"
