# Empty dependencies file for test_star_graph.
# This may be replaced when dependencies are built.
