file(REMOVE_RECURSE
  "CMakeFiles/degradation_study.dir/degradation_study.cpp.o"
  "CMakeFiles/degradation_study.dir/degradation_study.cpp.o.d"
  "degradation_study"
  "degradation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degradation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
