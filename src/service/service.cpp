#include "service/service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/verify.hpp"
#include "stargraph/star_graph.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

obs::Counter& c_requests() {
  static obs::Counter& c = obs::counter("svc.requests");
  return c;
}
obs::Counter& c_rejected() {
  static obs::Counter& c = obs::counter("svc.rejected");
  return c;
}
obs::Counter& c_hits() {
  static obs::Counter& c = obs::counter("svc.cache_hits");
  return c;
}
obs::Counter& c_misses() {
  static obs::Counter& c = obs::counter("svc.cache_misses");
  return c;
}
obs::Counter& c_batches() {
  static obs::Counter& c = obs::counter("svc.batches");
  return c;
}
obs::Counter& c_batch_size_max() {
  static obs::Counter& c = obs::counter("svc.batch_size_max");
  return c;
}
obs::Counter& c_queue_depth_max() {
  static obs::Counter& c = obs::counter("svc.queue_depth_max");
  return c;
}
obs::Counter& c_embed_failures() {
  static obs::Counter& c = obs::counter("svc.embed_failures");
  return c;
}
obs::Counter& c_verify_failures() {
  static obs::Counter& c = obs::counter("svc.verify_failures");
  return c;
}
obs::Counter& c_verified() {
  static obs::Counter& c = obs::counter("svc.verified");
  return c;
}

ServiceResponse error_response(std::uint64_t id, std::string reason) {
  ServiceResponse r;
  r.id = id;
  r.status = ServiceStatus::kError;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

EmbedService::EmbedService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cache_capacity) {
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

EmbedService::~EmbedService() {
  drain();
  if (scheduler_.joinable()) scheduler_.join();
}

bool EmbedService::submit(ServiceRequest req, Callback on_done, bool wait) {
  // `admitted` is stamped at entry, before any backpressure wait: the
  // latency histogram and the svc.request root span both cover the full
  // submit-to-response interval the caller experienced.
  Pending p{std::move(req), std::move(on_done),
            std::chrono::steady_clock::now(), {}};
  if (obs::trace::enabled()) {
    p.span.trace_id = obs::trace::new_trace_id();
    p.span.span_id = obs::trace::new_span_id();
  }
  const obs::trace::Context root = p.span;
  const auto admitted_at = p.admitted;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (wait) {
      admit_cv_.wait(lock, [this] {
        return queue_.size() < opts_.queue_depth || draining_;
      });
    }
    if (draining_ || queue_.size() >= opts_.queue_depth) {
      c_rejected().add();
      return false;
    }
    queue_.push_back(std::move(p));
    c_queue_depth_max().record_max(
        static_cast<std::int64_t>(queue_.size()));
  }
  // Admission span: time spent blocked on queue backpressure (plus the
  // queue push itself).  Rejected submissions record nothing — their
  // trace never delivers a svc.request root.
  if (root.valid()) {
    obs::trace::emit("svc.admit", root.trace_id, obs::trace::new_span_id(),
                     root.span_id, admitted_at,
                     std::chrono::steady_clock::now());
  }
  c_requests().add();
  work_cv_.notify_one();
  return true;
}

std::optional<ServiceResponse> EmbedService::next_response() {
  std::unique_lock<std::mutex> lock(mu_);
  resp_cv_.wait(lock,
                [this] { return !responses_.empty() || stopped_; });
  if (responses_.empty()) return std::nullopt;
  ServiceResponse r = std::move(responses_.front());
  responses_.pop_front();
  return r;
}

void EmbedService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  admit_cv_.notify_all();
  work_cv_.notify_all();
}

std::vector<EmbedService::Pending> EmbedService::take_batch() {
  std::vector<Pending> batch;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
  if (queue_.empty()) return batch;  // draining with nothing left
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const int n = batch.front().req.n;
  // Compatible = same dimension: those requests share StarGraph sizing,
  // oracle working set, and (via canonical dedup) possibly embeddings.
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opts_.batch_max;) {
    if (it->req.n == n) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  lock.unlock();
  admit_cv_.notify_all();
  return batch;
}

CanonicalRingCache::RingPtr EmbedService::compute_canonical(
    int n, const CanonicalForm& canon) {
  const StarGraph g(n);
  const auto res = embed_longest_ring(g, canon.faults, opts_.embed);
  if (!res.has_value()) {
    c_embed_failures().add();
    return nullptr;
  }
  auto ring = std::make_shared<const std::vector<VertexId>>(
      std::move(res->ring));
  cache_.insert(canon.key, ring);
  return ring;
}

ServiceResponse EmbedService::finish(const ServiceRequest& req,
                                     const CanonicalForm& canon,
                                     const CanonicalRingCache::RingPtr& ring,
                                     bool cache_hit) {
  if (req.n < 3 || req.n > kMaxN)
    return error_response(req.id, "unsupported dimension");
  if (ring == nullptr)
    return error_response(
        req.id, "embedding failed (outside the guarantee regime?)");
  ServiceResponse resp;
  resp.id = req.id;
  resp.status = ServiceStatus::kOk;
  resp.cache_hit = cache_hit;
  {
    obs::trace::ScopedSpan span("svc.relabel");
    resp.ring = relabel_ring(*ring, inverse_of(canon.to_canonical), req.n);
  }
  if (req.verify || (cache_hit && opts_.verify_on_hit)) {
    obs::trace::ScopedSpan span("svc.verify");
    const StarGraph g(req.n);
    const RingReport report = verify_healthy_ring(g, req.faults, resp.ring);
    if (!report.valid) {
      c_verify_failures().add();
      return error_response(req.id, "verifier: " + report.error);
    }
    c_verified().add();
    resp.verified = true;
  }
  return resp;
}

void EmbedService::run_batch(std::vector<Pending> batch) {
  obs::ScopedPhase phase("svc_batch");
  // The batch itself is its own trace (the scheduler has no request
  // context); per-request spans below parent into each request's trace
  // via explicit ContextGuards, not into this one.
  obs::trace::ScopedSpan batch_span("svc.batch");
  c_batches().add();
  c_batch_size_max().record_max(static_cast<std::int64_t>(batch.size()));

  // Close out each request's queue-wait interval: admitted on the
  // submitter's thread, picked up here.
  const auto batch_start = std::chrono::steady_clock::now();
  for (const Pending& p : batch) {
    if (p.span.valid())
      obs::trace::emit("svc.queue_wait", p.span.trace_id,
                       obs::trace::new_span_id(), p.span.span_id,
                       p.admitted, batch_start);
  }

  const int n = batch.front().req.n;
  struct Slot {
    CanonicalForm canon;
    CanonicalRingCache::RingPtr ring;
    bool hit = false;
  };
  std::vector<Slot> slots(batch.size());

  // Canonicalize and consult the cache; each distinct canonical
  // instance is computed at most once per batch, so intra-batch
  // duplicates are hits even when the cache was cold.
  std::vector<std::size_t> compute;  // slot index owning each distinct miss
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const obs::trace::ContextGuard as_request(batch[i].span);
    {
      obs::trace::ScopedSpan span("svc.canonicalize");
      slots[i].canon = canonicalize(n, batch[i].req.faults);
    }
    {
      obs::trace::ScopedSpan span("svc.cache_probe");
      slots[i].ring = cache_.lookup(slots[i].canon.key);
    }
    if (slots[i].ring != nullptr) {
      slots[i].hit = true;
      continue;
    }
    bool owned = false;
    for (const std::size_t j : compute) {
      if (slots[j].canon.key == slots[i].canon.key) {
        slots[i].hit = true;  // served by slot j's computation
        owned = true;
        break;
      }
    }
    if (!owned) compute.push_back(i);
  }

  std::vector<ServiceResponse> out(batch.size());
  try {
    // Compute the distinct misses.  A single miss keeps the pipeline's
    // own data parallelism; several misses fan out one embedding per
    // pool lane instead (nested regions run inline).  n < 3 has no
    // embedding to compute; finish() reports it per request.
    const unsigned threads = opts_.embed.effective_threads();
    if (n >= 3 && compute.size() == 1) {
      const obs::trace::ContextGuard as_request(
          batch[compute.front()].span);
      obs::trace::ScopedSpan span("svc.embed");
      Slot& s = slots[compute.front()];
      s.ring = compute_canonical(n, s.canon);
    } else if (n >= 3 && !compute.empty()) {
      parallel_for(0, compute.size(), threads, [&](std::size_t k) {
        const obs::trace::ContextGuard as_request(batch[compute[k]].span);
        obs::trace::ScopedSpan span("svc.embed");
        Slot& s = slots[compute[k]];
        s.ring = compute_canonical(n, s.canon);
      });
    }
    for (const Slot& s : slots) (s.hit ? c_hits() : c_misses()).add();
    // Batch-local duplicates of a miss share the owner's ring.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (slots[i].ring != nullptr || !slots[i].hit) continue;
      for (const std::size_t j : compute)
        if (slots[j].canon.key == slots[i].canon.key) {
          slots[i].ring = slots[j].ring;
          break;
        }
    }

    // Relabel into each caller's frame and verify as asked —
    // per-request work, fanned out across the pool.
    parallel_for(0, batch.size(), threads, [&](std::size_t i) {
      const obs::trace::ContextGuard as_request(batch[i].span);
      out[i] = finish(batch[i].req, slots[i].canon, slots[i].ring,
                      slots[i].hit);
    });
  } catch (const std::exception& e) {
    // Deliver something for every request even if a stage threw
    // (allocation failure, ...): callers blocked on these ids.
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = error_response(batch[i].req.id,
                              std::string("internal: ") + e.what());
  }

  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    latency_.record(now - batch[i].admitted);
    // Emit each request's root span now that every child has closed:
    // the whole admitted-to-delivered interval, parent 0.
    if (batch[i].span.valid())
      obs::trace::emit("svc.request", batch[i].span.trace_id,
                       batch[i].span.span_id, 0, batch[i].admitted, now);
    if (batch[i].done) {
      batch[i].done(std::move(out[i]));
    } else {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        responses_.push_back(std::move(out[i]));
      }
      resp_cv_.notify_all();
    }
  }
}

void EmbedService::scheduler_loop() {
  while (true) {
    std::vector<Pending> batch = take_batch();
    if (batch.empty()) break;  // drained
    run_batch(std::move(batch));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  resp_cv_.notify_all();
}

ServiceResponse EmbedService::process_now(const ServiceRequest& req) {
  obs::ScopedPhase phase("svc_request");
  // Synchronous path: the whole request is one scope, so the root and
  // its children all come from plain ScopedSpan nesting.
  obs::trace::ScopedSpan root("svc.request");
  c_requests().add();
  if (req.n < 3 || req.n > kMaxN)
    return error_response(req.id, "unsupported dimension");
  CanonicalForm canon;
  {
    obs::trace::ScopedSpan span("svc.canonicalize");
    canon = canonicalize(req.n, req.faults);
  }
  CanonicalRingCache::RingPtr ring;
  {
    obs::trace::ScopedSpan span("svc.cache_probe");
    ring = cache_.lookup(canon.key);
  }
  const bool hit = ring != nullptr;
  (hit ? c_hits() : c_misses()).add();
  if (!hit) {
    obs::trace::ScopedSpan span("svc.embed");
    ring = compute_canonical(req.n, canon);
  }
  return finish(req, canon, ring, hit);
}

}  // namespace starring
