#include "loadgen/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "fault/generators.hpp"
#include "perm/factorial.hpp"
#include "stargraph/star_graph.hpp"

namespace starring::loadgen {

ZipfSampler::ZipfSampler(std::size_t classes, double exponent) {
  if (classes == 0) classes = 1;
  cdf_.resize(classes);
  double total = 0;
  for (std::size_t i = 0; i < classes; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t ZipfSampler::sample(double u01) const {
  u01 = std::min(std::max(u01, 0.0), 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u01);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

std::optional<TenantSpec> parse_tenant_spec(const std::string& text,
                                            std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<TenantSpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  TenantSpec spec;
  std::istringstream ss(text);
  std::string field;
  bool first = true;
  while (std::getline(ss, field, ':')) {
    if (first) {
      first = false;
      spec.name = field;
      continue;
    }
    const auto eq = field.find('=');
    if (eq == std::string::npos) return fail("expected key=value: " + field);
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (val.empty()) return fail("empty value for " + key);
    const double d = std::atof(val.c_str());
    const long l = std::atol(val.c_str());
    if (key == "rate") {
      spec.rate = d;
    } else if (key == "arrival") {
      if (val == "poisson")
        spec.arrival = Arrival::kPoisson;
      else if (val == "burst" || val == "bursty")
        spec.arrival = Arrival::kBursty;
      else
        return fail("arrival must be poisson|burst");
    } else if (key == "on_ms") {
      spec.on_ms = d;
    } else if (key == "off_ms") {
      spec.off_ms = d;
    } else if (key == "zipf") {
      spec.zipf = d;
    } else if (key == "classes") {
      if (l < 1) return fail("classes must be >= 1");
      spec.classes = static_cast<std::size_t>(l);
    } else if (key == "pattern") {
      if (val == "zipf")
        spec.pattern = Pattern::kZipf;
      else if (val == "scan")
        spec.pattern = Pattern::kScan;
      else
        return fail("pattern must be zipf|scan");
    } else if (key == "nmin") {
      spec.nmin = static_cast<int>(l);
    } else if (key == "nmax") {
      spec.nmax = static_cast<int>(l);
    } else if (key == "deadline_ms") {
      if (l < 0) return fail("deadline_ms must be >= 0");
      spec.deadline_ms = l;
    } else if (key == "verify") {
      spec.verify = l != 0;
    } else {
      return fail("unknown key: " + key);
    }
  }
  if (spec.name.empty()) return fail("empty tenant name");
  if (spec.name.size() > kMaxTenantLen)
    return fail("tenant name longer than the wire allows");
  if (spec.rate <= 0) return fail("rate must be > 0");
  if (spec.nmin < 3 || spec.nmax < spec.nmin || spec.nmax > kMaxN)
    return fail("need 3 <= nmin <= nmax <= " + std::to_string(kMaxN));
  if (spec.arrival == Arrival::kBursty &&
      (spec.on_ms <= 0 || spec.off_ms < 0))
    return fail("bursty needs on_ms > 0 and off_ms >= 0");
  return spec;
}

ArrivalClock::ArrivalClock(const TenantSpec& spec, std::uint64_t seed)
    : rng_(seed ^ 0xA5A5F00D5EEDULL),
      rate_(spec.rate),
      bursty_(spec.arrival == Arrival::kBursty) {
  if (bursty_) {
    on_s_ = spec.on_ms / 1e3;
    off_s_ = spec.off_ms / 1e3;
    window_end_ = on_s_;
  }
}

std::chrono::nanoseconds ArrivalClock::next() {
  // Exponential inter-arrival; 1 - u keeps log() away from 0.
  const double u =
      static_cast<double>(rng_()) / static_cast<double>(UINT64_MAX);
  t_ += -std::log(1.0 - std::min(u, 0.999999999)) / rate_;
  if (bursty_) {
    // An arrival that lands past the on-window carries its overshoot
    // across the silent gap into the next window, so bursts stay
    // Poisson inside windows and the long-run rate scales by the duty
    // cycle.
    while (t_ > window_end_) {
      t_ += off_s_;
      window_end_ += on_s_ + off_s_;
    }
  }
  return std::chrono::nanoseconds(static_cast<std::int64_t>(t_ * 1e9));
}

ServiceRequest synth_request(const TenantSpec& spec, std::uint64_t seed,
                             std::size_t cls, std::uint64_t id) {
  // Seed by (tenant, class) only: every repeat of a class is the exact
  // same request, which is what makes zipf-hot classes cacheable.
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL +
                      std::hash<std::string>{}(spec.name) + cls);
  ServiceRequest req;
  req.id = id;
  req.n = spec.nmin +
          static_cast<int>(rng() % static_cast<std::uint64_t>(
                                       spec.nmax - spec.nmin + 1));
  req.verify = spec.verify;
  const StarGraph g(req.n);
  const int budget = req.n - 3;  // the paper's guarantee regime
  const int nf =
      budget > 0
          ? static_cast<int>(rng() % static_cast<std::uint64_t>(budget + 1))
          : 0;
  req.faults = random_vertex_faults(g, nf, rng());
  req.deadline_ms = spec.deadline_ms;
  req.tenant = spec.name;
  return req;
}

std::optional<double> parse_scalar(std::string_view prom_text,
                                   std::string_view metric) {
  std::size_t pos = 0;
  while (pos < prom_text.size()) {
    std::size_t eol = prom_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = prom_text.size();
    const std::string_view line = prom_text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.size() <= metric.size() || line[0] == '#') continue;
    if (line.substr(0, metric.size()) != metric) continue;
    const char after = line[metric.size()];
    if (after != ' ' && after != '\t') continue;  // label set or longer name
    const std::string value(line.substr(metric.size() + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) return std::nullopt;
    return v;
  }
  return std::nullopt;
}

}  // namespace starring::loadgen
