file(REMOVE_RECURSE
  "libstarring_pancake.a"
)
