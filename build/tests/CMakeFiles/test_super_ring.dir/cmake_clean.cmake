file(REMOVE_RECURSE
  "CMakeFiles/test_super_ring.dir/test_super_ring.cpp.o"
  "CMakeFiles/test_super_ring.dir/test_super_ring.cpp.o.d"
  "test_super_ring"
  "test_super_ring.pdb"
  "test_super_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_super_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
