// Long-running embedding service: admission queue, batch scheduler,
// symmetry-canonical result cache.
//
// Request flow:
//   submit()            bounded admission queue (blocking backpressure
//      |                or immediate rejection, caller's choice)
//   scheduler thread    pops a batch of same-dimension requests
//      |
//   canonicalize        map (n, F) to its relabeling-class
//      |                representative (service/canonical.hpp)
//   cache lookup        sharded LRU keyed by canonical form; a batch
//      |                computes each distinct canonical instance once
//   embed (miss)        Theorem-1 pipeline on the persistent thread
//      |                pool, in the canonical frame
//   relabel + verify    map the canonical ring back to the caller's
//      |                frame; optionally re-run the independent
//   respond             verifier (always on request, and on every
//                       cache hit with verify_on_hit)
//
// Computing only in the canonical frame makes responses deterministic:
// a cache hit is bit-identical to what a fresh computation of the same
// request would return.  Graceful drain: drain() stops admission,
// everything already queued is processed and delivered, then
// next_response() returns nullopt.
//
// Observability (svc.* counters, emitted like every other area's):
//   svc.requests / svc.rejected      admitted vs bounced at the queue
//   svc.throttled                    bounced by a tenant token bucket
//   svc.cache_hits / svc.cache_misses  canonical-cache outcomes
//   svc.cache_evictions              LRU pressure
//   svc.batches / svc.batch_size_max / svc.queue_depth_max
//   svc.embed_failures / svc.verify_failures / svc.verified
//   svc.timeouts                     requests answered `status timeout`
//   svc.latency.*                    submit-to-response histogram
//   svc.tenant.<t>.requests/.throttled/.ok/.timeouts/.hits
//   svc.tenant.<t>.latency.*         per-tenant histogram (folds into
//                                    the Prometheus exposition)
//
// Multi-tenant QoS: every request carries an accounting principal (the
// wire `tenant` line; absent means `default` — untagged traffic never
// bypasses quotas).  Admission charges a per-tenant token bucket
// (tenant_rate / tenant_burst); an exhausted bucket answers `status
// throttled` immediately.  Batch formation is deficit-round-robin over
// per-tenant FIFO queues: each batch visits tenants in rotation,
// granting drr_quantum requests of service per visit, so a tenant
// flooding the queue cannot starve the others — a lightly loaded
// tenant's requests ride the next batches regardless of how deep the
// flooder's backlog is.  Batches stay same-dimension: the first
// DRR-selected request pins n and the rest of the batch is filled with
// matching-n requests in DRR order.
//
// Deadlines: a request may carry a completion budget (deadline_ms,
// measured from admission).  Expired requests still queued are shed at
// batch formation; an in-flight embedding whose every interested
// request is past budget is cooperatively cancelled (a watchdog thread
// flips the EmbedOptions::cancel flag the pipeline polls).  Either way
// the response is `status timeout` — strictly: a ring computed after
// the budget elapsed is cached for future callers but not returned.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ring_embedder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/canonical.hpp"
#include "util/io.hpp"

namespace starring {

struct ServiceOptions {
  /// Admission-queue bound; submit() blocks (wait=true) or returns
  /// false (wait=false) while this many requests are queued.
  std::size_t queue_depth = 256;
  /// Most requests one scheduler batch may contain.
  std::size_t batch_max = 16;
  /// Canonical embeddings kept by the LRU cache.
  std::size_t cache_capacity = 4096;
  /// Re-run the independent verifier on every cache hit after
  /// relabeling (defense against cache corruption; requests can also
  /// ask for verification individually).
  bool verify_on_hit = false;
  /// Per-tenant token-bucket refill rate in requests/second; 0 turns
  /// quotas off entirely (every tenant unlimited).
  double tenant_rate = 0.0;
  /// Token-bucket depth (burst allowance); 0 defaults to
  /// max(1, tenant_rate).
  double tenant_burst = 0.0;
  /// Requests of service a tenant earns per DRR visit at batch
  /// formation (>= 1; higher values trade fairness granularity for
  /// fewer cross-tenant switches inside a batch).
  std::size_t drr_quantum = 1;
  /// Distinct tenants tracked before new names collapse into the
  /// `other` bucket (tenant names become metric names; the registry
  /// must not grow without bound on adversarial input).
  std::size_t max_tenants = 64;
  /// Knobs for the underlying Theorem-1 pipeline.
  EmbedOptions embed;
};

class EmbedService {
 public:
  using Callback = std::function<void(ServiceResponse)>;

  explicit EmbedService(ServiceOptions opts = {});
  ~EmbedService();  // drains and joins the scheduler
  EmbedService(const EmbedService&) = delete;
  EmbedService& operator=(const EmbedService&) = delete;

  /// Admit a request.  With wait=true a full queue blocks the caller
  /// until space frees (backpressure); with wait=false it returns false
  /// instead.  Returns false once drain() has begun.  A null on_done
  /// routes the response to next_response(); otherwise on_done runs on
  /// the scheduler thread.
  bool submit(ServiceRequest req, Callback on_done = nullptr,
              bool wait = true);

  /// Block for the next completed callback-less response; nullopt once
  /// the service has drained and every response was consumed.
  std::optional<ServiceResponse> next_response();

  /// Stop admitting; queued requests still complete.  Idempotent and
  /// non-blocking — destruction (or a next_response() nullopt) marks
  /// the drain finished.
  void drain();

  /// Synchronous single request on the caller's thread, sharing the
  /// cache and counters but bypassing queue and batcher.  For tests,
  /// benches, and embedded callers.
  ServiceResponse process_now(const ServiceRequest& req);

  /// Pre-populate the canonical result cache with a known-good ring
  /// (snapshot warm start).  `key` is the CanonicalForm::key of the
  /// instance computed in the canonical frame; the ring must be exactly
  /// what compute_canonical would produce for it — seeded entries are
  /// served as ordinary cache hits, relabeled and (optionally)
  /// re-verified like any other.  Call before serving traffic.
  void seed_cache(const std::string& key, std::vector<VertexId> ring);

  /// Entries currently held by the canonical result cache (the shard
  /// HEALTH probe reports this).
  std::size_t cache_size() const { return cache_.size(); }

  /// Requests admitted but not yet answered — queued plus in flight,
  /// including synchronous process_now callers.  The HEALTH probe
  /// reports this as `inflight`.
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  const ServiceOptions& options() const { return opts_; }

 private:
  struct TenantState;

  struct Pending {
    ServiceRequest req;
    Callback done;
    TenantState* tenant = nullptr;
    std::chrono::steady_clock::time_point admitted;
    /// Absolute completion budget (admitted + deadline_ms); only
    /// meaningful when has_deadline.
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    // Root span context of this request's trace (invalid while tracing
    // is off).  Allocated at admission — adopting the wire trace id
    // when the request carried one, so the svc.request root lands in
    // the caller's (e.g. the proxy's) trace and parents under its
    // forward span.  Every stage the request passes through parents
    // its spans here, and the svc.request root itself is emitted with
    // explicit [admitted, delivered] endpoints.
    obs::trace::Context span;

    bool expired(std::chrono::steady_clock::time_point now) const {
      return has_deadline && now >= deadline;
    }
  };

  /// Per-tenant accounting: token bucket, DRR backlog + deficit, and
  /// the tenant's slice of the metrics registry.  Owned by tenants_
  /// (stable addresses); mutable state is guarded by mu_ except the
  /// obs objects, which are internally atomic.
  struct TenantState {
    TenantState(const std::string& name, double burst,
                std::chrono::steady_clock::time_point now)
        : requests(obs::counter("svc.tenant." + name + ".requests")),
          throttled(obs::counter("svc.tenant." + name + ".throttled")),
          ok(obs::counter("svc.tenant." + name + ".ok")),
          timeouts(obs::counter("svc.tenant." + name + ".timeouts")),
          hits(obs::counter("svc.tenant." + name + ".hits")),
          latency("svc.tenant." + name + ".latency"),
          tokens(burst),
          last_refill(now) {}

    obs::Counter& requests;
    obs::Counter& throttled;
    obs::Counter& ok;
    obs::Counter& timeouts;
    obs::Counter& hits;
    obs::LatencyHistogram latency;

    double tokens;
    std::chrono::steady_clock::time_point last_refill;
    /// DRR service credit, in requests.
    std::int64_t deficit = 0;
    std::deque<Pending> queue;
  };

  /// Resolve (creating on first sight) the tenant bucket for a wire
  /// name; "" maps to `default`, names beyond max_tenants collapse
  /// into `other`.  Caller holds mu_.
  TenantState& tenant_state(const std::string& name);
  /// Charge one token from `t`'s bucket at `now`; false when the
  /// bucket is exhausted (the request must be throttled).  Caller
  /// holds mu_.
  bool quota_admit(TenantState& t,
                   std::chrono::steady_clock::time_point now);

  void scheduler_loop();
  /// Pop up to batch_max same-dimension requests by deficit round
  /// robin over the tenant queues (the first selected request pins the
  /// dimension), preserving each tenant's internal FIFO order.
  std::vector<Pending> take_batch();
  void run_batch(std::vector<Pending> batch);
  /// Canonical-frame embedding for a cache miss; inserts on success.
  /// A non-null cancel is polled by the pipeline (deadline watchdog).
  CanonicalRingCache::RingPtr compute_canonical(
      int n, const CanonicalForm& canon,
      const std::atomic<bool>* cancel = nullptr);
  /// Latency accounting, root-span emission, and response routing
  /// (callback or next_response queue) for one finished request.
  void deliver(Pending& p, ServiceResponse resp,
               std::chrono::steady_clock::time_point now);

  // --- Deadline watchdog --------------------------------------------
  // One thread arms per-computation cancel flags: run_batch registers
  // (deadline, flag) pairs before embedding and unregisters after; the
  // watchdog flips flags whose deadline passed.
  std::uint64_t watch_deadline(std::chrono::steady_clock::time_point deadline,
                               std::atomic<bool>* cancel);
  void unwatch(std::uint64_t id);
  void watchdog_loop();
  /// Relabel a canonical ring into the request's frame and verify as
  /// asked; fills everything but the latency accounting.
  ServiceResponse finish(const ServiceRequest& req,
                         const CanonicalForm& canon,
                         const CanonicalRingCache::RingPtr& ring,
                         bool cache_hit);

  ServiceOptions opts_;
  CanonicalRingCache cache_;
  obs::LatencyHistogram latency_{"svc.latency"};

  std::mutex mu_;
  std::condition_variable admit_cv_;  // submitters waiting for space
  std::condition_variable work_cv_;   // scheduler waiting for work
  std::condition_variable resp_cv_;   // consumers waiting for responses
  /// Tenant buckets (stable addresses; Pending::tenant points here)
  /// and the round-robin visit order for DRR batch formation.
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::vector<TenantState*> rr_order_;
  std::size_t rr_cursor_ = 0;
  /// Requests queued across all tenants (the admission bound).
  std::size_t total_queued_ = 0;
  /// Admitted-but-unanswered requests (queued + in flight), across the
  /// queued and synchronous paths; read lock-free by the HEALTH probe.
  std::atomic<std::uint64_t> inflight_{0};
  std::deque<ServiceResponse> responses_;
  bool draining_ = false;
  bool stopped_ = false;  // scheduler exited; no more responses coming
  std::thread scheduler_;

  struct Watch {
    std::chrono::steady_clock::time_point deadline;
    std::atomic<bool>* cancel;
  };
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::vector<std::pair<std::uint64_t, Watch>> watches_;
  std::uint64_t next_watch_id_ = 1;
  bool watch_stop_ = false;
  std::thread watchdog_;
};

}  // namespace starring
