// Baseline: Latifi & Bagherzadeh, "Hamiltonicity of the clustered-star
// graph with embedding applications" (PDPTA 1996).
//
// Their result: if every vertex fault lies inside one embedded S_m
// (m minimal), S_n embeds a healthy ring of length n! - m! — the whole
// faulty substar is excised and the remainder (the "clustered star") is
// shown Hamiltonian.  The gap to this paper's n! - 2|Fv| is dramatic
// when the faults do not cluster: scattered faults force m = n and the
// method yields nothing, while |Fv| clustered faults with
// |Fv| <= (n-3) cost m! >= |Fv| vertices instead of 2|Fv|.
#pragma once

#include <optional>

#include "core/ring_embedder.hpp"

namespace starring {

struct LatifiResult {
  EmbedResult embed;
  /// Dimension of the excised substar (ring length == n! - m!).
  int m = 0;
};

/// Minimal substar dimension m such that one embedded S_m contains all
/// vertex faults (always >= 2; a lone fault still costs a 2-substar
/// because rings in a bipartite graph lose vertices in pairs).
/// Returns n when the faults span the whole graph (method degenerates).
int minimal_enclosing_substar_dim(const StarGraph& g, const FaultSet& faults);

/// Embed the n! - m! ring.  Returns nullopt when the faults span the
/// whole graph (m == n: scattered faults defeat the method), when n < 5,
/// or when `faults` has edge faults.
std::optional<LatifiResult> latifi_clustered_ring(const StarGraph& g,
                                                  const FaultSet& faults,
                                                  const EmbedOptions& opts = {});

}  // namespace starring
