file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma4.dir/bench_lemma4.cpp.o"
  "CMakeFiles/bench_lemma4.dir/bench_lemma4.cpp.o.d"
  "bench_lemma4"
  "bench_lemma4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
