// Embedding options shared by every bench binary.
#pragma once

#include "core/ring_embedder.hpp"

namespace starring {

/// Options every bench embeds with: one thread per hardware core (still
/// overridable at run time via STARRING_THREADS) and a pre-warmed
/// block-path cache, so timings reflect the steady state.
inline EmbedOptions bench_embed_options() {
  EmbedOptions opts;
  opts.num_threads = 0;
  opts.prewarm_oracle = true;
  return opts;
}

}  // namespace starring
