// In-block path oracle for S_4 blocks.
//
// After the (a_1, ..., a_{n-4})-partition, every block is an embedded
// S_4 with 24 vertices.  The paper's Lemmas 4, 5 and 6 construct, by
// case analysis, (i) Hamiltonian paths through healthy blocks and
// (ii) healthy paths of length 4!-3 = 21 through blocks holding one
// fault, both with prescribed entry and exit vertices.  We replace the
// case analysis by exhaustive search: 24-vertex searches are
// microseconds, every block of every S_n maps to the SAME abstract
// 24-vertex graph (local Lehmer indices over the free positions), and a
// global memo over (entry, exit, fault-mask, target) makes repeated
// queries O(1).  This is strictly stronger than the paper's
// construction — it finds a path whenever one exists — while the
// verifier (core/verify.hpp) keeps the results honest.
//
// The memo is process-wide and sharded: every BlockOracle instance (and
// every thread) reads the same cache through striped read-mostly
// shared_mutex shards, so concurrent embeds never recompute a path
// another thread already found.  prewarm_fault_free() optionally
// populates every fault-free Hamiltonian key up front so worker threads
// start hot.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace starring {

class BlockOracle {
 public:
  static constexpr int kBlockSize = 24;  // 4!

  BlockOracle();

  /// The canonical abstract S_4 block graph (identical for every
  /// embedded S_4 of every S_n under local Lehmer indexing).
  const SmallGraph& graph() const { return graph_; }

  /// Parity of the local arrangement with Lehmer index k, as a
  /// permutation of four symbols.  The parity of the real vertex is
  /// this XOR the parity of the block's base member.
  int local_parity(int k) const { return parity_[static_cast<std::size_t>(k)]; }

  /// A path from local vertex `from` to `to` visiting exactly
  /// `target_vertices` vertices, avoiding vertices in `forbidden`
  /// (bitmask) and the undirected local edges in `removed_edges`.
  /// Results for the common removed_edges-empty case are memoized in the
  /// process-wide shared cache.  Returns nullopt when no such path
  /// exists.  Safe to call concurrently from many threads (the
  /// hit/miss tallies below are per-instance and not synchronized).
  std::optional<std::vector<int>> find_path(
      int from, int to, std::uint32_t forbidden, int target_vertices,
      std::span<const std::pair<int, int>> removed_edges = {});

  /// Populate the shared cache with every fault-free Hamiltonian query
  /// (from, to, forbidden=0, target=24) — 24*23 keys — so no embed pays
  /// the cold search.  Runs once per process (cleared by clear_cache);
  /// subsequent calls are a single atomic load.
  static void prewarm_fault_free();

  /// Drop every memoized entry (test isolation / cold-cache benchmarks).
  static void clear_cache();

  /// Memo statistics for THIS instance's queries (for the ablation
  /// bench and tests; the process totals live in the obs counters
  /// oracle.cache_hits / oracle.cache_misses).
  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }

 private:
  SmallGraph graph_;
  std::vector<int> parity_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace starring
