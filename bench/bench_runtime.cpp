// Experiment E4 — construction cost scaling (google-benchmark).
//
// Wall time of the full pipeline (Lemma 2 selection, R_4 construction,
// chaining, emission) as n grows with the maximum fault load
// |Fv| = n-3, plus a fault-free Hamiltonian-cycle series.  The
// construction is near-linear in n! (the output size), so ns/vertex is
// the number to watch.
#include <benchmark/benchmark.h>

#include "bench_artifact.hpp"

#include "core/ring_embedder.hpp"
#include "fault/generators.hpp"

using namespace starring;

namespace {

void BM_EmbedMaxFaults(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  const FaultSet f = random_vertex_faults(g, n - 3, 42);
  std::uint64_t len = 0;
  for (auto _ : state) {
    auto res = embed_longest_ring(g, f, bench_embed_options());
    if (!res) state.SkipWithError("embedding failed");
    len = res->ring.size();
    benchmark::DoNotOptimize(res->ring.data());
  }
  state.counters["ring_len"] = static_cast<double>(len);
  state.counters["ns_per_vertex"] = benchmark::Counter(
      static_cast<double>(factorial(n)),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(factorial(n)));
}
BENCHMARK(BM_EmbedMaxFaults)->DenseRange(5, 9)->Unit(benchmark::kMillisecond);
// S_10: 3.6M vertices; pinned to two iterations so the full suite stays
// fast while still exercising the multi-second regime.
BENCHMARK(BM_EmbedMaxFaults)
    ->Arg(10)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_HamiltonianCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  for (auto _ : state) {
    auto res = embed_hamiltonian_cycle(g, bench_embed_options());
    if (!res) state.SkipWithError("embedding failed");
    benchmark::DoNotOptimize(res->ring.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(factorial(n)));
}
BENCHMARK(BM_HamiltonianCycle)->DenseRange(5, 9)->Unit(benchmark::kMillisecond);

void BM_VerifyRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const StarGraph g(n);
  const auto res = embed_hamiltonian_cycle(g, bench_embed_options());
  if (!res) {
    state.SkipWithError("embedding failed");
    return;
  }
  for (auto _ : state) {
    // Adjacency walk over the whole ring (the verifier's hot loop).
    Perm prev = g.vertex(res->ring.back());
    bool ok = true;
    for (const VertexId id : res->ring) {
      const Perm cur = g.vertex(id);
      ok &= prev.adjacent(cur);
      prev = cur;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(res->ring.size()));
}
BENCHMARK(BM_VerifyRing)->DenseRange(5, 9)->Unit(benchmark::kMillisecond);

}  // namespace

STARRING_BENCH_JSON_MAIN("runtime");
