#include "routing/routing.hpp"

#include "graph/disjoint_paths.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

namespace starring {

namespace {

/// The relative arrangement: rel(i) = position where `b` holds the
/// symbol a(i).  Sorting `rel` to the identity by star moves is
/// equivalent to routing from `a` to `b`.
Perm relative_arrangement(const Perm& a, const Perm& b) {
  assert(a.size() == b.size());
  std::vector<int> rel(static_cast<std::size_t>(a.size()));
  for (int i = 0; i < a.size(); ++i)
    rel[static_cast<std::size_t>(i)] = b.position_of(a.get(i));
  return Perm::of(rel);
}

/// The greedy optimal sorter: while unsorted, send slot 0's token home,
/// or fetch any misplaced token when slot 0 already holds token 0.
/// Emits the dimension sequence; its length equals the cycle formula.
std::vector<int> sorting_moves(Perm p) {
  std::vector<int> dims;
  while (true) {
    const int s = p.get(0);
    if (s != 0) {
      dims.push_back(s);
      p = p.star_move(s);
      continue;
    }
    int misplaced = -1;
    for (int i = 1; i < p.size(); ++i) {
      if (p.get(i) != i) {
        misplaced = i;
        break;
      }
    }
    if (misplaced == -1) break;
    dims.push_back(misplaced);
    p = p.star_move(misplaced);
  }
  return dims;
}

}  // namespace

int star_distance(const Perm& p) {
  // Akers-Krishnamurthy cycle formula.
  int k = 0;  // symbols out of place
  int c = 0;  // nontrivial cycles
  bool zero_in_cycle = false;
  std::uint32_t seen = 0;
  for (int i = 0; i < p.size(); ++i) {
    if ((seen >> i) & 1u) continue;
    int len = 0;
    int j = i;
    bool hits_zero = false;
    while (!((seen >> j) & 1u)) {
      seen |= 1u << j;
      if (j == 0) hits_zero = true;
      j = p.get(j);
      ++len;
    }
    if (len >= 2) {
      k += len;
      ++c;
      if (hits_zero) zero_in_cycle = true;
    }
  }
  if (k == 0) return 0;
  return zero_in_cycle ? k + c - 2 : k + c;
}

int star_distance(const Perm& a, const Perm& b) {
  return star_distance(relative_arrangement(a, b));
}

int star_diameter(int n) { return 3 * (n - 1) / 2; }

std::vector<Perm> shortest_route(const Perm& from, const Perm& to) {
  const std::vector<int> dims = sorting_moves(relative_arrangement(from, to));
  std::vector<Perm> route;
  route.reserve(dims.size());
  Perm cur = from;
  for (const int d : dims) {
    cur = cur.star_move(d);
    route.push_back(cur);
  }
  assert(route.empty() || route.back() == to);
  return route;
}

std::optional<std::vector<Perm>> fault_tolerant_route(const StarGraph& g,
                                                      const FaultSet& faults,
                                                      const Perm& from,
                                                      const Perm& to) {
  assert(!faults.vertex_faulty(from) && !faults.vertex_faulty(to));
  if (from == to) return std::vector<Perm>{};
  // BFS keyed on packed bits; parents recover the path.
  std::unordered_map<std::uint64_t, Perm> parent;
  parent.reserve(1024);
  std::queue<Perm> q;
  q.push(from);
  parent.emplace(from.bits(), from);
  while (!q.empty()) {
    const Perm u = q.front();
    q.pop();
    for (int d = 1; d < g.n(); ++d) {
      const Perm v = u.star_move(d);
      if (faults.vertex_faulty(v) || faults.edge_faulty(u, v)) continue;
      if (parent.contains(v.bits())) continue;
      parent.emplace(v.bits(), u);
      if (v == to) {
        std::vector<Perm> route;
        Perm cur = v;
        while (!(cur == from)) {
          route.push_back(cur);
          cur = parent.at(cur.bits());
        }
        std::reverse(route.begin(), route.end());
        return route;
      }
      q.push(v);
    }
  }
  return std::nullopt;
}

BroadcastSchedule broadcast_schedule(const StarGraph& g, const Perm& source) {
  BroadcastSchedule sched;
  std::vector<std::uint8_t> informed(g.num_vertices(), 0);
  std::vector<VertexId> frontier{source.rank()};
  informed[source.rank()] = 1;
  std::uint64_t total = 1;
  while (total < g.num_vertices()) {
    std::vector<std::pair<VertexId, VertexId>> round;
    std::vector<VertexId> fresh;
    for (const VertexId uid : frontier) {
      // Single-port: one send per informed vertex per round.
      const Perm u = g.vertex(uid);
      for (int d = 1; d < g.n(); ++d) {
        const VertexId vid = u.star_move(d).rank();
        if (informed[vid]) continue;
        informed[vid] = 1;
        round.emplace_back(uid, vid);
        fresh.push_back(vid);
        ++total;
        break;
      }
    }
    for (const VertexId vid : fresh) frontier.push_back(vid);
    if (round.empty()) {
      // Every informed vertex is saturated locally but coverage is
      // incomplete: rotate the frontier so BFS-order vertices retry.
      // Cannot happen on a connected vertex-transitive graph, but keep
      // the loop safe.
      break;
    }
    sched.rounds.push_back(std::move(round));
  }
  return sched;
}

std::vector<std::vector<Perm>> star_disjoint_paths(const StarGraph& g,
                                                   const Graph& net,
                                                   const Perm& s,
                                                   const Perm& t) {
  assert(net.num_vertices() == g.num_vertices());
  const auto raw =
      vertex_disjoint_paths(net, s.rank(), t.rank(), g.degree());
  std::vector<std::vector<Perm>> out;
  out.reserve(raw.size());
  for (const auto& ids : raw) {
    std::vector<Perm> path;
    path.reserve(ids.size());
    for (const auto id : ids) path.push_back(g.vertex(id));
    out.push_back(std::move(path));
  }
  return out;
}

int healthy_diameter(const StarGraph& g, const FaultSet& faults) {
  // Healthy adjacency, flattened once.
  const std::uint64_t nv = g.num_vertices();
  std::vector<std::uint8_t> faulty(nv, 0);
  for (const Perm& f : faults.vertex_faults()) faulty[f.rank()] = 1;

  std::vector<std::vector<std::uint32_t>> adj(nv);
  std::uint64_t healthy_count = 0;
  for (VertexId id = 0; id < nv; ++id) {
    if (faulty[id]) continue;
    ++healthy_count;
    const Perm u = g.vertex(id);
    for (int d = 1; d < g.n(); ++d) {
      const Perm v = u.star_move(d);
      const VertexId vid = v.rank();
      if (faulty[vid] || faults.edge_faulty(u, v)) continue;
      adj[id].push_back(static_cast<std::uint32_t>(vid));
    }
  }

  int diameter = 0;
  std::vector<int> dist(nv);
  std::vector<std::uint32_t> queue;
  queue.reserve(nv);
  for (VertexId src = 0; src < nv; ++src) {
    if (faulty[src]) continue;
    std::fill(dist.begin(), dist.end(), -1);
    queue.clear();
    queue.push_back(static_cast<std::uint32_t>(src));
    dist[src] = 0;
    std::uint64_t reached = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      for (const std::uint32_t v : adj[u]) {
        if (dist[v] != -1) continue;
        dist[v] = dist[u] + 1;
        diameter = std::max(diameter, dist[v]);
        queue.push_back(v);
        ++reached;
      }
    }
    if (reached != healthy_count) return -1;  // disconnected
  }
  return diameter;
}

}  // namespace starring
