
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stargraph/decomposition.cpp" "src/stargraph/CMakeFiles/starring_stargraph.dir/decomposition.cpp.o" "gcc" "src/stargraph/CMakeFiles/starring_stargraph.dir/decomposition.cpp.o.d"
  "/root/repo/src/stargraph/star_graph.cpp" "src/stargraph/CMakeFiles/starring_stargraph.dir/star_graph.cpp.o" "gcc" "src/stargraph/CMakeFiles/starring_stargraph.dir/star_graph.cpp.o.d"
  "/root/repo/src/stargraph/substar.cpp" "src/stargraph/CMakeFiles/starring_stargraph.dir/substar.cpp.o" "gcc" "src/stargraph/CMakeFiles/starring_stargraph.dir/substar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perm/CMakeFiles/starring_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/starring_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
