# Empty compiler generated dependencies file for test_block_oracle.
# This may be replaced when dependencies are built.
