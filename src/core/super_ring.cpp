#include "core/super_ring.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <unordered_set>

namespace starring {

int faults_in_pattern(const SubstarPattern& p, const FaultSet& faults) {
  int count = 0;
  for (const Perm& f : faults.vertex_faults())
    if (p.contains(f)) ++count;
  return count;
}

namespace {

/// Cyclic order for the first level: the n children of the a_1-partition
/// form K_n, so any order is a ring; we interleave fault-containing
/// children with healthy ones so no two sit adjacently (possible
/// whenever faulty children <= floor(n/2), amply true for |Fv| <= n-3
/// split across children).
std::vector<SubstarPattern> order_first_level(
    std::vector<SubstarPattern> children, const FaultSet& faults,
    int rotation) {
  std::vector<SubstarPattern> faulty;
  std::vector<SubstarPattern> healthy;
  for (auto& c : children) {
    (faults_in_pattern(c, faults) > 0 ? faulty : healthy)
        .push_back(std::move(c));
  }
  if (!healthy.empty()) {
    std::rotate(healthy.begin(),
                healthy.begin() + (rotation % static_cast<int>(healthy.size())),
                healthy.end());
  }
  // Round-robin: one faulty child, then a run of healthy ones, repeated.
  std::vector<SubstarPattern> out;
  out.reserve(faulty.size() + healthy.size());
  const std::size_t groups = std::max<std::size_t>(faulty.size(), 1);
  std::size_t h = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    if (g < faulty.size()) out.push_back(std::move(faulty[g]));
    const std::size_t take = (healthy.size() - h) / (groups - g == 0 ? 1 : (groups - g));
    for (std::size_t t = 0; t < take && h < healthy.size(); ++t)
      out.push_back(std::move(healthy[h++]));
  }
  while (h < healthy.size()) out.push_back(std::move(healthy[h++]));
  return out;
}

/// Bitmask over child symbols q of `parent`'s pos-partition whose child
/// holds at least one vertex fault: fault f lands in child(pos,
/// f.get(pos)) iff parent contains f, so the refinement levels can
/// score and order candidate children without constructing a single
/// throwaway pattern (the old code built two children per candidate
/// per connector pick and ran faults_in_pattern over each).
std::uint32_t faulty_children_mask(const SubstarPattern& parent, int pos,
                                   const FaultSet& faults) {
  std::uint32_t mask = 0;
  for (const Perm& f : faults.vertex_faults())
    if (parent.contains(f)) mask |= 1u << f.get(pos);
  return mask;
}

/// Symbol-level variant of order_middles: order the middle child
/// symbols of one K_r path (ascending within each class, mirroring the
/// free_symbols() enumeration the pattern-based code partitioned) so
/// fault-containing children are spread apart.  Returns the count.
int order_middle_syms(std::uint32_t mid_mask, std::uint32_t faulty_mask,
                      bool entry_faulty, bool exit_faulty, int* out) {
  int faulty[kMaxN];
  int healthy[kMaxN];
  int nf = 0;
  int nh = 0;
  for (std::uint32_t bits = mid_mask; bits != 0; bits &= bits - 1) {
    const int q = std::countr_zero(bits);
    if ((faulty_mask >> q) & 1u)
      faulty[nf++] = q;
    else
      healthy[nh++] = q;
  }
  int count = 0;
  bool prev_faulty = entry_faulty;
  int fi = 0;
  int hi = 0;
  while (fi < nf || hi < nh) {
    const bool last_slot = nf - fi + nh - hi == 1;
    const bool want_faulty =
        !prev_faulty && fi < nf && !(last_slot && exit_faulty);
    if (want_faulty || hi == nh) {
      out[count++] = faulty[fi++];
      prev_faulty = true;
    } else {
      out[count++] = healthy[hi++];
      prev_faulty = false;
    }
  }
  return count;
}

/// If `exclude` is a child of `parent` under the `pos`-partition,
/// return the symbol `exclude` fixes at `pos`; else -1.
int exclude_child_symbol(const SubstarPattern* exclude,
                         const SubstarPattern& parent, int pos) {
  if (exclude == nullptr || exclude->r() != parent.r() - 1) return -1;
  if (exclude->is_free(pos)) return -1;
  for (int i = 0; i < parent.n(); ++i) {
    if (i == pos) continue;
    if (parent.slot(i) != exclude->slot(i)) return -1;
  }
  return exclude->slot(pos);
}

/// One refinement level: partition every pattern of `ring` at position
/// `pos` and thread a Hamiltonian path through each resulting K_r.
/// When `exclude` is a child produced at this level, it is kept away
/// from every path end so the caller can erase it without breaking
/// consecutive adjacency (its neighbours are siblings in one K_r).
std::optional<std::vector<SubstarPattern>> refine(
    const std::vector<SubstarPattern>& ring, int pos, const FaultSet& faults,
    const SubstarPattern* exclude) {
  const auto m = ring.size();
  assert(m >= 3);

  // Ring-edge data: dif position and the next element's symbol there.
  std::vector<int> dif_pos(m);
  std::vector<int> next_sym(m);  // b_k: symbol A_{k+1} fixes at dif_pos[k]
  for (std::size_t k = 0; k < m; ++k) {
    const auto& a = ring[k];
    const auto& b = ring[(k + 1) % m];
    int p = -1;
    const bool adj = SubstarPattern::adjacent(a, b, &p);
    assert(adj);
    if (!adj) return std::nullopt;
    dif_pos[k] = p;
    next_sym[k] = b.slot(p);
  }

  // Which child symbols of each parent hold faults (scored and ordered
  // by mask — no throwaway child patterns).
  std::vector<std::uint32_t> fmask(m);
  for (std::size_t k = 0; k < m; ++k)
    fmask[k] = faulty_children_mask(ring[k], pos, faults);

  // Choose the connector symbols c_k (the symbol shared by the exit
  // child of A_k and the entry child of A_{k+1}).
  std::vector<int> c(m, -1);
  auto pick = [&](std::size_t k, std::uint32_t extra_banned) -> int {
    const auto& a = ring[k];
    std::uint32_t cand = a.free_symbol_mask();
    cand &= ~(1u << next_sym[k]);
    if (k > 0 && c[k - 1] >= 0) cand &= ~(1u << c[k - 1]);
    cand &= ~extra_banned;
    // Keep the excluded child out of any path-end role: it must be
    // neither the exit of A_k nor the entry of A_{k+1}.
    if (const int q = exclude_child_symbol(exclude, a, pos); q >= 0)
      cand &= ~(1u << q);
    if (const int q = exclude_child_symbol(exclude, ring[(k + 1) % m], pos);
        q >= 0)
      cand &= ~(1u << q);
    const std::uint32_t f_a = fmask[k];
    const std::uint32_t f_b = fmask[(k + 1) % m];
    int best = -1;
    int best_score = -1;
    std::uint32_t bits = cand;
    while (bits) {
      const int q = std::countr_zero(bits);
      bits &= bits - 1;
      const int score = (((f_b >> q) & 1u) == 0 ? 2 : 0) +
                        (((f_a >> q) & 1u) == 0 ? 1 : 0);
      if (score > best_score) {
        best_score = score;
        best = q;
      }
    }
    return best;
  };
  for (std::size_t k = 0; k < m; ++k) {
    c[k] = pick(k, 0);
    if (c[k] < 0) return std::nullopt;
  }
  // Cyclic closure: the entry symbol of A_0 is c_{m-1}; it must differ
  // from the exit symbol c_0.  Re-pick c_0 if they collided (banning
  // both c_{m-1} and c_1 keeps every other constraint intact).
  if (c[0] == c[m - 1]) {
    const std::uint32_t banned =
        (1u << c[m - 1]) | (1u << c[1 % m]);
    c[0] = pick(0, banned);
    if (c[0] < 0) return std::nullopt;
  }

  // Thread the paths: each child pattern is constructed exactly once,
  // directly into its final slot.
  std::vector<SubstarPattern> out;
  out.reserve(m * static_cast<std::size_t>(ring.front().r()));
  for (std::size_t k = 0; k < m; ++k) {
    const auto& a = ring[k];
    const int entry_sym = c[(k + m - 1) % m];
    const int exit_sym = c[k];
    assert(entry_sym != exit_sym);
    const std::uint32_t mid_mask = a.free_symbol_mask() &
                                   ~(1u << entry_sym) & ~(1u << exit_sym);
    int order[kMaxN];
    const int mid_count = order_middle_syms(
        mid_mask, fmask[k], ((fmask[k] >> entry_sym) & 1u) != 0,
        ((fmask[k] >> exit_sym) & 1u) != 0, order);
    out.push_back(a.child(pos, entry_sym));
    for (int t = 0; t < mid_count; ++t) out.push_back(a.child(pos, order[t]));
    out.push_back(a.child(pos, exit_sym));
  }
  return out;
}

/// Open-chain refinement for the longest-path extension.  Differences
/// from refine(): no wraparound edge; the first element's entry child is
/// forced to the child containing `s` and the last element's exit child
/// to the child containing `t`.
std::optional<std::vector<SubstarPattern>> refine_path(
    const std::vector<SubstarPattern>& chain, int pos, const FaultSet& faults,
    const Perm& s, const Perm& t) {
  const auto m = chain.size();
  assert(m >= 2);
  assert(chain.front().contains(s) && chain.back().contains(t));

  std::vector<int> next_sym(m - 1);
  for (std::size_t k = 0; k + 1 < m; ++k) {
    int p = -1;
    const bool adj = SubstarPattern::adjacent(chain[k], chain[k + 1], &p);
    assert(adj);
    if (!adj) return std::nullopt;
    next_sym[k] = chain[k + 1].slot(p);
  }

  const int s_sym = s.get(pos);  // entry symbol forced at the first block
  const int t_sym = t.get(pos);  // exit symbol forced at the last block

  std::vector<std::uint32_t> fmask(m);
  for (std::size_t k = 0; k < m; ++k)
    fmask[k] = faulty_children_mask(chain[k], pos, faults);

  // Connector symbols c_k between chain[k] and chain[k+1].
  std::vector<int> c(m - 1, -1);
  for (std::size_t k = 0; k + 1 < m; ++k) {
    std::uint32_t cand = chain[k].free_symbol_mask();
    cand &= ~(1u << next_sym[k]);
    if (k == 0)
      cand &= ~(1u << s_sym);  // exit child must differ from s's child
    else
      cand &= ~(1u << c[k - 1]);
    if (k + 2 == m) {
      // The entry child of the last element is child(chain[m-1], c_k);
      // it must differ from t's child.
      cand &= ~(1u << t_sym);
    }
    int best = -1;
    int best_score = -1;
    std::uint32_t bits = cand;
    while (bits) {
      const int q = std::countr_zero(bits);
      bits &= bits - 1;
      const int score = (((fmask[k + 1] >> q) & 1u) == 0 ? 2 : 0) +
                        (((fmask[k] >> q) & 1u) == 0 ? 1 : 0);
      if (score > best_score) {
        best_score = score;
        best = q;
      }
    }
    if (best < 0) return std::nullopt;
    c[k] = best;
  }

  std::vector<SubstarPattern> out;
  out.reserve(m * static_cast<std::size_t>(chain.front().r()));
  for (std::size_t k = 0; k < m; ++k) {
    const auto& a = chain[k];
    const int entry_sym = k == 0 ? s_sym : c[k - 1];
    const int exit_sym = k + 1 == m ? t_sym : c[k];
    assert(entry_sym != exit_sym);
    const std::uint32_t mid_mask = a.free_symbol_mask() &
                                   ~(1u << entry_sym) & ~(1u << exit_sym);
    int order[kMaxN];
    const int mid_count = order_middle_syms(
        mid_mask, fmask[k], ((fmask[k] >> entry_sym) & 1u) != 0,
        ((fmask[k] >> exit_sym) & 1u) != 0, order);
    out.push_back(a.child(pos, entry_sym));
    for (int t = 0; t < mid_count; ++t) out.push_back(a.child(pos, order[t]));
    out.push_back(a.child(pos, exit_sym));
  }
  return out;
}

/// Order the first-level children of the open chain: the child holding
/// `s` first, the child holding `t` last, fault-containing children
/// spread through the middle.
std::vector<SubstarPattern> order_first_level_path(
    std::vector<SubstarPattern> children, const FaultSet& faults,
    const Perm& s, const Perm& t, int rotation) {
  SubstarPattern s_child = children.front();
  SubstarPattern t_child = children.front();
  std::vector<SubstarPattern> rest;
  for (auto& ch : children) {
    if (ch.contains(s))
      s_child = ch;
    else if (ch.contains(t))
      t_child = ch;
    else
      rest.push_back(std::move(ch));
  }
  std::vector<SubstarPattern> faulty;
  std::vector<SubstarPattern> healthy;
  for (auto& ch : rest)
    (faults_in_pattern(ch, faults) > 0 ? faulty : healthy)
        .push_back(std::move(ch));
  if (!healthy.empty()) {
    std::rotate(healthy.begin(),
                healthy.begin() + (rotation % static_cast<int>(healthy.size())),
                healthy.end());
  }
  std::vector<SubstarPattern> out;
  out.push_back(std::move(s_child));
  std::size_t hi = 0;
  for (std::size_t fi = 0; fi < faulty.size(); ++fi) {
    if (hi < healthy.size()) out.push_back(std::move(healthy[hi++]));
    out.push_back(std::move(faulty[fi]));
  }
  while (hi < healthy.size()) out.push_back(std::move(healthy[hi++]));
  out.push_back(std::move(t_child));
  return out;
}

}  // namespace

std::optional<SuperRing> build_block_path(int n,
                                          std::span<const int> positions,
                                          const FaultSet& faults,
                                          const Perm& s, const Perm& t,
                                          int rotation) {
  assert(n >= 5);
  assert(static_cast<int>(positions.size()) == n - 4);
  assert(s.get(positions[0]) != t.get(positions[0]) &&
         "positions[0] must separate s and t");
  const SubstarPattern whole = SubstarPattern::whole(n);
  std::vector<SubstarPattern> chain = order_first_level_path(
      whole.children(positions[0]), faults, s, t, rotation);
  for (std::size_t level = 1; level < positions.size(); ++level) {
    auto next = refine_path(chain, positions[level], faults, s, t);
    if (!next) return std::nullopt;
    chain = std::move(*next);
  }
  SuperRing sp;
  sp.ring = std::move(chain);
  return sp;
}

bool is_valid_super_path(int n, const SuperRing& sp, const Perm& s,
                         const Perm& t) {
  const auto& chain = sp.ring;
  if (chain.size() < 2) return false;
  const int r = chain.front().r();
  if (chain.size() * factorial(r) != factorial(n)) return false;
  if (!chain.front().contains(s) || !chain.back().contains(t)) return false;
  std::unordered_set<SubstarPattern, SubstarPatternHash> seen;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (chain[k].r() != r || chain[k].n() != n) return false;
    if (!seen.insert(chain[k]).second) return false;
    if (k + 1 < chain.size() &&
        !SubstarPattern::adjacent(chain[k], chain[k + 1]))
      return false;
  }
  return true;
}

std::optional<SuperRing> build_block_ring(int n,
                                          std::span<const int> positions,
                                          const FaultSet& faults, int rotation,
                                          const SubstarPattern* exclude) {
  assert(n >= 5);
  assert(static_cast<int>(positions.size()) == n - 4);
  const SubstarPattern whole = SubstarPattern::whole(n);
  std::vector<SubstarPattern> ring =
      order_first_level(whole.children(positions[0]), faults, rotation);
  // Erase the excluded pattern once the level producing its r is built.
  // At the first level the ring is a K_n cycle, and at refinement levels
  // the pick() bans above keep it mid-path, so erasing never breaks
  // consecutive adjacency.
  auto maybe_erase = [&]() {
    if (exclude == nullptr || ring.empty() || ring.front().r() != exclude->r())
      return;
    std::erase(ring, *exclude);
  };
  maybe_erase();
  for (std::size_t level = 1; level < positions.size(); ++level) {
    auto next = refine(ring, positions[level], faults, exclude);
    if (!next) return std::nullopt;
    ring = std::move(*next);
    maybe_erase();
  }
  SuperRing sr;
  sr.ring = std::move(ring);
  return sr;
}

bool is_valid_super_ring(int n, const SuperRing& sr,
                         std::uint64_t missing_vertices) {
  const auto& ring = sr.ring;
  if (ring.size() < 3) return false;
  const int r = ring.front().r();
  if (ring.size() * factorial(r) != factorial(n) - missing_vertices)
    return false;
  std::unordered_set<SubstarPattern, SubstarPatternHash> seen;
  for (std::size_t k = 0; k < ring.size(); ++k) {
    if (ring[k].r() != r || ring[k].n() != n) return false;
    if (!seen.insert(ring[k]).second) return false;
    if (!SubstarPattern::adjacent(ring[k], ring[(k + 1) % ring.size()]))
      return false;
  }
  return true;
}

}  // namespace starring
