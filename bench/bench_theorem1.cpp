// Experiment E1 — Theorem 1: S_n with |Fv| <= n-3 vertex faults embeds
// a healthy ring of length exactly n! - 2|Fv|.
//
// For every n and fault count, across several seeds and three fault
// shapes, the harness embeds, verifies independently, and reports the
// achieved length against the theorem's promise.  Columns mirror what a
// results table in the paper would have shown.
#include <cstdio>
#include <cstdlib>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

namespace {

struct Row {
  int n;
  int nf;
  const char* shape;
  int trials = 0;
  int ok = 0;
  std::uint64_t promise = 0;
  std::uint64_t achieved_min = ~0ULL;
  std::uint64_t achieved_max = 0;
  std::int64_t backtracks = 0;
};

void run_shape(Row& row, const StarGraph& g, const FaultSet& f) {
  ++row.trials;
  const auto res = embed_longest_ring(g, f, bench_embed_options());
  if (!res) return;
  const auto rep = verify_healthy_ring(g, f, res->ring);
  if (!rep.valid) return;
  row.achieved_min = std::min(row.achieved_min, rep.length);
  row.achieved_max = std::max(row.achieved_max, rep.length);
  row.backtracks += res->stats.backtracks;
  if (rep.length == row.promise) ++row.ok;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("theorem1");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("E1: Theorem 1 — ring length n! - 2|Fv| (|Fv| <= n-3)\n");
  std::printf("%3s %4s %-12s %10s %10s %10s %6s %10s\n", "n", "|Fv|", "shape",
              "promise", "min", "max", "ok", "backtracks");

  bool all_ok = true;
  for (int n = 4; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nf = 0; nf <= n - 3; ++nf) {
      struct {
        const char* name;
        FaultSet (*gen)(const StarGraph&, int, std::uint64_t);
      } shapes[] = {
          {"random", &random_vertex_faults},
          {"same-parity",
           +[](const StarGraph& gg, int c, std::uint64_t s) {
             return same_partite_vertex_faults(gg, c, 0, s);
           }},
          {"clustered", &clustered_neighbor_faults},
      };
      for (const auto& shape : shapes) {
        if (nf == 0 && shape.name != shapes[0].name) continue;
        Row row{n, nf, shape.name};
        row.promise = expected_ring_length(n, static_cast<std::size_t>(nf));
        for (int t = 0; t < trials; ++t)
          run_shape(row, g, shape.gen(g, nf, static_cast<std::uint64_t>(t)));
        std::printf("%3d %4d %-12s %10llu %10llu %10llu %3d/%-2d %10lld\n",
                    n, nf, shape.name,
                    static_cast<unsigned long long>(row.promise),
                    static_cast<unsigned long long>(
                        row.ok ? row.achieved_min : 0),
                    static_cast<unsigned long long>(row.achieved_max),
                    row.ok, row.trials,
                    static_cast<long long>(row.backtracks));
        if (row.ok != row.trials) all_ok = false;
      }
    }
  }
  std::printf("\n%s\n", all_ok
                            ? "RESULT: every instance met the theorem's "
                              "length exactly (paper reproduced)"
                            : "RESULT: some instances MISSED the promise");
  return all_ok ? 0 : 1;
}
