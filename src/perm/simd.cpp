#include "perm/simd.hpp"

#include <cstdlib>
#include <cstring>

#if defined(STARRING_SIMD_DISABLED)
// Vector tiers compiled out; the dispatcher below pins to scalar.
#elif defined(__x86_64__)
#define STARRING_TIER_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define STARRING_TIER_NEON 1
#include <arm_neon.h>
#endif

namespace starring::simd {
namespace {

inline int nib(std::uint64_t bits, int i) {
  return static_cast<int>((bits >> (4 * i)) & 0xF);
}

// ---------------------------------------------------------------------------
// Scalar tier: the reference semantics.  These mirror Perm::rank /
// Perm::unrank / inverse_of / relabel exactly, but work on raw packed
// bits so they carry no per-lane validation; parity is computed as
// inversion count mod 2, which equals the cycle parity Perm::parity()
// returns (n - #cycles ≡ #inversions mod 2).
// ---------------------------------------------------------------------------

void scalar_rank(const std::uint64_t* packed, std::size_t count, int n,
                 VertexId* out) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t b = packed[k];
    VertexId r = 0;
    for (int i = 0; i < n; ++i) {
      const int si = nib(b, i);
      int smaller = 0;
      for (int j = i + 1; j < n; ++j) smaller += nib(b, j) < si;
      r += static_cast<VertexId>(smaller) * factorial(n - 1 - i);
    }
    out[k] = r;
  }
}

void scalar_unrank(const VertexId* ranks, std::size_t count, int n,
                   std::uint64_t* out) {
  for (std::size_t k = 0; k < count; ++k) {
    VertexId r = ranks[k];
    std::uint16_t unused = static_cast<std::uint16_t>((1u << n) - 1);
    std::uint64_t bits = 0;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t f = factorial(n - 1 - i);
      int digit = static_cast<int>(r / f);
      r %= f;
      int s = 0;
      for (int b = 0; b < n; ++b) {
        if (unused & (1u << b)) {
          if (s == digit) {
            unused = static_cast<std::uint16_t>(unused & ~(1u << b));
            bits |= static_cast<std::uint64_t>(b) << (4 * i);
            break;
          }
          ++s;
        }
      }
    }
    out[k] = bits;
  }
}

void scalar_parity(const std::uint64_t* packed, std::size_t count, int n,
                   std::uint8_t* out) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t b = packed[k];
    int inv = 0;
    for (int i = 0; i < n; ++i) {
      const int si = nib(b, i);
      for (int j = i + 1; j < n; ++j) inv += nib(b, j) < si;
    }
    out[k] = static_cast<std::uint8_t>(inv & 1);
  }
}

void scalar_relabel(std::uint64_t g_bits, const std::uint64_t* packed,
                    std::size_t count, int n, std::uint64_t* out) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t p = packed[k];
    std::uint64_t bits = 0;
    for (int i = 0; i < n; ++i)
      bits |= static_cast<std::uint64_t>(nib(g_bits, nib(p, i))) << (4 * i);
    out[k] = bits;
  }
}

void scalar_inverse(const std::uint64_t* packed, std::size_t count, int n,
                    std::uint64_t* out) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t p = packed[k];
    std::uint64_t bits = 0;
    for (int i = 0; i < n; ++i)
      bits |= static_cast<std::uint64_t>(i) << (4 * nib(p, i));
    out[k] = bits;
  }
}

constexpr Kernels kScalarKernels = {scalar_rank, scalar_unrank, scalar_parity,
                                    scalar_relabel, scalar_inverse};

#if STARRING_TIER_AVX2
// ---------------------------------------------------------------------------
// AVX2 tier (x86-64; requires avx2 + bmi2 at runtime).
//
// A packed permutation expands to 16 bytes (one per slot), which makes
// the primitives byte-shuffle problems:
//   relabel  — vpshufb with the expanded relabeling as lookup table,
//              two permutations per 256-bit vector;
//   rank     — per Lehmer digit, splat slot i, vpcmpgtb against the
//              remaining slots, vpmovmskb + popcount (two lanes per
//              iteration share the compare);
//   parity   — same digit loop, summed mod 2 instead of weighted;
//   inverse  — four permutations per vector as u64 lanes, scattering
//              slot indices with vpsllvq variable shifts;
//   unrank   — stays lane-serial but swaps the seed's kth-set-bit scan
//              for BMI2 pdep.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,bmi2"))) inline __m128i expand16(
    std::uint64_t bits) {
  // u64 of 16 nibbles -> 16 bytes, byte i = nibble i.
  __m128i x = _mm_cvtsi64_si128(static_cast<long long>(bits));
  x = _mm_unpacklo_epi8(x, _mm_srli_epi64(x, 4));
  return _mm_and_si128(x, _mm_set1_epi8(0x0F));
}

__attribute__((target("avx2,bmi2"))) inline std::uint64_t pack16(__m128i bytes) {
  // 16 bytes (each 0..15) -> u64 of nibbles.  maddubs folds byte pairs
  // into lo + 16*hi, packus narrows the eight 16-bit lanes to bytes.
  const __m128i folded =
      _mm_maddubs_epi16(bytes, _mm_set1_epi16(0x1001));
  const __m128i narrowed = _mm_packus_epi16(folded, _mm_setzero_si128());
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(narrowed));
}

__attribute__((target("avx2,bmi2"))) void avx2_rank(const std::uint64_t* packed,
                                                    std::size_t count, int n,
                                                    VertexId* out) {
  const std::uint32_t valid = static_cast<std::uint32_t>((1u << n) - 1);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m256i bytes =
        _mm256_set_m128i(expand16(packed[k + 1]), expand16(packed[k]));
    std::uint64_t r0 = 0, r1 = 0;
    for (int i = 0; i < n - 1; ++i) {
      const __m256i splat =
          _mm256_shuffle_epi8(bytes, _mm256_set1_epi8(static_cast<char>(i)));
      const std::uint32_t m = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpgt_epi8(splat, bytes)));
      const std::uint32_t range = valid & ~((1u << (i + 1)) - 1);
      const std::uint64_t f = factorial(n - 1 - i);
      r0 += static_cast<std::uint64_t>(
                __builtin_popcount(m & 0xFFFFu & range)) * f;
      r1 += static_cast<std::uint64_t>(__builtin_popcount((m >> 16) & range)) *
            f;
    }
    out[k] = r0;
    out[k + 1] = r1;
  }
  for (; k < count; ++k) {
    const __m128i bytes = expand16(packed[k]);
    std::uint64_t r = 0;
    for (int i = 0; i < n - 1; ++i) {
      const __m128i splat =
          _mm_shuffle_epi8(bytes, _mm_set1_epi8(static_cast<char>(i)));
      const std::uint32_t m = static_cast<std::uint32_t>(
          _mm_movemask_epi8(_mm_cmpgt_epi8(splat, bytes)));
      const std::uint32_t range = valid & ~((1u << (i + 1)) - 1);
      r += static_cast<std::uint64_t>(__builtin_popcount(m & range)) *
           factorial(n - 1 - i);
    }
    out[k] = r;
  }
}

__attribute__((target("avx2,bmi2"))) void avx2_parity(
    const std::uint64_t* packed, std::size_t count, int n, std::uint8_t* out) {
  const std::uint32_t valid = static_cast<std::uint32_t>((1u << n) - 1);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m256i bytes =
        _mm256_set_m128i(expand16(packed[k + 1]), expand16(packed[k]));
    unsigned inv0 = 0, inv1 = 0;
    for (int i = 0; i < n - 1; ++i) {
      const __m256i splat =
          _mm256_shuffle_epi8(bytes, _mm256_set1_epi8(static_cast<char>(i)));
      const std::uint32_t m = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpgt_epi8(splat, bytes)));
      const std::uint32_t range = valid & ~((1u << (i + 1)) - 1);
      inv0 += static_cast<unsigned>(__builtin_popcount(m & 0xFFFFu & range));
      inv1 += static_cast<unsigned>(__builtin_popcount((m >> 16) & range));
    }
    out[k] = static_cast<std::uint8_t>(inv0 & 1);
    out[k + 1] = static_cast<std::uint8_t>(inv1 & 1);
  }
  if (k < count) {
    scalar_parity(packed + k, count - k, n, out + k);
  }
}

__attribute__((target("avx2,bmi2"))) void avx2_unrank(const VertexId* ranks,
                                                      std::size_t count, int n,
                                                      std::uint64_t* out) {
  for (std::size_t k = 0; k < count; ++k) {
    VertexId r = ranks[k];
    std::uint32_t unused = (1u << n) - 1;
    std::uint64_t bits = 0;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t f = factorial(n - 1 - i);
      const std::uint32_t digit = static_cast<std::uint32_t>(r / f);
      r %= f;
      // pdep deposits the single bit into the digit-th set position of
      // `unused` — the seed's linear kth-set-bit scan in one op.
      const std::uint32_t bit = _pdep_u32(1u << digit, unused);
      unused ^= bit;
      bits |= static_cast<std::uint64_t>(__builtin_ctz(bit)) << (4 * i);
    }
    out[k] = bits;
  }
}

__attribute__((target("avx2,bmi2"))) void avx2_relabel(
    std::uint64_t g_bits, const std::uint64_t* packed, std::size_t count,
    int n, std::uint64_t* out) {
  const __m128i table128 = expand16(g_bits);
  const __m256i table = _mm256_broadcastsi128_si256(table128);
  // Slots >= n expand to byte 0 and would look up g[0]; mask them back
  // to zero to preserve the packed invariant (high slots zero).
  const __m128i idx =
      _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  const __m128i valid128 =
      _mm_cmpgt_epi8(_mm_set1_epi8(static_cast<char>(n)), idx);
  const __m256i valid = _mm256_broadcastsi128_si256(valid128);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m256i bytes =
        _mm256_set_m128i(expand16(packed[k + 1]), expand16(packed[k]));
    const __m256i mapped =
        _mm256_and_si256(_mm256_shuffle_epi8(table, bytes), valid);
    const __m256i folded =
        _mm256_maddubs_epi16(mapped, _mm256_set1_epi16(0x1001));
    const __m256i narrowed =
        _mm256_packus_epi16(folded, _mm256_setzero_si256());
    out[k] = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm256_castsi256_si128(narrowed)));
    out[k + 1] = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm256_extracti128_si256(narrowed, 1)));
  }
  for (; k < count; ++k) {
    const __m128i bytes = expand16(packed[k]);
    const __m128i mapped =
        _mm_and_si128(_mm_shuffle_epi8(table128, bytes), valid128);
    out[k] = pack16(mapped);
  }
}

__attribute__((target("avx2,bmi2"))) void avx2_inverse(
    const std::uint64_t* packed, std::size_t count, int n,
    std::uint64_t* out) {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(packed + k));
    __m256i acc = _mm256_setzero_si256();
    for (int i = 0; i < n; ++i) {
      // shift amount per lane = 4 * (slot-i symbol); vpsllvq scatters
      // the slot index to that nibble of the inverse.
      const __m256i sym = _mm256_and_si256(_mm256_srli_epi64(v, 4 * i),
                                           _mm256_set1_epi64x(0xF));
      const __m256i sh = _mm256_slli_epi64(sym, 2);
      acc = _mm256_or_si256(acc,
                            _mm256_sllv_epi64(_mm256_set1_epi64x(i), sh));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), acc);
  }
  if (k < count) {
    scalar_inverse(packed + k, count - k, n, out + k);
  }
}

constexpr Kernels kAVX2Kernels = {avx2_rank, avx2_unrank, avx2_parity,
                                  avx2_relabel, avx2_inverse};
#endif  // STARRING_TIER_AVX2

#if STARRING_TIER_NEON
// ---------------------------------------------------------------------------
// NEON tier (aarch64; baseline, no runtime feature check needed).
// Same byte-level structure as AVX2: vqtbl1q_u8 for the relabel lookup,
// per-digit compare + horizontal add for rank/parity, per-lane variable
// shifts (vshlq_u64) for inverse.  Unrank keeps the scalar decode.
// ---------------------------------------------------------------------------

inline uint8x16_t neon_expand(std::uint64_t bits) {
  const uint8x8_t lo = vcreate_u8(bits);
  const uint8x8_t hi = vcreate_u8(bits >> 4);
  const uint8x16_t inter =
      vzip1q_u8(vcombine_u8(lo, vdup_n_u8(0)), vcombine_u8(hi, vdup_n_u8(0)));
  return vandq_u8(inter, vdupq_n_u8(0x0F));
}

inline std::uint64_t neon_pack(uint8x16_t bytes) {
  const uint16x8_t pairs = vreinterpretq_u16_u8(bytes);
  const uint16x8_t lo = vandq_u16(pairs, vdupq_n_u16(0x00FF));
  const uint16x8_t hi = vshrq_n_u16(pairs, 8);
  const uint16x8_t comb = vorrq_u16(lo, vshlq_n_u16(hi, 4));
  return vget_lane_u64(vreinterpret_u64_u8(vmovn_u16(comb)), 0);
}

inline uint8x16_t neon_slot_index() {
  static const std::uint8_t kIdx[16] = {0, 1, 2,  3,  4,  5,  6,  7,
                                        8, 9, 10, 11, 12, 13, 14, 15};
  return vld1q_u8(kIdx);
}

void neon_rank(const std::uint64_t* packed, std::size_t count, int n,
               VertexId* out) {
  const uint8x16_t idx = neon_slot_index();
  const uint8x16_t in_range = vcltq_u8(idx, vdupq_n_u8(static_cast<std::uint8_t>(n)));
  for (std::size_t k = 0; k < count; ++k) {
    const uint8x16_t bytes = neon_expand(packed[k]);
    std::uint64_t r = 0;
    for (int i = 0; i < n - 1; ++i) {
      const uint8x16_t splat =
          vqtbl1q_u8(bytes, vdupq_n_u8(static_cast<std::uint8_t>(i)));
      const uint8x16_t lt = vcltq_u8(bytes, splat);
      const uint8x16_t after =
          vcgtq_u8(idx, vdupq_n_u8(static_cast<std::uint8_t>(i)));
      const uint8x16_t hits = vandq_u8(vandq_u8(lt, after), in_range);
      const unsigned digit = vaddvq_u8(vshrq_n_u8(hits, 7));
      r += static_cast<std::uint64_t>(digit) * factorial(n - 1 - i);
    }
    out[k] = r;
  }
}

void neon_parity(const std::uint64_t* packed, std::size_t count, int n,
                 std::uint8_t* out) {
  const uint8x16_t idx = neon_slot_index();
  const uint8x16_t in_range = vcltq_u8(idx, vdupq_n_u8(static_cast<std::uint8_t>(n)));
  for (std::size_t k = 0; k < count; ++k) {
    const uint8x16_t bytes = neon_expand(packed[k]);
    unsigned inv = 0;
    for (int i = 0; i < n - 1; ++i) {
      const uint8x16_t splat =
          vqtbl1q_u8(bytes, vdupq_n_u8(static_cast<std::uint8_t>(i)));
      const uint8x16_t lt = vcltq_u8(bytes, splat);
      const uint8x16_t after =
          vcgtq_u8(idx, vdupq_n_u8(static_cast<std::uint8_t>(i)));
      const uint8x16_t hits = vandq_u8(vandq_u8(lt, after), in_range);
      inv += vaddvq_u8(vshrq_n_u8(hits, 7));
    }
    out[k] = static_cast<std::uint8_t>(inv & 1);
  }
}

void neon_relabel(std::uint64_t g_bits, const std::uint64_t* packed,
                  std::size_t count, int n, std::uint64_t* out) {
  const uint8x16_t table = neon_expand(g_bits);
  const uint8x16_t idx = neon_slot_index();
  const uint8x16_t valid =
      vcltq_u8(idx, vdupq_n_u8(static_cast<std::uint8_t>(n)));
  for (std::size_t k = 0; k < count; ++k) {
    const uint8x16_t bytes = neon_expand(packed[k]);
    const uint8x16_t mapped = vandq_u8(vqtbl1q_u8(table, bytes), valid);
    out[k] = neon_pack(mapped);
  }
}

void neon_inverse(const std::uint64_t* packed, std::size_t count, int n,
                  std::uint64_t* out) {
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const uint64x2_t v = vld1q_u64(packed + k);
    uint64x2_t acc = vdupq_n_u64(0);
    for (int i = 0; i < n; ++i) {
      const uint64x2_t sym = vandq_u64(
          vshlq_u64(v, vdupq_n_s64(-4 * static_cast<std::int64_t>(i))),
          vdupq_n_u64(0xF));
      const int64x2_t sh =
          vreinterpretq_s64_u64(vshlq_n_u64(sym, 2));
      acc = vorrq_u64(acc,
                      vshlq_u64(vdupq_n_u64(static_cast<std::uint64_t>(i)), sh));
    }
    vst1q_u64(out + k, acc);
  }
  if (k < count) {
    scalar_inverse(packed + k, count - k, n, out + k);
  }
}

constexpr Kernels kNEONKernels = {neon_rank, scalar_unrank, neon_parity,
                                  neon_relabel, neon_inverse};
#endif  // STARRING_TIER_NEON

Tier best_supported() {
#if STARRING_TIER_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2"))
    return Tier::kAVX2;
#elif STARRING_TIER_NEON
  return Tier::kNEON;
#endif
  return Tier::kScalar;
}

Tier resolve_tier() {
  const char* env = std::getenv("STARRING_SIMD");
  if (env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0)
      return Tier::kScalar;
    if (std::strcmp(env, "avx2") == 0)
      return best_supported() == Tier::kAVX2 ? Tier::kAVX2 : Tier::kScalar;
    if (std::strcmp(env, "neon") == 0)
      return best_supported() == Tier::kNEON ? Tier::kNEON : Tier::kScalar;
    // Unrecognized value (including "auto"): fall through to detection.
  }
  return best_supported();
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kAVX2: return "avx2";
    case Tier::kNEON: return "neon";
    case Tier::kScalar: break;
  }
  return "scalar";
}

Tier active_tier() {
  static const Tier t = resolve_tier();
  return t;
}

const Kernels& kernels(Tier t) {
#if STARRING_TIER_AVX2
  if (t == Tier::kAVX2 && best_supported() == Tier::kAVX2) return kAVX2Kernels;
#endif
#if STARRING_TIER_NEON
  if (t == Tier::kNEON) return kNEONKernels;
#endif
  (void)t;
  return kScalarKernels;
}

const Kernels& active() {
  static const Kernels& k = kernels(active_tier());
  return k;
}

#ifndef NDEBUG
void assert_valid_batch(const std::uint64_t* packed, std::size_t count,
                        int n) {
  assert(n >= 1 && n <= kMaxN);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t b = packed[k];
    std::uint16_t seen = 0;
    for (int i = 0; i < n; ++i) {
      const int s = nib(b, i);
      assert(s < n && !((seen >> s) & 1));
      seen = static_cast<std::uint16_t>(seen | (1u << s));
    }
    assert((n == 16 ? 0 : b >> (4 * n)) == 0);
  }
}
#endif

}  // namespace starring::simd
