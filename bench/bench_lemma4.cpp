// Experiment E9 — Lemma 4 exhaustively, plus the block-oracle ablation.
//
// Lemma 4: in S_4 with one vertex fault, a healthy path of length
// 4!-3 = 21 joins every pair of adjacent healthy vertices.  The harness
// checks all 24 faults x all adjacent healthy pairs, then benchmarks the
// oracle with and without its memo cache (the design-choice ablation
// DESIGN.md calls out).
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdio>

#include "core/block_oracle.hpp"
#include "graph/graph.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

namespace {

bool check_lemma4_exhaustive() {
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  int pairs = 0;
  int found = 0;
  for (int f = 0; f < 24; ++f) {
    for (int u = 0; u < 24; ++u) {
      if (u == f) continue;
      std::uint64_t nbrs = g.neighbor_mask(u);
      while (nbrs) {
        const int v = std::countr_zero(nbrs);
        nbrs &= nbrs - 1;
        if (v == f || v < u) continue;
        ++pairs;
        if (oracle.find_path(u, v, 1u << f, 22)) ++found;
      }
    }
  }
  std::printf("E9: Lemma 4 exhaustive — 22-vertex healthy paths: %d/%d "
              "adjacent healthy pairs across all 24 faults\n",
              found, pairs);
  return found == pairs;
}

void BM_OracleCached(benchmark::State& state) {
  BlockOracle oracle;  // shared across iterations: cache warms up
  int f = 0;
  for (auto _ : state) {
    const int fault = f++ % 24;
    auto p = oracle.find_path(fault == 0 ? 1 : 0,
                              fault == 23 ? 22 : 23, 1u << fault, 22);
    benchmark::DoNotOptimize(p);
  }
  state.counters["hit_rate"] =
      oracle.cache_hits()
          ? static_cast<double>(oracle.cache_hits()) /
                static_cast<double>(oracle.cache_hits() + oracle.cache_misses())
          : 0.0;
}
BENCHMARK(BM_OracleCached);

void BM_OracleUncached(benchmark::State& state) {
  // A fresh oracle per iteration: every query is a miss — this is what
  // the chaining loop would pay without the memo.
  int f = 0;
  for (auto _ : state) {
    BlockOracle oracle;
    const int fault = f++ % 24;
    auto p = oracle.find_path(fault == 0 ? 1 : 0,
                              fault == 23 ? 22 : 23, 1u << fault, 22);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_OracleUncached);

void BM_HamiltonianPathSearch(benchmark::State& state) {
  // Raw exhaustive search cost for a healthy-block Hamiltonian path.
  BlockOracle oracle;
  const SmallGraph g = oracle.graph();
  int b = 1;
  for (auto _ : state) {
    const int to = (b = (b + 2) % 24) | 1;  // odd locals: opposite parity
    auto p = path_with_exact_vertices(g, 0, to, 0, 24);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_HamiltonianPathSearch);

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("lemma4");
  if (!check_lemma4_exhaustive()) {
    std::printf("RESULT: Lemma 4 FAILED\n");
    return 1;
  }
  std::printf("RESULT: Lemma 4 reproduced exactly\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
