#include "core/chaining.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "core/block_oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stargraph/lehmer4.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

constexpr int kBlockSize = BlockOracle::kBlockSize;
constexpr int kCrossings = kBlockSize / 4;  // (4-1)!: crossings per super-edge

/// Relaxed read of the caller's cooperative-cancel flag (see
/// EmbedOptions::cancel); checked at block-advance granularity so a
/// cancelled search stops within one in-block path search.
bool cancelled(const EmbedOptions& opts) {
  return opts.cancel != nullptr &&
         opts.cancel->load(std::memory_order_relaxed);
}

/// Struct-of-arrays state for one chaining call.
///
/// Every block of the super-ring fixes the SAME positions (patterns of
/// one partition differ only in the fixed symbols), so the per-block
/// "expander" of the old code — 15 120 copies of MemberExpander at
/// n = 9 — carried four shared fields per block and was built one
/// pointer-chased struct at a time.  Here the shared skeleton (free
/// positions, Lehmer weights, and the per-local-index digit
/// contribution, which depends only on the weights) is computed once,
/// and the genuinely per-block data lives in flat arrays the build and
/// emit loops stream through.  Exit candidates use fixed-stride rows
/// (at most kCrossings per block) instead of a vector per block, and
/// chosen paths are BlockOracle::PathVal slots — the whole call makes
/// O(1) allocations instead of O(m).
struct ChainState {
  std::size_t m = 0;
  int n = 0;

  // Shared skeleton.
  std::array<std::int8_t, 4> free_pos{};
  std::array<std::uint64_t, 4> weight{};  // factorial(n - 1 - free_pos[m])
  // digit_rank[k] = sum_m lehmer_digit_m(k) * weight[m]: the
  // free-over-free part of member_rank, identical for every block.
  std::array<std::uint64_t, kBlockSize> digit_rank{};
  std::vector<std::int8_t> fixed_pos;  // the n-4 fixed positions

  // Per-block info, indexed [k].
  std::vector<std::uint64_t> sig;        // fixed-position symbol signature
  std::vector<std::uint32_t> forbidden;  // fault | excised local bits
  std::vector<std::int8_t> target;       // vertices the block must supply

  // Exit candidates, fixed stride: row k occupies
  // [k*kCrossings, k*kCrossings + exit_count[k]).
  std::vector<std::int8_t> exit_y;
  std::vector<std::int8_t> exit_partner;
  std::vector<std::int8_t> exit_count;

  // Per-block member expansion (the split of MemberExpander's rank
  // decomposition that actually varies per block).
  std::vector<std::uint64_t> base_bits;  // fixed slots, free slots zero
  std::vector<std::int8_t> free_sym;     // [k*4 + a]: ascending free symbols
  std::vector<VertexId> rank_base;       // fixed-over-fixed contribution
  std::vector<std::uint64_t> rank_sym;   // [k*16 + m*4 + a]

  // In-block edge faults; empty (no per-block vectors at all) unless
  // the fault set actually contains edge faults.
  std::vector<std::vector<std::pair<int, int>>> removed_edges;

  std::size_t faulty_blocks = 0;

  // Reused scratch for the build phases and the backtracking search.
  // Everything here is overwritten before it is read, so stale values
  // from a previous call are harmless — the point is to keep the ~2.5MB
  // of flat arrays an n = 9 call needs warm across calls instead of
  // paying a fresh allocation, page-fault, and zero-fill storm on every
  // embed (resize() only value-initializes growth beyond the high-water
  // mark).
  std::vector<std::uint32_t> fault_mask;
  std::vector<std::uint32_t> failed;
  std::vector<std::size_t> exit_idx;
  std::vector<BlockOracle::PathVal> paths;
  std::vector<int> entry;

  std::span<const std::pair<int, int>> removed(std::size_t k) const {
    if (removed_edges.empty()) return {};
    return removed_edges[k];
  }

  /// Global Lehmer rank of local member `local` of block k —
  /// MemberExpander::member_rank against the flat tables.
  VertexId member_rank(std::size_t k, int local) const {
    const std::uint64_t* s = &rank_sym[k * 16];
    const auto& a = kLehmer4.sym[static_cast<std::size_t>(local)];
    return rank_base[k] + digit_rank[static_cast<std::size_t>(local)] +
           s[0 * 4 + a[0]] + s[1 * 4 + a[1]] + s[2 * 4 + a[2]] +
           s[3 * 4 + a[3]];
  }

  /// Packed bits of local member `local` of block k (edge-fault checks
  /// only; the bulk loops never materialize members).
  std::uint64_t member_bits(std::size_t k, int local) const {
    const std::int8_t* fs = &free_sym[k * 4];
    const auto& a = kLehmer4.sym[static_cast<std::size_t>(local)];
    std::uint64_t bits = base_bits[k];
    for (int m = 0; m < 4; ++m)
      bits |= static_cast<std::uint64_t>(fs[a[m]])
              << (4 * free_pos[static_cast<std::size_t>(m)]);
    return bits;
  }
};

/// The per-thread ChainState: one embed call runs at a time per thread,
/// and reusing the state keeps its flat arrays' heap pages hot.
ChainState& tls_chain_state() {
  static thread_local ChainState st;
  return st;
}

/// Pack the symbols a permutation shows at the blocks' fixed positions;
/// equal signature <=> same block.
std::uint64_t signature(const Perm& p, const std::vector<std::int8_t>& fixed) {
  std::uint64_t sig = 0;
  for (const std::int8_t i : fixed)
    sig = (sig << 4) | static_cast<std::uint64_t>(p.get(i));
  return sig;
}

/// Index of `s` among block k's ascending free symbols, or -1.
int free_symbol_index(const ChainState& st, std::size_t k, int s) {
  const std::int8_t* fs = &st.free_sym[k * 4];
  for (int j = 0; j < 4; ++j)
    if (fs[j] == s) return j;
  return -1;
}

/// Find the block whose signature is `sig`, or npos.  The handful of
/// fault lookups per call makes a linear scan over the flat signature
/// array cheaper than building any index of all m blocks (the old code
/// built a 2m-slot hash map to place ~6 faults).
std::size_t find_block(const ChainState& st, std::uint64_t sig) {
  const auto it = std::find(st.sig.begin(), st.sig.end(), sig);
  return it == st.sig.end() ? static_cast<std::size_t>(-1)
                            : static_cast<std::size_t>(it - st.sig.begin());
}

/// Phase 1: signatures, fault/excise placement, per-block targets.
/// Returns false when some block is damaged beyond threading.
bool build_block_infos(ChainState& st,
                       const std::vector<SubstarPattern>& blocks_pat,
                       const FaultSet& faults, int per_fault_loss,
                       const SubstarPattern* excise, unsigned threads) {
  obs::ScopedPhase phase("chain_block_infos");
  obs::trace::ScopedSpan span("chain_block_infos");
  const std::size_t m = blocks_pat.size();
  const SubstarPattern& front = blocks_pat.front();
  st.m = m;
  st.n = front.n();
  st.fixed_pos.clear();
  int fp = 0;
  for (int i = 0; i < st.n; ++i) {
    if (front.is_free(i)) {
      st.free_pos[static_cast<std::size_t>(fp++)] = static_cast<std::int8_t>(i);
    } else {
      st.fixed_pos.push_back(static_cast<std::int8_t>(i));
    }
  }
  assert(fp == 4);

  st.sig.resize(m);
  parallel_for(0, m, threads, [&](std::size_t k) {
    const SubstarPattern& pat = blocks_pat[k];
    std::uint64_t sig = 0;
    for (const std::int8_t i : st.fixed_pos)
      sig = (sig << 4) | static_cast<std::uint64_t>(pat.slot(i));
    st.sig[k] = sig;
  });

  st.fault_mask.assign(m, 0);
  std::vector<std::uint32_t>& fault_mask = st.fault_mask;
  std::vector<std::uint32_t> excised_mask;
  for (const Perm& f : faults.vertex_faults()) {
    const std::size_t k = find_block(st, signature(f, st.fixed_pos));
    if (k == static_cast<std::size_t>(-1)) continue;  // excluded (Latifi mode)
    fault_mask[k] |= 1u << blocks_pat[k].local_index(f);
  }
  if (faults.num_edge_faults() != 0) {
    st.removed_edges.assign(m, {});
    for (const EdgeFault& e : faults.edge_faults()) {
      const std::size_t ku = find_block(st, signature(e.u, st.fixed_pos));
      if (ku == static_cast<std::size_t>(-1)) continue;
      const std::size_t kv = find_block(st, signature(e.v, st.fixed_pos));
      if (kv != ku) continue;
      st.removed_edges[ku].emplace_back(
          static_cast<int>(blocks_pat[ku].local_index(e.u)),
          static_cast<int>(blocks_pat[ku].local_index(e.v)));
    }
  } else {
    st.removed_edges.clear();
  }
  if (excise != nullptr) {
    const std::size_t k =
        find_block(st, signature(excise->member(0), st.fixed_pos));
    if (k == static_cast<std::size_t>(-1)) return false;
    excised_mask.assign(m, 0);
    for (const Perm& p : excise->members()) {
      if (!blocks_pat[k].contains(p)) return false;  // spans blocks
      excised_mask[k] |= 1u << blocks_pat[k].local_index(p);
    }
  }

  st.forbidden.resize(m);
  st.target.resize(m);
  st.faulty_blocks = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const std::uint32_t fm = fault_mask[k];
    const std::uint32_t em = excised_mask.empty() ? 0u : excised_mask[k];
    st.forbidden[k] = fm | em;
    if (fm != 0) ++st.faulty_blocks;
    const int target = kBlockSize - per_fault_loss * std::popcount(fm) -
                       std::popcount(em);
    if (target < 2) return false;  // block too damaged to thread
    st.target[k] = static_cast<std::int8_t>(target);
  }
  return true;
}

/// Phase 2: the member-expansion tables, struct-of-arrays.  The shared
/// skeleton is derived once; per-block data streams into flat arrays.
void build_expanders(ChainState& st,
                     const std::vector<SubstarPattern>& blocks_pat,
                     unsigned threads) {
  obs::ScopedPhase phase("chain_expanders");
  obs::trace::ScopedSpan span("chain_expanders");
  const std::size_t m = st.m;
  const int n = st.n;
  for (int j = 0; j < 4; ++j)
    st.weight[static_cast<std::size_t>(j)] =
        factorial(n - 1 - st.free_pos[static_cast<std::size_t>(j)]);
  for (int k = 0; k < kBlockSize; ++k) {
    const auto& d = kLehmer4.digit[static_cast<std::size_t>(k)];
    st.digit_rank[static_cast<std::size_t>(k)] =
        d[0] * st.weight[0] + d[1] * st.weight[1] + d[2] * st.weight[2];
    // d[3] == 0 always.
  }

  st.base_bits.resize(m);
  st.free_sym.resize(m * 4);
  st.rank_base.resize(m);
  st.rank_sym.resize(m * 16);
  parallel_for(0, m, threads, [&](std::size_t k) {
    const SubstarPattern& pat = blocks_pat[k];
    // Fixed slots -> base bits and the used-symbol mask.
    std::uint64_t bits = 0;
    std::uint32_t used = 0;
    for (const std::int8_t i : st.fixed_pos) {
      const auto s = static_cast<std::uint32_t>(pat.slot(i));
      bits |= static_cast<std::uint64_t>(s) << (4 * i);
      used |= 1u << s;
    }
    st.base_bits[k] = bits;
    std::int8_t* fs = &st.free_sym[k * 4];
    const std::uint32_t fmask = ((1u << n) - 1u) & ~used;
    // tot[a]: fixed symbols smaller than free symbol f_a (the whole-line
    // total the suffix counts below are subtracted from).
    std::array<std::uint32_t, 4> tot{};
    {
      std::uint32_t rest = fmask;
      for (int a = 0; a < 4; ++a) {
        const int f = std::countr_zero(rest);
        rest &= rest - 1;
        fs[a] = static_cast<std::int8_t>(f);
        tot[static_cast<std::size_t>(a)] =
            static_cast<std::uint32_t>(std::popcount(used & ((1u << f) - 1u)));
      }
    }
    // One branchless left-to-right pass builds all three rank pieces.
    // At a fixed position with symbol s and weight w, with
    // c = |{free symbols < s}| (so fs[a] < s <=> a < c, since fs is
    // ascending):
    //   * acc[a] += w for a < c — fixed-over-free inversions whose free
    //     slot lies to the right (the prefix snapshot below);
    //   * cnt[a] += 1 for a >= c — fixed symbols < f_a seen so far, so
    //     the suffix count at a free slot is tot[a] - cnt[a];
    //   * base accumulates fixed-over-fixed inversions as
    //     (fixed < s in total) - (fixed < s already seen).
    std::uint64_t* sym_tab = &st.rank_sym[k * 16];
    std::array<std::uint64_t, 4> acc{};
    std::array<std::uint32_t, 4> cnt{};
    std::uint32_t seen = 0;
    VertexId base = 0;
    int slot_m = 0;
    for (int i = 0; i < n; ++i) {
      const int sv = pat.slot(i);
      if (sv < 0) {  // free position: snapshot this slot's table row
        const auto ms = static_cast<std::size_t>(slot_m);
        const std::uint64_t w = st.weight[ms];
        for (std::size_t a = 0; a < 4; ++a)
          sym_tab[ms * 4 + a] = acc[a] + (tot[a] - cnt[a]) * w;
        ++slot_m;
        continue;
      }
      const std::uint64_t w = factorial(n - 1 - i);
      const auto below = (1u << sv) - 1u;
      const auto c = static_cast<unsigned>(std::popcount(fmask & below));
      acc[0] += w & -static_cast<std::uint64_t>(c > 0);
      acc[1] += w & -static_cast<std::uint64_t>(c > 1);
      acc[2] += w & -static_cast<std::uint64_t>(c > 2);
      acc[3] += w & -static_cast<std::uint64_t>(c > 3);
      cnt[0] += static_cast<std::uint32_t>(c == 0);
      cnt[1] += static_cast<std::uint32_t>(c <= 1);
      cnt[2] += static_cast<std::uint32_t>(c <= 2);
      cnt[3] += static_cast<std::uint32_t>(c <= 3);
      base += static_cast<VertexId>(std::popcount(used & below) -
                                    std::popcount(seen & below)) *
              w;
      seen |= 1u << sv;
    }
    st.rank_base[k] = base;
#ifndef NDEBUG
    // One validation per block (not per member): the identity
    // arrangement must reconstruct a well-formed permutation whose rank
    // matches the table decomposition.
    const Perm check = Perm::from_packed(st.member_bits(k, 0), n);
    assert(check.rank() == st.member_rank(k, 0));
#endif
  });
}

/// Phase 3: enumerate the healthy crossings from block k to block
/// (k+1) % m into the fixed-stride exit rows.
bool compute_exits(ChainState& st,
                   const std::vector<SubstarPattern>& blocks_pat,
                   const FaultSet& faults, std::size_t k, std::size_t knext) {
  const auto& a = blocks_pat[k];
  const auto& next = blocks_pat[knext];
  int p = -1;
  const bool adj = SubstarPattern::adjacent(a, next, &p);
  assert(adj);
  if (!adj) return false;
  const int b_sym = next.slot(p);
  const int a_sym = a.slot(p);
  // Only members with b_sym at position 0 can cross, and those occupy
  // one contiguous local-index range (the leading Lehmer digit picks
  // the position-0 symbol): (r-1)! candidates instead of scanning all
  // r! members.  The crossing u -> v = u.star_move(p) swaps position 0
  // (holding b_sym) with the differing fixed position p (holding a_sym);
  // the trailing free symbols are untouched and form the same set in
  // both blocks, so the sub-Lehmer index t carries over verbatim:
  //   y = b_idx*(r-1)! + t in block k  <=>  partner = a_idx*(r-1)! + t.
  const int b_idx = free_symbol_index(st, k, b_sym);
  const int a_idx = free_symbol_index(st, knext, a_sym);
  assert(b_idx >= 0);  // next fixes b_sym at p, so it is free in a
  assert(a_idx >= 0);
  // Vertex faults are already folded into each block's forbidden mask,
  // so only cross-block edge faults need the actual permutations.
  const bool check_edges = faults.num_edge_faults() != 0;
  const std::uint32_t fa = st.forbidden[k];
  const std::uint32_t fb = st.forbidden[knext];
  std::int8_t* ey = &st.exit_y[k * kCrossings];
  std::int8_t* ep = &st.exit_partner[k * kCrossings];
  int count = 0;
  for (int t = 0; t < kCrossings; ++t) {
    const int y = b_idx * kCrossings + t;
    if ((fa >> y) & 1u) continue;
    const int partner = a_idx * kCrossings + t;
    if ((fb >> partner) & 1u) continue;
    if (check_edges) {
      const Perm u = Perm::from_packed(st.member_bits(k, y), st.n);
      assert(u.get(0) == b_sym);
      if (faults.edge_faulty(u, u.star_move(p))) continue;
    }
    ey[count] = static_cast<std::int8_t>(y);
    ep[count] = static_cast<std::int8_t>(partner);
    ++count;
  }
  st.exit_count[k] = static_cast<std::int8_t>(count);
  return count != 0;
}

/// Enumerate exits for every consecutive block pair in parallel;
/// returns false when some block has no healthy crossing.
bool compute_all_exits(ChainState& st,
                       const std::vector<SubstarPattern>& blocks_pat,
                       const FaultSet& faults, bool cyclic, unsigned threads) {
  obs::ScopedPhase phase("chain_exits");
  obs::trace::ScopedSpan span("chain_exits");
  obs::counter("chain.threads").record_max(threads);
  const std::size_t m = st.m;
  st.exit_y.resize(m * kCrossings);
  st.exit_partner.resize(m * kCrossings);
  st.exit_count.assign(m, 0);
  const std::size_t pairs = cyclic ? m : m - 1;
  std::vector<std::uint8_t> ok(pairs, 0);
  parallel_for(0, pairs, threads, [&](std::size_t k) {
    ok[k] = compute_exits(st, blocks_pat, faults, k, (k + 1) % m) ? 1 : 0;
  });
  for (const auto flag : ok)
    if (!flag) return false;
  return true;
}

/// Emit the concatenated vertex ids for the chosen per-block paths.
/// Offsets are exact, so blocks fill disjoint slices in parallel.
std::vector<VertexId> emit(const ChainState& st,
                           const std::vector<BlockOracle::PathVal>& paths,
                           unsigned threads) {
  obs::ScopedPhase phase("chain_emit");
  obs::trace::ScopedSpan span("chain_emit");
  std::vector<std::size_t> offset(st.m + 1, 0);
  for (std::size_t j = 0; j < st.m; ++j)
    offset[j + 1] = offset[j] + static_cast<std::size_t>(paths[j].len);
  std::vector<VertexId> out(offset.back());
  parallel_for(0, st.m, threads, [&](std::size_t j) {
    const BlockOracle::PathVal& p = paths[j];
    const int len = p.len;
    // Hoist every table pointer into const locals: `out` aliases the
    // u64 rank tables as far as the compiler can tell, so indexing
    // through `st` inside the loop would reload the vector data
    // pointers after every store.
    VertexId* const at = out.data() + offset[j];
    const VertexId base = st.rank_base[j];
    const std::uint64_t* const s = &st.rank_sym[j * 16];
    const std::uint64_t* const dr = st.digit_rank.data();
    const std::int8_t* const pv = p.v.data();
    for (int i = 0; i < len; ++i) {
      const auto local = static_cast<std::size_t>(pv[i]);
      const auto& a = kLehmer4.sym[local];
      at[i] = base + dr[local] + s[a[0]] + s[4 + a[1]] + s[8 + a[2]] +
              s[12 + a[3]];
    }
  });
  return out;
}

}  // namespace

std::optional<EmbedResult> chain_block_ring(const StarGraph& g,
                                            const SuperRing& sr,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            int per_fault_loss,
                                            const SubstarPattern* excise) {
  (void)g;
  assert(per_fault_loss % 2 == 0 && per_fault_loss >= 2);
  const auto& ring = sr.ring;
  const std::size_t m = ring.size();
  if (m < 3 || ring.front().r() != 4) return std::nullopt;

  // The oracle is stateless apart from tallies: every instance shares
  // the process-wide path cache, so constructing one per call is cheap
  // and thread-clean.
  BlockOracle oracle;
  if (opts.prewarm_oracle)
    BlockOracle::prewarm_fault_free(opts.effective_threads());

  ChainState& st = tls_chain_state();
  if (!build_block_infos(st, ring, faults, per_fault_loss, excise,
                         opts.effective_threads()))
    return std::nullopt;
  build_expanders(st, ring, opts.effective_threads());
  if (!compute_all_exits(st, ring, faults, /*cyclic=*/true,
                         opts.effective_threads()))
    return std::nullopt;

  EmbedStats stats;
  stats.num_blocks = m;
  stats.faulty_blocks = st.faulty_blocks;

  st.failed.resize(m);
  st.exit_idx.resize(m);
  st.paths.resize(m);
  st.entry.resize(m);
  std::vector<std::uint32_t>& failed = st.failed;
  std::vector<std::size_t>& exit_idx = st.exit_idx;
  std::vector<BlockOracle::PathVal>& paths = st.paths;
  std::vector<int>& entry = st.entry;

  // Search-loop fast paths: the 24-bit local parity mask replaces two
  // pointer-chased local_parity() calls per candidate, and the published
  // fault-free plane turns the oracle query for healthy full blocks —
  // virtually all of them — into a bare 25-byte table copy with the
  // cache-hit counter flushed once per call instead of once per query.
  std::uint32_t pmask = 0;
  for (int v = 0; v < kBlockSize; ++v)
    pmask |= static_cast<std::uint32_t>(oracle.local_parity(v) & 1) << v;
  const BlockOracle::PathVal* const fftab = BlockOracle::fault_free_plane();
  const bool ff_fast = fftab != nullptr && st.removed_edges.empty();
  std::int64_t ff_hits = 0;
  static obs::Counter& ff_hit_counter = obs::counter("oracle.cache_hits");
  struct FlushHits {
    std::int64_t* n;
    obs::Counter* c;
    ~FlushHits() {
      if (*n != 0) c->add(*n);
    }
  } flush_hits{&ff_hits, &ff_hit_counter};

  // Spans the backtracking search; the nested chain_emit span on
  // success is contained in (not additional to) this one.
  obs::ScopedPhase phase("chain_search");
  obs::trace::ScopedSpan span("chain_search");
  const std::int8_t* last_ey = &st.exit_y[(m - 1) * kCrossings];
  const std::int8_t* last_ep = &st.exit_partner[(m - 1) * kCrossings];
  for (int c = 0; c < st.exit_count[m - 1]; ++c) {
    const int closure_y = last_ey[c];
    const int closure_partner = last_ep[c];
    if (cancelled(opts)) return std::nullopt;
    ++stats.closure_attempts;
    std::fill(failed.begin(), failed.end(), 0u);
    std::size_t k = 0;
    entry[0] = closure_partner;
    exit_idx[0] = 0;
    std::int64_t backtracks = 0;
    bool aborted = false;
    while (k < m && !aborted) {
      if (cancelled(opts)) return std::nullopt;
      bool advanced = false;
      const int target = st.target[k];
      const std::uint32_t forbidden = st.forbidden[k];
      const bool use_ff =
          ff_fast && forbidden == 0 && target == kBlockSize;
      const int ek = entry[k];
      const std::uint32_t need =
          ((pmask >> ek) ^ static_cast<std::uint32_t>(target - 1)) & 1u;
      const std::int8_t* ey = &st.exit_y[k * kCrossings];
      const std::int8_t* ep = &st.exit_partner[k * kCrossings];
      while (!advanced) {
        int y;
        int partner;
        if (k == m - 1) {
          if (exit_idx[k] != 0) break;
          exit_idx[k] = 1;
          y = closure_y;
          partner = closure_partner;
        } else {
          if (exit_idx[k] >= static_cast<std::size_t>(st.exit_count[k])) break;
          y = ey[exit_idx[k]];
          partner = ep[exit_idx[k]];
          ++exit_idx[k];
        }
        if (y == ek) continue;
        if (((pmask >> y) & 1u) != need) continue;
        if (k + 1 < m && ((failed[k + 1] >> partner) & 1u)) continue;
        if (use_ff) {
          paths[k] = fftab[static_cast<std::size_t>(ek) * kBlockSize +
                           static_cast<std::size_t>(y)];
          ++ff_hits;
          if (paths[k].len < 0) continue;
        } else if (!oracle.find_path_into(ek, y, forbidden, target, &paths[k],
                                          st.removed(k))) {
          continue;
        }
        if (k + 1 < m) {
          entry[k + 1] = partner;
          exit_idx[k + 1] = 0;
        }
        ++k;
        advanced = true;
      }
      if (!advanced) {
        failed[k] |= 1u << entry[k];
        if (k == 0) break;  // this closure cannot work
        --k;
        ++backtracks;
        ++stats.backtracks;
        if (backtracks > opts.backtrack_budget) aborted = true;
      }
    }
    if (k == m) {
      EmbedResult res;
      res.ring = emit(st, paths, opts.effective_threads());
      res.stats = stats;
      return res;
    }
  }
  return std::nullopt;
}

std::optional<EmbedResult> chain_block_path(const StarGraph& g,
                                            const SuperRing& sp,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            const Perm& s, const Perm& t,
                                            int short_block,
                                            int per_fault_loss) {
  (void)g;
  assert(per_fault_loss % 2 == 0 && per_fault_loss >= 2);
  const auto& chain = sp.ring;
  const std::size_t m = chain.size();
  if (m < 2 || chain.front().r() != 4) return std::nullopt;
  if (!chain.front().contains(s) || !chain.back().contains(t))
    return std::nullopt;
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return std::nullopt;

  BlockOracle oracle;
  if (opts.prewarm_oracle)
    BlockOracle::prewarm_fault_free(opts.effective_threads());

  ChainState& st = tls_chain_state();
  if (!build_block_infos(st, chain, faults, per_fault_loss, nullptr,
                         opts.effective_threads()))
    return std::nullopt;
  build_expanders(st, chain, opts.effective_threads());
  if (m >= 2 && !compute_all_exits(st, chain, faults, /*cyclic=*/false,
                                   opts.effective_threads()))
    return std::nullopt;

  if (short_block >= 0 && short_block < static_cast<int>(m)) {
    std::int8_t& target = st.target[static_cast<std::size_t>(short_block)];
    target = static_cast<std::int8_t>(target - 1);
    if (target < 1) return std::nullopt;
  }

  const int s_local = static_cast<int>(chain.front().local_index(s));
  const int t_local = static_cast<int>(chain.back().local_index(t));

  EmbedStats stats;
  stats.num_blocks = m;
  stats.faulty_blocks = st.faulty_blocks;

  st.failed.assign(m, 0u);
  st.exit_idx.resize(m);
  st.paths.resize(m);
  st.entry.resize(m);
  std::vector<std::uint32_t>& failed = st.failed;
  std::vector<std::size_t>& exit_idx = st.exit_idx;
  std::vector<BlockOracle::PathVal>& paths = st.paths;
  std::vector<int>& entry = st.entry;

  std::uint32_t pmask = 0;
  for (int v = 0; v < kBlockSize; ++v)
    pmask |= static_cast<std::uint32_t>(oracle.local_parity(v) & 1) << v;
  const BlockOracle::PathVal* const fftab = BlockOracle::fault_free_plane();
  const bool ff_fast = fftab != nullptr && st.removed_edges.empty();
  std::int64_t ff_hits = 0;
  static obs::Counter& ff_hit_counter = obs::counter("oracle.cache_hits");
  struct FlushHits {
    std::int64_t* n;
    obs::Counter* c;
    ~FlushHits() {
      if (*n != 0) c->add(*n);
    }
  } flush_hits{&ff_hits, &ff_hit_counter};

  obs::ScopedPhase phase("chain_search");
  obs::trace::ScopedSpan span("chain_search");
  std::size_t k = 0;
  entry[0] = s_local;
  exit_idx[0] = 0;
  std::int64_t backtracks = 0;
  while (k < m) {
    if (cancelled(opts)) return std::nullopt;
    bool advanced = false;
    const int target = st.target[k];
    const std::uint32_t forbidden = st.forbidden[k];
    const bool use_ff = ff_fast && forbidden == 0 && target == kBlockSize;
    const int ek = entry[k];
    const std::uint32_t need =
        ((pmask >> ek) ^ static_cast<std::uint32_t>(target - 1)) & 1u;
    const std::int8_t* ey = &st.exit_y[k * kCrossings];
    const std::int8_t* ep = &st.exit_partner[k * kCrossings];
    while (!advanced) {
      int y;
      int partner = -1;
      if (k == m - 1) {
        if (exit_idx[k] != 0) break;
        exit_idx[k] = 1;
        y = t_local;
      } else {
        if (exit_idx[k] >= static_cast<std::size_t>(st.exit_count[k])) break;
        y = ey[exit_idx[k]];
        partner = ep[exit_idx[k]];
        ++exit_idx[k];
      }
      if (y == ek && target != 1) continue;
      if (target == 1 && y != ek) continue;
      if (target > 1 && ((pmask >> y) & 1u) != need) continue;
      if (k + 1 < m && ((failed[k + 1] >> partner) & 1u)) continue;
      if (use_ff && y != ek) {
        paths[k] = fftab[static_cast<std::size_t>(ek) * kBlockSize +
                         static_cast<std::size_t>(y)];
        ++ff_hits;
        if (paths[k].len < 0) continue;
      } else if (!oracle.find_path_into(ek, y, forbidden, target, &paths[k],
                                        st.removed(k))) {
        continue;
      }
      if (k + 1 < m) {
        entry[k + 1] = partner;
        exit_idx[k + 1] = 0;
      }
      ++k;
      advanced = true;
    }
    if (!advanced) {
      failed[k] |= 1u << entry[k];
      if (k == 0) return std::nullopt;
      --k;
      ++backtracks;
      ++stats.backtracks;
      if (backtracks > opts.backtrack_budget) return std::nullopt;
    }
  }
  EmbedResult res;
  res.ring = emit(st, paths, opts.effective_threads());
  res.stats = stats;
  return res;
}

}  // namespace starring
