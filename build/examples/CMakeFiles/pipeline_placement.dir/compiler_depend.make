# Empty compiler generated dependencies file for pipeline_placement.
# This may be replaced when dependencies are built.
