file(REMOVE_RECURSE
  "CMakeFiles/bench_beyond_regime.dir/bench_beyond_regime.cpp.o"
  "CMakeFiles/bench_beyond_regime.dir/bench_beyond_regime.cpp.o.d"
  "bench_beyond_regime"
  "bench_beyond_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beyond_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
