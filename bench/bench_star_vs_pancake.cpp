// Experiment E18 — star graph vs pancake graph: the price of
// bipartiteness.
//
// Both are degree-(n-1) Cayley networks on the n! permutations (the
// two canonical proposals of Akers & Krishnamurthy).  Under vertex
// faults their optimal ring degradations differ by exactly a factor 2:
//   * star graph: n! - 2|Fv| — bipartite, equal partite sets, so every
//     faulty vertex drags one healthy opposite-parity vertex off the
//     ring (the paper's Theorem 1, worst-case optimal);
//   * pancake graph: n! - |Fv| — odd cycles exist, so a ring can skip
//     exactly the faulty vertices (trivially optimal).
// The harness embeds both on the SAME fault sets and reports the loss.
#include <cstdio>
#include <cstdlib>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "pancake/pancake.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("star_vs_pancake");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 7;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("E18: ring degradation, star vs pancake (same fault sets)\n");
  std::printf("%3s %4s %10s %12s %14s %12s %14s\n", "n", "|Fv|", "n!",
              "star_ring", "star_loss", "pancake", "pancake_loss");

  bool ok = true;
  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nf = 0; nf <= n - 3; ++nf) {
      std::uint64_t star_len = 0;
      std::uint64_t pan_len = 0;
      int good = 0;
      for (int t = 0; t < trials; ++t) {
        const FaultSet f =
            random_vertex_faults(g, nf, static_cast<std::uint64_t>(t));
        const auto star = embed_longest_ring(g, f, bench_embed_options());
        const auto pan = pancake_fault_ring(n, f);
        if (!star || !verify_healthy_ring(g, f, star->ring).valid ||
            !pan || !verify_pancake_ring(n, f, *pan)) {
          ok = false;
          continue;
        }
        star_len += star->ring.size();
        pan_len += pan->size();
        ++good;
      }
      if (good == 0) continue;
      const auto d = static_cast<std::uint64_t>(good);
      std::printf("%3d %4d %10llu %12llu %14llu %12llu %14llu\n", n, nf,
                  static_cast<unsigned long long>(factorial(n)),
                  static_cast<unsigned long long>(star_len / d),
                  static_cast<unsigned long long>(factorial(n) -
                                                  star_len / d),
                  static_cast<unsigned long long>(pan_len / d),
                  static_cast<unsigned long long>(factorial(n) -
                                                  pan_len / d));
      ok &= star_len / d == factorial(n) - 2ull * nf;
      ok &= pan_len / d == factorial(n) - 1ull * nf;
    }
  }
  std::printf("\nloss per fault: star 2 (bipartite tax, optimal by the "
              "paper), pancake 1 (odd cycles, trivially optimal)\n");
  std::printf("RESULT: %s\n",
              ok ? "both degradation laws reproduced exactly"
                 : "some embeddings FAILED");
  return ok ? 0 : 1;
}
