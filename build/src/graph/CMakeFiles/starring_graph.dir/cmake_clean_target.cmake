file(REMOVE_RECURSE
  "libstarring_graph.a"
)
