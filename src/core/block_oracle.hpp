// In-block path oracle for S_4 blocks.
//
// After the (a_1, ..., a_{n-4})-partition, every block is an embedded
// S_4 with 24 vertices.  The paper's Lemmas 4, 5 and 6 construct, by
// case analysis, (i) Hamiltonian paths through healthy blocks and
// (ii) healthy paths of length 4!-3 = 21 through blocks holding one
// fault, both with prescribed entry and exit vertices.  We replace the
// case analysis by exhaustive search: 24-vertex searches are
// microseconds, every block of every S_n maps to the SAME abstract
// 24-vertex graph (local Lehmer indices over the free positions), and a
// global memo over (entry, exit, fault-mask, target) makes repeated
// queries O(1).  This is strictly stronger than the paper's
// construction — it finds a path whenever one exists — while the
// verifier (core/verify.hpp) keeps the results honest.
//
// Memoized values are PathVal, a 25-byte POD (length + 24 local
// indices), so a cache hit is a small copy — no heap allocation on the
// path that chaining executes millions of times per embed.  The memo
// has two storage planes:
//   * fault-free Hamiltonian queries (forbidden == 0, target == 24),
//     which are ~99% of chaining traffic, live in a direct-indexed
//     24x24 table read without any lock once prewarm_fault_free() (or
//     a snapshot import) has published it;
//   * everything else lives in the process-wide striped shard map
//     (shared_mutex per shard), as before.
// prewarm_fault_free() fills the fault-free table over the persistent
// worker pool (rows are independent).  export_memo()/import_memo()
// expose both planes as flat entries for the on-disk snapshot
// (core/oracle_store.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace starring {

class BlockOracle {
 public:
  static constexpr int kBlockSize = 24;  // 4!

  /// A memoized oracle answer: `len` local vertex indices, or len == -1
  /// for "no such path".  Plain data so cache hits are a 25-byte copy.
  struct PathVal {
    std::int8_t len;
    std::array<std::int8_t, kBlockSize> v;
  };

  /// One exported memo entry: the packed (from, to, forbidden, target)
  /// key plus its answer.  The snapshot layer serializes these verbatim.
  struct MemoEntry {
    std::uint64_t key;
    PathVal val;
  };

  BlockOracle();

  /// The canonical abstract S_4 block graph (identical for every
  /// embedded S_4 of every S_n under local Lehmer indexing).
  const SmallGraph& graph() const { return *graph_; }

  /// Parity of the local arrangement with Lehmer index k, as a
  /// permutation of four symbols.  The parity of the real vertex is
  /// this XOR the parity of the block's base member.
  int local_parity(int k) const { return (*parity_)[static_cast<std::size_t>(k)]; }

  /// A path from local vertex `from` to `to` visiting exactly
  /// `target_vertices` vertices, avoiding vertices in `forbidden`
  /// (bitmask) and the undirected local edges in `removed_edges`,
  /// copied into `*out`.  Returns true and sets out->len >= 1 when a
  /// path exists; returns false (out->len == -1) when none does.
  /// Results for the common removed_edges-empty case are memoized in
  /// the process-wide shared cache.  Safe to call concurrently from
  /// many threads (the hit/miss tallies below are per-instance and not
  /// synchronized).
  bool find_path_into(int from, int to, std::uint32_t forbidden,
                      int target_vertices, PathVal* out,
                      std::span<const std::pair<int, int>> removed_edges = {});

  /// Allocating convenience wrapper around find_path_into (tests,
  /// examples, one-off queries — not the chaining hot path).
  std::optional<std::vector<int>> find_path(
      int from, int to, std::uint32_t forbidden, int target_vertices,
      std::span<const std::pair<int, int>> removed_edges = {});

  /// Direct pointer to the published fault-free plane — a 24x24
  /// row-major PathVal table indexed [from * kBlockSize + to] — or
  /// nullptr until prewarm_fault_free()/import_memo() publishes it.
  /// The table is immutable once published (until clear_cache()), so
  /// hot loops may hold the pointer for the duration of one embed call
  /// and read it without any synchronization or counter traffic.
  static const PathVal* fault_free_plane();

  /// Populate the fault-free plane with every Hamiltonian query
  /// (from, to, forbidden=0, target=24) — 24*23 keys — so no embed pays
  /// the cold search.  Rows are computed in parallel on the persistent
  /// pool (`threads` == 0 means hardware concurrency).  Runs once per
  /// process (cleared by clear_cache); subsequent calls are a single
  /// atomic load.
  static void prewarm_fault_free(unsigned threads = 0);

  /// Drop every memoized entry (test isolation / cold-cache benchmarks).
  static void clear_cache();

  /// Flat dump of every memoized entry, both planes, for the snapshot
  /// writer.  Order is deterministic (fault-free table first, then
  /// shard entries sorted by key).
  static std::vector<MemoEntry> export_memo();

  /// Seed the memo from snapshot entries.  Fault-free Hamiltonian keys
  /// land in the direct table (published for lock-free reads only when
  /// all 24*23 of them arrive); everything else lands in the shard map.
  /// Entries with malformed keys are ignored; values are trusted (the
  /// snapshot layer checksums the payload).
  static void import_memo(std::span<const MemoEntry> entries);

  /// Memo statistics for THIS instance's queries (for the ablation
  /// bench and tests; the process totals live in the obs counters
  /// oracle.cache_hits / oracle.cache_misses).
  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }

 private:
  // All instances share one immutable canonical block graph; the
  // constructor just binds the pointers, so building a BlockOracle
  // inside a per-call scope costs nothing.
  const SmallGraph* graph_;
  const std::array<int, kBlockSize>* parity_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace starring
