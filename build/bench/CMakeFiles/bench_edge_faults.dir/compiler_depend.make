# Empty compiler generated dependencies file for bench_edge_faults.
# This may be replaced when dependencies are built.
