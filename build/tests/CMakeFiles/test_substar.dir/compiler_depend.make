# Empty compiler generated dependencies file for test_substar.
# This may be replaced when dependencies are built.
