// Experiment E7 — application impact: ring all-reduce on embedded rings.
//
// For each fault count, embed with the paper's construction and with
// the Tseng baseline, run the discrete-event ring all-reduce on both,
// and report completion time and useful parallelism
// (participants per microsecond).  The longer ring always carries more
// healthy processors; the metric quantifies what n!-2f vs n!-4f buys a
// real collective.
#include <cstdio>
#include <cstdlib>

#include "baselines/tseng.hpp"
#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "sim/ring_sim.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("simulator");
  const int n = argc > 1 ? std::atoi(argv[1]) : 7;
  rec.note_n(n);
  const StarGraph g(n);

  std::printf("E7: ring all-reduce on S_%d embeddings (message 4 KiB)\n", n);
  std::printf("%4s %10s %10s %12s %12s %14s %14s\n", "|Fv|", "ours_len",
              "tseng_len", "ours_us", "tseng_us", "ours_par/us",
              "tseng_par/us");

  SimParams params;
  bool ok = true;
  for (int nf = 0; nf <= n - 3; ++nf) {
    const FaultSet f = random_vertex_faults(g, nf, 1234 + nf);
    const auto ours = embed_longest_ring(g, f, bench_embed_options());
    const auto base = tseng_vertex_fault_ring(g, f);
    if (!ours || !base ||
        !verify_healthy_ring(g, f, ours->ring).valid ||
        !verify_healthy_ring(g, f, base->ring).valid) {
      std::printf("%4d  EMBEDDING FAILED\n", nf);
      ok = false;
      continue;
    }
    RingNetworkSim so(ours->ring, params);
    RingNetworkSim sb(base->ring, params);
    const auto mo = so.run_allreduce();
    const auto mb = sb.run_allreduce();
    std::printf("%4d %10zu %10zu %12.1f %12.1f %14.5f %14.5f\n", nf,
                ours->ring.size(), base->ring.size(), mo.completion_time_us,
                mb.completion_time_us, mo.participants_per_us,
                mb.participants_per_us);
  }
  std::printf("\nRESULT: %s\n",
              ok ? "simulator rows generated from verified embeddings"
                 : "some rows FAILED");
  return ok ? 0 : 1;
}
