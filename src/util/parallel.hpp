// Minimal data-parallel helper.
//
// The construction pipeline has three embarrassingly parallel phases —
// per-block exit enumeration, final vertex emission, and verification —
// whose cost scales with n! while the sequential chaining search
// between them is cheap.  parallel_for gives those phases static
// chunking over std::thread without dragging in a runtime dependency;
// with threads == 1 it degenerates to a plain loop (no thread spawn),
// which is also the deterministic default everywhere correctness tests
// care about ordering.
// Exception safety: a throw from fn escapes to the caller.  With
// threads > 1 the first exception any worker raises is captured via
// std::exception_ptr and rethrown after all workers join (the other
// workers stop at their next iteration boundary instead of calling
// std::terminate); with threads <= 1 it propagates directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace starring {

namespace parallel_detail {

/// First-exception capture shared by a worker pool.
struct ErrorSlot {
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr error;

  void capture() noexcept {
    failed.store(true, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::current_exception();
  }
  bool tripped() const {
    return failed.load(std::memory_order_relaxed);
  }
  void rethrow_if_set() {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace parallel_detail

/// Largest worker count that makes sense on this host.
inline unsigned default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Invoke fn(i) for i in [begin, end) across `threads` workers with
/// contiguous static chunks.  fn must be safe to call concurrently for
/// distinct i.  threads <= 1 runs inline.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, unsigned threads,
                  Fn&& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  parallel_detail::ErrorSlot err;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn, &err] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (err.tripped()) return;
          fn(i);
        }
      } catch (...) {
        err.capture();
      }
    });
  }
  for (auto& t : pool) t.join();
  err.rethrow_if_set();
}

/// Parallel reduction: combine per-index values with a commutative
/// `combine` starting from `init`.  Each worker reduces its chunk
/// locally; partials merge serially at the end.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, unsigned threads,
                  T init, Map&& map, Combine&& combine) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return init;
  if (threads <= 1 || count == 1) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  parallel_detail::ErrorSlot err;
  std::vector<T> partial(workers, init);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, w, &partial, &map, &combine, &err] {
      try {
        T acc = partial[w];
        for (std::size_t i = lo; i < hi; ++i) {
          if (err.tripped()) return;
          acc = combine(acc, map(i));
        }
        partial[w] = acc;
      } catch (...) {
        err.capture();
      }
    });
  }
  for (auto& t : pool) t.join();
  err.rethrow_if_set();
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace starring
