#include "util/io.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/json.hpp"
#include "util/failpoint.hpp"
#include "util/net.hpp"

namespace starring {

namespace {

void fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
}

/// Parse a 1-based permutation literal like "2134567" (n <= 9 digits) or
/// dot-separated "2.1.10.3..." for larger n.
std::optional<Perm> parse_perm(const std::string& text, int n) {
  std::vector<int> syms;
  if (text.find('.') == std::string::npos) {
    for (const char c : text) {
      if (c < '1' || c > '9') return std::nullopt;
      syms.push_back(c - '1');
    }
  } else {
    std::istringstream ss(text);
    std::string tok;
    while (std::getline(ss, tok, '.')) {
      if (tok.empty()) return std::nullopt;
      int v = 0;
      for (const char c : tok) {
        if (c < '0' || c > '9') return std::nullopt;
        v = v * 10 + (c - '0');
      }
      syms.push_back(v - 1);
    }
  }
  if (static_cast<int>(syms.size()) != n) return std::nullopt;
  std::uint32_t seen = 0;
  for (const int s : syms) {
    if (s < 0 || s >= n || ((seen >> s) & 1u)) return std::nullopt;
    seen |= 1u << s;
  }
  return Perm::of(syms);
}

void write_faults(std::ostream& os, const FaultSet& faults) {
  const auto vf = faults.vertex_faults();
  os << "vertex_faults " << vf.size() << "\n";
  for (const Perm& f : vf) os << f.to_string() << "\n";
  const auto ef = faults.edge_faults();
  os << "edge_faults " << ef.size() << "\n";
  for (const EdgeFault& f : ef)
    os << f.u.to_string() << ' ' << f.v.to_string() << "\n";
}

/// Read the `vertex_faults`/`edge_faults` sections shared by embedding
/// files and service requests.
bool read_faults(std::istream& is, int n, FaultSet* out, std::string* error) {
  // Structural bound on any fault count: there are only n! vertices
  // (and n!*(n-1)/2 edges, but one shared cap keeps the check simple).
  // Rejecting oversized counts up front stops a garbage frame from
  // driving an unbounded parse loop.
  const std::size_t cap = factorial(n);
  std::string word;
  std::size_t count = 0;
  if (!(is >> word >> count) || word != "vertex_faults") {
    fail(error, "bad vertex_faults line");
    return false;
  }
  if (count > cap) {
    fail(error, "vertex_faults count out of range");
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string lit;
    if (!(is >> lit)) {
      fail(error, "truncated vertex faults");
      return false;
    }
    const auto p = parse_perm(lit, n);
    if (!p) {
      fail(error, "bad vertex fault '" + lit + "'");
      return false;
    }
    out->add_vertex(*p);
  }

  if (!(is >> word >> count) || word != "edge_faults") {
    fail(error, "bad edge_faults line");
    return false;
  }
  if (count > cap) {
    fail(error, "edge_faults count out of range");
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string la;
    std::string lb;
    if (!(is >> la >> lb)) {
      fail(error, "truncated edge faults");
      return false;
    }
    const auto a = parse_perm(la, n);
    const auto b = parse_perm(lb, n);
    if (!a || !b || !a->adjacent(*b)) {
      fail(error, "bad edge fault '" + la + " " + lb + "'");
      return false;
    }
    out->add_edge(*a, *b);
  }
  return true;
}

/// Strict decimal u64: all digits, no sign, no overflow.  The trace
/// line is parsed with this rather than `>>` so an oversized or
/// negative id is a framing error instead of a silent wrap.
std::optional<std::uint64_t> parse_u64(const std::string& tok) {
  if (tok.empty() || tok.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

/// Read `count` whitespace-separated vertex ids of S_n.
bool read_sequence(std::istream& is, int n, std::size_t count,
                   std::vector<VertexId>* out, std::string* error) {
  const std::uint64_t limit = factorial(n);
  if (count > limit) {
    // A sequence cannot visit more than n! vertices; an oversized count
    // is a framing error, refused before it can size an allocation.
    fail(error, "sequence count out of range");
    return false;
  }
  // Bound the up-front reservation independently of the wire count:
  // beyond this the vector grows as tokens actually arrive.
  out->reserve(std::min<std::size_t>(count, 1u << 16));
  for (std::size_t i = 0; i < count; ++i) {
    VertexId id = 0;
    if (!(is >> id)) {
      fail(error, "truncated sequence");
      return false;
    }
    if (id >= limit) {
      fail(error, "vertex id out of range: " + std::to_string(id));
      return false;
    }
    out->push_back(id);
  }
  return true;
}

}  // namespace

bool write_embedding(std::ostream& os, const EmbeddingFile& e) {
  os << "starring-embedding v1\n";
  os << "n " << e.n << "\n";
  os << "kind " << (e.is_ring ? "ring" : "path") << "\n";
  write_faults(os, e.faults);
  os << "sequence " << e.sequence.size() << "\n";
  for (std::size_t i = 0; i < e.sequence.size(); ++i)
    os << e.sequence[i] << ((i + 1) % 16 == 0 ? '\n' : ' ');
  os << "\n";
  return static_cast<bool>(os);
}

std::optional<EmbeddingFile> read_embedding(std::istream& is,
                                            std::string* error) {
  std::string word;
  std::string version;
  if (!(is >> word >> version) || word != "starring-embedding" ||
      version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  EmbeddingFile e;
  if (!(is >> word >> e.n) || word != "n" || e.n < 1 || e.n > kMaxN) {
    fail(error, "bad dimension line");
    return std::nullopt;
  }
  std::string kind;
  if (!(is >> word >> kind) || word != "kind" ||
      (kind != "ring" && kind != "path")) {
    fail(error, "bad kind line");
    return std::nullopt;
  }
  e.is_ring = kind == "ring";

  if (!read_faults(is, e.n, &e.faults, error)) return std::nullopt;

  std::size_t count = 0;
  if (!(is >> word >> count) || word != "sequence") {
    fail(error, "bad sequence line");
    return std::nullopt;
  }
  if (!read_sequence(is, e.n, count, &e.sequence, error)) return std::nullopt;
  return e;
}

bool write_request(std::ostream& os, const ServiceRequest& r) {
  if (r.kind == RequestKind::kStats) {
    os << "STATS\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kPing) {
    os << "PING\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kFail) {
    os << "FAIL " << r.fail_config << "\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kHealth) {
    os << "HEALTH\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kTrace) {
    os << "TRACE\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kSlow) {
    os << "SLOW\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kMembers) {
    os << "MEMBERS\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kLeave) {
    os << "LEAVE\n";
    return static_cast<bool>(os);
  }
  if (r.kind == RequestKind::kGossip) {
    // A gossip request without a payload is a caller bug, reported as
    // a stream failure rather than silently framing garbage.
    if (!r.gossip) return false;
    return write_gossip(os, *r.gossip);
  }
  if (r.kind == RequestKind::kSeed) {
    os << "starring-seed v1\n";
    os << "n " << r.n << "\n";
    os << "key " << r.seed_key << "\n";
    os << "ring " << r.seed_ring.size() << "\n";
    for (std::size_t i = 0; i < r.seed_ring.size(); ++i)
      os << r.seed_ring[i] << ((i + 1) % 16 == 0 ? '\n' : ' ');
    os << "\n";
    os << "end\n";
    return static_cast<bool>(os);
  }
  os << "starring-request v1\n";
  os << "id " << r.id << "\n";
  os << "n " << r.n << "\n";
  write_faults(os, r.faults);
  os << "verify " << (r.verify ? 1 : 0) << "\n";
  // Optional lines are omitted at their defaults, so records written
  // here stay parseable by readers of the original v1 grammar.
  if (!r.tenant.empty()) os << "tenant " << r.tenant << "\n";
  if (r.deadline_ms > 0) os << "deadline_ms " << r.deadline_ms << "\n";
  if (r.trace_id != 0)
    os << "trace " << r.trace_id << ' ' << r.parent_span_id << "\n";
  os << "end\n";
  return static_cast<bool>(os);
}

bool write_response(std::ostream& os, const ServiceResponse& r) {
  // Chaos site: a failed serialization looks exactly like a peer whose
  // stream died mid-response — the caller's error path must cope.
  if (FAILPOINT("io.write_response")) {
    os.setstate(std::ios::failbit);
    return false;
  }
  os << "starring-response v1\n";
  os << "id " << r.id << "\n";
  switch (r.status) {
    case ServiceStatus::kOk: {
      os << "status ok\n";
      os << "cache " << (r.cache_hit ? "hit" : "miss") << "\n";
      os << "verified " << (r.verified ? 1 : 0) << "\n";
      os << "ring " << r.ring.size() << "\n";
      for (std::size_t i = 0; i < r.ring.size(); ++i)
        os << r.ring[i] << ((i + 1) % 16 == 0 ? '\n' : ' ');
      os << "\n";
      break;
    }
    case ServiceStatus::kError:
      os << "status error\nreason " << r.reason << "\n";
      break;
    case ServiceStatus::kRejected:
      os << "status rejected\nreason " << r.reason << "\n";
      break;
    case ServiceStatus::kTimeout:
      os << "status timeout\nreason " << r.reason << "\n";
      break;
    case ServiceStatus::kThrottled:
      os << "status throttled\nreason " << r.reason << "\n";
      break;
  }
  os << "end\n";
  return static_cast<bool>(os);
}

namespace {

/// Shared header handling: `starring-<what> v1` then `id <u64>`.  At a
/// clean end of stream (no header token at all) reports success=false
/// with *error cleared — the caller returns nullopt and the daemon
/// treats it as an orderly shutdown.
bool read_record_header(std::istream& is, const char* magic,
                        std::uint64_t* id, std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return false;
  }
  std::string version;
  if (word != magic || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return false;
  }
  if (!(is >> word >> *id) || word != "id") {
    fail(error, "bad id line");
    return false;
  }
  return true;
}

/// The record terminator keeps a stream of records self-framing.
bool read_end(std::istream& is, std::string* error) {
  std::string word;
  if (!(is >> word) || word != "end") {
    fail(error, "missing end line");
    return false;
  }
  return true;
}

/// A member address is the identity key of the whole membership layer,
/// so garbage is rejected at the parse boundary: bounded length and a
/// well-formed HOST:PORT per util/net's grammar.
bool valid_member_addr(const std::string& addr) {
  return !addr.empty() && addr.size() <= kMaxMemberAddrLen &&
         net::parse_endpoint(addr).has_value();
}

/// `<addr> <shard-id> <incarnation> <state>` — the quad both the
/// gossip `from`/`update` lines and the membership `member` lines use.
bool read_member_tokens(std::istream& is, MemberRecord* m,
                        std::string* error) {
  std::string state;
  if (!(is >> m->addr >> m->shard_id >> m->incarnation >> state) ||
      m->shard_id < -1 || !valid_member_addr(m->addr)) {
    fail(error, "bad member tokens");
    return false;
  }
  const auto parsed = parse_member_state(state);
  if (!parsed) {
    fail(error, "bad member state '" + state + "'");
    return false;
  }
  m->state = *parsed;
  return true;
}

void write_member_tokens(std::ostream& os, const MemberRecord& m) {
  os << m.addr << ' ' << m.shard_id << ' ' << m.incarnation << ' '
     << member_state_name(m.state);
}

const char* gossip_kind_name(GossipMessage::Kind k) {
  switch (k) {
    case GossipMessage::Kind::kPing:
      return "ping";
    case GossipMessage::Kind::kPingReq:
      return "ping-req";
    case GossipMessage::Kind::kAck:
      return "ack";
    case GossipMessage::Kind::kNack:
      return "nack";
    case GossipMessage::Kind::kJoin:
      return "join";
    case GossipMessage::Kind::kLeave:
      return "leave";
  }
  return "ping";
}

std::optional<GossipMessage::Kind> parse_gossip_kind(
    const std::string& token) {
  if (token == "ping") return GossipMessage::Kind::kPing;
  if (token == "ping-req") return GossipMessage::Kind::kPingReq;
  if (token == "ack") return GossipMessage::Kind::kAck;
  if (token == "nack") return GossipMessage::Kind::kNack;
  if (token == "join") return GossipMessage::Kind::kJoin;
  if (token == "leave") return GossipMessage::Kind::kLeave;
  return std::nullopt;
}

/// Body of a gossip record, after `starring-gossip v1` has been
/// consumed (read_request dispatches on the magic token itself).
std::optional<GossipMessage> read_gossip_body(std::istream& is,
                                              std::string* error) {
  GossipMessage m;
  std::string word;
  std::string kind;
  if (!(is >> word >> kind) || word != "kind") {
    fail(error, "bad kind line");
    return std::nullopt;
  }
  const auto parsed_kind = parse_gossip_kind(kind);
  if (!parsed_kind) {
    fail(error, "bad gossip kind '" + kind + "'");
    return std::nullopt;
  }
  m.kind = *parsed_kind;
  if (!(is >> word) || word != "from") {
    fail(error, "bad from line");
    return std::nullopt;
  }
  if (!read_member_tokens(is, &m.from, error)) return std::nullopt;
  if (!(is >> word)) {
    fail(error, "missing updates line");
    return std::nullopt;
  }
  if (word == "target") {
    if (!(is >> m.target) || !valid_member_addr(m.target)) {
      fail(error, "bad target line");
      return std::nullopt;
    }
    if (!(is >> word)) {
      fail(error, "missing updates line");
      return std::nullopt;
    }
  }
  if (m.kind == GossipMessage::Kind::kPingReq && m.target.empty()) {
    fail(error, "ping-req without target");
    return std::nullopt;
  }
  std::size_t count = 0;
  if (word != "updates" || !(is >> count) || count > kMaxMemberRecords) {
    fail(error, "bad updates line");
    return std::nullopt;
  }
  m.updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MemberRecord u;
    if (!(is >> word) || word != "update") {
      fail(error, "bad update line");
      return std::nullopt;
    }
    if (!read_member_tokens(is, &u, error)) return std::nullopt;
    m.updates.push_back(std::move(u));
  }
  if (!read_end(is, error)) return std::nullopt;
  return m;
}

}  // namespace

std::optional<ServiceRequest> read_request(std::istream& is,
                                           std::string* error) {
  ServiceRequest r;
  {
    // The STATS command is a bare line, recognized before the normal
    // record header; anything else must be a full request record.
    std::string word;
    if (!(is >> word)) {
      fail(error, "");  // clean EOF
      return std::nullopt;
    }
    if (word == "STATS") {
      r.kind = RequestKind::kStats;
      return r;
    }
    if (word == "PING") {
      r.kind = RequestKind::kPing;
      return r;
    }
    if (word == "HEALTH") {
      r.kind = RequestKind::kHealth;
      return r;
    }
    if (word == "TRACE") {
      r.kind = RequestKind::kTrace;
      return r;
    }
    if (word == "SLOW") {
      r.kind = RequestKind::kSlow;
      return r;
    }
    if (word == "MEMBERS") {
      r.kind = RequestKind::kMembers;
      return r;
    }
    if (word == "LEAVE") {
      r.kind = RequestKind::kLeave;
      return r;
    }
    if (word == "starring-gossip") {
      std::string version;
      if (!(is >> version) || version != "v1") {
        fail(error, "bad header");
        return std::nullopt;
      }
      auto g = read_gossip_body(is, error);
      if (!g) return std::nullopt;
      r.kind = RequestKind::kGossip;
      r.gossip = std::make_shared<GossipMessage>(std::move(*g));
      return r;
    }
    if (word == "starring-seed") {
      std::string version;
      if (!(is >> version) || version != "v1") {
        fail(error, "bad header");
        return std::nullopt;
      }
      r.kind = RequestKind::kSeed;
      if (!(is >> word >> r.n) || word != "n" || r.n < 1 || r.n > kMaxN) {
        fail(error, "bad dimension line");
        return std::nullopt;
      }
      if (!(is >> word >> r.seed_key) || word != "key" ||
          r.seed_key.size() > kMaxSeedKeyLen) {
        fail(error, "bad key line");
        return std::nullopt;
      }
      std::size_t count = 0;
      if (!(is >> word >> count) || word != "ring") {
        fail(error, "bad ring line");
        return std::nullopt;
      }
      if (!read_sequence(is, r.n, count, &r.seed_ring, error))
        return std::nullopt;
      if (!read_end(is, error)) return std::nullopt;
      return r;
    }
    if (word == "FAIL") {
      r.kind = RequestKind::kFail;
      std::getline(is, r.fail_config);
      // Trim the separating blank and any CR so the payload is exactly
      // the failpoint config grammar.
      while (!r.fail_config.empty() && (r.fail_config.front() == ' ' ||
                                        r.fail_config.front() == '\t'))
        r.fail_config.erase(r.fail_config.begin());
      while (!r.fail_config.empty() && (r.fail_config.back() == '\r' ||
                                        r.fail_config.back() == ' '))
        r.fail_config.pop_back();
      if (r.fail_config.empty()) {
        fail(error, "FAIL needs a config");
        return std::nullopt;
      }
      return r;
    }
    std::string version;
    if (word != "starring-request" || !(is >> version) || version != "v1") {
      fail(error, "bad header");
      return std::nullopt;
    }
    if (!(is >> word >> r.id) || word != "id") {
      fail(error, "bad id line");
      return std::nullopt;
    }
  }
  std::string word;
  if (!(is >> word >> r.n) || word != "n" || r.n < 1 || r.n > kMaxN) {
    fail(error, "bad dimension line");
    return std::nullopt;
  }
  if (!read_faults(is, r.n, &r.faults, error)) return std::nullopt;
  int verify = 0;
  if (!(is >> word >> verify) || word != "verify" ||
      (verify != 0 && verify != 1)) {
    fail(error, "bad verify line");
    return std::nullopt;
  }
  r.verify = verify == 1;
  // Optional tenant / deadline_ms / trace lines (any order, at most
  // once each), then the mandatory end terminator.
  bool saw_tenant = false;
  bool saw_deadline = false;
  bool saw_trace = false;
  while (true) {
    if (!(is >> word)) {
      fail(error, "missing end line");
      return std::nullopt;
    }
    if (word == "end") break;
    if (word == "trace" && !saw_trace) {
      std::string tid_tok;
      std::string psid_tok;
      if (!(is >> tid_tok >> psid_tok)) {
        fail(error, "bad trace line");
        return std::nullopt;
      }
      const auto tid = parse_u64(tid_tok);
      const auto psid = parse_u64(psid_tok);
      // trace id 0 is the "no trace" sentinel; a record spelling it out
      // is malformed, not a request without a trace.
      if (!tid || !psid || *tid == 0) {
        fail(error, "bad trace line");
        return std::nullopt;
      }
      r.trace_id = *tid;
      r.parent_span_id = *psid;
      saw_trace = true;
      continue;
    }
    if (word == "deadline_ms" && !saw_deadline) {
      if (!(is >> r.deadline_ms) || r.deadline_ms <= 0) {
        fail(error, "bad deadline_ms line");
        return std::nullopt;
      }
      saw_deadline = true;
      continue;
    }
    if (word == "tenant" && !saw_tenant) {
      // The name is the rest of the line (one token): taking it with
      // getline instead of >> keeps a nameless `tenant` line from
      // swallowing the `end` terminator as its value.
      std::string rest;
      std::getline(is, rest);
      while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
        rest.erase(rest.begin());
      while (!rest.empty() && (rest.back() == '\r' || rest.back() == ' ' ||
                               rest.back() == '\t'))
        rest.pop_back();
      if (rest.empty() || rest.size() > kMaxTenantLen ||
          rest.find_first_of(" \t") != std::string::npos) {
        fail(error, "bad tenant line");
        return std::nullopt;
      }
      r.tenant = std::move(rest);
      saw_tenant = true;
      continue;
    }
    fail(error, "missing end line");
    return std::nullopt;
  }
  return r;
}

std::optional<ServiceResponse> read_response(std::istream& is,
                                             std::string* error) {
  ServiceResponse r;
  if (!read_record_header(is, "starring-response", &r.id, error))
    return std::nullopt;
  std::string word;
  std::string status;
  if (!(is >> word >> status) || word != "status") {
    fail(error, "bad status line");
    return std::nullopt;
  }
  if (status == "error" || status == "rejected" || status == "timeout" ||
      status == "throttled") {
    r.status = status == "error"       ? ServiceStatus::kError
               : status == "rejected"  ? ServiceStatus::kRejected
               : status == "throttled" ? ServiceStatus::kThrottled
                                       : ServiceStatus::kTimeout;
    if (!(is >> word) || word != "reason") {
      fail(error, "bad reason line");
      return std::nullopt;
    }
    std::getline(is, r.reason);
    if (!r.reason.empty() && r.reason.front() == ' ')
      r.reason.erase(r.reason.begin());
    if (!read_end(is, error)) return std::nullopt;
    return r;
  }
  if (status != "ok") {
    fail(error, "bad status '" + status + "'");
    return std::nullopt;
  }
  r.status = ServiceStatus::kOk;
  std::string token;
  if (!(is >> word >> token) || word != "cache" ||
      (token != "hit" && token != "miss")) {
    fail(error, "bad cache line");
    return std::nullopt;
  }
  r.cache_hit = token == "hit";
  int verified = 0;
  if (!(is >> word >> verified) || word != "verified" ||
      (verified != 0 && verified != 1)) {
    fail(error, "bad verified line");
    return std::nullopt;
  }
  r.verified = verified == 1;
  std::size_t count = 0;
  if (!(is >> word >> count) || word != "ring") {
    fail(error, "bad ring line");
    return std::nullopt;
  }
  // The ring sequence has no dimension context of its own; responses
  // are validated against n! by the caller, which knows the request.
  // Structurally we only bound ids by kMaxN!.
  if (!read_sequence(is, kMaxN, count, &r.ring, error)) return std::nullopt;
  if (!read_end(is, error)) return std::nullopt;
  return r;
}

bool write_stats(std::ostream& os, const std::string& body) {
  std::string text = body;
  if (!text.empty() && text.back() != '\n') text.push_back('\n');
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  os << "starring-stats v1\n";
  os << "lines " << lines << "\n";
  os << text;
  os << "end\n";
  return static_cast<bool>(os);
}

std::optional<std::string> read_stats(std::istream& is, std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return std::nullopt;
  }
  std::string version;
  if (word != "starring-stats" || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  std::size_t lines = 0;
  if (!(is >> word >> lines) || word != "lines") {
    fail(error, "bad lines line");
    return std::nullopt;
  }
  std::string rest;
  std::getline(is, rest);  // consume the remainder of the count line
  std::string body;
  for (std::size_t i = 0; i < lines; ++i) {
    std::string line;
    if (!std::getline(is, line)) {
      fail(error, "truncated stats body");
      return std::nullopt;
    }
    body += line;
    body.push_back('\n');
  }
  if (!read_end(is, error)) return std::nullopt;
  return body;
}

bool write_health(std::ostream& os, const HealthInfo& h) {
  os << "starring-health v1\n";
  os << "shard " << h.shard_id << "\n";
  os << "epoch " << h.epoch << "\n";
  os << "cache_entries " << h.cache_entries << "\n";
  os << "cache_hits " << h.cache_hits << "\n";
  os << "cache_misses " << h.cache_misses << "\n";
  os << "uptime_ms " << h.uptime_ms << "\n";
  os << "inflight " << h.inflight << "\n";
  os << "end\n";
  return static_cast<bool>(os);
}

std::optional<HealthInfo> read_health(std::istream& is, std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return std::nullopt;
  }
  std::string version;
  if (word != "starring-health" || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  HealthInfo h;
  // shard -1 is legal: a proxy answers HEALTH too, and it is not a
  // shard.
  if (!(is >> word >> h.shard_id) || word != "shard" || h.shard_id < -1) {
    fail(error, "bad shard line");
    return std::nullopt;
  }
  if (!(is >> word >> h.epoch) || word != "epoch") {
    fail(error, "bad epoch line");
    return std::nullopt;
  }
  if (!(is >> word >> h.cache_entries) || word != "cache_entries") {
    fail(error, "bad cache_entries line");
    return std::nullopt;
  }
  if (!(is >> word >> h.cache_hits) || word != "cache_hits") {
    fail(error, "bad cache_hits line");
    return std::nullopt;
  }
  if (!(is >> word >> h.cache_misses) || word != "cache_misses") {
    fail(error, "bad cache_misses line");
    return std::nullopt;
  }
  // Optional uptime_ms / inflight lines (any order, at most once each);
  // absent in records written before PR 9, so tolerated rather than
  // required.
  bool saw_uptime = false;
  bool saw_inflight = false;
  while (true) {
    if (!(is >> word)) {
      fail(error, "missing end line");
      return std::nullopt;
    }
    if (word == "end") break;
    if (word == "uptime_ms" && !saw_uptime && (is >> h.uptime_ms)) {
      saw_uptime = true;
      continue;
    }
    if (word == "inflight" && !saw_inflight && (is >> h.inflight)) {
      saw_inflight = true;
      continue;
    }
    fail(error, "bad " + word + " line");
    return std::nullopt;
  }
  return h;
}

bool write_trace(std::ostream& os, const TraceDump& d) {
  os << "starring-trace v1\n";
  os << "process " << (d.process.empty() ? "-" : d.process) << "\n";
  os << "epoch_ns " << d.epoch_ns << "\n";
  os << "dropped " << d.dropped << "\n";
  os << "spans " << d.spans.size() << "\n";
  for (const obs::trace::SpanRecord& s : d.spans)
    os << s.trace_id << ' ' << s.span_id << ' ' << s.parent_id << ' '
       << s.start_ns << ' ' << s.dur_ns << ' ' << s.tid << ' '
       << (s.name.empty() ? "-" : s.name) << "\n";
  os << "end\n";
  return static_cast<bool>(os);
}

std::optional<TraceDump> read_trace(std::istream& is, std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return std::nullopt;
  }
  std::string version;
  if (word != "starring-trace" || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  TraceDump d;
  if (!(is >> word >> d.process) || word != "process" ||
      d.process.size() > kMaxTraceTokenLen) {
    fail(error, "bad process line");
    return std::nullopt;
  }
  if (d.process == "-") d.process.clear();
  if (!(is >> word >> d.epoch_ns) || word != "epoch_ns") {
    fail(error, "bad epoch_ns line");
    return std::nullopt;
  }
  if (!(is >> word >> d.dropped) || word != "dropped") {
    fail(error, "bad dropped line");
    return std::nullopt;
  }
  std::size_t count = 0;
  if (!(is >> word >> count) || word != "spans") {
    fail(error, "bad spans line");
    return std::nullopt;
  }
  if (count > kMaxTraceSpans) {
    fail(error, "spans count out of range");
    return std::nullopt;
  }
  // Bound the up-front reservation independently of the wire count,
  // like read_sequence: beyond this the vector grows as lines arrive.
  d.spans.reserve(std::min<std::size_t>(count, 1u << 16));
  for (std::size_t i = 0; i < count; ++i) {
    obs::trace::SpanRecord s;
    std::string name;
    if (!(is >> s.trace_id >> s.span_id >> s.parent_id >> s.start_ns >>
          s.dur_ns >> s.tid >> name)) {
      fail(error, "truncated span list");
      return std::nullopt;
    }
    if (name.size() > kMaxTraceTokenLen) {
      fail(error, "bad span name");
      return std::nullopt;
    }
    if (name != "-") s.name = std::move(name);
    d.spans.push_back(std::move(s));
  }
  if (!read_end(is, error)) return std::nullopt;
  return d;
}

bool write_merged_chrome_trace(std::ostream& os,
                               const std::vector<TraceDump>& dumps) {
  // Rebase every process onto the earliest epoch present; dumps taken
  // from one machine share CLOCK_MONOTONIC, so the offsets put their
  // spans on a single consistent timeline.
  std::uint64_t min_epoch = UINT64_MAX;
  for (const TraceDump& d : dumps) min_epoch = std::min(min_epoch, d.epoch_ns);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t pid = 0; pid < dumps.size(); ++pid) {
    const TraceDump& d = dumps[pid];
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << obs::json_escape(d.process.empty() ? "unknown" : d.process)
       << "\"}}";
    const double offset_us =
        static_cast<double>(d.epoch_ns - min_epoch) / 1000.0;
    for (const obs::trace::SpanRecord& r : d.spans) {
      const std::string_view name = r.name;
      const std::string_view cat = name.substr(0, name.find('.'));
      os << ",\n{\"name\":\"" << obs::json_escape(name) << "\",\"cat\":\""
         << obs::json_escape(cat) << "\",\"ph\":\"X\",\"ts\":"
         << obs::json_number(static_cast<double>(r.start_ns) / 1000.0 +
                             offset_us)
         << ",\"dur\":"
         << obs::json_number(static_cast<double>(r.dur_ns) / 1000.0)
         << ",\"pid\":" << pid << ",\"tid\":" << r.tid
         << ",\"args\":{\"trace\":" << r.trace_id << ",\"span\":"
         << r.span_id << ",\"parent\":" << r.parent_id << "}}";
    }
  }
  os << "\n]}\n";
  return static_cast<bool>(os);
}

const char* member_state_name(MemberWireState s) {
  switch (s) {
    case MemberWireState::kAlive:
      return "alive";
    case MemberWireState::kSuspect:
      return "suspect";
    case MemberWireState::kDead:
      return "dead";
    case MemberWireState::kLeft:
      return "left";
  }
  return "alive";
}

std::optional<MemberWireState> parse_member_state(std::string_view token) {
  if (token == "alive") return MemberWireState::kAlive;
  if (token == "suspect") return MemberWireState::kSuspect;
  if (token == "dead") return MemberWireState::kDead;
  if (token == "left") return MemberWireState::kLeft;
  return std::nullopt;
}

bool write_gossip(std::ostream& os, const GossipMessage& m) {
  os << "starring-gossip v1\n";
  os << "kind " << gossip_kind_name(m.kind) << "\n";
  os << "from ";
  write_member_tokens(os, m.from);
  os << "\n";
  if (!m.target.empty()) os << "target " << m.target << "\n";
  os << "updates " << m.updates.size() << "\n";
  for (const MemberRecord& u : m.updates) {
    os << "update ";
    write_member_tokens(os, u);
    os << "\n";
  }
  os << "end\n";
  return static_cast<bool>(os);
}

std::optional<GossipMessage> read_gossip(std::istream& is,
                                         std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return std::nullopt;
  }
  std::string version;
  if (word != "starring-gossip" || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  return read_gossip_body(is, error);
}

bool write_membership(std::ostream& os, const MembershipRecord& m) {
  os << "starring-membership v1\n";
  os << "epoch " << m.epoch << "\n";
  os << "replication " << m.replication << "\n";
  os << "vnodes " << m.vnodes << "\n";
  os << "members " << m.members.size() << "\n";
  for (const MemberRecord& r : m.members) {
    os << "member ";
    write_member_tokens(os, r);
    os << "\n";
  }
  os << "end\n";
  return static_cast<bool>(os);
}

std::optional<MembershipRecord> read_membership(std::istream& is,
                                                std::string* error) {
  std::string word;
  if (!(is >> word)) {
    fail(error, "");  // clean EOF
    return std::nullopt;
  }
  std::string version;
  if (word != "starring-membership" || !(is >> version) || version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  MembershipRecord m;
  if (!(is >> word >> m.epoch) || word != "epoch") {
    fail(error, "bad epoch line");
    return std::nullopt;
  }
  if (!(is >> word >> m.replication) || word != "replication" ||
      m.replication < 1) {
    fail(error, "bad replication line");
    return std::nullopt;
  }
  if (!(is >> word >> m.vnodes) || word != "vnodes" || m.vnodes < 1) {
    fail(error, "bad vnodes line");
    return std::nullopt;
  }
  std::size_t count = 0;
  if (!(is >> word >> count) || word != "members" ||
      count > kMaxMemberRecords) {
    fail(error, "bad members line");
    return std::nullopt;
  }
  m.members.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MemberRecord r;
    if (!(is >> word) || word != "member") {
      fail(error, "bad member line");
      return std::nullopt;
    }
    if (!read_member_tokens(is, &r, error)) return std::nullopt;
    m.members.push_back(std::move(r));
  }
  if (!read_end(is, error)) return std::nullopt;
  return m;
}

}  // namespace starring
