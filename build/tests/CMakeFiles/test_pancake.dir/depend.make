# Empty dependencies file for test_pancake.
# This may be replaced when dependencies are built.
