// MembershipTable unit tests: the pure SWIM state machine driven with
// injected time — suspicion windows, incarnation refutation, state
// precedence, piggyback budgets, epoch-versioned map rebuilds — no
// sockets, no threads, no sleeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/shard_map.hpp"
#include "util/io.hpp"

namespace starring::cluster {
namespace {

using Clock = MembershipTable::Clock;
using std::chrono::milliseconds;

MemberRecord member(const std::string& addr, int shard_id,
                    std::uint64_t inc = 1,
                    MemberWireState state = MemberWireState::kAlive) {
  MemberRecord m;
  m.addr = addr;
  m.shard_id = shard_id;
  m.incarnation = inc;
  m.state = state;
  return m;
}

/// Self is shard 0 at :7000; peers :7001/shard 1 and :7002/shard 2.
MembershipTable make_table(MembershipOptions opts = {}) {
  MembershipTable t(member("127.0.0.1:7000", 0), opts);
  t.bootstrap({member("127.0.0.1:7000", 0), member("127.0.0.1:7001", 1),
               member("127.0.0.1:7002", 2)},
              /*epoch=*/7, Clock::time_point{});
  t.take_events();  // tests start from a quiet table
  return t;
}

bool has_shard(const ShardMap& m, int id) { return m.find(id) != nullptr; }

TEST(MembershipTable, BootstrapBuildsMapAndRecognizesSelf) {
  MembershipTable t = make_table();
  EXPECT_EQ(t.epoch(), 7u);
  EXPECT_EQ(t.self().addr, "127.0.0.1:7000");
  EXPECT_EQ(t.self().shard_id, 0);
  const auto map = t.map();
  ASSERT_EQ(map->shards().size(), 3u);
  for (int id : {0, 1, 2}) EXPECT_TRUE(has_shard(*map, id));
  // Probe targets exclude self.
  const auto targets = t.probe_targets();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(std::count(targets.begin(), targets.end(), "127.0.0.1:7000"),
            0);
}

TEST(MembershipTable, SuspicionLeavesMapIntactUntilTimeoutThenDeath) {
  MembershipOptions opts;
  opts.suspicion_timeout_ms = 1000;
  MembershipTable t = make_table(opts);
  const Clock::time_point t0{};
  t.probe_failed("127.0.0.1:7001", t0);
  auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kSuspect);
  EXPECT_EQ(events[0].map_epoch, 0u) << "suspicion must not change the map";
  EXPECT_EQ(t.epoch(), 7u);
  EXPECT_TRUE(has_shard(*t.map(), 1))
      << "a suspect is probably alive; the refutation window is the point";
  // Inside the window: still only a suspect.
  t.tick(t0 + milliseconds(999));
  EXPECT_TRUE(t.take_events().empty());
  // Window expired: declared dead, dropped from the map, epoch bumped.
  t.tick(t0 + milliseconds(1000));
  events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kDead);
  EXPECT_EQ(events[0].map_epoch, 8u);
  EXPECT_EQ(t.epoch(), 8u);
  EXPECT_FALSE(has_shard(*t.map(), 1));
  EXPECT_TRUE(has_shard(*t.map(), 0));
  EXPECT_TRUE(has_shard(*t.map(), 2));
}

TEST(MembershipTable, ProbeSuccessAloneDoesNotReviveASuspect) {
  MembershipOptions opts;
  opts.suspicion_timeout_ms = 1000;
  MembershipTable t = make_table(opts);
  const Clock::time_point t0{};
  t.probe_failed("127.0.0.1:7001", t0);
  // Strict SWIM: a reachable suspect is still a suspect — only its own
  // refutation (a higher incarnation) clears the state.  Otherwise a
  // flapping link would bounce alive<->suspect forever without the
  // member ever learning it was suspected.
  t.probe_succeeded("127.0.0.1:7001", t0 + milliseconds(500));
  const MemberRecord* rec = t.find("127.0.0.1:7001");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, MemberWireState::kSuspect);
  t.tick(t0 + milliseconds(1500));
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 2u);  // suspect (from probe_failed), then dead
  EXPECT_EQ(events[1].kind, MembershipEvent::Kind::kDead);
}

TEST(MembershipTable, RefutationClearsSuspicionWithoutAnEpochBump) {
  MembershipTable t = make_table();
  const Clock::time_point t0{};
  t.probe_failed("127.0.0.1:7001", t0);
  t.take_events();
  // The member heard it was suspected and re-announced at inc+1.
  t.apply(member("127.0.0.1:7001", 1, /*inc=*/2), t0 + milliseconds(200));
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kAlive);
  EXPECT_EQ(events[0].map_epoch, 0u)
      << "the suspect never left the map, so nothing changed";
  EXPECT_EQ(t.epoch(), 7u);
  EXPECT_EQ(t.find("127.0.0.1:7001")->state, MemberWireState::kAlive);
}

TEST(MembershipTable, RevivalAfterDeathRejoinsTheMapWithAnEpochBump) {
  MembershipOptions opts;
  opts.suspicion_timeout_ms = 1000;
  MembershipTable t = make_table(opts);
  const Clock::time_point t0{};
  t.probe_failed("127.0.0.1:7001", t0);
  t.tick(t0 + milliseconds(1000));
  t.take_events();
  ASSERT_FALSE(has_shard(*t.map(), 1));
  // A falsely-buried member refutes its own obituary.
  t.apply(member("127.0.0.1:7001", 1, /*inc=*/2), t0 + milliseconds(1200));
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kAlive);
  EXPECT_EQ(events[0].map_epoch, 9u);
  EXPECT_TRUE(has_shard(*t.map(), 1));
}

TEST(MembershipTable, EqualIncarnationFollowsStatePrecedence) {
  MembershipTable t = make_table();
  const Clock::time_point t0{};
  // suspect > alive at equal incarnation.
  t.apply(member("127.0.0.1:7001", 1, 1, MemberWireState::kSuspect), t0);
  EXPECT_EQ(t.find("127.0.0.1:7001")->state, MemberWireState::kSuspect);
  // alive does NOT override suspect at the same incarnation.
  t.apply(member("127.0.0.1:7001", 1, 1, MemberWireState::kAlive), t0);
  EXPECT_EQ(t.find("127.0.0.1:7001")->state, MemberWireState::kSuspect);
  // dead > left: a crash observed during a departure stays a crash.
  t.apply(member("127.0.0.1:7002", 2, 1, MemberWireState::kLeft), t0);
  t.apply(member("127.0.0.1:7002", 2, 1, MemberWireState::kDead), t0);
  EXPECT_EQ(t.find("127.0.0.1:7002")->state, MemberWireState::kDead);
  t.apply(member("127.0.0.1:7002", 2, 1, MemberWireState::kLeft), t0);
  EXPECT_EQ(t.find("127.0.0.1:7002")->state, MemberWireState::kDead);
}

TEST(MembershipTable, SelfSuspicionIsRefutedByOutbiddingTheClaim) {
  MembershipTable t = make_table();
  const Clock::time_point t0{};
  ASSERT_EQ(t.self().incarnation, 1u);
  t.apply(member("127.0.0.1:7000", 0, 1, MemberWireState::kSuspect), t0);
  EXPECT_EQ(t.self().incarnation, 2u) << "refutation outbids the claim";
  EXPECT_EQ(t.self().state, MemberWireState::kAlive);
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kRefute);
  // The refutation is queued for dissemination.
  const auto updates = t.piggyback(16);
  ASSERT_FALSE(updates.empty());
  bool found = false;
  for (const MemberRecord& u : updates)
    if (u.addr == "127.0.0.1:7000" && u.incarnation == 2 &&
        u.state == MemberWireState::kAlive)
      found = true;
  EXPECT_TRUE(found);
  // A stale lower-incarnation claim is simply ignored.
  t.apply(member("127.0.0.1:7000", 0, 1, MemberWireState::kDead), t0);
  EXPECT_EQ(t.self().incarnation, 2u);
  EXPECT_TRUE(t.take_events().empty());
}

TEST(MembershipTable, LeftLeavesATombstoneThatStaleAliveCannotClear) {
  MembershipTable t = make_table();
  const Clock::time_point t0{};
  t.apply(member("127.0.0.1:7001", 1, 1, MemberWireState::kLeft), t0);
  auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kLeft);
  EXPECT_EQ(events[0].map_epoch, 8u);
  EXPECT_FALSE(has_shard(*t.map(), 1));
  // A stale alive claim at the same incarnation must not resurrect it.
  t.apply(member("127.0.0.1:7001", 1, 1, MemberWireState::kAlive), t0);
  EXPECT_FALSE(has_shard(*t.map(), 1));
  EXPECT_TRUE(t.take_events().empty());
  // But an actual rejoin (higher incarnation) does.
  t.apply(member("127.0.0.1:7001", 1, 2, MemberWireState::kAlive), t0);
  EXPECT_TRUE(has_shard(*t.map(), 1));
  EXPECT_EQ(t.epoch(), 9u);
}

TEST(MembershipTable, ObserverChurnNeverBumpsTheEpoch) {
  MembershipTable t = make_table();
  const Clock::time_point t0{};
  // An observer (the proxy): full gossip participant, no ring points.
  t.apply(member("127.0.0.1:7003", -1), t0);
  auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kJoin);
  EXPECT_EQ(events[0].map_epoch, 0u);
  EXPECT_EQ(t.epoch(), 7u);
  EXPECT_EQ(t.map()->shards().size(), 3u);
  t.probe_failed("127.0.0.1:7003", t0);
  t.tick(t0 + milliseconds(5000));
  events = t.take_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, MembershipEvent::Kind::kDead);
  EXPECT_EQ(events[1].map_epoch, 0u);
  EXPECT_EQ(t.epoch(), 7u);
}

TEST(MembershipTable, PiggybackBudgetBoundsRetransmissions) {
  MembershipOptions opts;
  opts.piggyback_transmits = 2;
  MembershipTable t = make_table(opts);
  t.probe_failed("127.0.0.1:7001", Clock::time_point{});
  // The suspicion update rides exactly `piggyback_transmits` messages.
  EXPECT_EQ(t.piggyback(16).size(), 1u);
  EXPECT_EQ(t.piggyback(16).size(), 1u);
  EXPECT_EQ(t.piggyback(16).size(), 0u) << "budget exhausted";
  // Fresh news about the same member re-arms the budget.
  t.apply(member("127.0.0.1:7001", 1, 2), Clock::time_point{});
  EXPECT_EQ(t.piggyback(16).size(), 1u);
}

TEST(MembershipTable, RejoinAtANewEndpointMovesTheShardNotTheKeys) {
  MembershipOptions opts;
  opts.suspicion_timeout_ms = 1000;
  MembershipTable t = make_table(opts);
  const Clock::time_point t0{};
  t.probe_failed("127.0.0.1:7001", t0);
  t.tick(t0 + milliseconds(1000));
  t.take_events();
  // The same shard id returns under a different address (restart on a
  // new port).  The map gets the new endpoint; placement is untouched
  // because vnode labels hash only the id.
  t.apply(member("127.0.0.1:7101", 1, 1), t0 + milliseconds(2000));
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, MembershipEvent::Kind::kJoin);
  const ShardInfo* info = t.map()->find(1);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->endpoint.port, 7101);
}

TEST(MembershipTable, AbsorbAdoptsSnapshotEpochParamsAndMembers) {
  // The cluster side: epoch 7, custom map parameters.
  MembershipTable cluster = make_table();
  cluster.set_map_params(/*replication=*/3, /*vnodes=*/64);
  const MembershipRecord snap = cluster.snapshot();
  EXPECT_EQ(snap.epoch, 7u);
  EXPECT_EQ(snap.replication, 3);
  EXPECT_EQ(snap.vnodes, 64);
  ASSERT_EQ(snap.members.size(), 3u);
  EXPECT_EQ(snap.members[0].addr, "127.0.0.1:7000") << "self rides first";

  // The joiner: a brand-new shard 3 that dialed a member and got the
  // snapshot back.
  MembershipTable joiner(member("127.0.0.1:7003", 3), {});
  joiner.absorb(snap, Clock::time_point{});
  EXPECT_EQ(joiner.epoch(), 7u) << "joiner builds the agreed epoch";
  const auto map = joiner.map();
  ASSERT_EQ(map->shards().size(), 4u) << "three absorbed + self";
  for (int id : {0, 1, 2, 3}) EXPECT_TRUE(has_shard(*map, id));
  EXPECT_EQ(map->vnodes(), 64);
  EXPECT_EQ(map->replication(), 3);
}

TEST(MembershipTable, MarkSelfLeftDropsOwnShardAndQueuesTheNews) {
  MembershipTable t = make_table();
  t.mark_self_left();
  EXPECT_TRUE(t.self_left());
  EXPECT_FALSE(has_shard(*t.map(), 0));
  EXPECT_EQ(t.epoch(), 8u);
  const auto updates = t.piggyback(16);
  bool found = false;
  for (const MemberRecord& u : updates)
    if (u.addr == "127.0.0.1:7000" && u.state == MemberWireState::kLeft)
      found = true;
  EXPECT_TRUE(found) << "the departure must be queued for dissemination";
  // Departing members refute nothing.
  t.take_events();
  t.apply(member("127.0.0.1:7000", 0, 5, MemberWireState::kDead),
          Clock::time_point{});
  EXPECT_TRUE(t.take_events().empty());
  EXPECT_EQ(t.self().state, MemberWireState::kLeft);
}

}  // namespace
}  // namespace starring::cluster
