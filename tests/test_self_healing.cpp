// Tests for the self-healing scenario driver.
#include <gtest/gtest.h>

#include "baselines/tseng.hpp"
#include "fault/generators.hpp"
#include "sim/self_healing.hpp"

namespace starring {
namespace {

EmbedStrategy ours() {
  return [](const StarGraph& g, const FaultSet& f) {
    return embed_longest_ring(g, f);
  };
}

TEST(SelfHealing, TraceShapeAndOptimality) {
  const StarGraph g(6);
  const auto pool = random_vertex_faults(g, 3, 17);
  const auto trace =
      run_self_healing(g, pool.vertex_faults(), SimParams{}, ours());
  ASSERT_TRUE(trace.completed);
  ASSERT_EQ(trace.events.size(), 4u);  // fault counts 0..3
  for (int k = 0; k <= 3; ++k) {
    const auto& ev = trace.events[static_cast<std::size_t>(k)];
    EXPECT_EQ(ev.faults_so_far, k);
    EXPECT_EQ(ev.ring_length,
              expected_ring_length(6, static_cast<std::size_t>(k)));
    EXPECT_EQ(ev.stranded, static_cast<std::uint64_t>(k));
    EXPECT_GT(ev.allreduce_us, 0.0);
    EXPECT_GE(ev.reembed_ms, 0.0);
  }
  // Ring length strictly decreases by 2 per fault.
  for (std::size_t i = 1; i < trace.events.size(); ++i)
    EXPECT_EQ(trace.events[i - 1].ring_length,
              trace.events[i].ring_length + 2);
}

TEST(SelfHealing, BaselineStrandsMore) {
  const StarGraph g(6);
  const auto pool = random_vertex_faults(g, 3, 23);
  const auto a =
      run_self_healing(g, pool.vertex_faults(), SimParams{}, ours());
  const auto b = run_self_healing(
      g, pool.vertex_faults(), SimParams{},
      [](const StarGraph& sg, const FaultSet& f) {
        return tseng_vertex_fault_ring(sg, f);
      });
  ASSERT_TRUE(a.completed && b.completed);
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LT(a.events[i].stranded, b.events[i].stranded) << i;
    EXPECT_GT(a.events[i].ring_length, b.events[i].ring_length) << i;
  }
}

TEST(SelfHealing, FailingStrategyMarksIncomplete) {
  const StarGraph g(5);
  const auto pool = random_vertex_faults(g, 2, 3);
  const auto trace = run_self_healing(
      g, pool.vertex_faults(), SimParams{},
      [](const StarGraph&, const FaultSet& f) -> std::optional<EmbedResult> {
        if (f.num_vertex_faults() >= 2) return std::nullopt;  // give up
        StarGraph sg(5);
        return embed_longest_ring(sg, f);
      });
  EXPECT_FALSE(trace.completed);
  EXPECT_EQ(trace.events.size(), 3u);  // 0, 1 succeed; 2 fails and stops
  EXPECT_EQ(trace.events.back().ring_length, 0u);
}

TEST(SelfHealing, InvalidRingCaughtByInternalVerifier) {
  const StarGraph g(5);
  const auto pool = random_vertex_faults(g, 1, 4);
  const auto trace = run_self_healing(
      g, pool.vertex_faults(), SimParams{},
      [](const StarGraph& sg, const FaultSet& f) {
        auto res = embed_longest_ring(sg, f);
        if (res && f.num_vertex_faults() == 1)
          std::swap(res->ring[0], res->ring[5]);  // corrupt it
        return res;
      });
  EXPECT_FALSE(trace.completed);
}

TEST(SelfHealing, EmptySequenceJustEmbedsOnce) {
  const StarGraph g(5);
  const auto trace = run_self_healing(g, {}, SimParams{}, ours());
  ASSERT_TRUE(trace.completed);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].ring_length, 120u);
}

}  // namespace
}  // namespace starring
