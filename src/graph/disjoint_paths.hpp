// Internally vertex-disjoint paths via unit-capacity max-flow.
//
// The star graph is maximally fault tolerant: its connectivity equals
// its degree n-1, so between any two vertices there are n-1 paths that
// share no interior vertex ("strong resilience" in the paper's list of
// star-graph virtues, and the structural reason |Fv| <= n-3 faults can
// never disconnect the healthy endpoints we route between).  This
// module computes such path systems constructively on any Graph with a
// node-split Edmonds-Karp flow; the routing layer wraps it for S_n.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace starring {

/// Up to `want` pairwise internally-vertex-disjoint s-t paths (each
/// returned path includes both endpoints; interior vertices are used by
/// at most one path; when s and t are adjacent, the direct edge is one
/// of the paths).  Fewer than `want` are returned when the graph's
/// local connectivity is smaller.
std::vector<std::vector<std::uint64_t>> vertex_disjoint_paths(
    const Graph& g, std::uint64_t s, std::uint64_t t, int want);

/// Local vertex connectivity between non-adjacent s and t (max number
/// of internally-disjoint paths), capped at `cap` to bound work.
int local_vertex_connectivity(const Graph& g, std::uint64_t s,
                              std::uint64_t t, int cap);

}  // namespace starring
