file(REMOVE_RECURSE
  "CMakeFiles/starring_stargraph.dir/decomposition.cpp.o"
  "CMakeFiles/starring_stargraph.dir/decomposition.cpp.o.d"
  "CMakeFiles/starring_stargraph.dir/star_graph.cpp.o"
  "CMakeFiles/starring_stargraph.dir/star_graph.cpp.o.d"
  "CMakeFiles/starring_stargraph.dir/substar.cpp.o"
  "CMakeFiles/starring_stargraph.dir/substar.cpp.o.d"
  "libstarring_stargraph.a"
  "libstarring_stargraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_stargraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
