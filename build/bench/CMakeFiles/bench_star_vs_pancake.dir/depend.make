# Empty dependencies file for bench_star_vs_pancake.
# This may be replaced when dependencies are built.
