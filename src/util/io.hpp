// Plain-text serialization of embeddings.
//
// A ring embedding is an artefact worth keeping: the runtime system
// computes it once per fault event and distributes it to every node.
// The format is line-oriented and versioned:
//
//   starring-embedding v1
//   n <dim>
//   kind <ring|path>
//   vertex_faults <count>
//   <one permutation per line, 1-based digits, e.g. 2134567>
//   edge_faults <count>
//   <two permutations per line>
//   sequence <length>
//   <vertex ids (Lehmer ranks), whitespace-separated, any wrapping>
//
// read_embedding() validates structure and value ranges; semantic
// validation (is it really a healthy ring?) stays with core/verify.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"

namespace starring {

struct EmbeddingFile {
  int n = 0;
  bool is_ring = true;  // false: open path
  FaultSet faults;
  std::vector<VertexId> sequence;
};

/// Serialize to a stream.  Returns false on stream failure.
bool write_embedding(std::ostream& os, const EmbeddingFile& e);

/// Parse; returns nullopt (with a short reason in *error if non-null)
/// on malformed input.
std::optional<EmbeddingFile> read_embedding(std::istream& is,
                                            std::string* error = nullptr);

}  // namespace starring
