#include "util/net.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace starring::net {

namespace {

// Request/response protocols on loopback die under Nagle: a record
// flushed as two segments waits out the peer's delayed ACK (~40ms),
// and behind a proxy the stall compounds per hop — per-connection
// throughput collapses below any open-loop arrival rate.  Every
// connected or accepted socket gets TCP_NODELAY.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint ep;
  std::string port_text = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    ep.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (ep.host.empty()) return std::nullopt;
  }
  if (port_text.empty() || port_text.size() > 5) return std::nullopt;
  long port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
  }
  if (port < 1 || port > 65535) return std::nullopt;
  ep.port = static_cast<int>(port);
  return ep;
}

std::string to_string(const Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int connect_endpoint(const Endpoint& ep, bool nonblocking) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  if (::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    errno = EHOSTUNREACH;
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) set_nodelay(fd);
  if (fd >= 0 && nonblocking && !set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_loopback(int port, int backlog, int* actual_port,
                    std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = std::string(what) + ": " + std::strerror(errno);
    return -1;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int rc = fail("bind/listen");
    ::close(fd);
    return rc;
  }
  if (actual_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const int rc = fail("getsockname");
      ::close(fd);
      return rc;
    }
    *actual_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

int accept_transient(int listen_fd, const char* tag, obs::Counter& errors) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    set_nodelay(fd);
    return fd;
  }
  if (errno == EINTR) return -1;  // signal; the caller re-checks its flag
  // Everything else is transient from the daemon's point of view:
  // ECONNABORTED means one peer gave up, EMFILE/ENFILE mean the
  // process (or box) is out of descriptors right now.  None of them
  // justify abandoning the accept loop and with it every future
  // client.
  errors.add();
  std::fprintf(stderr, "%s: accept: %s (transient, continuing)\n", tag,
               std::strerror(errno));
  if (errno == EMFILE || errno == ENFILE) {
    // Out of fds: accepting again immediately would fail again; yield
    // so connection teardown can release descriptors.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

// --- fd <-> iostream glue --------------------------------------------

FdInBuf::int_type FdInBuf::underflow() {
  while (true) {
    const ssize_t k = ::read(fd_, buf_, sizeof buf_);
    if (k > 0) {
      setg(buf_, buf_, buf_ + k);
      return traits_type::to_int_type(buf_[0]);
    }
    if (k == 0) return traits_type::eof();
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking socket with nothing queued: wait for data.  A
      // drain half-close (SHUT_RD/SHUT_RDWR) wakes the poll with EOF;
      // a bounded wait that expires reads as EOF too (the caller
      // treats the peer as gone).
      pollfd pfd{fd_, POLLIN, 0};
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms_);
      } while (r < 0 && errno == EINTR);
      if (r <= 0) return traits_type::eof();
      continue;
    }
    return traits_type::eof();
  }
}

FdOutBuf::int_type FdOutBuf::overflow(int_type c) {
  if (traits_type::eq_int_type(c, traits_type::eof())) return c;
  const char ch = traits_type::to_char_type(c);
  return write_all(&ch, 1) ? c : traits_type::eof();
}

std::streamsize FdOutBuf::xsputn(const char* s, std::streamsize count) {
  return write_all(s, static_cast<std::size_t>(count))
             ? count
             : std::streamsize{0};
}

void FdOutBuf::mark_dead() {
  if (dead_ != nullptr) dead_->store(true, std::memory_order_relaxed);
  // Both directions: wake a reader blocked in poll and refuse any
  // queued peer bytes — the connection is done.
  ::shutdown(fd_, SHUT_RDWR);
}

bool FdOutBuf::write_all(const char* p, std::size_t count) {
  if (dead_ != nullptr && dead_->load(std::memory_order_relaxed))
    return false;
  while (count > 0) {
    const ssize_t k = ::write(fd_, p, count);
    if (k > 0) {
      p += k;
      count -= static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms_);
      } while (r < 0 && errno == EINTR);
      if (r > 0) continue;
      // The peer has not drained its socket within the write budget:
      // evict it rather than let it pin this thread (and the response
      // lock) indefinitely.
      obs::counter("svc.evicted_conns").add();
      mark_dead();
      return false;
    }
    // EPIPE, ECONNRESET, ...: the peer is gone; record and stop
    // servicing instead of erroring on every subsequent response.
    obs::counter("io.write_errors").add();
    mark_dead();
    return false;
  }
  return true;
}

// --- daemon shutdown scaffolding -------------------------------------

std::size_t ConnRegistry::count() {
  const std::lock_guard<std::mutex> lock(mu);
  return fds.size();
}

void ConnRegistry::add(int fd) {
  const std::lock_guard<std::mutex> lock(mu);
  fds.push_back(fd);
}

void ConnRegistry::remove(int fd) {
  // Notify under the lock: the acceptor may tear down the registry
  // the moment it observes the table empty.
  const std::lock_guard<std::mutex> lock(mu);
  std::erase(fds, fd);
  if (fds.empty()) empty_cv.notify_all();
}

void ConnRegistry::shutdown_all(int how) {
  const std::lock_guard<std::mutex> lock(mu);
  for (const int fd : fds) ::shutdown(fd, how);
}

bool ConnRegistry::wait_empty(int budget_ms) {
  std::unique_lock<std::mutex> lock(mu);
  return empty_cv.wait_for(lock, std::chrono::milliseconds(budget_ms),
                           [this] { return fds.empty(); });
}

DrainGuard::DrainGuard(int budget_ms) {
  watcher_ = std::thread([this, budget_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::milliseconds(budget_ms),
                      [this] { return done_; })) {
      std::fprintf(stderr, "drain deadline exceeded, aborting\n");
      std::_Exit(1);
    }
  });
}

DrainGuard::~DrainGuard() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  cv_.notify_all();
  watcher_.join();
}

}  // namespace starring::net
