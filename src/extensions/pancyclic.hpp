// Extension: even pancyclicity — rings of every even length.
//
// The paper's reference [18] (Jwo, Lakshmivarahan & Dhall, "Embedding
// of cycles and grids in star graphs") initiated cycle embedding in
// S_n; beyond the Hamiltonian ring, the star graph contains cycles of
// EVERY even length from its girth 6 up to n! (it is bipartite, so odd
// lengths are impossible).  This module makes that spectrum
// constructive:
//
//  * lengths 6..24 come from an exhaustive search inside one S_4 block
//    (verified complete: every even length is realized);
//  * longer rings start from the Hamiltonian ring of the largest
//    embedded S_r with r! below the target and grow by chord
//    absorption: an edge (u, v) of the ring is replaced by a detour
//    u - w - x - v through two adjacent off-ring vertices, adding
//    exactly 2 vertices per step while staying a simple cycle.
//
// A degree-3-regular-ish scan keeps each absorption cheap; the whole
// construction is output-sensitive and every result verifies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stargraph/star_graph.hpp"

namespace starring {

/// A simple cycle of exactly `length` vertices in S_n, or nullopt when
/// no such cycle exists (odd lengths, length < 6, length > n!) or the
/// growth search dead-ends (not observed in the tested ranges).
std::optional<std::vector<VertexId>> embed_even_ring(const StarGraph& g,
                                                     std::uint64_t length);

}  // namespace starring
