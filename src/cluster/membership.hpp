// Dynamic cluster membership: SWIM-style failure detection feeding an
// epoch-versioned ShardMap.
//
// The paper's fault model — rings that survive up to n-3 vertex
// faults — is only as good as the cluster's ability to notice faults.
// Before this layer, membership was a static file: a dead shard stayed
// in every map until an operator restarted the world (DESIGN.md §13's
// old non-guarantees).  This layer makes membership a live protocol:
//
//   * Failure detection is SWIM: every probe interval a member pings
//     one peer (round-robin over a shuffled order, so detection time
//     is bounded); a failed direct ping falls back to k indirect
//     ping-req probes through other peers before the target is
//     suspected.  A suspect that stays silent past the suspicion
//     timeout is declared dead.
//   * Refutation is by incarnation number: a member that learns it is
//     suspected re-announces itself alive with a higher incarnation,
//     which overrides the suspicion everywhere.  Conflicting claims
//     about one member are ordered by (incarnation, state precedence)
//     with precedence alive < suspect < left < dead at equal
//     incarnation — the classic SWIM merge.
//   * Dissemination is piggybacked: every gossip message carries
//     recently changed member records, each retransmitted a bounded
//     number of times.  There is no separate broadcast channel.
//
// Members are identified by their listen endpoint ("HOST:PORT");
// shard_id is an attribute.  Observers (the proxy, shard_id -1)
// participate fully in detection and dissemination but contribute no
// ring points.
//
// The map contract: map() returns an immutable snapshot
// (shared_ptr<const ShardMap>) rebuilt via ShardMap::with()/without()
// on each *confirmed* membership change — join/rejoin, death, leave.
// Each such change bumps the epoch.  Suspicion deliberately does NOT
// change the map: a suspect is probably alive (that is the point of
// the refutation window), so traffic keeps flowing and the router's
// circuit breakers own the short-term data-path reaction.
//
// Two classes split the concerns:
//   MembershipTable  pure state machine — injected time, no sockets,
//                    no threads, unit-testable in isolation.
//   MembershipAgent  the runtime: wraps a table in a mutex, runs the
//                    prober thread, dials peers over util/net, serves
//                    inbound gossip, and publishes counters, liveness
//                    gauges, and membership-transition trace spans.
//
// What is NOT provided (see DESIGN.md §13): linearizable agreement on
// the map.  Two members can briefly hold different epochs for the same
// member set, or the same epoch for different sets; convergence is
// eventual, conflicts resolve last-writer-wins by incarnation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.hpp"
#include "util/io.hpp"

namespace starring::cluster {

struct MembershipOptions {
  /// One direct probe is launched per interval (SWIM's protocol
  /// period).  Detection latency scales with interval * member count.
  int probe_interval_ms = 250;
  /// Budget for one probe round-trip (connect + ping + ack).
  int probe_timeout_ms = 400;
  /// Indirect ping-req fanout after a failed direct probe.
  int indirect_probes = 2;
  /// How long a suspect may stay silent before it is declared dead.
  /// This is the refutation window — too short and a GC pause becomes
  /// a death, too long and real failures linger in the ring.
  int suspicion_timeout_ms = 1500;
  /// Retransmit budget per queued membership update (SWIM suggests
  /// O(log n) transmissions; a small constant is plenty at our scale).
  int piggyback_transmits = 8;
  /// Map parameters applied to every rebuilt ShardMap.  replication is
  /// the *target* R: maps are clamped to the live shard count and
  /// re-raised toward R as members return.
  int replication = 2;
  int vnodes = 128;
};

/// One observed membership transition — the unit the agent turns into
/// counters, liveness gauges, trace spans, and map-change callbacks.
struct MembershipEvent {
  enum class Kind {
    kJoin,     // new member entered the table alive
    kAlive,    // existing member refuted suspicion / returned from dead
    kSuspect,  // probe failures, refutation window open
    kDead,     // suspicion timeout expired
    kLeft,     // graceful departure
    kRefute,   // *we* were suspected and bumped our incarnation
  };
  Kind kind = Kind::kJoin;
  MemberRecord member;
  /// Map epoch after the event; 0 when the event did not change the
  /// map (observer churn, suspicion, refutation).
  std::uint64_t map_epoch = 0;
};

const char* membership_event_name(MembershipEvent::Kind k);

/// Pure SWIM state machine.  All mutation takes an explicit `now`; the
/// table never reads a clock, opens a socket, or spawns a thread, so
/// tests drive arbitrary schedules deterministically.  Not thread-safe
/// — the agent serializes access.
class MembershipTable {
 public:
  using Clock = std::chrono::steady_clock;

  MembershipTable(MemberRecord self, MembershipOptions opts);

  /// Adopt the cluster's map parameters (from a static map file or a
  /// join snapshot) before/while bootstrapping.
  void set_map_params(int replication, int vnodes);

  /// Install an initial member set (static map file or --bootstrap).
  /// Self is recognized by address and not duplicated.  `epoch` seeds
  /// the first map build.
  void bootstrap(std::vector<MemberRecord> members, std::uint64_t epoch,
                 Clock::time_point now);

  /// Adopt a join snapshot: merge every member, and fast-forward the
  /// local epoch/map parameters to the snapshot's (a joiner must build
  /// the same ring the cluster already agreed on).
  void absorb(const MembershipRecord& snap, Clock::time_point now);

  /// Merge one piggybacked update (the SWIM dissemination input).
  void apply(const MemberRecord& update, Clock::time_point now);

  /// Probe verdicts from the agent's prober.
  void probe_failed(const std::string& addr, Clock::time_point now);
  void probe_succeeded(const std::string& addr, Clock::time_point now);

  /// Expire suspicion windows: suspects silent past the timeout are
  /// declared dead.  Called once per protocol period.
  void tick(Clock::time_point now);

  /// Graceful departure: self transitions to left and the update is
  /// queued for dissemination.  The agent also pushes it synchronously
  /// to every peer (leave must not depend on piggyback luck).
  void mark_self_left();

  const MemberRecord& self() const { return self_; }
  bool self_left() const { return self_.state == MemberWireState::kLeft; }
  std::uint64_t epoch() const { return map_->epoch(); }
  const MembershipOptions& options() const { return opts_; }

  /// Immutable placement snapshot; never null (an empty map routes
  /// nothing).  Rebuilt — never mutated — on membership changes.
  std::shared_ptr<const ShardMap> map() const { return map_; }

  /// Full view for join answers and the MEMBERS command.
  MembershipRecord snapshot() const;

  /// Probe-eligible peers (alive or suspect, excluding self).
  std::vector<std::string> probe_targets() const;

  /// Current record for a member, nullptr if unknown.  Excludes self.
  const MemberRecord* find(const std::string& addr) const;

  /// Drain up to `max` piggyback updates (each decrements its
  /// retransmit budget; exhausted entries are dropped).
  std::vector<MemberRecord> piggyback(std::size_t max);

  /// Transitions recorded since the last take; the agent turns these
  /// into observability and map-change callbacks.
  std::vector<MembershipEvent> take_events();

 private:
  struct Entry {
    MemberRecord rec;
    Clock::time_point suspect_since{};
  };
  struct Outgoing {
    MemberRecord rec;
    int transmits_left = 0;
  };

  /// True when `upd` should override `cur` under SWIM merge rules.
  static bool overrides(const MemberRecord& cur, const MemberRecord& upd);
  void apply_about_self(const MemberRecord& update);
  /// Record a transition (map_epoch tagged when the map was rebuilt).
  void note(MembershipEvent::Kind kind, const MemberRecord& rec,
            bool map_changed);
  void rebuild_map_with(const MemberRecord& rec);
  void rebuild_map_without(const MemberRecord& rec);
  /// Rebuild from scratch (bootstrap/absorb) at the given epoch.
  void full_rebuild(std::uint64_t epoch);
  void queue_update(const MemberRecord& rec);

  MemberRecord self_;
  MembershipOptions opts_;
  std::vector<Entry> members_;  // sorted by addr; excludes self
  std::deque<Outgoing> outbox_;
  std::vector<MembershipEvent> events_;
  std::shared_ptr<const ShardMap> map_;
  /// absorb() merges many members at once; incremental rebuilds are
  /// suppressed and one full rebuild lands at the snapshot's epoch.
  bool in_bulk_ = false;
};

/// The runtime half: owns a MembershipTable behind a mutex, runs the
/// SWIM prober thread, dials peers over util/net, answers inbound
/// gossip, and publishes cluster.membership.* counters, per-shard
/// liveness gauges (cluster.shard.<id>.alive), the cluster.map_epoch
/// gauge, and member.<transition> trace spans.
///
/// Failpoints: `gossip.probe` suppresses outbound probe rounds (the
/// silent-sender half of a partition), `gossip.ack` is evaluated by
/// the *server* side before answering gossip (the dropped-ack half) —
/// both used by the chaos gossip-partition scenario.  `cluster.handoff`
/// lives in the proxy's seeder, not here.
class MembershipAgent {
 public:
  /// What Agent::handle() wants written back to the gossip peer:
  /// exactly one of `ack` or `snapshot` is set (snapshot answers a
  /// join), unless the server-side failpoint asked to drop the reply.
  struct Reply {
    std::optional<GossipMessage> ack;
    std::optional<MembershipRecord> snapshot;
  };

  using MapCallback = std::function<void(
      std::shared_ptr<const ShardMap>, const MembershipEvent&)>;
  using Clock = MembershipTable::Clock;

  MembershipAgent(MemberRecord self, MembershipOptions opts);
  ~MembershipAgent();
  MembershipAgent(const MembershipAgent&) = delete;
  MembershipAgent& operator=(const MembershipAgent&) = delete;

  /// Exactly one bootstrap call before start().  bootstrap_from_map
  /// seeds from a static shard-map file (back-compatible path);
  /// bootstrap_single starts a brand-new cluster with self as the only
  /// member; join() dials an existing member and adopts its snapshot
  /// (retrying `attempts` times — the seed may still be binding).
  void bootstrap_from_map(const ShardMap& map);
  void bootstrap_single();
  bool join(const std::string& seed_addr, int attempts = 8);

  /// Called (outside the agent lock) after every map-changing event.
  /// Register before start().
  void on_map_change(MapCallback cb);

  void start();
  void stop();

  /// Graceful departure: announces leave to every live peer
  /// synchronously, marks self left, and stops probing.  Idempotent.
  void leave();

  /// Serve one inbound gossip message (the daemon's request loop calls
  /// this for RequestKind::kGossip).  Merges the sender's record and
  /// piggybacked updates, then builds the reply.  For ping-req this
  /// dials the target synchronously.
  Reply handle(const GossipMessage& in);

  std::shared_ptr<const ShardMap> map() const;
  std::uint64_t epoch() const;
  MembershipRecord membership() const;
  MemberRecord self() const;

 private:
  void prober_loop();
  /// One protocol period: direct probe, indirect fallback, verdict.
  void probe_round();
  /// Dial `addr`, send `msg`, parse one gossip reply.  nullopt on
  /// connect/write/read failure or timeout.
  std::optional<GossipMessage> exchange(const std::string& addr,
                                        const GossipMessage& msg);
  GossipMessage make_message(GossipMessage::Kind kind);
  /// Apply a peer's reply (its self record + piggybacked updates).
  void merge_reply(const GossipMessage& reply);
  /// Publish counters/gauges/spans for pending table events and fire
  /// the map callback.  Call with mu_ held; callbacks run unlocked.
  void flush_events_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  MembershipTable table_;
  MapCallback map_cb_;
  std::thread prober_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> left_{false};
  std::size_t rr_cursor_ = 0;  // round-robin position over targets
};

}  // namespace starring::cluster
