// starring-cli — client and soak driver for starringd.
//
// Three modes over one deterministic workload generator (mixed
// dimensions, vertex-fault counts up to n-3, optionally a slice of
// mixed vertex+edge fault requests), so requests never need to be
// stored to be checked — any mode can regenerate request i from
// (seed, i):
//
//   generate  write the request stream to stdout (pipe into starringd)
//   check     read a response stream from stdin, regenerate the
//             matching requests, verify every ring independently
//   drive     spawn starringd itself (argv after `--`), stream the
//             workload through its stdio, verify responses in flight,
//             and require a clean drain (daemon exit 0); or --connect
//             PORT to drive a TCP daemon instead
//   warm      compute the workload's canonical embeddings in-process
//             (plus the fault-free oracle plane) and write them to an
//             oracle snapshot (--out) that `starringd
//             --oracle-snapshot` loads at startup, turning the
//             workload's cold start into cache hits
//
// drive is the soak harness CI uses: it exits non-zero on any
// embedding/verifier failure, on response/request count mismatch, on
// an unclean daemon exit, and (with --expect-hits) when the canonical
// cache never hit.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ext/stdio_filebuf.h>  // libstdc++; the repo targets the gcc toolchain
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/oracle_store.hpp"
#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "service/canonical.hpp"
#include "obs/prometheus.hpp"
#include "stargraph/star_graph.hpp"
#include "util/backoff.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring {
namespace {

/// Id-namespace base for client-minted trace ids (see
/// obs::trace::set_id_namespace): request i is traced as base + i + 1.
constexpr std::uint64_t kCliTraceNamespace = std::uint64_t{0xFFFF} << 48;

struct CliConfig {
  std::string mode;
  std::size_t count = 100;
  std::uint64_t seed = 1;
  int nmin = 5;
  int nmax = 7;
  bool verify = false;       // set the per-request verify flag
  int edge_pct = 10;         // % of requests that carry one edge fault
  std::int64_t deadline_ms = 0;  // per-request budget; 0 = none
  std::string tenant;        // tag every request with this tenant
  bool expect_hits = false;  // drive: fail if the cache never hit
  /// drive: stamp every request with a deterministic trace context so
  /// daemon/proxy spans parent under the client's trace, and (TCP)
  /// pull the peer's span dump at end of run for a per-request hop
  /// summary.
  bool trace = false;
  /// drive: TCP endpoint instead of spawning ("PORT" or "HOST:PORT" —
  /// a bare port keeps the historical loopback behaviour).
  std::optional<net::Endpoint> connect;
  int retry = 0;  // drive (TCP): reconnect rounds after rejections/drops
  std::string trace_out;     // drive (spawned): daemon trace JSON path
  std::string stats_out;     // drive: save the raw STATS promtext here
  std::string out;           // warm: snapshot output path
  std::vector<std::string> daemon_argv;  // drive: after `--`
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <generate|check|drive|warm> [options]\n"
      << "  --count N        requests in the workload (default 100)\n"
      << "  --seed S         workload seed (default 1)\n"
      << "  --nmin N         smallest dimension (default 5)\n"
      << "  --nmax N         largest dimension (default 7)\n"
      << "  --verify         set the verify flag on every request\n"
      << "  --edge-pct P     percent of requests with an edge fault "
         "(default 10)\n"
      << "  --deadline-ms N  completion budget per request; past-budget\n"
      << "                   requests are answered `status timeout`\n"
      << "  --tenant NAME    tag every request with this tenant (quota\n"
      << "                   and fair-scheduling principal)\n"
      << "  --expect-hits    drive: fail when cache hits == 0\n"
      << "  --trace          drive: stamp requests with trace ids; with\n"
      << "                   --connect, print a per-request hop summary\n"
      << "                   (forward attempts, serving shard) scraped\n"
      << "                   from the peer's span dump\n"
      << "  --connect HOST:PORT  drive: use a TCP daemon (or proxy) "
         "there;\n"
      << "                   a bare PORT means 127.0.0.1:PORT\n"
      << "  --retry N        drive (TCP): reconnect and resubmit "
         "unanswered\n"
      << "                   requests up to N times (exponential backoff "
         "+\n"
      << "                   jitter) after rejections or transport "
         "drops\n"
      << "  --trace-out F    drive: pass --trace-out F to the spawned "
         "daemon\n"
      << "  --stats-out F    drive: save the end-of-run STATS promtext\n"
      << "  --out F          warm: oracle snapshot output path\n"
      << "  -- CMD ARGS...   drive: daemon command line to spawn\n";
  return 2;
}

std::optional<CliConfig> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliConfig cfg;
  cfg.mode = argv[1];
  if (cfg.mode != "generate" && cfg.mode != "check" &&
      cfg.mode != "drive" && cfg.mode != "warm")
    return std::nullopt;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto num = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : -1;
    };
    long v = 0;
    if (a == "--count" && (v = num()) > 0) {
      cfg.count = static_cast<std::size_t>(v);
    } else if (a == "--seed" && (v = num()) >= 0) {
      cfg.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--nmin" && (v = num()) >= 3) {
      cfg.nmin = static_cast<int>(v);
    } else if (a == "--nmax" && (v = num()) >= 3) {
      cfg.nmax = static_cast<int>(v);
    } else if (a == "--verify") {
      cfg.verify = true;
    } else if (a == "--edge-pct" && (v = num()) >= 0 && v <= 100) {
      cfg.edge_pct = static_cast<int>(v);
    } else if (a == "--deadline-ms" && (v = num()) > 0) {
      cfg.deadline_ms = v;
    } else if (a == "--tenant" && i + 1 < argc) {
      cfg.tenant = argv[++i];
    } else if (a == "--expect-hits") {
      cfg.expect_hits = true;
    } else if (a == "--trace") {
      cfg.trace = true;
    } else if (a == "--connect" && i + 1 < argc) {
      cfg.connect = net::parse_endpoint(argv[++i]);
      if (!cfg.connect) return std::nullopt;
    } else if (a == "--retry" && (v = num()) >= 0) {
      cfg.retry = static_cast<int>(v);
    } else if (a == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else if (a == "--stats-out" && i + 1 < argc) {
      cfg.stats_out = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      cfg.out = argv[++i];
    } else if (a == "--") {
      for (++i; i < argc; ++i) cfg.daemon_argv.emplace_back(argv[i]);
    } else {
      return std::nullopt;
    }
  }
  if (cfg.nmax < cfg.nmin || cfg.nmax > kMaxN) return std::nullopt;
  return cfg;
}

/// Request i of the workload, a pure function of (cfg, i).
ServiceRequest make_request(const CliConfig& cfg, std::size_t i) {
  std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + i);
  ServiceRequest req;
  req.id = i;
  req.n = cfg.nmin + static_cast<int>(
                         rng() % static_cast<std::uint64_t>(
                                     cfg.nmax - cfg.nmin + 1));
  req.verify = cfg.verify;
  const StarGraph g(req.n);
  const int budget = req.n - 3;  // the paper's guarantee regime
  const int nf =
      budget > 0 ? static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                budget + 1))
                 : 0;
  const std::uint64_t fault_seed = rng();
  const bool with_edge =
      nf >= 1 && static_cast<int>(rng() % 100) < cfg.edge_pct;
  req.faults = with_edge ? mixed_faults(g, nf - 1, 1, fault_seed)
                         : random_vertex_faults(g, nf, fault_seed);
  req.deadline_ms = cfg.deadline_ms;
  req.tenant = cfg.tenant;
  if (cfg.trace) {
    // Deterministic client-minted trace context: namespace 0xFFFF keeps
    // these ids clear of any server-minted id (shard k mints under
    // namespace k+1, the proxy under 0), and request i always gets the
    // same trace id, so a retried request continues its trace.
    req.trace_id = kCliTraceNamespace + i + 1;
    req.parent_span_id = 0;  // the first server-side span is the root
  }
  return req;
}

/// Independent check of one response against its regenerated request.
/// Returns an empty string on success, else the failure reason.
std::string check_response(const CliConfig& cfg, const ServiceResponse& resp,
                           std::size_t* hits, std::size_t* timeouts) {
  if (resp.id >= cfg.count) return "response id out of workload range";
  const ServiceRequest req = make_request(cfg, resp.id);
  if (resp.status == ServiceStatus::kRejected) return "rejected by daemon";
  if (resp.status == ServiceStatus::kThrottled)
    return "throttled by daemon";
  if (resp.status == ServiceStatus::kTimeout) {
    ++*timeouts;
    // A timeout is a legitimate terminal status when the workload arms
    // deadlines; without them the daemon invented one.
    return cfg.deadline_ms > 0 ? "" : "unexpected timeout status";
  }
  if (resp.status != ServiceStatus::kOk)
    return "status error: " + resp.reason;
  if (resp.cache_hit) ++*hits;
  const StarGraph g(req.n);
  const std::uint64_t want =
      expected_ring_length(req.n, req.faults.num_vertex_faults());
  if (resp.ring.size() != want)
    return "ring length " + std::to_string(resp.ring.size()) +
           " != " + std::to_string(want);
  const RingReport report = verify_healthy_ring(g, req.faults, resp.ring);
  if (!report.valid) return "verifier: " + report.error;
  return "";
}

int run_generate(const CliConfig& cfg) {
  for (std::size_t i = 0; i < cfg.count; ++i)
    if (!write_request(std::cout, make_request(cfg, i))) return 1;
  return 0;
}

/// Drain a response stream, verifying everything, until end of stream
/// or `max_count` responses were consumed (drive modes stop at the
/// workload size so a STATS exchange can follow on the same stream).
/// Returns the number of failed responses (parse errors count as one
/// failure and stop).
int consume_responses(const CliConfig& cfg, std::istream& in,
                      std::size_t* received, std::size_t* hits,
                      std::size_t* timeouts,
                      std::size_t max_count = SIZE_MAX) {
  int failures = 0;
  std::string err;
  while (*received < max_count) {
    const auto resp = read_response(in, &err);
    if (!resp) {
      if (!err.empty()) {
        std::cerr << "starring-cli: response parse error: " << err << "\n";
        ++failures;
      }
      break;
    }
    ++*received;
    const std::string why = check_response(cfg, *resp, hits, timeouts);
    if (!why.empty()) {
      std::cerr << "starring-cli: request " << resp->id << ": " << why
                << "\n";
      ++failures;
    }
  }
  return failures;
}

/// End-of-run STATS exchange on a drive stream: request the daemon's
/// live Prometheus snapshot, optionally save it, and print the
/// p50/p95/p99 submit-to-response latency summary from the
/// svc.latency.* histogram.  Call only after every workload response
/// was consumed, so the stats record is the next record on the stream.
/// Returns 1 on a failed exchange.
int fetch_and_report_stats(const CliConfig& cfg, std::ostream& out,
                           std::istream& in) {
  ServiceRequest stats_req;
  stats_req.kind = RequestKind::kStats;
  if (!write_request(out, stats_req)) {
    std::cerr << "starring-cli: cannot send STATS\n";
    return 1;
  }
  out.flush();
  std::string err;
  const auto body = read_stats(in, &err);
  if (!body) {
    std::cerr << "starring-cli: STATS reply: "
              << (err.empty() ? "unexpected end of stream" : err) << "\n";
    return 1;
  }
  if (!cfg.stats_out.empty()) {
    std::ofstream f(cfg.stats_out, std::ios::trunc);
    f << *body;
    if (!f) {
      std::cerr << "starring-cli: cannot write " << cfg.stats_out << "\n";
      return 1;
    }
  }
  const auto h = obs::parse_histogram(*body, "starring_svc_latency_seconds");
  if (!h || h->count == 0) {
    std::cout << "starring-cli: latency: no samples reported\n";
    return 0;
  }
  const auto ms = [&](double q) {
    return obs::histogram_quantile(*h, q) * 1e3;
  };
  std::printf(
      "starring-cli: latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, "
      "mean %.3f ms (%lld samples)\n",
      ms(0.5), ms(0.95), ms(0.99),
      h->sum_seconds / static_cast<double>(h->count) * 1e3,
      static_cast<long long>(h->count));
  return 0;
}

/// --trace hop summary (TCP drive): pull the peer's span dump with a
/// TRACE exchange and report, per traced request, how many forward
/// attempts the proxy made and which shard served it.  Attempts are
/// counted from `proxy.forward.s<id>` spans of the request's trace;
/// the serving shard is the latest-starting attempt's suffix.  Against
/// a bare shard (no proxy spans) the summary degenerates to a note.
/// Returns 1 on a failed exchange — an empty dump is not a failure.
int fetch_and_report_hops(std::ostream& out, std::istream& in) {
  ServiceRequest pull;
  pull.kind = RequestKind::kTrace;
  if (!write_request(out, pull)) {
    std::cerr << "starring-cli: cannot send TRACE\n";
    return 1;
  }
  out.flush();
  std::string err;
  const auto dump = read_trace(in, &err);
  if (!dump) {
    std::cerr << "starring-cli: TRACE reply: "
              << (err.empty() ? "unexpected end of stream" : err) << "\n";
    return 1;
  }
  struct Hop {
    int attempts = 0;
    int shard = -1;
    std::int64_t last_start = INT64_MIN;
  };
  std::map<std::uint64_t, Hop> hops;  // keyed by client trace id
  for (const obs::trace::SpanRecord& s : dump->spans) {
    constexpr std::string_view kPrefix = "proxy.forward.s";
    if (s.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if ((s.trace_id >> 48) != (kCliTraceNamespace >> 48)) continue;
    const char* suffix = s.name.c_str() + kPrefix.size();
    char* end = nullptr;
    const long sid = std::strtol(suffix, &end, 10);
    if (end == suffix || *end != '\0') continue;
    Hop& h = hops[s.trace_id];
    ++h.attempts;
    if (s.start_ns >= h.last_start) {
      h.last_start = s.start_ns;
      h.shard = static_cast<int>(sid);
    }
  }
  if (hops.empty()) {
    std::cout << "starring-cli: hops: no proxy forward spans in the "
                 "peer's dump ("
              << dump->spans.size() << " spans, process "
              << (dump->process.empty() ? "?" : dump->process) << ")\n";
    return 0;
  }
  std::size_t failovers = 0;
  for (const auto& [tid, h] : hops) {
    if (h.attempts > 1) ++failovers;
    std::cout << "starring-cli: hops: request " << (tid - kCliTraceNamespace - 1)
              << " attempts=" << h.attempts << " shard=" << h.shard << "\n";
  }
  std::cout << "starring-cli: hops: " << hops.size() << " traced requests, "
            << failovers << " with failover (dump: " << dump->spans.size()
            << " spans, " << dump->dropped << " dropped)\n";
  return 0;
}

int report(const CliConfig& cfg, std::size_t received, std::size_t hits,
           std::size_t timeouts, int failures, double wall_s) {
  std::cout << "starring-cli: " << received << "/" << cfg.count
            << " responses, " << hits << " cache hits, " << timeouts
            << " timeouts, " << failures << " failures";
  if (wall_s > 0)
    std::cout << ", " << static_cast<double>(received) / wall_s
              << " req/s";
  std::cout << "\n";
  if (received != cfg.count) {
    std::cerr << "starring-cli: missing responses\n";
    return 1;
  }
  if (cfg.expect_hits && hits == 0) {
    std::cerr << "starring-cli: expected cache hits, saw none\n";
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int run_check(const CliConfig& cfg) {
  std::size_t received = 0;
  std::size_t hits = 0;
  std::size_t timeouts = 0;
  const int failures =
      consume_responses(cfg, std::cin, &received, &hits, &timeouts);
  return report(cfg, received, hits, timeouts, failures, 0.0);
}

int drive_spawned(const CliConfig& cfg) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    std::cerr << "starring-cli: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  // The spawned daemon owns the flight recorder; --trace-out is
  // forwarded so the dump lands where the daemon runs (here: locally).
  std::vector<std::string> child_argv = cfg.daemon_argv;
  if (!cfg.trace_out.empty()) {
    child_argv.push_back("--trace-out");
    child_argv.push_back(cfg.trace_out);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "starring-cli: fork: " << std::strerror(errno) << "\n";
    return 1;
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(child_argv.size() + 1);
    for (const std::string& a : child_argv)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::cerr << "starring-cli: exec " << cfg.daemon_argv[0] << ": "
              << std::strerror(errno) << "\n";
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  const auto t0 = std::chrono::steady_clock::now();
  __gnu_cxx::stdio_filebuf<char> out_buf(to_child[1], std::ios::out);
  __gnu_cxx::stdio_filebuf<char> in_buf(from_child[0], std::ios::in);
  std::ostream out(&out_buf);
  std::istream in(&in_buf);

  std::thread sender([&] {
    for (std::size_t i = 0; i < cfg.count; ++i)
      if (!write_request(out, make_request(cfg, i))) break;
    out.flush();
  });

  std::size_t received = 0;
  std::size_t hits = 0;
  std::size_t timeouts = 0;
  int failures =
      consume_responses(cfg, in, &received, &hits, &timeouts, cfg.count);
  sender.join();
  // With every workload response consumed (and the sender done), the
  // request stream is quiet: a STATS exchange cannot interleave with
  // embedding responses.
  if (received == cfg.count) {
    failures += fetch_and_report_stats(cfg, out, in);
    if (cfg.trace) failures += fetch_and_report_hops(out, in);
  }
  out_buf.close();  // EOF on the daemon's stdin: begin graceful drain
  failures += consume_responses(cfg, in, &received, &hits, &timeouts);

  int status = 0;
  if (::waitpid(pid, &status, 0) < 0 ||
      !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
    std::cerr << "starring-cli: daemon did not drain cleanly (status "
              << status << ")\n";
    ++failures;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report(cfg, received, hits, timeouts, failures, wall_s);
}

/// TCP drive with resilience: each round opens a connection, submits
/// every not-yet-answered request, and consumes one response per
/// submission.  `status rejected` answers (queue full, connection
/// limit) and transport drops leave their requests unanswered; with
/// --retry N up to N further rounds resubmit them after an exponential
/// backoff with jitter.  Responses are correlated by id, so duplicate
/// answers across rounds are counted once.
int drive_tcp(const CliConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<char> answered(cfg.count, 0);
  std::size_t done = 0;
  std::size_t hits = 0;
  std::size_t timeouts = 0;
  int failures = 0;
  std::mt19937_64 jitter(cfg.seed ^ 0x6a177e5b0ff5ULL);
  const int rounds = cfg.retry + 1;

  for (int round = 0; round < rounds && done < cfg.count; ++round) {
    const bool last_round = round + 1 == rounds;
    if (round > 0) {
      // Capped exponential (util/backoff.hpp): saturates at 5s instead
      // of doubling forever — the old shift was UB from --retry 64 up.
      const long long backoff_ms =
          retry_backoff_ms(round) + static_cast<long long>(jitter() % 50);
      std::cerr << "starring-cli: retry round " << round << " for "
                << (cfg.count - done) << " requests after " << backoff_ms
                << " ms\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    const int fd = net::connect_endpoint(*cfg.connect);
    if (fd < 0) {
      if (last_round) {
        std::cerr << "starring-cli: connect: " << std::strerror(errno)
                  << "\n";
        ++failures;
      }
      continue;
    }
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cfg.count; ++i)
      if (!answered[i]) pending.push_back(i);

    __gnu_cxx::stdio_filebuf<char> out_buf(::dup(fd), std::ios::out);
    __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
    std::ostream out(&out_buf);
    std::istream in(&in_buf);
    // Full-duplex: the sender streams while this thread reads, so a
    // full daemon queue cannot deadlock the client against a full
    // socket buffer.
    std::thread sender([&] {
      for (const std::size_t i : pending)
        if (!write_request(out, make_request(cfg, i))) break;
      out.flush();
    });

    std::size_t got = 0;
    std::string err;
    while (got < pending.size()) {
      const auto resp = read_response(in, &err);
      if (!resp) {
        if (!err.empty()) {
          std::cerr << "starring-cli: response parse error: " << err
                    << "\n";
          ++failures;
        } else if (last_round) {
          std::cerr << "starring-cli: connection dropped with "
                    << (pending.size() - got) << " responses missing\n";
        }
        break;
      }
      ++got;
      if ((resp->status == ServiceStatus::kRejected ||
           resp->status == ServiceStatus::kThrottled) &&
          !last_round)
        continue;  // stays unanswered; the next round resubmits it
      if (resp->id < cfg.count && !answered[resp->id]) {
        answered[resp->id] = 1;
        ++done;
      }
      const std::string why = check_response(cfg, *resp, &hits, &timeouts);
      if (!why.empty()) {
        std::cerr << "starring-cli: request " << resp->id << ": " << why
                  << "\n";
        ++failures;
      }
    }
    sender.join();
    if (done == cfg.count) {
      failures += fetch_and_report_stats(cfg, out, in);
      if (cfg.trace) failures += fetch_and_report_hops(out, in);
      out.flush();
      ::shutdown(fd, SHUT_WR);  // end-of-workload; the daemon drains
      while (read_response(in, &err)) {
        // Drain stragglers (duplicates of already-answered ids).
      }
    } else {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report(cfg, done, hits, timeouts, failures, wall_s);
}

/// Compute the workload's warm-start state and write it as an oracle
/// snapshot: the fault-free oracle plane, every faulty-block memo entry
/// the workload's embeddings touch, and one canonical-frame ring per
/// distinct canonical instance — exactly what the service's miss path
/// (compute_canonical) would cache, so a daemon seeded from the
/// snapshot answers the same workload from the cache alone.
int run_warm(const CliConfig& cfg) {
  if (cfg.out.empty()) {
    std::cerr << "starring-cli: warm needs --out PATH\n";
    return 2;
  }
  const auto t0 = std::chrono::steady_clock::now();
  BlockOracle::prewarm_fault_free();

  OracleSnapshot snap;
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const ServiceRequest req = make_request(cfg, i);
    const CanonicalForm canon = canonicalize(req.n, req.faults);
    if (!seen.insert(canon.key).second) continue;
    const StarGraph g(req.n);
    const auto res = embed_longest_ring(g, canon.faults);
    if (!res.has_value()) {
      std::cerr << "starring-cli: warm: embedding failed for request " << i
                << "\n";
      return 1;
    }
    snap.rings.push_back({req.n, canon.key, res->ring});
  }
  // The compute clock stops before serialization/IO: the CI cold-start
  // smoke compares this against the daemon's snapshot_load_ms, and the
  // claim under test is compute-vs-load, not compute-vs-(load+write).
  const double compute_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  snap.memo = BlockOracle::export_memo();

  std::string err;
  if (!write_oracle_snapshot(cfg.out, snap, &err)) {
    std::cerr << "starring-cli: warm: " << err << "\n";
    return 1;
  }
  std::printf(
      "starring-cli: warm_compute_ms %.3f (%zu canonical rings, %zu memo "
      "entries) -> %s\n",
      compute_ms, snap.rings.size(), snap.memo.size(), cfg.out.c_str());
  return 0;
}

int cli_main(int argc, char** argv) {
  const auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);
  // A dead daemon must surface as a failed read/report, not kill the
  // CLI mid-write.
  std::signal(SIGPIPE, SIG_IGN);
  if (cfg->mode == "generate") return run_generate(*cfg);
  if (cfg->mode == "check") return run_check(*cfg);
  if (cfg->mode == "warm") return run_warm(*cfg);
  if (cfg->connect) {
    if (!cfg->trace_out.empty()) {
      std::cerr << "starring-cli: --trace-out needs a spawned daemon; "
                   "pass --trace-out to the remote starringd instead\n";
      return 2;
    }
    return drive_tcp(*cfg);
  }
  if (cfg->daemon_argv.empty()) {
    std::cerr << "starring-cli: drive needs --connect PORT or -- CMD...\n";
    return 2;
  }
  return drive_spawned(*cfg);
}

}  // namespace
}  // namespace starring

int main(int argc, char** argv) {
  return starring::cli_main(argc, argv);
}
