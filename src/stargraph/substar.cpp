#include "stargraph/substar.hpp"

#include <algorithm>

#include "stargraph/lehmer4.hpp"

namespace starring {

SubstarPattern SubstarPattern::whole(int n) {
  assert(n >= 1 && n <= kMaxN);
  SubstarPattern p;
  p.n_ = static_cast<std::int8_t>(n);
  p.r_ = static_cast<std::int8_t>(n);
  p.slots_.fill(kFree);
  return p;
}

SubstarPattern SubstarPattern::singleton(const Perm& perm) {
  SubstarPattern p;
  p.n_ = static_cast<std::int8_t>(perm.size());
  p.r_ = 1;
  p.slots_.fill(kFree);
  for (int i = 1; i < perm.size(); ++i)
    p.slots_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(perm.get(i));
  return p;
}

std::vector<int> SubstarPattern::free_positions() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(r_));
  for (int i = 0; i < n_; ++i)
    if (is_free(i)) out.push_back(i);
  return out;
}

std::vector<int> SubstarPattern::free_symbols() const {
  std::vector<int> out;
  const std::uint32_t mask = free_symbol_mask();
  out.reserve(static_cast<std::size_t>(r_));
  for (int s = 0; s < n_; ++s)
    if ((mask >> s) & 1u) out.push_back(s);
  return out;
}

std::uint32_t SubstarPattern::free_symbol_mask() const {
  std::uint32_t used = 0;
  for (int i = 0; i < n_; ++i)
    if (!is_free(i)) used |= 1u << slot(i);
  return ((1u << n_) - 1u) & ~used;
}

bool SubstarPattern::contains(const Perm& p) const {
  if (p.size() != n_) return false;
  for (int i = 0; i < n_; ++i)
    if (!is_free(i) && p.get(i) != slot(i)) return false;
  return true;
}

SubstarPattern SubstarPattern::child(int i, int q) const {
  assert(i >= 1 && i < n_ && is_free(i));
  assert((free_symbol_mask() >> q) & 1u);
  SubstarPattern c = *this;
  c.slots_[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(q);
  c.r_ = static_cast<std::int8_t>(r_ - 1);
  return c;
}

std::vector<SubstarPattern> SubstarPattern::children(int i) const {
  std::vector<SubstarPattern> out;
  out.reserve(static_cast<std::size_t>(r_));
  for (int q : free_symbols()) out.push_back(child(i, q));
  return out;
}

bool SubstarPattern::adjacent(const SubstarPattern& a, const SubstarPattern& b,
                              int* dif_pos) {
  if (a.n_ != b.n_ || a.r_ != b.r_) return false;
  int diff_at = -1;
  for (int i = 0; i < a.n_; ++i) {
    if (a.slot(i) == b.slot(i)) continue;
    // Differing at a free-vs-fixed position means different free-position
    // sets: not comparable as r-vertices of one partition.
    if (a.is_free(i) || b.is_free(i)) return false;
    if (diff_at != -1) return false;  // more than one differing position
    diff_at = i;
  }
  if (diff_at == -1) return false;  // identical patterns
  if (dif_pos != nullptr) *dif_pos = diff_at;
  return true;
}

std::vector<Perm> SubstarPattern::members() const {
  std::vector<Perm> out;
  const std::uint64_t count = num_members();
  out.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) out.push_back(member(k));
  return out;
}

Perm SubstarPattern::member(std::uint64_t k) const {
  assert(k < num_members());
  const std::vector<int> pos = free_positions();
  std::vector<int> syms = free_symbols();
  // Lay the k-th permutation (Lehmer order) of the free symbols over the
  // free positions.
  std::vector<int> out(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i)
    if (!is_free(i)) out[static_cast<std::size_t>(i)] = slot(i);
  const int r = r_;
  for (int i = 0; i < r; ++i) {
    const std::uint64_t f = factorial(r - 1 - i);
    const auto digit = static_cast<std::size_t>(k / f);
    k %= f;
    out[static_cast<std::size_t>(pos[static_cast<std::size_t>(i)])] =
        syms[digit];
    syms.erase(syms.begin() + static_cast<std::ptrdiff_t>(digit));
  }
  return Perm::of(out);
}

std::uint64_t SubstarPattern::local_index(const Perm& p) const {
  assert(contains(p));
  const std::vector<int> pos = free_positions();
  std::vector<int> syms = free_symbols();
  std::uint64_t k = 0;
  const int r = r_;
  for (int i = 0; i < r; ++i) {
    const int s = p.get(pos[static_cast<std::size_t>(i)]);
    const auto it = std::lower_bound(syms.begin(), syms.end(), s);
    assert(it != syms.end() && *it == s);
    const auto digit = static_cast<std::uint64_t>(it - syms.begin());
    k += digit * factorial(r - 1 - i);
    syms.erase(it);
  }
  return k;
}

SmallGraph SubstarPattern::block_graph() const {
  assert(num_members() <= 64);
  const auto count = static_cast<int>(num_members());
  SmallGraph g(count);
  const std::vector<int> pos = free_positions();
  for (int k = 0; k < count; ++k) {
    const Perm u = member(static_cast<std::uint64_t>(k));
    for (std::size_t pi = 1; pi < pos.size(); ++pi) {
      const Perm v = u.star_move(pos[pi]);
      const auto j = static_cast<int>(local_index(v));
      if (j > k) g.add_edge(k, j);
    }
  }
  return g;
}

std::string SubstarPattern::to_string() const {
  std::string out = "<";
  for (int i = 0; i < n_; ++i) {
    if (i > 0) out.push_back(' ');
    if (is_free(i)) {
      out.push_back('*');
    } else {
      const int sym = slot(i) + 1;
      if (sym >= 10) out.push_back(static_cast<char>('0' + sym / 10));
      out.push_back(static_cast<char>('0' + sym % 10));
    }
  }
  out += ">_";
  out += std::to_string(r_);
  return out;
}

MemberExpander::MemberExpander(const SubstarPattern& pat)
    : r_(static_cast<std::int8_t>(pat.r())),
      n_(static_cast<std::int8_t>(pat.n())) {
  int fp = 0;
  for (int i = 0; i < pat.n(); ++i) {
    if (pat.is_free(i)) {
      free_pos_[static_cast<std::size_t>(fp++)] = static_cast<std::int8_t>(i);
    } else {
      base_bits_ |= static_cast<std::uint64_t>(pat.slot(i)) << (4 * i);
    }
  }
  int fs = 0;
  const std::uint32_t mask = pat.free_symbol_mask();
  for (int s = 0; s < pat.n(); ++s)
    if ((mask >> s) & 1u) free_sym_[static_cast<std::size_t>(fs++)] =
        static_cast<std::int8_t>(s);

  if (r_ > kRankTableMaxR) return;
  // Precompute the member_rank decomposition.  Global Lehmer rank is
  // sum_i c_i * (n-1-i)! with c_i the count of smaller symbols right of
  // position i; split each c_i into fixed-vs-fixed (constant),
  // fixed-vs-free (depends only on which free symbol a slot holds) and
  // free-vs-free (the local Lehmer digit) parts.
  const int n = pat.n();
  for (int i = 0; i < n; ++i) {
    if (pat.is_free(i)) continue;
    const int si = pat.slot(i);
    int smaller_fixed = 0;
    for (int j = i + 1; j < n; ++j)
      if (!pat.is_free(j) && pat.slot(j) < si) ++smaller_fixed;
    rank_base_ += static_cast<VertexId>(smaller_fixed) *
                  factorial(n - 1 - i);
  }
  // Left-to-right: acc[a] accumulates the weight of fixed positions seen
  // so far whose symbol exceeds f_a (they count the free slot holding f_a
  // among their right-side inversions); snapshot it at each free slot.
  {
    std::array<std::uint64_t, 4> acc{};
    int m = 0;
    for (int i = 0; i < n; ++i) {
      if (pat.is_free(i)) {
        rank_weight_[static_cast<std::size_t>(m)] = factorial(n - 1 - i);
        for (int a = 0; a < r_; ++a)
          rank_sym_[static_cast<std::size_t>(m)][static_cast<std::size_t>(a)] =
              acc[static_cast<std::size_t>(a)];
        ++m;
        continue;
      }
      const int si = pat.slot(i);
      const std::uint64_t w = factorial(n - 1 - i);
      for (int a = 0; a < r_; ++a)
        if (free_sym_[static_cast<std::size_t>(a)] < si)
          acc[static_cast<std::size_t>(a)] += w;
    }
  }
  // Right-to-left: cnt[a] counts fixed symbols to the right smaller than
  // f_a -- the free slot's own right-side inversions against the fixed
  // part, each worth the slot's weight.
  {
    std::array<std::uint32_t, 4> cnt{};
    int m = r_ - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (pat.is_free(i)) {
        for (int a = 0; a < r_; ++a)
          rank_sym_[static_cast<std::size_t>(m)][static_cast<std::size_t>(a)] +=
              cnt[static_cast<std::size_t>(a)] *
              rank_weight_[static_cast<std::size_t>(m)];
        --m;
        continue;
      }
      const int si = pat.slot(i);
      for (int a = 0; a < r_; ++a)
        if (si < free_sym_[static_cast<std::size_t>(a)])
          ++cnt[static_cast<std::size_t>(a)];
    }
  }
}

Perm MemberExpander::member(std::uint64_t k) const {
  assert(k < factorial(r_));
  // Lehmer-decode over a small working copy of the free symbols.
  std::array<std::int8_t, kMaxN> syms = free_sym_;
  std::uint64_t bits = base_bits_;
  const int r = r_;
  for (int i = 0; i < r; ++i) {
    const std::uint64_t f = factorial(r - 1 - i);
    const auto digit = static_cast<int>(k / f);
    k %= f;
    bits |= static_cast<std::uint64_t>(syms[static_cast<std::size_t>(digit)])
            << (4 * free_pos_[static_cast<std::size_t>(i)]);
    for (int j = digit; j + 1 < r - i; ++j)
      syms[static_cast<std::size_t>(j)] = syms[static_cast<std::size_t>(j + 1)];
  }
  return Perm::from_packed(bits, n_);
}

VertexId MemberExpander::member_rank(std::uint64_t k) const {
  assert(k < factorial(r_));
  if (r_ == 4) {
    const auto& d = kLehmer4.digit[static_cast<std::size_t>(k)];
    const auto& a = kLehmer4.sym[static_cast<std::size_t>(k)];
    return rank_base_ + rank_sym_[0][a[0]] + d[0] * rank_weight_[0] +
           rank_sym_[1][a[1]] + d[1] * rank_weight_[1] + rank_sym_[2][a[2]] +
           d[2] * rank_weight_[2] + rank_sym_[3][a[3]];  // d[3] == 0 always
  }
  if (r_ > kRankTableMaxR) return member(k).rank();
  // One Lehmer decode over the free-symbol indices: digit d_m IS the
  // free-vs-free inversion count of slot m, and the chosen index a_m
  // selects the fixed-vs-free table entry.
  std::array<std::int8_t, static_cast<std::size_t>(kRankTableMaxR)> rem{};
  const int r = r_;
  for (int i = 0; i < r; ++i) rem[static_cast<std::size_t>(i)] =
      static_cast<std::int8_t>(i);
  VertexId out = rank_base_;
  for (int m = 0; m < r; ++m) {
    const std::uint64_t f = factorial(r - 1 - m);
    const auto d = static_cast<int>(k / f);
    k %= f;
    const auto a = static_cast<std::size_t>(rem[static_cast<std::size_t>(d)]);
    for (int j = d; j + 1 < r - m; ++j)
      rem[static_cast<std::size_t>(j)] = rem[static_cast<std::size_t>(j + 1)];
    out += rank_sym_[static_cast<std::size_t>(m)][a] +
           static_cast<std::uint64_t>(d) *
               rank_weight_[static_cast<std::size_t>(m)];
  }
  return out;
}

std::uint64_t MemberExpander::local_index(const Perm& p) const {
  std::array<std::int8_t, kMaxN> syms = free_sym_;
  std::uint64_t k = 0;
  const int r = r_;
  int live = r;
  for (int i = 0; i < r; ++i) {
    const int s = p.get(free_pos_[static_cast<std::size_t>(i)]);
    int digit = 0;
    while (digit < live && syms[static_cast<std::size_t>(digit)] != s) ++digit;
    assert(digit < live);
    k += static_cast<std::uint64_t>(digit) * factorial(r - 1 - i);
    for (int j = digit; j + 1 < live; ++j)
      syms[static_cast<std::size_t>(j)] = syms[static_cast<std::size_t>(j + 1)];
    --live;
  }
  return k;
}

std::vector<SuperEdgeEndpoint> superedge_endpoints(const SubstarPattern& a,
                                                   const SubstarPattern& b) {
  int p = -1;
  const bool adj = SubstarPattern::adjacent(a, b, &p);
  assert(adj);
  if (!adj) return {};
  const int sym_b = b.slot(p);
  // Members of `a` with symbol sym_b in position 0; the star move along
  // dimension p sends each to a member of `b`.
  std::vector<SuperEdgeEndpoint> out;
  out.reserve(factorial(a.r() - 1));
  const std::uint64_t count = a.num_members();
  for (std::uint64_t k = 0; k < count; ++k) {
    const Perm u = a.member(k);
    if (u.get(0) != sym_b) continue;
    out.push_back({u, u.star_move(p)});
  }
  return out;
}

}  // namespace starring
