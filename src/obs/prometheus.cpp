#include "obs/prometheus.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>

namespace starring::obs {

namespace {

// Mirror of LatencyHistogram's layout (obs/metrics.hpp): member suffixes
// in bucket order and the matching upper bounds in seconds.
constexpr std::array<std::string_view, 6> kBucketSuffix = {
    ".le_100us", ".le_1ms", ".le_10ms", ".le_100ms", ".le_1s", ".gt_1s"};
constexpr std::array<std::string_view, 6> kBucketLe = {
    "0.0001", "0.001", "0.01", "0.1", "1", "+Inf"};

std::string mangle(std::string_view name) {
  std::string out = "starring_";
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9');
    out.push_back(ok ? ch : '_');
  }
  return out;
}

bool is_gauge(std::string_view name) {
  // record_max() counters: high-water marks, not monotone sums.
  return name.find(".max_") != std::string_view::npos ||
         (name.size() > 4 && name.substr(name.size() - 4) == "_max") ||
         (name.size() > 8 && name.substr(name.size() - 8) == ".threads") ||
         name == "pool.workers";
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::int64_t lookup(const Snapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap)
    if (n == name) return v;
  return 0;
}

/// Histogram family prefixes present in `snap`: every member counter of
/// the LatencyHistogram layout must exist for `p` to qualify.
std::vector<std::string> histogram_prefixes(const Snapshot& snap) {
  std::set<std::string> names;
  for (const auto& [n, v] : snap) names.insert(n);
  std::vector<std::string> out;
  for (const auto& name : names) {
    constexpr std::string_view kCount = ".count";
    if (name.size() <= kCount.size() ||
        name.substr(name.size() - kCount.size()) != kCount)
      continue;
    const std::string p = name.substr(0, name.size() - kCount.size());
    bool complete = names.count(p + ".total_us") > 0;
    for (const auto suffix : kBucketSuffix)
      complete = complete && names.count(p + std::string(suffix)) > 0;
    if (complete) out.push_back(p);
  }
  return out;
}

}  // namespace

std::string render_prometheus(const Snapshot& snap) {
  const std::vector<std::string> prefixes = histogram_prefixes(snap);
  std::set<std::string> folded;
  for (const auto& p : prefixes) {
    folded.insert(p + ".count");
    folded.insert(p + ".total_us");
    for (const auto suffix : kBucketSuffix)
      folded.insert(p + std::string(suffix));
  }

  std::string out;
  for (const auto& [name, value] : snap) {
    if (folded.count(name) > 0) continue;
    const std::string m = mangle(name);
    out += "# HELP " + m + " starring counter " + name + "\n";
    out += "# TYPE " + m + (is_gauge(name) ? " gauge\n" : " counter\n");
    out += m + " " + std::to_string(value) + "\n";
  }

  for (const auto& p : prefixes) {
    const std::string m = mangle(p) + "_seconds";
    out += "# HELP " + m + " starring latency histogram " + p + "\n";
    out += "# TYPE " + m + " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i + 1 < kBucketSuffix.size(); ++i) {
      cum += lookup(snap, p + std::string(kBucketSuffix[i]));
      out += m + "_bucket{le=\"" + std::string(kBucketLe[i]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    cum += lookup(snap, p + std::string(kBucketSuffix.back()));
    // The registry is sampled counter-by-counter while writers may be
    // recording, so .count can momentarily exceed the bucket sum; pin
    // +Inf to the larger of the two to keep the family monotone.
    const std::int64_t count =
        std::max(cum, lookup(snap, p + ".count"));
    out += m + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
    out += m + "_sum " +
           fmt_double(static_cast<double>(lookup(snap, p + ".total_us")) /
                      1e6) +
           "\n";
    out += m + "_count " + std::to_string(count) + "\n";
  }
  return out;
}

std::string render_prometheus() { return render_prometheus(snapshot()); }

std::optional<HistogramSample> parse_histogram(std::string_view prom_text,
                                               std::string_view metric) {
  HistogramSample h;
  bool saw_inf = false;
  const std::string bucket_head = std::string(metric) + "_bucket{le=\"";
  const std::string sum_head = std::string(metric) + "_sum ";
  const std::string count_head = std::string(metric) + "_count ";

  std::size_t pos = 0;
  while (pos < prom_text.size()) {
    std::size_t eol = prom_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = prom_text.size();
    const std::string_view line = prom_text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(bucket_head, 0) == 0) {
      const std::size_t close = line.find('"', bucket_head.size());
      if (close == std::string_view::npos) return std::nullopt;
      const std::string le(line.substr(bucket_head.size(),
                                       close - bucket_head.size()));
      const std::size_t sp = line.find(' ', close);
      if (sp == std::string_view::npos) return std::nullopt;
      const std::string val(line.substr(sp + 1));
      double bound;
      if (le == "+Inf") {
        bound = std::numeric_limits<double>::infinity();
        saw_inf = true;
      } else {
        bound = std::strtod(le.c_str(), nullptr);
      }
      h.buckets.emplace_back(
          bound, static_cast<std::int64_t>(std::strtoll(val.c_str(),
                                                        nullptr, 10)));
    } else if (line.rfind(sum_head, 0) == 0) {
      h.sum_seconds =
          std::strtod(std::string(line.substr(sum_head.size())).c_str(),
                      nullptr);
    } else if (line.rfind(count_head, 0) == 0) {
      h.count = static_cast<std::int64_t>(std::strtoll(
          std::string(line.substr(count_head.size())).c_str(), nullptr,
          10));
    }
  }
  if (h.buckets.empty() || !saw_inf) return std::nullopt;
  std::sort(h.buckets.begin(), h.buckets.end());
  return h;
}

double histogram_quantile(const HistogramSample& h, double q) {
  if (h.buckets.empty()) return 0.0;
  const std::int64_t total = h.buckets.back().second;
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);

  double lo = 0.0;
  std::int64_t below = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const auto [hi, cum] = h.buckets[i];
    if (static_cast<double>(cum) >= target && cum > below) {
      if (hi == std::numeric_limits<double>::infinity()) {
        // Open-ended tail: clamp to the largest finite bound, matching
        // promql's histogram_quantile.
        return i > 0 ? h.buckets[i - 1].first : 0.0;
      }
      const double in_bucket = static_cast<double>(cum - below);
      return lo + (hi - lo) * (target - static_cast<double>(below)) /
                      in_bucket;
    }
    if (hi != std::numeric_limits<double>::infinity()) lo = hi;
    below = cum;
  }
  return lo;
}

}  // namespace starring::obs
