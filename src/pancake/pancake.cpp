#include "pancake/pancake.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "graph/graph.hpp"

namespace starring {

Perm pancake_flip(const Perm& p, int k) {
  assert(k >= 2 && k <= p.size());
  std::vector<int> s(static_cast<std::size_t>(p.size()));
  for (int i = 0; i < p.size(); ++i) s[static_cast<std::size_t>(i)] = p.get(i);
  std::reverse(s.begin(), s.begin() + k);
  return Perm::of(s);
}

bool pancake_adjacent(const Perm& u, const Perm& v) {
  if (u.size() != v.size() || u == v) return false;
  // v must equal u with some prefix reversed: find the last differing
  // position; the prefix up to it must be exactly reversed.
  int last = -1;
  for (int i = 0; i < u.size(); ++i)
    if (u.get(i) != v.get(i)) last = i;
  if (last < 1) return false;
  for (int i = 0; i <= last; ++i)
    if (v.get(i) != u.get(last - i)) return false;
  return true;
}

namespace {

/// The P_4 adjacency as a SmallGraph over Lehmer ranks.
const SmallGraph& p4_graph() {
  static const SmallGraph g = [] {
    SmallGraph gg(24);
    for (int u = 0; u < 24; ++u) {
      const Perm p = Perm::unrank(static_cast<VertexId>(u), 4);
      for (int k = 2; k <= 4; ++k) {
        const int v = static_cast<int>(pancake_flip(p, k).rank());
        if (v > u) gg.add_edge(u, v);
      }
    }
    return gg;
  }();
  return g;
}

/// Abstract faults of one recursion level, as a bitmask-friendly set of
/// packed bits.
using PermSet = std::unordered_set<std::uint64_t>;

/// Relabel a copy member (last symbol == s) into the abstract P_{m-1}:
/// drop the last position, close the symbol gap.
Perm to_abstract(const Perm& p, int s) {
  const int m = p.size();
  std::vector<int> syms(static_cast<std::size_t>(m - 1));
  for (int i = 0; i + 1 < m; ++i) {
    const int t = p.get(i);
    syms[static_cast<std::size_t>(i)] = t > s ? t - 1 : t;
  }
  return Perm::of(syms);
}

/// Inverse of to_abstract.
Perm from_abstract(const Perm& p, int s) {
  const int m = p.size() + 1;
  std::vector<int> syms(static_cast<std::size_t>(m));
  for (int i = 0; i + 1 < m; ++i) {
    const int t = p.get(i);
    syms[static_cast<std::size_t>(i)] = t >= s ? t + 1 : t;
  }
  syms[static_cast<std::size_t>(m - 1)] = s;
  return Perm::of(syms);
}

/// Full-coverage healthy path in the abstract P_m from s to t: visits
/// every healthy vertex exactly once.  Returns nullopt when infeasible
/// under the explored choices.
std::optional<std::vector<Perm>> pancake_path(int m, const Perm& s,
                                              const Perm& t,
                                              const PermSet& faults);

PermSet abstract_faults(const PermSet& faults, int m, int sym) {
  PermSet out;
  for (const std::uint64_t bits : faults) {
    const Perm f = Perm::from_packed(bits, m);
    if (f.get(m - 1) == sym) out.insert(to_abstract(f, sym).bits());
  }
  return out;
}

std::optional<std::vector<Perm>> pancake_path(int m, const Perm& s,
                                              const Perm& t,
                                              const PermSet& faults) {
  assert(s.size() == m && t.size() == m);
  if (faults.contains(s.bits()) || faults.contains(t.bits()))
    return std::nullopt;
  if (m <= 4) {
    // Exhaustive over at most 24 vertices.
    if (m < 4) {
      // P_2 (edge) and P_3 (6-cycle): tiny, still exhaustive via the
      // generic search on an ad-hoc graph.
      const int size = static_cast<int>(factorial(m));
      SmallGraph g(size);
      for (int u = 0; u < size; ++u) {
        const Perm p = Perm::unrank(static_cast<VertexId>(u), m);
        for (int k = 2; k <= m; ++k) {
          const int v = static_cast<int>(pancake_flip(p, k).rank());
          if (v > u) g.add_edge(u, v);
        }
      }
      std::uint64_t forbidden = 0;
      for (const std::uint64_t bits : faults)
        forbidden |= 1ULL << Perm::from_packed(bits, m).rank();
      const int target = size - static_cast<int>(faults.size());
      const auto path = path_with_exact_vertices(
          g, static_cast<int>(s.rank()), static_cast<int>(t.rank()),
          forbidden, target);
      if (!path) return std::nullopt;
      std::vector<Perm> out;
      out.reserve(path->size());
      for (const int v : *path)
        out.push_back(Perm::unrank(static_cast<VertexId>(v), m));
      return out;
    }
    std::uint64_t forbidden = 0;
    for (const std::uint64_t bits : faults)
      forbidden |= 1ULL << Perm::from_packed(bits, 4).rank();
    const int target = 24 - static_cast<int>(faults.size());
    const auto path = path_with_exact_vertices(
        p4_graph(), static_cast<int>(s.rank()), static_cast<int>(t.rank()),
        forbidden, target);
    if (!path) return std::nullopt;
    std::vector<Perm> out;
    out.reserve(path->size());
    for (const int v : *path)
      out.push_back(Perm::unrank(static_cast<VertexId>(v), 4));
    return out;
  }

  const int cs = s.get(m - 1);
  const int ct = t.get(m - 1);
  if (cs == ct) return std::nullopt;  // caller backtracks on this

  // Copy order: start at s's copy, end at t's copy, middles ascending.
  std::vector<int> order{cs};
  for (int c = 0; c < m; ++c)
    if (c != cs && c != ct) order.push_back(c);
  order.push_back(ct);

  // Chain the copies with limited backtracking over exit choices.
  std::vector<Perm> path;
  path.reserve(factorial(m) - faults.size());

  struct Frame {
    Perm entry;
    std::uint64_t next_exit = 0;  // iteration cursor over (m-1)! members
    std::size_t path_len = 0;     // length before this copy was entered
  };
  std::vector<Frame> stack;
  stack.push_back({s, 0, 0});

  constexpr int kExitTries = 16;
  int tries_left = 4096;  // global backtrack budget

  while (!stack.empty()) {
    const std::size_t depth = stack.size() - 1;
    Frame& fr = stack.back();
    const int copy = order[depth];
    const bool last = depth + 1 == order.size();
    const PermSet afaults = abstract_faults(faults, m, copy);
    const Perm entry_abs = to_abstract(fr.entry, copy);

    bool advanced = false;
    if (last) {
      if (fr.next_exit == 0) {
        fr.next_exit = 1;
        const Perm t_abs = to_abstract(t, copy);
        std::optional<std::vector<Perm>> inner;
        if (entry_abs == t_abs) {
          // Degenerate: the final copy holds a single healthy vertex.
          if (afaults.size() + 1 == factorial(m - 1))
            inner = std::vector<Perm>{entry_abs};
        } else {
          inner = pancake_path(m - 1, entry_abs, t_abs, afaults);
        }
        if (inner) {
          for (const Perm& p : *inner)
            path.push_back(from_abstract(p, copy));
          return path;
        }
      }
    } else {
      const int next_copy = order[depth + 1];
      int scanned = 0;
      for (std::uint64_t j = fr.next_exit;
           j < factorial(m - 1) && scanned < kExitTries; ++j) {
        const Perm cand_abs = Perm::unrank(j, m - 1);
        const Perm cand = from_abstract(cand_abs, copy);
        fr.next_exit = j + 1;
        if (cand.get(0) != next_copy) continue;
        if (faults.contains(cand.bits())) continue;
        if (cand == fr.entry) continue;
        ++scanned;
        const Perm bridge = pancake_flip(cand, m);
        if (faults.contains(bridge.bits())) continue;
        const auto inner =
            pancake_path(m - 1, entry_abs, cand_abs, afaults);
        if (!inner) continue;
        for (const Perm& p : *inner) path.push_back(from_abstract(p, copy));
        stack.push_back({bridge, 0, path.size()});
        advanced = true;
        break;
      }
      if (advanced) continue;
    }
    // Exhausted this copy's choices: backtrack.
    path.resize(fr.path_len);
    stack.pop_back();
    if (--tries_left <= 0) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Perm>> pancake_fault_ring(int n,
                                                    const FaultSet& faults) {
  if (n < 3) return std::nullopt;
  PermSet fset;
  for (const Perm& f : faults.vertex_faults()) fset.insert(f.bits());

  if (n <= 4) {
    const int size = static_cast<int>(factorial(n));
    SmallGraph g(size);
    for (int u = 0; u < size; ++u) {
      const Perm p = Perm::unrank(static_cast<VertexId>(u), n);
      for (int k = 2; k <= n; ++k) {
        const int v = static_cast<int>(pancake_flip(p, k).rank());
        if (v > u) g.add_edge(u, v);
      }
    }
    std::uint64_t forbidden = 0;
    for (const std::uint64_t bits : fset)
      forbidden |= 1ULL << Perm::from_packed(bits, n).rank();
    const int target = size - static_cast<int>(fset.size());
    const auto cyc = cycle_with_exact_vertices(g, forbidden, target);
    if (!cyc) return std::nullopt;
    std::vector<Perm> out;
    out.reserve(cyc->size());
    for (const int v : *cyc)
      out.push_back(Perm::unrank(static_cast<VertexId>(v), n));
    return out;
  }

  // Cyclic copy order 0..n-1; enumerate closure exits from copy n-1
  // back into copy 0.
  for (std::uint64_t closure = 0; closure < factorial(n - 1); ++closure) {
    const Perm z_abs = Perm::unrank(closure, n - 1);
    const Perm z = from_abstract(z_abs, n - 1);
    if (z.get(0) != 0) continue;  // must cross into copy 0
    if (fset.contains(z.bits())) continue;
    const Perm entry0 = pancake_flip(z, n);
    if (fset.contains(entry0.bits())) continue;

    // Path from entry0 around all copies ending at z: reuse the path
    // machinery over a virtual P_n whose "copies" we traverse 0..n-1.
    const auto path = pancake_path(n, entry0, z, fset);
    if (!path) continue;
    return path;  // cyclic: last (z) flips to entry0
  }
  return std::nullopt;
}

bool verify_pancake_ring(int n, const FaultSet& faults,
                         const std::vector<Perm>& ring) {
  if (ring.size() < 3) return false;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(ring.size() * 2);
  for (const Perm& p : ring) {
    if (p.size() != n) return false;
    if (faults.vertex_faulty(p)) return false;
    if (!seen.insert(p.bits()).second) return false;
  }
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (!pancake_adjacent(ring[i], ring[(i + 1) % ring.size()]))
      return false;
  return true;
}

}  // namespace starring
