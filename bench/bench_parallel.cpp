// Experiment E12 — thread-scaling ablation (google-benchmark).
//
// The chaining search is inherently sequential, but the n!-scaling
// phases around it (exit enumeration, emission, verification) are data
// parallel.  This bench measures end-to-end embedding and verification
// at 1, 2, 4, and all hardware threads; the embedding result is
// bit-identical at every setting (asserted in tests/test_parallel.cpp).
#include <benchmark/benchmark.h>

#include "bench_artifact.hpp"

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "util/parallel.hpp"

using namespace starring;

namespace {

void BM_EmbedThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const StarGraph g(n);
  const FaultSet f = random_vertex_faults(g, n - 3, 42);
  EmbedOptions opts;
  opts.num_threads = threads;
  for (auto _ : state) {
    auto res = embed_longest_ring(g, f, opts);
    if (!res) state.SkipWithError("embedding failed");
    benchmark::DoNotOptimize(res->ring.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(factorial(n)));
}
BENCHMARK(BM_EmbedThreads)
    ->ArgsProduct({{8, 9}, {1, 2, 4, 0}})
    ->Unit(benchmark::kMillisecond);

void BM_VerifyThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const StarGraph g(n);
  const FaultSet f = random_vertex_faults(g, n - 3, 42);
  const auto res = embed_longest_ring(g, f);
  if (!res) {
    state.SkipWithError("embedding failed");
    return;
  }
  for (auto _ : state) {
    const auto rep = verify_healthy_ring(
        g, f, res->ring, threads == 0 ? default_threads() : threads);
    if (!rep.valid) state.SkipWithError("verification failed");
    benchmark::DoNotOptimize(rep.length);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(res->ring.size()));
}
BENCHMARK(BM_VerifyThreads)
    ->ArgsProduct({{8, 9}, {1, 2, 4, 0}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

STARRING_BENCH_JSON_MAIN("parallel");
