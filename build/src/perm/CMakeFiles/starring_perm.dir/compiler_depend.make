# Empty compiler generated dependencies file for starring_perm.
# This may be replaced when dependencies are built.
