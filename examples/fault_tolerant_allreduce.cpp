// Fault-tolerant all-reduce on a star-graph multiprocessor.
//
//   $ ./fault_tolerant_allreduce [n] [num_faults]
//
// The scenario the paper's introduction motivates: a ring-structured
// collective must keep running after processors fail.  We embed rings
// with this paper's construction and with the Tseng et al. baseline,
// then simulate a ring all-reduce on both and report how much useful
// parallelism each embedding preserves.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "baselines/tseng.hpp"
#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "sim/ring_sim.hpp"

int main(int argc, char** argv) {
  using namespace starring;
  const int n = argc > 1 ? std::atoi(argv[1]) : 7;
  const int max_f = argc > 2 ? std::atoi(argv[2]) : n - 3;
  const StarGraph g(n);

  std::cout << "ring all-reduce on S_" << n << " (" << g.num_vertices()
            << " processors), message 4 KiB\n\n";
  std::cout << std::setw(8) << "faults" << std::setw(14) << "ours(len)"
            << std::setw(16) << "baseline(len)" << std::setw(16)
            << "ours(us)" << std::setw(16) << "baseline(us)" << std::setw(16)
            << "ours(par/us)" << "\n";

  SimParams params;
  for (int nf = 0; nf <= max_f; ++nf) {
    const FaultSet faults = random_vertex_faults(g, nf, 1000 + nf);
    const auto ours = embed_longest_ring(g, faults);
    const auto base = tseng_vertex_fault_ring(g, faults);
    if (!ours || !base) {
      std::cerr << "embedding failed at nf=" << nf << "\n";
      return 1;
    }
    if (!verify_healthy_ring(g, faults, ours->ring).valid ||
        !verify_healthy_ring(g, faults, base->ring).valid) {
      std::cerr << "verification failed at nf=" << nf << "\n";
      return 1;
    }
    RingNetworkSim sim_ours(ours->ring, params);
    RingNetworkSim sim_base(base->ring, params);
    const auto mo = sim_ours.run_allreduce();
    const auto mb = sim_base.run_allreduce();
    std::cout << std::setw(8) << nf << std::setw(14) << ours->ring.size()
              << std::setw(16) << base->ring.size() << std::setw(16)
              << std::fixed << std::setprecision(1) << mo.completion_time_us
              << std::setw(16) << mb.completion_time_us << std::setw(16)
              << std::setprecision(4) << mo.participants_per_us << "\n";
  }
  std::cout << "\nlonger embedded rings keep more healthy processors in the "
               "collective;\nthe paper's n!-2f construction dominates the "
               "n!-4f baseline at every fault count.\n";
  return 0;
}
