// Cluster placement + routing unit tests: the FNV-1a test vectors, the
// shard-map grammar, the consistent-hash ring's balance / minimal-
// disruption / replica-set properties, endpoint parsing, and the
// circuit-breaker state machine (driven with injected time — no
// sleeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "util/net.hpp"

namespace starring::cluster {
namespace {

std::string map_text(int shards, int replication = 2, int vnodes = 128) {
  std::ostringstream os;
  os << "starring-shard-map v1\n"
     << "epoch 7\n"
     << "replication " << replication << "\n"
     << "vnodes " << vnodes << "\n"
     << "shards " << shards << "\n";
  for (int i = 0; i < shards; ++i)
    os << "shard " << i << " 127.0.0.1:" << (47181 + i) << "\n";
  os << "end\n";
  return os.str();
}

ShardMap parse_or_die(const std::string& text) {
  std::istringstream is(text);
  std::string err;
  const auto m = ShardMap::parse(is, &err);
  EXPECT_TRUE(m.has_value()) << err;
  return *m;
}

std::string key_for(int i) { return "class-" + std::to_string(i); }

TEST(Fnv, PublishedTestVectors) {
  // Offset basis and the canonical fnv.isthe.com vectors — pins the
  // constants so placement can never silently drift across builds.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  // And the finalized placement hash, so ring positions can never
  // silently drift either (mix64 is murmur3's fmix64).
  EXPECT_EQ(place_hash(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(mix64(0), 0u);
}

TEST(ShardMapParse, FullRecordRoundTrips) {
  const ShardMap m = parse_or_die(map_text(3));
  EXPECT_EQ(m.epoch(), 7u);
  EXPECT_EQ(m.replication(), 2);
  EXPECT_EQ(m.vnodes(), 128);
  ASSERT_EQ(m.shards().size(), 3u);
  EXPECT_EQ(m.shards()[1].id, 1);
  EXPECT_EQ(m.shards()[1].endpoint.port, 47182);
  const ShardMap again = parse_or_die(m.to_text());
  EXPECT_EQ(again.epoch(), m.epoch());
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(again.owner(key_for(i)), m.owner(key_for(i)));
}

TEST(ShardMapParse, ScalarsAreOptionalWithDefaults) {
  const ShardMap m = parse_or_die(
      "starring-shard-map v1\n"
      "shards 2\n"
      "shard 0 127.0.0.1:1\n"
      "shard 5 127.0.0.1:2\n"
      "end\n");
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.replication(), 2);
  EXPECT_EQ(m.vnodes(), 128);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(m.find(5)->endpoint.port, 2);
  EXPECT_EQ(m.find(3), nullptr);
}

TEST(ShardMapParse, RejectsMalformedRecords) {
  const char* bad[] = {
      "starring-shard-map v2\nshards 1\nshard 0 127.0.0.1:1\nend\n",
      "starring-shard-map v1\nshards 2\nshard 0 127.0.0.1:1\n"
      "shard 0 127.0.0.1:2\nend\n",  // duplicate id
      "starring-shard-map v1\nreplication 3\nshards 2\n"
      "shard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\nend\n",  // R > shards
      "starring-shard-map v1\nreplication 0\nshards 1\n"
      "shard 0 127.0.0.1:1\nend\n",
      "starring-shard-map v1\nshards 1\nshard 0 notaport\nend\n",
      "starring-shard-map v1\nshards 1\nshard 0 127.0.0.1:1\n",  // no end
      "starring-shard-map v1\nshards 0\nend\n",
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    std::string err;
    EXPECT_FALSE(ShardMap::parse(is, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(ShardMapRing, BalancesKeysAcrossEightShards) {
  const ShardMap m = parse_or_die(map_text(8));
  std::map<int, int> per_shard;
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) per_shard[m.owner(key_for(i))]++;
  ASSERT_EQ(per_shard.size(), 8u) << "every shard must own some keys";
  const double expect = kKeys / 8.0;
  for (const auto& [id, count] : per_shard) {
    EXPECT_GE(count, expect * 0.85) << "shard " << id << " underloaded";
    EXPECT_LE(count, expect * 1.15) << "shard " << id << " overloaded";
  }
}

TEST(ShardMapRing, RemovalMovesOnlyTheRemovedShardsKeys) {
  // The minimal-disruption property: vnode points depend only on the
  // shard's own id, so dropping shard 3 leaves every other point in
  // place — a key moves iff shard 3 owned it.
  const ShardMap before = parse_or_die(map_text(8));
  const ShardMap after = before.without(3);
  ASSERT_EQ(after.shards().size(), 7u);
  EXPECT_EQ(after.epoch(), before.epoch() + 1);
  const int kKeys = 10000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = key_for(i);
    if (before.owner(k) == 3) {
      EXPECT_NE(after.owner(k), 3);
      ++moved;
    } else {
      EXPECT_EQ(after.owner(k), before.owner(k)) << k;
    }
  }
  // ~1/8 of keys lived on the removed shard; comfortably under the
  // 2/N disruption bound the design promises.
  EXPECT_LT(moved, 2 * kKeys / 8);
  EXPECT_GT(moved, 0);
}

TEST(ShardMapRing, ReplicaSetsAreDistinctAndOwnerFirst) {
  const ShardMap m = parse_or_die(map_text(8, /*replication=*/3));
  for (int i = 0; i < 1000; ++i) {
    const std::string k = key_for(i);
    const auto reps = m.replicas(k);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], m.owner(k));
    EXPECT_EQ(std::set<int>(reps.begin(), reps.end()).size(), reps.size());
  }
}

TEST(ShardMapRing, ReplicationClampsToShardCount) {
  const ShardMap m = parse_or_die(map_text(2, /*replication=*/2));
  const auto reps = m.replicas("anything");
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_NE(reps[0], reps[1]);
}

TEST(ShardMapRing, AllCandidatesIsAPermutationWithReplicaPrefix) {
  const ShardMap m = parse_or_die(map_text(8, /*replication=*/3));
  for (int i = 0; i < 200; ++i) {
    const std::string k = key_for(i);
    const auto all = m.all_candidates(k);
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(std::set<int>(all.begin(), all.end()).size(), 8u);
    const auto reps = m.replicas(k);
    ASSERT_LE(reps.size(), all.size());
    for (std::size_t j = 0; j < reps.size(); ++j)
      EXPECT_EQ(all[j], reps[j]) << k;
  }
}

TEST(ShardMapRing, PlacementIsIndependentOfFileOrder) {
  // Two maps listing the same shards in different order must place
  // every key identically — cross-process determinism is what lets a
  // failover test compute the owner without asking the proxy.
  const ShardMap a = parse_or_die(
      "starring-shard-map v1\nshards 3\n"
      "shard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\nshard 2 127.0.0.1:3\n"
      "end\n");
  const ShardMap b = parse_or_die(
      "starring-shard-map v1\nshards 3\n"
      "shard 2 127.0.0.1:3\nshard 0 127.0.0.1:1\nshard 1 127.0.0.1:2\n"
      "end\n");
  for (int i = 0; i < 2000; ++i) {
    const std::string k = key_for(i);
    EXPECT_EQ(a.owner(k), b.owner(k)) << k;
    EXPECT_EQ(a.replicas(k), b.replicas(k)) << k;
  }
}

TEST(EndpointParse, AcceptsPortAndHostPortForms) {
  const auto bare = net::parse_endpoint("47181");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 47181);
  const auto full = net::parse_endpoint("10.0.0.2:80");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "10.0.0.2");
  EXPECT_EQ(full->port, 80);
  EXPECT_EQ(net::to_string(*full), "10.0.0.2:80");
  for (const char* bad : {"", ":80", "host:", "host:0", "host:99999",
                          "host:8x0", "-1"})
    EXPECT_FALSE(net::parse_endpoint(bad).has_value()) << bad;
}

// ---- circuit breaker ------------------------------------------------

using Clock = ShardRouter::Clock;
using std::chrono::milliseconds;

ShardRouter make_router(int shards = 3) {
  BreakerOptions opts;
  opts.open_threshold = 3;
  opts.base_ms = 100;
  opts.cap_ms = 5000;
  return ShardRouter(parse_or_die(map_text(shards)), opts);
}

TEST(Breaker, OpensAfterThresholdConsecutiveFailures) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  EXPECT_TRUE(r.allow(0, t0));
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  EXPECT_TRUE(r.allow(0, t0)) << "two failures stay below threshold";
  r.record_failure(0, t0);
  EXPECT_FALSE(r.allow(0, t0)) << "third failure opens the breaker";
  EXPECT_EQ(r.consecutive_failures(0), 3);
}

TEST(Breaker, HalfOpenProbeAfterCooldownThenCloseOnSuccess) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  for (int i = 0; i < 3; ++i) r.record_failure(0, t0);
  EXPECT_FALSE(r.allow(0, t0 + milliseconds(99)));
  EXPECT_TRUE(r.allow(0, t0 + milliseconds(100)))
      << "cooldown elapsed: half-open probe may go out";
  r.record_success(0);
  EXPECT_TRUE(r.allow(0, t0));
  EXPECT_EQ(r.consecutive_failures(0), 0);
}

TEST(Breaker, ReopenCooldownGrowsWithTheStreak) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  for (int i = 0; i < 3; ++i) r.record_failure(0, t0);
  // Failed half-open probe: re-opens for a second, longer round.
  const Clock::time_point t1 = t0 + milliseconds(100);
  r.record_failure(0, t1);
  EXPECT_FALSE(r.allow(0, t1 + milliseconds(199)));
  EXPECT_TRUE(r.allow(0, t1 + milliseconds(200)));
}

TEST(Breaker, OpenShardsSinkToTheBackOfCandidates) {
  ShardRouter r = make_router(3);
  const Clock::time_point t0{};
  const std::string key = "class-key";
  const auto healthy = r.candidates(key, t0);
  ASSERT_EQ(healthy.size(), 3u);
  const int victim = healthy[0];
  for (int i = 0; i < 3; ++i) r.record_failure(victim, t0);
  const auto degraded = r.candidates(key, t0);
  ASSERT_EQ(degraded.size(), 3u) << "open breakers demote, never remove";
  EXPECT_EQ(degraded.back(), victim);
  // Relative order of the still-closed shards is preserved.
  EXPECT_EQ(degraded[0], healthy[1]);
  EXPECT_EQ(degraded[1], healthy[2]);
  // Recovery restores the original nearest-first order.
  r.record_success(victim);
  EXPECT_EQ(r.candidates(key, t0), healthy);
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  ShardRouter r = make_router();
  const Clock::time_point t0{};
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  r.record_success(0);
  r.record_failure(0, t0);
  r.record_failure(0, t0);
  EXPECT_TRUE(r.allow(0, t0))
      << "streak restarted after a success; two failures must not open";
}

}  // namespace
}  // namespace starring::cluster
