// Baseline: Tseng, Chang & Sheu, "Fault-tolerant ring embedding in star
// graphs" (IEEE TPDS, 1997) — the prior art the paper improves on.
//
// Two results are reproduced:
//   * vertex faults: with |Fv| <= n-3, a healthy ring of length at
//     least n! - 4|Fv|.  We realize it inside the same super-ring
//     framework with the baseline's weaker per-fault recovery — a block
//     holding a fault contributes 4 fewer vertices instead of the
//     paper's 2 — which reproduces exactly the bound their construction
//     guarantees and is the fair comparison target for experiment E2.
//   * edge faults: with |Fe| <= n-3, a ring of the full length n!
//     (worst-case optimal).  Our uniform engine already routes around
//     forbidden in-block and cross edges, so this is the engine run
//     with per-block targets of 24 everywhere.
#pragma once

#include <optional>

#include "core/ring_embedder.hpp"

namespace starring {

/// Tseng et al.'s vertex-fault guarantee: healthy ring of length
/// n! - 4|Fv| (|Fv| <= n-3).
std::optional<EmbedResult> tseng_vertex_fault_ring(const StarGraph& g,
                                                   const FaultSet& faults,
                                                   const EmbedOptions& opts = {});

/// Tseng et al.'s edge-fault result: ring of length n! despite
/// |Fe| <= n-3 edge faults.  `faults` must contain edge faults only.
std::optional<EmbedResult> tseng_edge_fault_ring(const StarGraph& g,
                                                 const FaultSet& faults,
                                                 const EmbedOptions& opts = {});

}  // namespace starring
