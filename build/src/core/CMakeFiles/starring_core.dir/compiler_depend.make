# Empty compiler generated dependencies file for starring_core.
# This may be replaced when dependencies are built.
