#include "baselines/latifi.hpp"

#include <algorithm>
#include <cassert>

#include "core/chaining.hpp"
#include "core/super_ring.hpp"

namespace starring {

namespace {

/// Smallest pattern containing every vertex fault: fix exactly the
/// positions (other than 0) on which all faults agree.  Returns the
/// pattern, or nullopt when there are no faults.
std::optional<SubstarPattern> enclosing_pattern(const StarGraph& g,
                                                const FaultSet& faults) {
  const std::vector<Perm> fv = faults.vertex_faults();
  if (fv.empty()) return std::nullopt;
  SubstarPattern pat = SubstarPattern::whole(g.n());
  for (int i = 1; i < g.n(); ++i) {
    const int s = fv.front().get(i);
    const bool agree = std::all_of(fv.begin(), fv.end(),
                                   [&](const Perm& f) { return f.get(i) == s; });
    if (agree) pat = pat.child(i, s);
  }
  // A 1-pattern (single vertex) cannot be excised alone from a bipartite
  // ring: grow it to an S_2 by freeing one fixed position.
  if (pat.r() < 2) {
    for (int i = 1; i < g.n(); ++i) {
      if (!pat.is_free(i)) {
        SubstarPattern grown = SubstarPattern::whole(g.n());
        for (int j = 1; j < g.n(); ++j)
          if (j != i && !pat.is_free(j)) grown = grown.child(j, pat.slot(j));
        return grown;
      }
    }
  }
  return pat;
}

}  // namespace

int minimal_enclosing_substar_dim(const StarGraph& g, const FaultSet& faults) {
  const auto pat = enclosing_pattern(g, faults);
  return pat ? pat->r() : 0;
}

std::optional<LatifiResult> latifi_clustered_ring(const StarGraph& g,
                                                  const FaultSet& faults,
                                                  const EmbedOptions& opts) {
  if (faults.num_edge_faults() != 0) return std::nullopt;
  const int n = g.n();
  if (n < 5) return std::nullopt;  // hierarchy needs at least one level

  const auto pat = enclosing_pattern(g, faults);
  if (!pat) {
    // No faults: the clustered-star ring degenerates to the full
    // Hamiltonian cycle.
    auto res = embed_hamiltonian_cycle(g, opts);
    if (!res) return std::nullopt;
    return LatifiResult{std::move(*res), 0};
  }
  const int m = pat->r();
  if (m >= n) return std::nullopt;  // faults do not fit a proper substar

  // Partition positions: all of the enclosing pattern's fixed positions
  // first (so it appears as one supervertex of the hierarchy), then —
  // when the pattern is larger than a block — enough of its free
  // positions to reach blocks.
  std::vector<int> positions;
  for (int i = 1; i < n; ++i)
    if (!pat->is_free(i)) positions.push_back(i);
  for (int i = 1; i < n && static_cast<int>(positions.size()) < n - 4; ++i)
    if (pat->is_free(i)) positions.push_back(i);
  if (static_cast<int>(positions.size()) != n - 4) {
    // m < 4: more fixed positions than levels; keep only n-4 of them.
    positions.resize(static_cast<std::size_t>(n - 4));
  }

  const bool pattern_is_supervertex = m >= 4;
  for (int restart = 0; restart < std::max(1, opts.max_restarts); ++restart) {
    const auto sr = build_block_ring(
        n, positions, FaultSet{}, restart,
        pattern_is_supervertex ? &*pat : nullptr);
    if (!sr) continue;
    // All faults sit inside the excised pattern, so the chain sees a
    // fault-free graph; the excised mask (m < 4) or the dropped
    // supervertex (m >= 4) accounts for the n! - m! length.
    auto res = chain_block_ring(g, *sr, FaultSet{}, opts,
                                /*per_fault_loss=*/2,
                                pattern_is_supervertex ? nullptr : &*pat);
    if (res) {
      res->stats.restarts = restart;
      return LatifiResult{std::move(*res), m};
    }
  }
  return std::nullopt;
}

}  // namespace starring
