// Self-healing ring scenario.
//
// The operational story behind fault-tolerant embedding: a machine
// starts with a full Hamiltonian ring; processors fail one by one; after
// each failure the runtime re-embeds the longest healthy ring and the
// application (a ring collective) resumes on it.  This module drives
// that loop for any embedding strategy and records, per fault event,
// the re-embedding cost, the surviving ring length, and the collective
// performance on the shrunken ring — the numbers experiment E13
// compares across this paper's construction and the baselines.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/ring_embedder.hpp"
#include "sim/ring_sim.hpp"

namespace starring {

/// An embedding strategy: given the graph and the accumulated faults,
/// produce a healthy ring (or fail).
using EmbedStrategy = std::function<std::optional<EmbedResult>(
    const StarGraph&, const FaultSet&)>;

struct HealingEvent {
  int faults_so_far = 0;
  std::uint64_t ring_length = 0;
  /// Wall-clock cost of the re-embedding, milliseconds.
  double reembed_ms = 0.0;
  /// One ring all-reduce on the new ring, simulated microseconds.
  double allreduce_us = 0.0;
  /// Healthy processors left out of the ring.
  std::uint64_t stranded = 0;
};

struct HealingTrace {
  std::vector<HealingEvent> events;
  /// False when some re-embedding failed (the strategy gave up).
  bool completed = true;
};

/// Drive the scenario: embed on the fault-free machine, then apply the
/// fault sequence one vertex at a time, re-embedding after each.  Every
/// produced ring is verified internally; an invalid ring marks the
/// trace incomplete and stops it.
HealingTrace run_self_healing(const StarGraph& g,
                              const std::vector<Perm>& fault_sequence,
                              const SimParams& params,
                              const EmbedStrategy& strategy);

}  // namespace starring
