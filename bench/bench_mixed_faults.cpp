// Experiment E6 — the concluding-remark corollary: mixed faults with
// |Fv| + |Fe| <= n-3 still admit a healthy ring of n! - 2|Fv|,
// improving the prior mixed bound n! - 4|Fv|.
#include <cstdio>
#include <cstdlib>

#include "core/verify.hpp"
#include "extensions/mixed_faults.hpp"
#include "fault/generators.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("mixed_faults");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 8;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("E6: mixed faults — ring of n!-2|Fv| with |Fv|+|Fe| <= n-3\n");
  std::printf("%3s %4s %4s %10s %10s %10s %6s\n", "n", "|Fv|", "|Fe|",
              "promise", "ours", "baseline", "ok");

  bool all_ok = true;
  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nv = 0; nv <= n - 3; ++nv) {
      for (int ne = 0; nv + ne <= n - 3; ++ne) {
        if (nv + ne == 0) continue;
        int ok = 0;
        std::uint64_t ours_len = 0;
        std::uint64_t base_len = 0;
        for (int t = 0; t < trials; ++t) {
          const FaultSet f =
              mixed_faults(g, nv, ne, static_cast<std::uint64_t>(t));
          const auto res = embed_mixed_fault_ring(g, f);
          const auto base = embed_mixed_fault_ring_baseline(g, f);
          if (!res) continue;
          const auto rep = verify_healthy_ring(g, f, res->embed.ring);
          if (rep.valid && rep.length == res->promised_length) {
            ++ok;
            ours_len = rep.length;
          }
          if (base && verify_healthy_ring(g, f, base->embed.ring).valid)
            base_len = base->embed.ring.size();
        }
        std::printf("%3d %4d %4d %10llu %10llu %10llu %3d/%-2d\n", n, nv, ne,
                    static_cast<unsigned long long>(
                        factorial(n) - 2 * static_cast<std::uint64_t>(nv)),
                    static_cast<unsigned long long>(ours_len),
                    static_cast<unsigned long long>(base_len), ok, trials);
        all_ok &= ok == trials;
      }
    }
  }
  std::printf("\n%s\n",
              all_ok ? "RESULT: mixed-fault corollary holds on every instance"
                     : "RESULT: some mixed-fault instances FAILED");
  return all_ok ? 0 : 1;
}
