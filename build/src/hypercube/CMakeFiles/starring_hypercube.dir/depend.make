# Empty dependencies file for starring_hypercube.
# This may be replaced when dependencies are built.
