file(REMOVE_RECURSE
  "CMakeFiles/starring_graph.dir/disjoint_paths.cpp.o"
  "CMakeFiles/starring_graph.dir/disjoint_paths.cpp.o.d"
  "CMakeFiles/starring_graph.dir/graph.cpp.o"
  "CMakeFiles/starring_graph.dir/graph.cpp.o.d"
  "libstarring_graph.a"
  "libstarring_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
