// The pancake graph P_n and fault-tolerant ring embedding in it.
//
// P_n is the star graph's closest sibling: the other canonical Cayley
// interconnection network of Akers & Krishnamurthy [2], with the same
// vertex set (permutations of n symbols) but prefix reversals as the
// generator set (u ~ v iff v reverses a prefix of u; degree n-1).
// Crucially P_n is NOT bipartite (it has odd cycles: girth 6 but
// 7-cycles exist for n >= 4), so a faulty vertex costs a ring exactly
// ONE slot — no healthy-partner tax.  With |Fv| <= n-3 vertex faults
// P_n embeds a ring of length n! - |Fv|, against the star graph's
// optimal n! - 2|Fv|.  Experiment E18 puts the two degradation laws
// side by side: the factor-2 gap is purely the star graph's
// bipartiteness.
//
// Construction: recursive copy decomposition (fix the last symbol to
// split P_n into n copies of P_{n-1}; every copy pair is joined by
// full-prefix flips), Hamiltonian-connected exhaustive base at P_4,
// and per-copy full-coverage paths chained through flip crossings with
// backtracking over exit choices.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"

namespace starring {

/// Reverse the prefix of length k (2 <= k <= n).
Perm pancake_flip(const Perm& p, int k);

/// u ~ v in P_n iff v is a prefix reversal of u.
bool pancake_adjacent(const Perm& u, const Perm& v);

/// A healthy ring of length n! - |Fv| in P_n.  Guarantee regime:
/// |Fv| <= n-3 (matching the star-graph theorem's budget); best effort
/// beyond.  Returns the cyclic vertex sequence, or nullopt.
std::optional<std::vector<Perm>> pancake_fault_ring(int n,
                                                    const FaultSet& faults);

/// Independent check: simple cycle of P_n, no faulty vertex.
bool verify_pancake_ring(int n, const FaultSet& faults,
                         const std::vector<Perm>& ring);

}  // namespace starring
