// Tests for the observability layer: counters, phase spans, the JSON
// emitter/parser, the BENCH_*.json artifact schema, and the pipeline
// wiring (EmbedStats carries the counter snapshot; disabled means
// zero-footprint).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/ring_embedder.hpp"
#include "fault/generators.hpp"
#include "obs/bench_io.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "util/parallel.hpp"

namespace starring {
namespace {

#if !defined(STARRING_OBS_DISABLED)

/// Enable metrics for one test, restoring the previous state after.
class MetricsOn {
 public:
  MetricsOn() : was_(obs::enabled()) {
    obs::set_enabled(true);
    obs::reset();
  }
  ~MetricsOn() { obs::set_enabled(was_); }

 private:
  bool was_;
};

TEST(ObsMetrics, CounterAccumulates) {
  MetricsOn on;
  obs::Counter& c = obs::counter("test.adds");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::counter("test.adds"), &c);
}

TEST(ObsMetrics, RecordMaxKeepsLargest) {
  MetricsOn on;
  obs::Counter& c = obs::counter("test.max");
  c.record_max(7);
  c.record_max(3);
  c.record_max(9);
  EXPECT_EQ(c.value(), 9);
}

TEST(ObsMetrics, DisabledCounterDropsWrites) {
  MetricsOn on;
  obs::Counter& c = obs::counter("test.disabled");
  obs::set_enabled(false);
  c.add(100);
  c.record_max(100);
  EXPECT_EQ(c.value(), 0);
  obs::set_enabled(true);
}

TEST(ObsMetrics, SnapshotListsRegisteredCounters) {
  MetricsOn on;
  obs::counter("test.snap_a").add(3);
  obs::counter("test.snap_b").add(5);
  const obs::Snapshot snap = obs::snapshot();
  std::int64_t a = -1;
  std::int64_t b = -1;
  for (const auto& [name, value] : snap) {
    if (name == "test.snap_a") a = value;
    if (name == "test.snap_b") b = value;
  }
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 5);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(ObsMetrics, SnapshotDeltaReportsOnlyGrowth) {
  MetricsOn on;
  obs::counter("test.delta_stale").add(10);
  const obs::Snapshot before = obs::snapshot();
  obs::counter("test.delta_grown").add(4);
  const obs::Snapshot delta = obs::snapshot_delta(before);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].first, "test.delta_grown");
  EXPECT_EQ(delta[0].second, 4);
}

TEST(ObsMetrics, SnapshotDeltaIncludesLateRegisteredCounters) {
  // Counters that first appear AFTER the baseline was taken must be
  // reported in full — regardless of where their name sorts relative
  // to the baseline's names.  (A previous implementation walked both
  // snapshots with a monotone cursor and could mis-attribute or skip
  // late arrivals.)
  MetricsOn on;
  obs::counter("m.delta_existing").add(5);
  const obs::Snapshot before = obs::snapshot();
  obs::counter("a.late_first").add(2);   // sorts before every baseline name
  obs::counter("z.late_last").add(7);    // sorts after every baseline name
  obs::counter("m.delta_existing").add(1);
  const obs::Snapshot delta = obs::snapshot_delta(before);
  const auto value = [&](std::string_view name) -> std::int64_t {
    for (const auto& [k, v] : delta)
      if (k == name) return v;
    return -1;
  };
  EXPECT_EQ(value("a.late_first"), 2);
  EXPECT_EQ(value("z.late_last"), 7);
  EXPECT_EQ(value("m.delta_existing"), 1);
}

TEST(ObsMetrics, SnapshotDeltaMatchesBaselineByName) {
  // The baseline need not be sorted or complete (a previous delta is a
  // legal baseline).  Matching must be by name, never by position.
  MetricsOn on;
  obs::counter("p.delta_a").add(1);
  obs::counter("p.delta_z").add(1);
  // Deliberately unsorted, and missing p.delta_a entirely.
  obs::Snapshot baseline;
  baseline.emplace_back("p.delta_z", 1);
  obs::counter("p.delta_a").add(2);
  obs::counter("p.delta_z").add(4);
  const obs::Snapshot delta = obs::snapshot_delta(baseline);
  const auto value = [&](std::string_view name) -> std::int64_t {
    for (const auto& [k, v] : delta)
      if (k == name) return v;
    return -1;
  };
  // p.delta_a was absent from the baseline: reported in full.
  EXPECT_EQ(value("p.delta_a"), 3);
  EXPECT_EQ(value("p.delta_z"), 4);
}

TEST(ObsMetrics, ScopedPhaseAccumulatesWallTime) {
  MetricsOn on;
  {
    obs::ScopedPhase p("test_sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(obs::counter("phase.test_sleep_ns").value(), 1'000'000);
}

TEST(ObsMetrics, EmbedStatsCarryCounterSnapshot) {
  MetricsOn on;
  const StarGraph g(5);
  const FaultSet f = random_vertex_faults(g, 2, 3);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  ASSERT_FALSE(res->stats.counters.empty());
  const auto find = [&](const std::string& name) -> std::int64_t {
    for (const auto& [k, v] : res->stats.counters)
      if (k == name) return v;
    return -1;
  };
  EXPECT_EQ(find("embed.calls"), 1);
  EXPECT_GT(find("oracle.cache_misses") + find("oracle.cache_hits"), 0);
  EXPECT_GT(find("phase.embed_ns"), 0);
}

TEST(ObsMetrics, OracleAndPoolCountersInSchema) {
  // The artifact schema relies on these counter names existing; a
  // multithreaded embed must register and move them.
  MetricsOn on;
  const StarGraph g(5);
  const FaultSet f = random_vertex_faults(g, 2, 11);
  EmbedOptions opts;
  opts.num_threads = 4;
  opts.prewarm_oracle = true;
  const auto res = embed_longest_ring(g, f, opts);
  ASSERT_TRUE(res.has_value());
  const obs::Snapshot snap = obs::snapshot();
  const auto value = [&](const std::string& name) -> std::int64_t {
    for (const auto& [k, v] : snap)
      if (k == name) return v;
    return -1;  // absent: distinguishable from a present zero
  };
  EXPECT_GT(value("oracle.cache_hits") + value("oracle.cache_misses"), 0);
  EXPECT_GE(value("oracle.cache_hits"), 0);
  EXPECT_GE(value("oracle.cache_misses"), 0);
  EXPECT_GT(value("pool.tasks"), 0);
  EXPECT_GT(value("pool.chunks"), 0);
  EXPECT_GE(value("pool.wakeups"), 0);
  EXPECT_GE(value("pool.workers"), 3);  // lanes - 1 spawned for 4 lanes
}

TEST(ObsMetrics, EmbedStatsEmptyWhenDisabled) {
  MetricsOn on;
  obs::set_enabled(false);
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  obs::set_enabled(true);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->stats.counters.empty());
}

TEST(ObsBench, RecorderWritesValidArtifact) {
  MetricsOn on;
  const std::string dir = ::testing::TempDir();
  setenv("STARRING_BENCH_DIR", dir.c_str(), 1);
  std::string path;
  {
    obs::BenchRecorder rec("unit_test");
    rec.note_n(6);
    rec.note_faults(3);
    rec.add_counter("extra.value", 1.5);
    obs::counter("test.from_recorder_scope").add(2);
    path = rec.path();
  }
  unsetenv("STARRING_BENCH_DIR");
  EXPECT_NE(path.find("BENCH_unit_test.json"), std::string::npos);
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << path;
  std::stringstream buf;
  buf << is.rdbuf();
  std::string err;
  EXPECT_TRUE(obs::validate_bench_artifact_json(buf.str(), &err)) << err;
  const auto doc = obs::json_parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("bench")->string, "unit_test");
  EXPECT_EQ(doc->find("n")->number, 6.0);
  EXPECT_EQ(doc->find("faults")->number, 3.0);
  EXPECT_GE(doc->find("wall_ms")->number, 0.0);
  EXPECT_FALSE(doc->find("git_rev")->string.empty());
  const obs::JsonValue* counters = doc->find("counters");
  EXPECT_EQ(counters->find("extra.value")->number, 1.5);
  EXPECT_EQ(counters->find("test.from_recorder_scope")->number, 2.0);
}

TEST(ObsMetrics, LatencyHistogramBucketsAndTotals) {
  MetricsOn on;
  obs::LatencyHistogram h("test.lat");
  h.record(std::chrono::microseconds(50));        // -> le_100us
  h.record(std::chrono::microseconds(500));       // -> le_1ms
  h.record(std::chrono::milliseconds(5));         // -> le_10ms
  h.record(std::chrono::milliseconds(50));        // -> le_100ms
  h.record(std::chrono::milliseconds(500));       // -> le_1s
  h.record(std::chrono::seconds(2));              // -> gt_1s
  h.record(std::chrono::microseconds(100));       // boundary: still le_100us
  EXPECT_EQ(obs::counter("test.lat.le_100us").value(), 2);
  EXPECT_EQ(obs::counter("test.lat.le_1ms").value(), 1);
  EXPECT_EQ(obs::counter("test.lat.le_10ms").value(), 1);
  EXPECT_EQ(obs::counter("test.lat.le_100ms").value(), 1);
  EXPECT_EQ(obs::counter("test.lat.le_1s").value(), 1);
  EXPECT_EQ(obs::counter("test.lat.gt_1s").value(), 1);
  EXPECT_EQ(obs::counter("test.lat.count").value(), 7);
  EXPECT_EQ(obs::counter("test.lat.total_us").value(),
            50 + 500 + 5'000 + 50'000 + 500'000 + 2'000'000 + 100);
}

TEST(ObsMetrics, LatencyHistogramExactBucketBoundaries) {
  // record() truncates to whole microseconds and places a value in the
  // first bucket whose upper bound is >= it, so each bound itself lands
  // in its own bucket and bound+1us spills into the next.
  MetricsOn on;
  obs::LatencyHistogram h("test.edge");
  const std::int64_t bounds_us[] = {100, 1'000, 10'000, 100'000, 1'000'000};
  for (const std::int64_t b : bounds_us) {
    h.record(std::chrono::microseconds(b));
    h.record(std::chrono::microseconds(b + 1));
  }
  // Sub-microsecond values truncate to 0us -> first bucket.
  h.record(std::chrono::nanoseconds(999));
  // 100'999ns truncates to 100us: still within the first bound.
  h.record(std::chrono::nanoseconds(100'999));
  EXPECT_EQ(obs::counter("test.edge.le_100us").value(), 3);
  EXPECT_EQ(obs::counter("test.edge.le_1ms").value(), 2);
  EXPECT_EQ(obs::counter("test.edge.le_10ms").value(), 2);
  EXPECT_EQ(obs::counter("test.edge.le_100ms").value(), 2);
  EXPECT_EQ(obs::counter("test.edge.le_1s").value(), 2);
  EXPECT_EQ(obs::counter("test.edge.gt_1s").value(), 1);
  EXPECT_EQ(obs::counter("test.edge.count").value(), 12);
}

TEST(ObsMetrics, LatencyHistogramConcurrentRecordFromPoolWorkers) {
  // record() is a few relaxed atomic adds; hammering one histogram from
  // every pool lane must lose no increments and keep the invariant
  // sum(buckets) == count.
  MetricsOn on;
  obs::LatencyHistogram h("test.conc");
  constexpr std::size_t kRecords = 4096;
  parallel_for(0, kRecords, 4, [&](std::size_t i) {
    // Spread across the first three buckets deterministically.
    h.record(std::chrono::microseconds(50 + 400 * (i % 3)));
  });
  EXPECT_EQ(obs::counter("test.conc.count").value(),
            static_cast<std::int64_t>(kRecords));
  const std::int64_t bucketed = obs::counter("test.conc.le_100us").value() +
                                obs::counter("test.conc.le_1ms").value();
  EXPECT_EQ(bucketed, static_cast<std::int64_t>(kRecords));
  EXPECT_EQ(obs::counter("test.conc.le_100us").value(),
            static_cast<std::int64_t>(kRecords / 3 + (kRecords % 3 ? 1 : 0)));
  EXPECT_EQ(
      obs::counter("test.conc.total_us").value(),
      static_cast<std::int64_t>(
          kRecords / 3 * (50 + 450 + 850) + (kRecords % 3 > 0 ? 50 : 0) +
          (kRecords % 3 > 1 ? 450 : 0)));
}

TEST(ObsMetrics, ServiceCountersAfterBatchedRun) {
  MetricsOn on;
  const StarGraph g(5);
  const FaultSet faults = random_vertex_faults(g, 1, /*seed=*/3);
  const int kRequests = 8;
  {
    EmbedService svc;
    for (int i = 0; i < kRequests; ++i) {
      ServiceRequest r;
      r.id = i;
      r.n = 5;
      r.faults = faults;  // one canonical class: 1 miss, the rest hits
      ASSERT_TRUE(svc.submit(std::move(r)));
    }
    svc.drain();
    while (svc.next_response()) {
    }
  }
  const auto value = [](const std::string& name) {
    return obs::counter(name).value();
  };
  EXPECT_EQ(value("svc.requests"), kRequests);
  EXPECT_EQ(value("svc.rejected"), 0);
  EXPECT_GE(value("svc.batches"), 1);
  EXPECT_GE(value("svc.batch_size_max"), 1);
  EXPECT_GE(value("svc.queue_depth_max"), 1);
  EXPECT_EQ(value("svc.cache_misses"), 1);
  EXPECT_EQ(value("svc.cache_hits"), kRequests - 1);
  EXPECT_EQ(value("svc.embed_failures"), 0);
  EXPECT_EQ(value("svc.verify_failures"), 0);
  // Every request's submit-to-response latency was recorded.
  EXPECT_EQ(value("svc.latency.count"), kRequests);
  EXPECT_GT(value("svc.latency.total_us"), 0);
  std::int64_t bucketed = 0;
  for (const char* b : {"svc.latency.le_100us", "svc.latency.le_1ms",
                        "svc.latency.le_10ms", "svc.latency.le_100ms",
                        "svc.latency.le_1s", "svc.latency.gt_1s"})
    bucketed += value(b);
  EXPECT_EQ(bucketed, kRequests);
}

TEST(ObsMetrics, ServiceVerifyCountersViaProcessNow) {
  MetricsOn on;
  const StarGraph g(5);
  EmbedService svc;
  ServiceRequest r;
  r.id = 1;
  r.n = 5;
  r.faults = random_vertex_faults(g, 2, 7);
  r.verify = true;
  const ServiceResponse first = svc.process_now(r);
  ASSERT_EQ(first.status, ServiceStatus::kOk) << first.reason;
  r.id = 2;
  const ServiceResponse second = svc.process_now(r);
  ASSERT_EQ(second.status, ServiceStatus::kOk) << second.reason;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(obs::counter("svc.verified").value(), 2);
  EXPECT_EQ(obs::counter("svc.verify_failures").value(), 0);
  EXPECT_EQ(obs::counter("svc.cache_hits").value(), 1);
  EXPECT_EQ(obs::counter("svc.cache_misses").value(), 1);
}

#endif  // !STARRING_OBS_DISABLED

TEST(ObsJson, EscapeCoversSpecials) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(ObsJson, NumberFormatting) {
  EXPECT_EQ(obs::json_number(42.0), "42");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  // nan/inf are not representable in JSON; they clamp to 0.
  EXPECT_EQ(obs::json_number(std::nan("")), "0");
}

TEST(ObsJson, ParseRoundTrip) {
  const char* text =
      "{\"a\": 1, \"b\": [true, null, \"x\\ny\"], \"c\": {\"d\": -2.5}}";
  std::string err;
  const auto doc = obs::json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("a")->number, 1.0);
  ASSERT_EQ(doc->find("b")->array.size(), 3u);
  EXPECT_TRUE(doc->find("b")->array[0].boolean);
  EXPECT_EQ(doc->find("b")->array[2].string, "x\ny");
  EXPECT_EQ(doc->find("c")->find("d")->number, -2.5);
}

TEST(ObsJson, ParseRejectsMalformed) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "{} trailing",
        "\"unterminated", "{\"a\": 01x}"}) {
    std::string err;
    EXPECT_FALSE(obs::json_parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(ObsJson, ParseDecodesUnicodeEscape) {
  const auto doc = obs::json_parse("{\"s\": \"\\u0041\\u00e9\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->string, "A\xc3\xa9");
}

TEST(ObsBench, ArtifactJsonMatchesSchema) {
  obs::BenchArtifact a;
  a.bench = "schema_check";
  a.n = 9;
  a.faults = 6;
  a.wall_ms = 12.25;
  a.counters = {{"chain.backtracks", 17.0}, {"phase.embed_ns", 1e9}};
  a.git_rev = obs::git_rev();
  const std::string json = obs::bench_artifact_json(a);
  std::string err;
  EXPECT_TRUE(obs::validate_bench_artifact_json(json, &err)) << err << json;
}

TEST(ObsBench, ValidatorRejectsMissingOrWrongTypes) {
  std::string err;
  EXPECT_FALSE(obs::validate_bench_artifact_json("{}", &err));
  EXPECT_NE(err.find("missing key"), std::string::npos);
  EXPECT_FALSE(obs::validate_bench_artifact_json(
      "{\"bench\": 1, \"n\": 0, \"faults\": 0, \"wall_ms\": 0, "
      "\"counters\": {}, \"git_rev\": \"x\"}",
      &err));
  EXPECT_NE(err.find("wrong type"), std::string::npos);
  EXPECT_FALSE(obs::validate_bench_artifact_json(
      "{\"bench\": \"b\", \"n\": 0, \"faults\": 0, \"wall_ms\": 0, "
      "\"counters\": {\"k\": \"not a number\"}, \"git_rev\": \"x\"}",
      &err));
  EXPECT_NE(err.find("non-numeric counter"), std::string::npos);
}

}  // namespace
}  // namespace starring
