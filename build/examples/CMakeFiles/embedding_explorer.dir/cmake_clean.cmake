file(REMOVE_RECURSE
  "CMakeFiles/embedding_explorer.dir/embedding_explorer.cpp.o"
  "CMakeFiles/embedding_explorer.dir/embedding_explorer.cpp.o.d"
  "embedding_explorer"
  "embedding_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
