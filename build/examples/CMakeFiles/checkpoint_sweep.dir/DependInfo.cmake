
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/checkpoint_sweep.cpp" "examples/CMakeFiles/checkpoint_sweep.dir/checkpoint_sweep.cpp.o" "gcc" "examples/CMakeFiles/checkpoint_sweep.dir/checkpoint_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/starring_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starring_util.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/starring_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/starring_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/starring_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starring_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/starring_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/stargraph/CMakeFiles/starring_stargraph.dir/DependInfo.cmake"
  "/root/repo/build/src/perm/CMakeFiles/starring_perm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/starring_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
