file(REMOVE_RECURSE
  "libstarring_fault.a"
)
