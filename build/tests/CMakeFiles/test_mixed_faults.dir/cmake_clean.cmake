file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_faults.dir/test_mixed_faults.cpp.o"
  "CMakeFiles/test_mixed_faults.dir/test_mixed_faults.cpp.o.d"
  "test_mixed_faults"
  "test_mixed_faults.pdb"
  "test_mixed_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
