file(REMOVE_RECURSE
  "libstarring_core.a"
)
