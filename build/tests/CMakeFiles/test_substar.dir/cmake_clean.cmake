file(REMOVE_RECURSE
  "CMakeFiles/test_substar.dir/test_substar.cpp.o"
  "CMakeFiles/test_substar.dir/test_substar.cpp.o.d"
  "test_substar"
  "test_substar.pdb"
  "test_substar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_substar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
