#include "util/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace starring {

namespace {

// Workers spawn on demand up to this cap, independent of hardware
// concurrency, so oversubscribed requests (tests asking for 16 lanes on
// a small host) still exercise real cross-thread schedules.
constexpr unsigned kMaxWorkers = 64;

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::in_worker() { return t_in_worker; }

unsigned ThreadPool::workers() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return static_cast<unsigned>(threads_.size());
}

void ThreadPool::ensure_workers(unsigned want) {
  want = std::min(want, kMaxWorkers);
  const std::lock_guard<std::mutex> lk(mu_);
  while (threads_.size() < want)
    threads_.emplace_back([this] { worker_loop(); });
  static obs::Counter& workers_gauge = obs::counter("pool.workers");
  workers_gauge.record_max(static_cast<std::int64_t>(threads_.size()));
}

void ThreadPool::run(std::size_t begin, std::size_t end, unsigned lanes,
                     Invoke invoke, void* ctx,
                     const std::atomic<bool>* cancel) {
  static obs::Counter& tasks_counter = obs::counter("pool.tasks");
  // Registered here (not only in worker_loop) so a snapshot taken right
  // after a region lists the counter regardless of worker scheduling.
  [[maybe_unused]] static obs::Counter& wakeups_registration =
      obs::counter("pool.wakeups");
  const std::lock_guard<std::mutex> region(region_mu_);
  ensure_workers(lanes - 1);
  tasks_counter.add();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
    live_ = true;
    max_extra_ = lanes - 1;
    joined_ = 0;
    active_ = 0;
    end_index_ = end;
    // Dynamic scheduling: several chunks per lane, so a lane stuck on an
    // expensive block sheds the rest of its work to idle lanes.
    chunk_ = std::max<std::size_t>(
        1, (end - begin) / (static_cast<std::size_t>(lanes) * 8));
    invoke_ = invoke;
    ctx_ = ctx;
    cancel_ = cancel;
    trace_ctx_ = obs::trace::current();
    next_.store(begin, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  // The caller is lane 0.  While it executes chunks it counts as "in a
  // region" exactly like a worker, so a nested parallel_for issued from
  // the user callable runs inline instead of re-entering run() and
  // self-deadlocking on region_mu_.
  const bool was_in_worker = t_in_worker;
  t_in_worker = true;
  work(0);
  t_in_worker = was_in_worker;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  live_ = false;  // stale wakeups must not touch the dead region
}

void ThreadPool::work(unsigned lane) {
  static obs::Counter& chunks_counter = obs::counter("pool.chunks");
  for (;;) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
      return;
    const std::size_t lo = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (lo >= end_index_) return;
    const std::size_t hi = std::min(end_index_, lo + chunk_);
    chunks_counter.add();
    invoke_(ctx_, lo, hi, lane);
  }
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  static obs::Counter& wakeups_counter = obs::counter("pool.wakeups");
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    // Join only a region that is still live and under its lane budget;
    // a stale wakeup (region already drained) parks again.
    if (!live_ || joined_ >= max_extra_) continue;
    const unsigned lane = ++joined_;  // caller is lane 0
    ++active_;
    const obs::trace::Context region_ctx = trace_ctx_;
    lk.unlock();
    wakeups_counter.add();
    {
      const obs::trace::ContextGuard adopt(region_ctx);
      work(lane);
    }
    lk.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

}  // namespace starring
