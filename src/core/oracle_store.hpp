// Persistent snapshot of the warm-start state: the BlockOracle path
// memo (both planes, flat MemoEntry records) plus precomputed
// canonical-frame rings for seeding the service's result cache.  A
// daemon started with --oracle-snapshot skips the cold-start work — the
// 24x24 fault-free plane search, the faulty-block long tail its
// workload has already met, and the first embedding of every canonical
// instance the snapshot carries.
//
// On-disk format (all integers little-endian, written natively on the
// LE targets this repo builds for):
//
//   offset  size  field
//        0     8  magic "STRORCL1"
//        8     4  u32 format version (kSnapshotVersion)
//       12     4  u32 section count S
//       16     8  u64 FNV-1a-64 checksum of bytes [24, EOF): four
//                 independent lanes over 8-byte LE words (word i of
//                 each 32-byte block feeds lane i mod 4), folded
//                 together, then trailing words and tail bytes
//                 sequentially
//       24  S*24  section table: { u32 type; u32 reserved;
//                                  u64 offset; u64 count }
//        ...     section payloads (offsets are absolute)
//
// Sections:
//   type 1 (memo):  count records of 33 bytes each:
//                   u64 key, i8 len, 24 x i8 path vertices
//   type 2 (rings): count variable-size records:
//                   u32 n, u32 key_len, u64 ring_len,
//                   key bytes, ring_len x u64 vertex ids
//   unknown types are skipped (forward compatibility).
//
// The loader mmaps the file (falling back to a buffered read when mmap
// is unavailable) and validates magic, version, checksum, and every
// section bound before trusting a byte.  Any validation failure bumps
// the `oracle.snapshot_rejected` counter and returns nullopt — the
// caller recomputes from scratch; a bad snapshot must never crash or
// poison the process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/block_oracle.hpp"
#include "perm/permutation.hpp"

namespace starring {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct OracleSnapshot {
  struct CanonicalRing {
    int n = 0;
    std::string key;             // CanonicalForm::key
    std::vector<VertexId> ring;  // canonical-frame embedding
  };

  std::vector<BlockOracle::MemoEntry> memo;
  std::vector<CanonicalRing> rings;
};

/// Serialize `snap` to `path` (write to a temp sibling, then rename —
/// a crashed writer never leaves a half-written snapshot under the
/// final name).  Returns false and sets *error on I/O failure.
bool write_oracle_snapshot(const std::string& path, const OracleSnapshot& snap,
                           std::string* error = nullptr);

/// Load and validate a snapshot.  Returns nullopt (with *error set and
/// `oracle.snapshot_rejected` bumped) when the file is missing,
/// truncated, version-mismatched, checksum-corrupt, or structurally
/// out of bounds.  Never throws on malformed input.
std::optional<OracleSnapshot> load_oracle_snapshot(const std::string& path,
                                                   std::string* error = nullptr);

}  // namespace starring
