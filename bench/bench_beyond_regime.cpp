// Experiment E15 — beyond the guarantee regime.
//
// The theorem stops at |Fv| = n-3 (the worst case can defeat any
// algorithm past it: n-1 faults can strangle a vertex entirely).  This
// harness pushes the construction past the boundary with uniform random
// faults and reports the success rate of still delivering a verified
// n!-2|Fv| ring, plus where it starts failing — an honest robustness
// profile, not a claim of the paper.
#include <cstdio>
#include <cstdlib>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "bench_options.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("beyond_regime");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 7;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 10;

  std::printf("E15: past the regime boundary (random faults; the paper "
              "guarantees |Fv| <= n-3)\n");
  std::printf("%3s %5s %10s %12s %12s\n", "n", "|Fv|", "regime?",
              "success", "all_valid");

  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    for (int nf = n - 3; nf <= 3 * (n - 3); nf += (n - 3)) {
      int ok = 0;
      bool valid = true;
      for (int t = 0; t < trials; ++t) {
        const FaultSet f =
            random_vertex_faults(g, nf, static_cast<std::uint64_t>(t));
        const auto res = embed_longest_ring(g, f, bench_embed_options());
        if (!res) continue;
        const auto rep = verify_healthy_ring(g, f, res->ring);
        if (!rep.valid) {
          valid = false;  // must never emit garbage
          continue;
        }
        if (rep.length == expected_ring_length(n, f.num_vertex_faults()))
          ++ok;
      }
      std::printf("%3d %5d %10s %8d/%-3d %12s\n", n, nf,
                  nf <= n - 3 ? "yes" : "no", ok, trials,
                  valid ? "yes" : "NO");
      if (!valid) return 1;
    }
  }
  std::printf("\nRESULT: inside the regime success is total; outside it the "
              "construction degrades by refusing, never by emitting an "
              "invalid ring\n");
  return 0;
}
