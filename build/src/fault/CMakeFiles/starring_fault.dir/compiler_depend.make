# Empty compiler generated dependencies file for starring_fault.
# This may be replaced when dependencies are built.
