# Empty compiler generated dependencies file for embedding_explorer.
# This may be replaced when dependencies are built.
