#include "util/failpoint.hpp"

#if !defined(STARRING_FAILPOINTS_DISABLED)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace starring::failpoint {

namespace {

enum class Mode { kError, kThrow, kDelay };

struct Site {
  Mode mode = Mode::kError;
  std::int64_t delay_ms = 0;
  bool once = false;
  std::uint64_t every = 0;  // 0: no every-N gate
  double prob = -1.0;       // <0: no probability gate
  std::string spec;         // the entry text, echoed by list()

  std::uint64_t evals = 0;  // evaluations since armed
  bool spent = false;       // a @once site that already fired
  std::mt19937_64 rng;      // per-site, deterministically seeded
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Armed-site count mirrored outside the mutex: the macro's fast path
/// reads it relaxed, so unarmed builds pay one load and a branch.
std::atomic<int> g_armed{0};

std::uint64_t env_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("STARRING_FAILPOINT_SEED");
    if (env == nullptr || *env == '\0') return std::uint64_t{0x5eed};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    return (end == env || *end != '\0') ? std::uint64_t{0x5eed}
                                        : static_cast<std::uint64_t>(v);
  }();
  return seed;
}

bool parse_number(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  std::int64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// One `site=mode@mod...` entry.
bool parse_entry(std::string_view entry, std::string* site_out, Site* out,
                 std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr)
      *error = "failpoint spec '" + std::string(entry) + "': " + why;
    return false;
  };
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) return fail("missing site=");
  *site_out = std::string(entry.substr(0, eq));
  std::string_view rest = entry.substr(eq + 1);

  std::vector<std::string_view> parts;
  while (!rest.empty()) {
    const std::size_t at = rest.find('@');
    parts.push_back(rest.substr(0, at));
    if (at == std::string_view::npos) break;
    rest = rest.substr(at + 1);
  }
  if (parts.empty() || parts.front().empty()) return fail("missing mode");

  Site s;
  s.spec = std::string(entry.substr(eq + 1));
  const std::string_view mode = parts.front();
  if (mode == "off") {
    *out = s;
    out->spec = "off";
    return parts.size() == 1 ? true : fail("'off' takes no modifiers");
  }
  if (mode == "error") {
    s.mode = Mode::kError;
  } else if (mode == "throw") {
    s.mode = Mode::kThrow;
  } else if (mode.substr(0, 6) == "delay:") {
    s.mode = Mode::kDelay;
    if (!parse_number(mode.substr(6), &s.delay_ms))
      return fail("bad delay milliseconds");
  } else {
    return fail("unknown mode '" + std::string(mode) + "'");
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view m = parts[i];
    std::int64_t v = 0;
    if (m == "once") {
      s.once = true;
    } else if (m.substr(0, 6) == "every:" &&
               parse_number(m.substr(6), &v) && v > 0) {
      s.every = static_cast<std::uint64_t>(v);
    } else if (m.substr(0, 2) == "p:") {
      char* end = nullptr;
      const std::string text(m.substr(2));
      const double p = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || p < 0.0 || p > 1.0)
        return fail("bad probability");
      s.prob = p;
    } else {
      return fail("unknown modifier '" + std::string(m) + "'");
    }
  }
  // Deterministic per-site stream: the same (site, seed) always draws
  // the same firing sequence, so probabilistic chaos runs reproduce.
  s.rng.seed(env_seed() ^ std::hash<std::string>{}(*site_out));
  *out = s;
  return true;
}

obs::Counter& c_fired() {
  static obs::Counter& c = obs::counter("svc.failpoints_fired");
  return c;
}

bool apply_config(std::string_view config, std::string* error);

/// Read STARRING_FAILPOINTS once, before the first evaluation or
/// mutation.  Errors go to the abyss deliberately: a daemon must not
/// crash on a typoed env var, and set() reports the same errors when
/// called programmatically.
std::once_flag g_env_once;
void ensure_env_loaded() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("STARRING_FAILPOINTS");
    if (env != nullptr && *env != '\0') apply_config(env, nullptr);
  });
}

void clear_impl() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  g_armed.fetch_sub(static_cast<int>(reg.sites.size()),
                    std::memory_order_relaxed);
  reg.sites.clear();
}

bool apply_config(std::string_view config, std::string* error) {
  if (config == "clear") {
    clear_impl();
    return true;
  }
  Registry& reg = registry();
  std::string_view rest = config;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                          : rest.substr(comma + 1);
    if (entry.empty()) continue;
    std::string site;
    Site parsed;
    if (!parse_entry(entry, &site, &parsed, error)) return false;
    const std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.sites.find(site);
    if (parsed.spec == "off") {
      if (it != reg.sites.end()) {
        reg.sites.erase(it);
        g_armed.fetch_sub(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (it == reg.sites.end()) {
      reg.sites.emplace(site, std::move(parsed));
      g_armed.fetch_add(1, std::memory_order_relaxed);
    } else {
      it->second = std::move(parsed);  // re-arm: counters restart
    }
  }
  return true;
}

}  // namespace

bool set(std::string_view config, std::string* error) {
  ensure_env_loaded();
  return apply_config(config, error);
}

void clear() {
  ensure_env_loaded();
  clear_impl();
}

std::vector<std::pair<std::string, std::string>> list() {
  ensure_env_loaded();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, s] : reg.sites) out.emplace_back(site, s.spec);
  return out;
}

namespace detail {

bool any_armed() {
  ensure_env_loaded();
  return g_armed.load(std::memory_order_relaxed) > 0;
}

bool eval(std::string_view site) {
  Registry& reg = registry();
  Mode mode;
  std::int64_t delay_ms = 0;
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.sites.find(std::string(site));
    if (it == reg.sites.end()) return false;
    Site& s = it->second;
    if (s.spent) return false;
    ++s.evals;
    if (s.every != 0 && s.evals % s.every != 0) return false;
    if (s.prob >= 0.0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(s.rng) >= s.prob)
      return false;
    if (s.once) s.spent = true;
    mode = s.mode;
    delay_ms = s.delay_ms;
  }
  // Act outside the registry lock: a delay must not serialize every
  // other site, and the throw must not unwind through the guard.
  c_fired().add();
  obs::counter(std::string("fail.").append(site)).add();
  switch (mode) {
    case Mode::kError:
      return true;
    case Mode::kThrow:
      throw FailpointError(std::string(site));
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
  }
  return false;  // unreachable
}

}  // namespace detail

}  // namespace starring::failpoint

#endif  // !STARRING_FAILPOINTS_DISABLED
