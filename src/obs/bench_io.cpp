#include "obs/bench_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

#ifndef STARRING_GIT_REV
#define STARRING_GIT_REV "unknown"
#endif

namespace starring::obs {

std::string git_rev() { return STARRING_GIT_REV; }

std::string bench_artifact_json(const BenchArtifact& a) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + json_escape(a.bench) + "\",\n";
  out += "  \"n\": " + std::to_string(a.n) + ",\n";
  out += "  \"faults\": " + std::to_string(a.faults) + ",\n";
  out += "  \"wall_ms\": " + json_number(a.wall_ms) + ",\n";
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(a.counters[i].first) +
           "\": " + json_number(a.counters[i].second);
  }
  out += a.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"git_rev\": \"" + json_escape(a.git_rev) + "\"\n";
  out += "}\n";
  return out;
}

bool validate_bench_artifact_json(std::string_view json, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const auto doc = json_parse(json, error);
  if (!doc) return false;
  if (!doc->is_object()) return fail("artifact is not a JSON object");
  const struct {
    const char* key;
    JsonValue::Kind kind;
  } required[] = {
      {"bench", JsonValue::Kind::kString},
      {"n", JsonValue::Kind::kNumber},
      {"faults", JsonValue::Kind::kNumber},
      {"wall_ms", JsonValue::Kind::kNumber},
      {"counters", JsonValue::Kind::kObject},
      {"git_rev", JsonValue::Kind::kString},
  };
  for (const auto& req : required) {
    const JsonValue* v = doc->find(req.key);
    if (v == nullptr) return fail(std::string("missing key: ") + req.key);
    if (v->kind != req.kind)
      return fail(std::string("wrong type for key: ") + req.key);
  }
  for (const auto& [name, v] : doc->find("counters")->object)
    if (!v.is_number())
      return fail("non-numeric counter: " + name);
  if (doc->find("bench")->string.empty()) return fail("empty bench name");
  return true;
}

bool write_bench_artifact(const BenchArtifact& a, const std::string& dir,
                          std::string* path_out) {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/BENCH_" + a.bench + ".json";
  if (path_out != nullptr) *path_out = path;
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << bench_artifact_json(a);
  return static_cast<bool>(os);
}

BenchRecorder::BenchRecorder(std::string bench)
    : bench_(std::move(bench)), t0_(std::chrono::steady_clock::now()) {
  const char* dir = std::getenv("STARRING_BENCH_DIR");
  dir_ = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  path_ = dir_ + "/BENCH_" + bench_ + ".json";
  set_enabled(true);
}

void BenchRecorder::note_n(std::int64_t n) { n_ = std::max(n_, n); }

void BenchRecorder::note_faults(std::int64_t faults) {
  faults_ = std::max(faults_, faults);
}

void BenchRecorder::add_counter(const std::string& name, double value) {
  extra_.emplace_back(name, value);
}

BenchRecorder::~BenchRecorder() {
  BenchArtifact a;
  a.bench = bench_;
  a.git_rev = git_rev();
  a.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0_)
                  .count();
  a.n = n_;
  a.faults = faults_;
  for (const auto& [name, value] : snapshot()) {
    if (name == "embed.max_n") a.n = std::max(a.n, value);
    if (name == "embed.max_faults") a.faults = std::max(a.faults, value);
    a.counters.emplace_back(name, static_cast<double>(value));
  }
  a.counters.insert(a.counters.end(), extra_.begin(), extra_.end());
  std::string path;
  if (!write_bench_artifact(a, dir_, &path))
    std::fprintf(stderr, "obs: failed to write %s\n", path.c_str());
  else
    std::fprintf(stderr, "obs: wrote %s\n", path.c_str());
}

}  // namespace starring::obs
