// Plain-text serialization of embeddings.
//
// A ring embedding is an artefact worth keeping: the runtime system
// computes it once per fault event and distributes it to every node.
// The format is line-oriented and versioned:
//
//   starring-embedding v1
//   n <dim>
//   kind <ring|path>
//   vertex_faults <count>
//   <one permutation per line, 1-based digits, e.g. 2134567>
//   edge_faults <count>
//   <two permutations per line>
//   sequence <length>
//   <vertex ids (Lehmer ranks), whitespace-separated, any wrapping>
//
// read_embedding() validates structure and value ranges; semantic
// validation (is it really a healthy ring?) stays with core/verify.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "perm/permutation.hpp"

namespace starring {

struct EmbeddingFile {
  int n = 0;
  bool is_ring = true;  // false: open path
  FaultSet faults;
  std::vector<VertexId> sequence;
};

/// Serialize to a stream.  Returns false on stream failure.
bool write_embedding(std::ostream& os, const EmbeddingFile& e);

/// Parse; returns nullopt (with a short reason in *error if non-null)
/// on malformed input.
std::optional<EmbeddingFile> read_embedding(std::istream& is,
                                            std::string* error = nullptr);

// --- Service line protocol -------------------------------------------
//
// The embedding service (src/service) speaks a versioned line protocol
// over stdio or TCP, one record per request/response, reusing the
// EmbeddingFile conventions (1-based permutation literals, whitespace-
// separated vertex ids).  Records are terminated by an `end` line so a
// stream of them is self-framing:
//
//   starring-request v1          starring-response v1
//   id <u64>                     id <u64>
//   n <dim>                      status <ok|error|rejected|
//   vertex_faults <count>                timeout|throttled>
//   <one permutation per line>   [reason <one line>]        (non-ok)
//   edge_faults <count>          [cache <hit|miss>]         (ok)
//   <two permutations per line>  [verified <0|1>]           (ok)
//   verify <0|1>                 [ring <length>]            (ok)
//   [tenant <name>]              [<vertex ids ...>]         (ok)
//   [deadline_ms <ms>]           end
//   [trace <tid> <psid>]
//   end
//
// The deadline_ms, tenant, and trace lines are optional, accepted in
// any order (readers written against the original v1 grammar never
// emitted them).  A positive deadline_ms gives the request a completion budget
// measured from admission; a request still queued or in flight past
// its budget is answered `status timeout`.  The tenant line names the
// accounting principal for per-tenant quotas, fair scheduling, and
// svc.tenant.* metrics (one token, at most 64 chars); requests without
// one are bucketed into the `default` tenant — omitting the line never
// bypasses quotas.  `status throttled` reports a tenant whose token
// bucket is exhausted; like `rejected` it carries no ring and the
// request may be retried after a backoff.
//
// The trace line carries the distributed-tracing context: a nonzero
// trace id and the parent span id the receiver's root span should link
// under (0 = root of the trace).  The proxy stamps one per forwarded
// request so a shard's `svc.request` span parents under the proxy's
// `proxy.forward` attempt span; clients can originate ids themselves
// (starring-cli --trace).  A `trace 0 ...` line is a framing error —
// trace id 0 is the "no trace" sentinel and must stay unambiguous.
//
// Out-of-band commands ride the same request stream as bare lines,
// answered inline (ahead of any still-pending embedding responses):
//
//   STATS          live metrics snapshot, answered with a self-framing
//                  stats record carrying Prometheus text exposition:
//                      starring-stats v1
//                      lines <count>
//                      <count body lines, verbatim promtext>
//                      end
//   PING           liveness probe, answered with the single line `PONG`
//   FAIL <config>  arm/disarm fault-injection sites (util/failpoint.hpp
//                  grammar; `FAIL clear` disarms all), answered with
//                  `FAIL ok` or `FAIL bad <reason>` on one line
//   HEALTH         shard identity + cache probe (the starring-proxy
//                  health poller), answered with a self-framing
//                  starring-health v1 record (see HealthInfo below)
//   TRACE          drain the process's span flight recorder, answered
//                  with a self-framing starring-trace v1 record (see
//                  TraceDump below); an empty record when tracing is
//                  disabled
//   SLOW           the proxy's slow-request flight recorder, answered
//                  with a self-framing starring-stats v1 record whose
//                  body is one text report per retained slow request
//                  (shards answer an empty report)
//   MEMBERS        the process's live membership view, answered with a
//                  self-framing starring-membership v1 record (see
//                  MembershipRecord below); processes without a
//                  membership agent answer an empty record (epoch 0)
//   LEAVE          graceful departure: answered `LEAVE ok` on one
//                  line, then the process announces its leave to the
//                  cluster, drains, and exits cleanly — peers remove
//                  it from the ring without suspicion or breakers
//
// One more record type rides the request stream: `starring-seed v1`,
// the proxy's read-through replication push.  It carries a canonical
// class key and its canonical ring so a replica shard can warm its
// cache without recomputing (EmbedService::seed_cache):
//
//   starring-seed v1
//   n <dim>
//   key <canonical class key, one token>
//   ring <length>
//   <vertex ids ...>
//   end
//
// answered with the single line `SEED ok` or `SEED bad <reason>`.
//
// Finally, `starring-gossip v1` records (the membership layer's SWIM
// probes — see the membership section below) also ride the request
// stream, answered with a gossip ack/nack record, or with a
// starring-membership v1 snapshot for `kind join`.

/// What a parsed request asks for: an embedding, one of the bare
/// command lines (`STATS`, `PING`, `FAIL <config>`, `HEALTH`, `TRACE`,
/// `SLOW`, `MEMBERS`, `LEAVE`), a replication seed record, or a
/// membership gossip message.
enum class RequestKind {
  kEmbed,
  kStats,
  kPing,
  kFail,
  kHealth,
  kSeed,
  kTrace,
  kSlow,
  kGossip,
  kMembers,
  kLeave
};

struct GossipMessage;  // defined with the membership records below

struct ServiceRequest {
  RequestKind kind = RequestKind::kEmbed;
  /// Caller-chosen correlation id, echoed on the response.
  std::uint64_t id = 0;
  int n = 0;
  FaultSet faults;
  /// Ask the service to run the independent verifier on the response
  /// ring before sending it (hits are additionally verified when the
  /// daemon runs with --verify-on-hit).
  bool verify = false;
  /// Completion budget in milliseconds, measured from admission; 0
  /// means no deadline.  A request past its budget is shed from the
  /// queue (or its in-flight embedding cooperatively cancelled) and
  /// answered `status timeout`.
  std::int64_t deadline_ms = 0;
  /// Accounting principal for quotas, fair scheduling, and per-tenant
  /// metrics.  Empty on the wire means "the default tenant" — the
  /// service buckets such requests into `default` rather than letting
  /// them bypass quotas.
  std::string tenant;
  /// Distributed-tracing context (the optional `trace` line).  A
  /// nonzero trace_id asks the receiver to record its spans under that
  /// trace, rooting them at parent_span_id (0 = root).  0/0 means "no
  /// propagated context" — the receiver mints its own ids.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Payload of a `FAIL <config>` command (kind == kFail only).
  std::string fail_config;
  /// Canonical class key of a seed record (kind == kSeed only; n above
  /// is the seed's dimension and seed_ring its canonical ring).
  std::string seed_key;
  std::vector<VertexId> seed_ring;
  /// Parsed gossip message (kind == kGossip only).  Held by pointer so
  /// the common embed path does not pay for the vectors inside, and so
  /// ServiceRequest stays cheaply copyable.
  std::shared_ptr<GossipMessage> gossip;
};

/// Longest canonical-class key accepted in a seed record.  Canonical
/// keys are short (one char per dimension plus hex fault bits); the cap
/// just stops a garbage frame from growing an unbounded token.
inline constexpr std::size_t kMaxSeedKeyLen = 256;

/// Longest tenant name accepted on the wire; longer tokens are a
/// framing error (tenant names become metric names — unbounded ones
/// would let a client grow the registry without limit).
inline constexpr std::size_t kMaxTenantLen = 64;

enum class ServiceStatus { kOk, kError, kRejected, kTimeout, kThrottled };

struct ServiceResponse {
  std::uint64_t id = 0;
  ServiceStatus status = ServiceStatus::kError;
  /// Whether the canonical embedding came out of the result cache.
  bool cache_hit = false;
  /// Whether the service verified the ring before responding.
  bool verified = false;
  /// The healthy ring in the caller's frame (ok responses only).
  std::vector<VertexId> ring;
  /// Failure reason (non-ok responses only; single line).
  std::string reason;
};

bool write_request(std::ostream& os, const ServiceRequest& r);
bool write_response(std::ostream& os, const ServiceResponse& r);

/// Parse one record.  Clean end-of-stream before the header yields
/// nullopt with *error set to "" — that is how a daemon distinguishes
/// an orderly shutdown from a framing error (non-empty *error).
std::optional<ServiceRequest> read_request(std::istream& is,
                                           std::string* error = nullptr);
std::optional<ServiceResponse> read_response(std::istream& is,
                                             std::string* error = nullptr);

/// Frame `body` (any text, normally Prometheus exposition) as a
/// starring-stats v1 record.  A missing trailing newline is supplied.
bool write_stats(std::ostream& os, const std::string& body);

/// Parse one stats record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<std::string> read_stats(std::istream& is,
                                      std::string* error = nullptr);

// --- cluster health probe --------------------------------------------
//
// A shard answers the bare `HEALTH` line with:
//
//   starring-health v1
//   shard <id>
//   epoch <u64>
//   cache_entries <u64>
//   cache_hits <u64>
//   cache_misses <u64>
//   end
//
// shard/epoch let the proxy detect a process serving under the wrong
// identity or an out-of-date shard map; the cache numbers feed
// cluster-level hit-rate accounting without a full STATS scrape.
// starring-proxy answers HEALTH as well, reporting shard -1 (it is a
// router, not a shard) and its shard map's epoch.

// Two optional trailing lines (any order, accepted but not required,
// so PR 8 readers still parse a PR 9 record and vice versa) extend the
// probe with liveness texture:
//
//   uptime_ms <u64>     wall ms since the process's trace epoch
//   inflight <u64>      embedding requests admitted but not yet
//                       answered (queue + in flight)

struct HealthInfo {
  int shard_id = -1;
  std::uint64_t epoch = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t uptime_ms = 0;
  std::uint64_t inflight = 0;
};

bool write_health(std::ostream& os, const HealthInfo& h);

/// Parse one health record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<HealthInfo> read_health(std::istream& is,
                                      std::string* error = nullptr);

// --- remote trace drain ----------------------------------------------
//
// A process answers the bare `TRACE` line with its span flight
// recorder, drained but not cleared (TRACE is a read, not a reset):
//
//   starring-trace v1
//   process <label, one token>
//   epoch_ns <u64>
//   dropped <u64>
//   spans <count>
//   <trace> <span> <parent> <start_ns> <dur_ns> <tid> <name>   x count
//   end
//
// `process` names the row the span lands on in a merged Perfetto file
// (`proxy`, `shard-0`, ...).  `epoch_ns` is the process's trace epoch
// as raw CLOCK_MONOTONIC nanoseconds — processes of one boot share
// that clock, so the merger rebases each dump by (epoch_ns - min
// epoch_ns) to put every process on one timeline.  `dropped` is the
// ring-overflow total at drain time (trace.dropped_spans), so a
// truncated dump is detectable.  A span name is one token (recorder
// names are dot-separated identifiers); an empty name is written as
// the `-` placeholder.

struct TraceDump {
  std::string process;
  std::uint64_t epoch_ns = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::trace::SpanRecord> spans;
};

/// Longest process label / span name token accepted on the wire.
inline constexpr std::size_t kMaxTraceTokenLen = 64;
/// Most spans accepted in one trace record (64 rings of the max
/// per-thread capacity; far above anything real, small enough that a
/// garbage count cannot drive an unbounded parse loop).
inline constexpr std::size_t kMaxTraceSpans = std::size_t{1} << 26;

bool write_trace(std::ostream& os, const TraceDump& d);

/// Parse one trace record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<TraceDump> read_trace(std::istream& is,
                                    std::string* error = nullptr);

/// Render several per-process trace dumps as one Chrome/Perfetto
/// trace_event document: a process_name metadata row per dump (pid =
/// dump index) and every span as an "X" event with its timestamps
/// rebased onto the earliest dump's epoch.  Returns false on stream
/// failure.
bool write_merged_chrome_trace(std::ostream& os,
                               const std::vector<TraceDump>& dumps);

// --- cluster membership gossip ---------------------------------------
//
// The membership layer (cluster/membership.hpp) speaks SWIM over the
// same request stream every other record rides.  A member is
// identified by its listen endpoint ("HOST:PORT"); shard_id is an
// attribute (-1 marks an observer such as the proxy, which gossips but
// carries no keys), and incarnation is the member's self-asserted
// version number — the refutation mechanism: a member that learns it
// is suspected re-announces itself alive with a higher incarnation,
// and receivers order conflicting claims by (incarnation, state
// precedence).
//
//   starring-gossip v1
//   kind <ping|ping-req|ack|nack|join|leave>
//   from <host:port> <shard-id> <incarnation> <state>
//   [target <host:port>]                        (ping-req only)
//   updates <count>
//   update <host:port> <shard-id> <incarnation> <state>   x count
//   end
//
// `from` is the sender's own member record (state `left` on a leave
// announcement, `alive` otherwise); `updates` piggybacks recently
// changed member records, the dissemination half of SWIM.  A ping is
// answered with an ack (whose updates piggyback the receiver's view —
// including, crucially, a refutation of any suspicion the ping just
// delivered about the receiver).  A ping-req asks the receiver to
// probe `target` on the sender's behalf and answer ack (target
// responded) or nack.  A join is answered with a full membership
// snapshot instead:
//
//   starring-membership v1
//   epoch <u64>
//   replication <int>
//   vnodes <int>
//   members <count>
//   member <host:port> <shard-id> <incarnation> <state>   x count
//   end
//
// epoch is the answering member's current map epoch; replication and
// vnodes are the cluster's map parameters, which a joiner adopts so
// every member builds identical rings from identical member sets.

enum class MemberWireState { kAlive, kSuspect, kDead, kLeft };

/// One token per state on the wire; parse_member_state is the inverse.
const char* member_state_name(MemberWireState s);
std::optional<MemberWireState> parse_member_state(std::string_view token);

struct MemberRecord {
  std::string addr;  // "HOST:PORT", the member's identity
  int shard_id = -1;  // -1: an observer (proxy) — gossips, owns no keys
  std::uint64_t incarnation = 0;
  MemberWireState state = MemberWireState::kAlive;
};

struct GossipMessage {
  enum class Kind { kPing, kPingReq, kAck, kNack, kJoin, kLeave };
  Kind kind = Kind::kPing;
  MemberRecord from;
  std::string target;  // ping-req only: the member to probe
  std::vector<MemberRecord> updates;  // piggybacked deltas
};

struct MembershipRecord {
  std::uint64_t epoch = 0;
  int replication = 2;
  int vnodes = 128;
  std::vector<MemberRecord> members;
};

/// Longest member address token accepted on the wire (a loopback
/// "HOST:PORT" is far shorter; the cap stops a garbage frame from
/// growing an unbounded token).
inline constexpr std::size_t kMaxMemberAddrLen = 128;
/// Most member records accepted in one gossip or membership frame —
/// matches the shard-map parser's deployment-size cap.
inline constexpr std::size_t kMaxMemberRecords = 4096;

bool write_gossip(std::ostream& os, const GossipMessage& m);
bool write_membership(std::ostream& os, const MembershipRecord& m);

/// Parse one record; same clean-EOF vs malformed contract as
/// read_request.
std::optional<GossipMessage> read_gossip(std::istream& is,
                                         std::string* error = nullptr);
std::optional<MembershipRecord> read_membership(std::istream& is,
                                                std::string* error = nullptr);

}  // namespace starring
