// Failpoints: named fault-injection sites for the serving stack.
//
// The paper's subject is computing under faults; this layer extends the
// fault model from the topology to the runtime itself (the discipline
// DAOS applies to its storage paths): every failure branch in the
// service — cache insert lost, embedding refused, a stage throwing, a
// response delayed — can be triggered deliberately, so chaos tests
// exercise the recovery code instead of waiting for production to.
//
// A site is one macro invocation:
//
//   if (FAILPOINT("svc.cache_insert")) return;   // `error` mode fires
//
// Evaluating a site consults the registry: in `error` mode it returns
// true (the caller takes its injected-failure branch), in `throw` mode
// it throws FailpointError, in `delay` mode it sleeps then returns
// false.  Unarmed sites cost one relaxed atomic load and a branch;
// configuring with -DSTARRING_FAILPOINTS=OFF compiles every site to a
// constant false (zero cost, dead-branch eliminated).
//
// Activation spec (env STARRING_FAILPOINTS at startup, the daemon FAIL
// protocol command at runtime, or fail::set in tests):
//
//   config   := entry (',' entry)*  |  "clear"
//   entry    := site '=' mode ( '@' modifier )*
//   mode     := "off" | "error" | "throw" | "delay:" <ms>
//   modifier := "once"            fire on the first hit only
//             | "every:" <N>      fire on every Nth evaluation
//             | "p:" <prob>       fire with probability prob in [0,1]
//                                 (deterministic per-site PRNG, seeded
//                                 from the site name + STARRING_FAILPOINT_SEED)
//
// e.g. STARRING_FAILPOINTS="svc.embed=error@p:0.2,svc.cache_insert=throw@once"
//
// Every firing increments svc.failpoints_fired plus a per-site counter
// fail.<site>, so chaos harnesses can reconcile injected faults with
// observed outcomes.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starring::failpoint {

/// Thrown by sites armed in `throw` mode.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint: " + site) {}
};

#if defined(STARRING_FAILPOINTS_DISABLED)

inline constexpr bool compiled_in() { return false; }
inline bool set(std::string_view, std::string* error = nullptr) {
  if (error != nullptr) *error = "failpoints compiled out";
  return false;
}
inline void clear() {}
inline std::vector<std::pair<std::string, std::string>> list() { return {}; }

#define FAILPOINT(site) (false)

#else

/// True when the build contains live sites (tests skip otherwise).
inline constexpr bool compiled_in() { return true; }

/// Apply a config string (one entry or a comma-separated list; the
/// word "clear" disarms everything).  Returns false with *error set on
/// a malformed entry; well-formed entries before the bad one stay
/// applied.
bool set(std::string_view config, std::string* error = nullptr);

/// Disarm every site.
void clear();

/// The armed sites as (site, spec) pairs, for diagnostics.
std::vector<std::pair<std::string, std::string>> list();

namespace detail {

/// Process-wide count of armed sites; the macro's fast-path gate.
bool any_armed();

/// Slow path: look the site up and act on its mode.  Returns true when
/// an `error`-mode site fired.
bool eval(std::string_view site);

}  // namespace detail

#define FAILPOINT(site)                       \
  (::starring::failpoint::detail::any_armed() &&   \
   ::starring::failpoint::detail::eval(site))

#endif  // STARRING_FAILPOINTS_DISABLED

}  // namespace starring::failpoint
