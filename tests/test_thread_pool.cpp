// Regression tests for the persistent worker pool behind parallel_for
// and parallel_reduce: exception delivery, reuse across regions, nested
// regions, and concurrent user threads.  The pool is process-wide, so
// every test here shares (and stresses) the same instance.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace starring {
namespace {

TEST(ThreadPool, RunCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(512);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  ThreadPool::instance().run(
      16, 480, 4,
      [](void* c, std::size_t lo, std::size_t hi, unsigned) {
        auto* h = static_cast<Ctx*>(c)->hits;
        for (std::size_t i = lo; i < hi; ++i)
          (*h)[i].fetch_add(1, std::memory_order_relaxed);
      },
      &ctx, nullptr);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), (i >= 16 && i < 480) ? 1 : 0) << i;
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  // The same pool must serve back-to-back regions without leaking
  // region state; each region sums a different range.
  for (int round = 0; round < 50; ++round) {
    const auto count = static_cast<std::size_t>(100 + round);
    const auto sum = parallel_reduce(
        std::size_t{0}, count, 4, std::uint64_t{0},
        [](std::size_t i) { return static_cast<std::uint64_t>(i); },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, count * (count - 1) / 2) << round;
  }
}

TEST(ThreadPool, PropagatesSingleWorkerException) {
  try {
    parallel_for(0, 1000, 8, [](std::size_t i) {
      if (i == 421) throw std::runtime_error("boom at 421");
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 421");
  }
}

TEST(ThreadPool, DeliversExactlyOneExceptionWhenAllThrow) {
  int caught = 0;
  try {
    parallel_for(0, 128, 8, [](std::size_t i) {
      throw std::runtime_error("lane " + std::to_string(i));
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(ThreadPool, NoCrossRegionPoisoningAfterThrow) {
  // A failed region must leave the pool fully serviceable: the next
  // regions run to completion and deliver correct results.
  EXPECT_THROW(
      parallel_for(0, 64, 4,
                   [](std::size_t) { throw std::runtime_error("poison"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  parallel_for(0, 1000, 4, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000);
  const auto sum = parallel_reduce(
      std::size_t{1}, std::size_t{11}, 4, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 55u);
}

TEST(ThreadPool, CancellationStopsHandingOutChunks) {
  std::atomic<bool> cancel{false};
  std::atomic<std::size_t> executed{0};
  struct Ctx {
    std::atomic<bool>* cancel;
    std::atomic<std::size_t>* executed;
  } ctx{&cancel, &executed};
  const std::size_t total = std::size_t{1} << 20;
  ThreadPool::instance().run(
      0, total, 4,
      [](void* c, std::size_t lo, std::size_t hi, unsigned) {
        auto* x = static_cast<Ctx*>(c);
        x->executed->fetch_add(hi - lo, std::memory_order_relaxed);
        x->cancel->store(true, std::memory_order_relaxed);
      },
      &ctx, &cancel);
  // Each of the <= 4 lanes runs at most one chunk before observing the
  // flag; a chunk is total / (lanes * 8) indices.
  EXPECT_LT(executed.load(), total / 2);
}

TEST(ThreadPool, NestedRegionRunsInline) {
  // A parallel_for issued from inside a pool worker must not deadlock
  // re-entering the pool; it runs inline on that worker.
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  std::atomic<int> nested_in_worker{0};
  parallel_for(0, 8, 4, [&](std::size_t) {
    outer.fetch_add(1, std::memory_order_relaxed);
    const bool in_worker = ThreadPool::in_worker();
    parallel_for(0, 16, 4, [&](std::size_t) {
      inner.fetch_add(1, std::memory_order_relaxed);
      if (in_worker) {
        // The nested region must not have migrated to another worker.
        EXPECT_TRUE(ThreadPool::in_worker());
      }
    });
    if (in_worker) nested_in_worker.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ThreadPool, ConcurrentUserThreadsSerializeSafely) {
  // Two user threads issuing regions at once: the pool serializes them;
  // both must complete with exact coverage.
  std::vector<std::atomic<int>> a(2048), b(2048);
  std::thread t1([&] {
    for (int round = 0; round < 20; ++round)
      parallel_for(0, a.size(), 4, [&](std::size_t i) {
        a[i].fetch_add(1, std::memory_order_relaxed);
      });
  });
  std::thread t2([&] {
    for (int round = 0; round < 20; ++round)
      parallel_for(0, b.size(), 4, [&](std::size_t i) {
        b[i].fetch_add(1, std::memory_order_relaxed);
      });
  });
  t1.join();
  t2.join();
  for (auto& h : a) EXPECT_EQ(h.load(), 20);
  for (auto& h : b) EXPECT_EQ(h.load(), 20);
}

TEST(ThreadPool, WorkersSpawnOnDemandAndPersist) {
  parallel_for(0, 1024, 3, [](std::size_t) {});
  const unsigned after_first = ThreadPool::instance().workers();
  EXPECT_GE(after_first, 2u);  // lanes - 1 workers for the region above
  parallel_for(0, 1024, 2, [](std::size_t) {});
  // A smaller region must not shrink the pool.
  EXPECT_GE(ThreadPool::instance().workers(), after_first);
}

TEST(ThreadPool, InWorkerFalseOnUserThreads) {
  EXPECT_FALSE(ThreadPool::in_worker());
  std::thread t([] { EXPECT_FALSE(ThreadPool::in_worker()); });
  t.join();
}

}  // namespace
}  // namespace starring
