file(REMOVE_RECURSE
  "CMakeFiles/bench_pancyclic.dir/bench_pancyclic.cpp.o"
  "CMakeFiles/bench_pancyclic.dir/bench_pancyclic.cpp.o.d"
  "bench_pancyclic"
  "bench_pancyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pancyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
