#include "service/canonical.hpp"

#include <algorithm>
#include <array>
#include <cstdint>

#include "perm/simd.hpp"

namespace starring {

namespace {

void append_hex(std::string* out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out->push_back(kDigits[(v >> shift) & 0xF]);
}

/// Fixed-width serialization of (n, faults); lexicographic order on the
/// strings is a total order on fault sets, which is all the canonical
/// minimum needs.
std::string serialize(int n, const FaultSet& faults) {
  auto vf = faults.vertex_faults();
  std::vector<std::uint64_t> vbits;
  vbits.reserve(vf.size());
  for (const Perm& p : vf) vbits.push_back(p.bits());
  std::sort(vbits.begin(), vbits.end());

  auto ef = faults.edge_faults();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ebits;
  ebits.reserve(ef.size());
  for (const EdgeFault& e : ef) ebits.emplace_back(e.u.bits(), e.v.bits());
  std::sort(ebits.begin(), ebits.end());

  std::string out;
  out.reserve(4 + 17 * vbits.size() + 34 * ebits.size());
  out.push_back(static_cast<char>('a' + n));  // n <= kMaxN = 16
  out.push_back('V');
  for (const std::uint64_t b : vbits) append_hex(&out, b);
  out.push_back('E');
  for (const auto& [u, v] : ebits) {
    append_hex(&out, u);
    append_hex(&out, v);
  }
  return out;
}

}  // namespace

CanonicalForm canonicalize(int n, const FaultSet& faults) {
  // Pivot candidates: every relabeling that sends a fault vertex (or a
  // faulty-edge endpoint) to the identity.  Under a relabeling h the
  // candidate set maps to itself composed with h⁻¹, so the minimum
  // below is a class invariant.
  std::vector<Perm> pivots = faults.vertex_faults();
  if (pivots.empty()) {
    for (const EdgeFault& e : faults.edge_faults()) {
      pivots.push_back(e.u);
      pivots.push_back(e.v);
    }
  }

  // The caller's own frame is NOT a candidate when pivots exist — it is
  // not relabeling-equivariant (two members of one class would then
  // compete with different extra candidates and could pick different
  // minima).  Only the fault-free class keeps the identity.
  CanonicalForm best;
  best.to_canonical = Perm::identity(n);
  if (pivots.empty()) {
    best.faults = faults;
    best.key = serialize(n, faults);
    return best;
  }
  bool first = true;
  for (const Perm& pivot : pivots) {
    const Perm g = inverse_of(pivot);
    FaultSet image = faults.relabeled(g);
    std::string key = serialize(n, image);
    if (first || key < best.key) {
      first = false;
      best.to_canonical = g;
      best.faults = std::move(image);
      best.key = std::move(key);
    }
  }
  return best;
}

std::vector<VertexId> relabel_ring(std::span<const VertexId> ring,
                                   const Perm& g, int n) {
  std::vector<VertexId> out(ring.size());
  // Fault-free requests canonicalize to the identity frame; skip the
  // round trip entirely.
  if (g.bits() == Perm::identity(n).bits()) {
    std::copy(ring.begin(), ring.end(), out.begin());
    return out;
  }
  // unrank -> relabel -> rank as three batched nibble-parallel kernels
  // (perm/simd.hpp) over fixed chunks: the scratch stays L1-resident
  // and rings of hundreds of thousands of vertices never allocate a
  // second packed copy of themselves.
  constexpr std::size_t kChunk = 1024;
  std::array<std::uint64_t, kChunk> packed;
  std::array<std::uint64_t, kChunk> relabeled;
  const std::uint64_t g_bits = g.bits();
  for (std::size_t off = 0; off < ring.size(); off += kChunk) {
    const std::size_t count = std::min(kChunk, ring.size() - off);
    simd::batch_unrank(ring.data() + off, count, n, packed.data());
    simd::batch_relabel(g_bits, packed.data(), count, n, relabeled.data());
    simd::batch_rank(relabeled.data(), count, n, out.data() + off);
  }
  return out;
}

}  // namespace starring
