// Tests for the embedding service: cache semantics (bit-identical
// hits, cross-relabeling sharing, eviction), the batched scheduler
// (submit/drain, callbacks, backpressure rejection), verification
// plumbing, and failure surfaces.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <vector>

#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "stargraph/star_graph.hpp"
#include "util/failpoint.hpp"

namespace starring {
namespace {

ServiceRequest make_request(std::uint64_t id, int n, FaultSet faults,
                            bool verify = false) {
  ServiceRequest r;
  r.id = id;
  r.n = n;
  r.faults = std::move(faults);
  r.verify = verify;
  return r;
}

TEST(EmbedService, ProcessNowHitIsBitIdentical) {
  const StarGraph g(6);
  const FaultSet faults = random_vertex_faults(g, 2, /*seed=*/3);
  EmbedService svc;
  const ServiceResponse fresh = svc.process_now(make_request(1, 6, faults));
  ASSERT_EQ(fresh.status, ServiceStatus::kOk);
  EXPECT_FALSE(fresh.cache_hit);
  const ServiceResponse hit = svc.process_now(make_request(2, 6, faults));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  // The acceptance bar: a hit's ring is bit-identical to the fresh
  // computation's, because both were computed in the canonical frame
  // and relabeled with the same map.
  EXPECT_EQ(hit.ring, fresh.ring);
}

TEST(EmbedService, EquivalentRelabeledRequestsShareTheCache) {
  const int n = 6;
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, 2, /*seed=*/9);
  EmbedService svc;
  ASSERT_EQ(svc.process_now(make_request(1, n, faults)).status,
            ServiceStatus::kOk);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Perm h = Perm::unrank(rng() % factorial(n), n);
    const FaultSet moved = faults.relabeled(h);
    const ServiceResponse r =
        svc.process_now(make_request(10 + trial, n, moved, /*verify=*/true));
    ASSERT_EQ(r.status, ServiceStatus::kOk) << r.reason;
    EXPECT_TRUE(r.cache_hit) << "relabeled instance missed the cache";
    EXPECT_TRUE(r.verified);
    const RingReport rep = verify_healthy_ring(g, moved, r.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
  }
}

TEST(EmbedService, SubmitDrainNextResponse) {
  const StarGraph g(5);
  EmbedService svc;
  std::mt19937_64 rng(29);
  const int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const int nf = static_cast<int>(rng() % 3);  // 0..2 = n-3
    ASSERT_TRUE(svc.submit(
        make_request(i, 5, random_vertex_faults(g, nf, rng()), true)));
  }
  svc.drain();
  EXPECT_FALSE(svc.submit(make_request(999, 5, FaultSet{})))
      << "submit after drain must be refused";
  std::map<std::uint64_t, ServiceResponse> got;
  while (auto r = svc.next_response()) got.emplace(r->id, std::move(*r));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, r] : got) {
    EXPECT_EQ(r.status, ServiceStatus::kOk) << "id=" << id << ": " << r.reason;
    EXPECT_TRUE(r.verified);
  }
}

TEST(EmbedService, CallbacksRunForEveryRequest) {
  const StarGraph g(5);
  EmbedService svc;
  std::atomic<int> done{0};
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(svc.submit(
        make_request(i, 5, random_vertex_faults(g, i % 3, i)),
        [&](ServiceResponse r) {
          done.fetch_add(1);
          if (r.status == ServiceStatus::kOk) ok.fetch_add(1);
        }));
  }
  svc.drain();
  while (svc.next_response()) {
  }
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(ok.load(), 16);
}

TEST(EmbedService, MixedDimensionsBatchCorrectly) {
  // Batches are same-n; interleaved dimensions must still all complete.
  EmbedService svc;
  for (int i = 0; i < 18; ++i) {
    const int n = 4 + i % 3;  // 4,5,6 interleaved
    const StarGraph g(n);
    ASSERT_TRUE(svc.submit(
        make_request(i, n, random_vertex_faults(g, i % 2, i), true)));
  }
  svc.drain();
  int count = 0;
  while (auto r = svc.next_response()) {
    EXPECT_EQ(r->status, ServiceStatus::kOk) << r->reason;
    ++count;
  }
  EXPECT_EQ(count, 18);
}

TEST(EmbedService, NonBlockingSubmitRejectsWhenFull) {
  // One-slot queue, one-request batches, and slow n=7 work: keep
  // stuffing without waiting until a rejection is observed.
  ServiceOptions opts;
  opts.queue_depth = 1;
  opts.batch_max = 1;
  EmbedService svc(opts);
  const StarGraph g(7);
  std::mt19937_64 rng(41);
  bool rejected = false;
  for (int i = 0; i < 64 && !rejected; ++i) {
    const FaultSet faults = random_vertex_faults(g, 4, rng());
    rejected = !svc.submit(make_request(i, 7, faults), nullptr,
                           /*wait=*/false);
  }
  EXPECT_TRUE(rejected) << "a one-deep queue never filled under load";
  svc.drain();
  while (svc.next_response()) {
  }
}

TEST(EmbedService, VerifyOnHitMarksResponsesVerified) {
  ServiceOptions opts;
  opts.verify_on_hit = true;
  EmbedService svc(opts);
  const StarGraph g(5);
  const FaultSet faults = random_vertex_faults(g, 1, /*seed=*/7);
  const ServiceResponse fresh = svc.process_now(make_request(1, 5, faults));
  ASSERT_EQ(fresh.status, ServiceStatus::kOk);
  EXPECT_FALSE(fresh.verified) << "misses only verify when asked";
  const ServiceResponse hit = svc.process_now(make_request(2, 5, faults));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.verified);
}

TEST(EmbedService, UnsupportedDimensionIsAnErrorNotACrash) {
  EmbedService svc;
  const ServiceResponse r = svc.process_now(make_request(1, 2, FaultSet{}));
  EXPECT_EQ(r.status, ServiceStatus::kError);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_TRUE(r.ring.empty());
}

TEST(EmbedService, TooManyFaultsReportsEmbedFailure) {
  // n - 2 vertex faults is outside the Theorem-1 guarantee; the
  // pipeline may fail, and the service must answer with kError rather
  // than a bogus ring.  (With n = 4 and 2 faults placed adjacent to
  // each other the 4-cycle-free structure makes failure reliable.)
  const int n = 4;
  const StarGraph g(n);
  EmbedService svc;
  FaultSet faults;
  // Fault every even permutation's first two: id and one neighbor.
  const Perm id = Perm::identity(n);
  faults.add_vertex(id);
  for (const Perm& q : neighbors(id)) faults.add_vertex(q);
  const ServiceResponse r = svc.process_now(make_request(1, n, faults));
  if (r.status == ServiceStatus::kOk) {
    const RingReport rep = verify_healthy_ring(g, faults, r.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
  } else {
    EXPECT_FALSE(r.reason.empty());
  }
}

TEST(EmbedOptionsCancel, PreCancelledEmbedReturnsNothing) {
  // The cooperative flag the deadline watchdog flips: already set, the
  // search must stop at its first checkpoint instead of computing.
  const StarGraph g(7);
  const FaultSet faults = random_vertex_faults(g, 3, /*seed=*/11);
  std::atomic<bool> cancel{true};
  EmbedOptions opts;
  opts.cancel = &cancel;
  EXPECT_FALSE(embed_longest_ring(g, faults, opts).has_value());
}

TEST(EmbedServiceDeadline, ExpiredInQueueIsShedAsTimeout) {
  // One-request batches behind a deterministically slow first batch
  // (delay-mode failpoint): the deadlined n=5 requests expire while
  // queued and must be shed with kTimeout, never silently dropped.
  if (!failpoint::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(failpoint::set("svc.batch=delay:50@once"));
  struct Cleaner {
    ~Cleaner() { failpoint::clear(); }
  } cleaner;
  ServiceOptions opts;
  opts.batch_max = 1;
  EmbedService svc(opts);
  const StarGraph g7(7);
  ASSERT_TRUE(svc.submit(
      make_request(0, 7, random_vertex_faults(g7, 4, /*seed=*/5))));
  const StarGraph g5(5);
  const int kDeadlined = 4;
  for (int i = 1; i <= kDeadlined; ++i) {
    ServiceRequest r =
        make_request(i, 5, random_vertex_faults(g5, 1, /*seed=*/i));
    r.deadline_ms = 1;
    ASSERT_TRUE(svc.submit(std::move(r)));
  }
  svc.drain();
  std::map<std::uint64_t, ServiceResponse> got;
  while (auto r = svc.next_response()) got.emplace(r->id, std::move(*r));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kDeadlined + 1))
      << "every request must reach a terminal status";
  EXPECT_EQ(got.at(0).status, ServiceStatus::kOk) << got.at(0).reason;
  for (int i = 1; i <= kDeadlined; ++i) {
    EXPECT_EQ(got.at(i).status, ServiceStatus::kTimeout)
        << "id=" << i << ": " << got.at(i).reason;
    EXPECT_TRUE(got.at(i).ring.empty());
    EXPECT_FALSE(got.at(i).reason.empty());
  }
}

TEST(EmbedServiceDeadline, DrainStillAnswersExpiredRequests) {
  // Satellite of the reliability layer: drain() racing queued deadlines
  // must not lose responses — drain processes everything queued, and
  // expired entries become timeouts.
  ServiceOptions opts;
  opts.batch_max = 1;
  EmbedService svc(opts);
  const StarGraph g7(7);
  ASSERT_TRUE(svc.submit(
      make_request(0, 7, random_vertex_faults(g7, 4, /*seed=*/13))));
  const StarGraph g5(5);
  for (int i = 1; i <= 3; ++i) {
    ServiceRequest r =
        make_request(i, 5, random_vertex_faults(g5, 1, /*seed=*/40 + i));
    r.deadline_ms = 1;
    ASSERT_TRUE(svc.submit(std::move(r)));
  }
  svc.drain();  // immediately: deadlines expire during the drain
  int terminal = 0;
  while (auto r = svc.next_response()) {
    ++terminal;
    EXPECT_TRUE(r->status == ServiceStatus::kOk ||
                r->status == ServiceStatus::kTimeout)
        << "id=" << r->id << " status not terminal-clean: " << r->reason;
  }
  EXPECT_EQ(terminal, 4);
}

TEST(EmbedServiceDeadline, ProcessNowHonorsBudgetAroundSlowEmbed) {
  if (!failpoint::compiled_in())
    GTEST_SKIP() << "failpoints compiled out";
  // Delay the pipeline past the request budget after the ring exists
  // (the insert site runs post-embed): the response must be kTimeout
  // even though a ring was computed (strict semantics).
  ASSERT_TRUE(failpoint::set("svc.cache_insert=delay:60@once"));
  EmbedService svc;
  const StarGraph g(5);
  ServiceRequest req =
      make_request(1, 5, random_vertex_faults(g, 1, /*seed=*/3));
  req.deadline_ms = 20;
  const ServiceResponse r = svc.process_now(req);
  failpoint::clear();
  EXPECT_EQ(r.status, ServiceStatus::kTimeout) << r.reason;
  // The computed ring stayed cached: the same request without a budget
  // is now a hit.
  const ServiceResponse again =
      svc.process_now(make_request(2, 5, random_vertex_faults(g, 1, 3)));
  EXPECT_EQ(again.status, ServiceStatus::kOk) << again.reason;
  EXPECT_TRUE(again.cache_hit);
}

TEST(EmbedServiceFailpoints, InjectedEmbedFailureIsAnErrorResponse) {
  if (!failpoint::compiled_in())
    GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(failpoint::set("svc.embed=error@once"));
  EmbedService svc;
  const StarGraph g(5);
  const FaultSet faults = random_vertex_faults(g, 1, /*seed=*/21);
  const ServiceResponse r = svc.process_now(make_request(1, 5, faults));
  failpoint::clear();
  EXPECT_EQ(r.status, ServiceStatus::kError);
  EXPECT_FALSE(r.reason.empty());
  // @once: the next attempt computes normally.
  const ServiceResponse ok = svc.process_now(make_request(2, 5, faults));
  EXPECT_EQ(ok.status, ServiceStatus::kOk) << ok.reason;
}

TEST(EmbedServiceFailpoints, BatchThrowStillAnswersEveryRequest) {
  if (!failpoint::compiled_in())
    GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(failpoint::set("svc.batch=throw@once"));
  EmbedService svc;
  const StarGraph g(5);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(svc.submit(
        make_request(i, 5, random_vertex_faults(g, i % 3, i))));
  svc.drain();
  int count = 0;
  while (auto r = svc.next_response()) {
    ++count;
    EXPECT_TRUE(r->status == ServiceStatus::kOk ||
                r->status == ServiceStatus::kError);
  }
  failpoint::clear();
  EXPECT_EQ(count, 6) << "a thrown batch must still answer its callers";
}

TEST(EmbedServiceFailpoints, LostCacheInsertForcesRecompute) {
  if (!failpoint::compiled_in())
    GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(failpoint::set("svc.cache_insert=error"));
  EmbedService svc;
  const StarGraph g(5);
  const FaultSet faults = random_vertex_faults(g, 1, /*seed=*/33);
  const ServiceResponse first = svc.process_now(make_request(1, 5, faults));
  EXPECT_EQ(first.status, ServiceStatus::kOk) << first.reason;
  const ServiceResponse second = svc.process_now(make_request(2, 5, faults));
  failpoint::clear();
  EXPECT_EQ(second.status, ServiceStatus::kOk) << second.reason;
  EXPECT_FALSE(second.cache_hit) << "insert was dropped; must recompute";
  EXPECT_EQ(second.ring, first.ring) << "recompute stays deterministic";
}

TEST(CanonicalRingCache, LookupInsertAndEvictionBound) {
  CanonicalRingCache cache(/*capacity=*/8);  // 1 entry per shard
  EXPECT_EQ(cache.lookup("absent"), nullptr);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
    cache.insert(keys.back(),
                 std::make_shared<const std::vector<VertexId>>(
                     std::vector<VertexId>{static_cast<VertexId>(i)}));
  }
  // Per-shard LRU keeps the total bounded by capacity.
  EXPECT_LE(cache.size(), 8u);
  // Whatever survived still resolves to its own value.
  int survivors = 0;
  for (int i = 0; i < 64; ++i) {
    if (auto p = cache.lookup(keys[i])) {
      ++survivors;
      ASSERT_EQ(p->size(), 1u);
      EXPECT_EQ((*p)[0], static_cast<VertexId>(i));
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(survivors), cache.size());
}

TEST(CanonicalRingCache, HitRefreshesLruPosition) {
  // Capacity 8 over 8 shards = 1 entry/shard, so two same-shard keys
  // evict each other; with a big per-shard budget a refreshed key
  // outlives later inserts.
  CanonicalRingCache cache(/*capacity=*/16);
  auto ring = [](VertexId v) {
    return std::make_shared<const std::vector<VertexId>>(
        std::vector<VertexId>{v});
  };
  cache.insert("a", ring(1));
  cache.insert("b", ring(2));
  EXPECT_NE(cache.lookup("a"), nullptr);  // refresh "a"
  // Re-insert refreshes rather than duplicating.
  cache.insert("a", ring(3));
  auto p = cache.lookup("a");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ((*p)[0], 3u);
  EXPECT_LE(cache.size(), 16u);
}

TEST(CanonicalRingCache, CapacityIsRespectedExactly) {
  // Regression: the old per-shard budget max(1, capacity/kShards) let
  // capacity < 8 hold up to 8 entries and truncated any capacity not
  // divisible by the shard count (12 held only 8).  The budget must be
  // distributed exactly: under sustained fill of distinct keys, the
  // steady-state size IS the configured capacity.
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4},
                                std::size_t{12}, std::size_t{4096}}) {
    CanonicalRingCache cache(cap);
    EXPECT_EQ(cache.capacity(), cap);
    const std::size_t inserts = cap * 4 + 256;
    for (std::size_t i = 0; i < inserts; ++i)
      cache.insert("fill-" + std::to_string(i),
                   std::make_shared<const std::vector<VertexId>>(
                       std::vector<VertexId>{static_cast<VertexId>(i)}));
    EXPECT_EQ(cache.size(), cap) << "capacity " << cap;
  }
}

TEST(CanonicalRingCache, HotSetSurvivesOnePassScan) {
  // Scan resistance: keys touched again after insertion live in the
  // protected segment; a one-pass scan of fresh keys only ever churns
  // probation, so the hot set outlives a scan far larger than the
  // cache.  Under the old plain LRU the scan evicted everything.
  CanonicalRingCache cache(/*capacity=*/64);
  auto ring = [](VertexId v) {
    return std::make_shared<const std::vector<VertexId>>(
        std::vector<VertexId>{v});
  };
  const int kHot = 8;
  for (int i = 0; i < kHot; ++i)
    cache.insert("hot-" + std::to_string(i), ring(static_cast<VertexId>(i)));
  // Second touch promotes into the protected segment.
  for (int i = 0; i < kHot; ++i)
    ASSERT_NE(cache.lookup("hot-" + std::to_string(i)), nullptr);
  for (int i = 0; i < 1000; ++i)
    cache.insert("scan-" + std::to_string(i), ring(0));
  int survivors = 0;
  for (int i = 0; i < kHot; ++i)
    if (cache.lookup("hot-" + std::to_string(i)) != nullptr) ++survivors;
  EXPECT_GE(survivors, 6) << "hot set evicted by a one-pass scan";
  EXPECT_LE(cache.size(), 64u);
}

TEST(EmbedServiceQoS, QuotaThrottlesAndUntaggedRequestsUseDefaultTenant) {
  ServiceOptions opts;
  opts.tenant_rate = 0.001;  // no meaningful refill within the test
  opts.tenant_burst = 2;
#if !defined(STARRING_OBS_DISABLED)
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const std::int64_t req_before =
      obs::counter("svc.tenant.default.requests").value();
  const std::int64_t thr_before =
      obs::counter("svc.tenant.default.throttled").value();
#endif
  {
    EmbedService svc(opts);
    const StarGraph g(5);
    int ok = 0;
    int throttled = 0;
    for (int i = 0; i < 5; ++i) {
      // No tenant on the request: it must be charged to `default`, not
      // ride quota-free.
      const ServiceResponse r = svc.process_now(
          make_request(i, 5, random_vertex_faults(g, 1, 100 + i)));
      if (r.status == ServiceStatus::kOk) ++ok;
      if (r.status == ServiceStatus::kThrottled) {
        ++throttled;
        EXPECT_EQ(r.reason, "tenant quota exhausted");
      }
    }
    EXPECT_EQ(ok, 2) << "burst of 2 tokens admits exactly 2";
    EXPECT_EQ(throttled, 3);
  }
#if !defined(STARRING_OBS_DISABLED)
  EXPECT_EQ(obs::counter("svc.tenant.default.requests").value() - req_before,
            5);
  EXPECT_EQ(
      obs::counter("svc.tenant.default.throttled").value() - thr_before, 3);
  obs::set_enabled(was);
#endif
}

TEST(EmbedServiceQoS, SubmittedThrottleIsDeliveredAsTerminalResponse) {
  ServiceOptions opts;
  opts.tenant_rate = 0.001;
  opts.tenant_burst = 1;
  EmbedService svc(opts);
  const StarGraph g(5);
  std::atomic<int> ok{0};
  std::atomic<int> throttled{0};
  for (int i = 0; i < 3; ++i) {
    ServiceRequest r = make_request(i, 5, random_vertex_faults(g, 1, i));
    r.tenant = "burst1";
    ASSERT_TRUE(svc.submit(std::move(r), [&](ServiceResponse resp) {
      if (resp.status == ServiceStatus::kOk) ++ok;
      if (resp.status == ServiceStatus::kThrottled) ++throttled;
    })) << "a throttled submit still reached a terminal status";
  }
  svc.drain();
  EXPECT_EQ(svc.next_response(), std::nullopt);  // joins the drain
  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(throttled.load(), 2);
}

TEST(EmbedServiceQoS, DrrBoundsHeavyTenantProgressWhileLightFinishes) {
  if (!failpoint::compiled_in())
    GTEST_SKIP() << "needs the svc.batch delay failpoint";
  // 10:1 skew: a heavy tenant floods 40 requests, a light tenant sends
  // 4.  Deficit-round-robin batch formation must interleave them, so
  // when the light tenant's last response lands the heavy tenant has
  // completed a bounded share — not its whole backlog first (FIFO
  // behaviour).  A per-batch delay lets the full skewed backlog build
  // before scheduling decisions are made.
  ASSERT_TRUE(failpoint::set("svc.batch=delay:30"));
  std::atomic<int> heavy_done{0};
  std::atomic<int> light_done{0};
  std::atomic<int> heavy_at_light_finish{-1};
  {
    ServiceOptions opts;
    opts.batch_max = 4;
    EmbedService svc(opts);
    const StarGraph g(5);
    for (int i = 0; i < 40; ++i) {
      ServiceRequest r =
          make_request(1000 + i, 5, random_vertex_faults(g, 1, 7 * i));
      r.tenant = "heavy";
      ASSERT_TRUE(svc.submit(std::move(r),
                             [&](ServiceResponse) { ++heavy_done; }));
    }
    for (int i = 0; i < 4; ++i) {
      ServiceRequest r =
          make_request(i, 5, random_vertex_faults(g, 1, 9000 + i));
      r.tenant = "light";
      ASSERT_TRUE(svc.submit(std::move(r), [&](ServiceResponse) {
        if (light_done.fetch_add(1) + 1 == 4)
          heavy_at_light_finish.store(heavy_done.load());
      }));
    }
    svc.drain();
    EXPECT_EQ(svc.next_response(), std::nullopt);  // joins the drain
  }
  failpoint::clear();
  EXPECT_EQ(light_done.load(), 4);
  EXPECT_EQ(heavy_done.load(), 40);
  // Batches of 4 alternate 2 heavy / 2 light once both are backlogged;
  // generous slack for requests batched before the light tenant
  // appeared.
  EXPECT_GE(heavy_at_light_finish.load(), 0);
  EXPECT_LE(heavy_at_light_finish.load(), 20)
      << "heavy tenant starved the light one";
}

TEST(EmbedServiceQoS, TenantRegistryCollapsesBeyondMaxTenants) {
  ServiceOptions opts;
  opts.tenant_rate = 0.001;
  opts.tenant_burst = 1;  // 1 token per tenant bucket
  opts.max_tenants = 4;
  EmbedService svc(opts);
  const StarGraph g(5);
  int throttled = 0;
  // Distinct names beyond max_tenants share the `other` bucket: with 1
  // token there, at most max_tenants + 1 of these can succeed however
  // many names an adversary invents.
  for (int i = 0; i < 12; ++i) {
    ServiceRequest r = make_request(i, 5, random_vertex_faults(g, 1, i));
    r.tenant = "spoof-" + std::to_string(i);
    if (svc.process_now(r).status == ServiceStatus::kThrottled) ++throttled;
  }
  EXPECT_GE(throttled, 12 - 5);
}

}  // namespace
}  // namespace starring
